"""Figure 12: load balancing efficiency — leaf uplink throughput imbalance.

Paper method: synchronized samples of the four Leaf-0 uplink throughputs at
60% load; the metric is (MAX − MIN)/AVG per window.  Paper shape: CONGA and
MPTCP are dramatically better balanced than ECMP; CONGA beats MPTCP on the
enterprise workload.

Methodology notes for the scaled runs: the senders are *bursty* (application
-paced bursts whose gaps straddle the flowlet timeout, per the §2.6.1
measurements) — continuously-backlogged senders have no flowlet gaps, which
would reduce CONGA to per-flow decisions; windows are 1 ms instead of 10 ms
and only windows during the loaded phase count (the drain tail is idle).
"""

import numpy as np
from conftest import report

from repro.analysis import ThroughputImbalanceMonitor
from repro.apps import get_scheme
from repro.apps.traffic import (
    CrossRackTraffic,
    bursty_tcp_flow_factory,
    mptcp_flow_factory,
)
from repro.sim import Simulator
from repro.topology import build_leaf_spine, scaled_testbed
from repro.transport import TcpParams
from repro.units import milliseconds, seconds
from repro.workloads import ENTERPRISE

SCHEMES = ["ecmp", "conga-flow", "conga", "mptcp"]


def _run_scheme(scheme: str, seed: int) -> np.ndarray:
    sim = Simulator(seed=seed)
    fabric = build_leaf_spine(sim, scaled_testbed())
    spec = get_scheme(scheme)
    fabric.finalize(spec.make_selector())
    if scheme == "mptcp":
        factory = mptcp_flow_factory(TcpParams())
    else:
        factory = bursty_tcp_flow_factory(TcpParams())
    monitor = ThroughputImbalanceMonitor(
        sim, list(fabric.leaves[0].uplinks), milliseconds(1)
    )
    monitor.start()
    traffic = CrossRackTraffic(
        sim,
        fabric,
        ENTERPRISE,
        0.8,
        flow_factory=factory,
        num_flows=1000,
        size_scale=0.1,
        on_all_done=sim.stop,
    )
    traffic.start()
    sim.run(until=seconds(30))
    monitor.stop()
    last_arrival = max(r.start_time for r in traffic.stats.records)
    return np.array(monitor.samples_before(last_arrival)) * 100.0


def _run():
    stats = {}
    for scheme in SCHEMES:
        samples = _run_scheme(scheme, 31)
        stats[scheme] = {
            "mean": float(samples.mean()),
            "p50": float(np.percentile(samples, 50)),
            "p90": float(np.percentile(samples, 90)),
            "windows": len(samples),
        }
    return stats


def test_figure12_throughput_imbalance(benchmark):
    stats = benchmark.pedantic(_run, rounds=1, iterations=1)
    report(
        "Figure 12: enterprise uplink throughput imbalance @ high load (%)",
        ["scheme", "mean", "median", "p90", "windows"],
        [
            [s, stats[s]["mean"], stats[s]["p50"], stats[s]["p90"],
             stats[s]["windows"]]
            for s in SCHEMES
        ],
    )
    # The figure's headline: congestion-aware schemes balance much better
    # than static hashing.
    assert stats["conga"]["mean"] < stats["ecmp"]["mean"]
    assert stats["conga-flow"]["mean"] < stats["ecmp"]["mean"]
    assert stats["mptcp"]["mean"] < stats["ecmp"]["mean"]
