"""Figure 15: CONGA's edge over ECMP grows with access-link speed.

Paper shape (web-search workload, 40 Gbps fabric links, 3:1
oversubscription): with 10 Gbps access links CONGA improves FCT by ~5–10%
at 30% load, but with 40 Gbps access links — where a single fabric link no
longer fits multiple flows without congestion — the improvement is ~30%
even at that low load.  Hash collisions simply cost more when one flow can
fill a fabric link.

Scaled: both fabrics keep 3:1 oversubscription and the fabric link rate;
only the access rate (and host count, to hold oversubscription) changes.
"""

from conftest import report

from repro.apps import ExperimentSpec
from repro.runner import run_sweep, sweep_grid
from repro.topology import scaled_testbed

LOADS = [0.3, 0.6]


def _config(access_gbps: float):
    # 4 uplinks at 10 Gbps fabric rate; hosts chosen for 3:1 oversub.
    hosts = round(3 * 4 * 10.0 / access_gbps)
    return scaled_testbed(
        hosts_per_leaf=hosts,
        host_gbps=access_gbps,
        fabric_gbps=10.0,
    )


def _run():
    specs = []
    for access in (2.5, 10.0):  # access << fabric vs access == fabric
        template = ExperimentSpec(
            scheme="ecmp",
            workload="web-search",
            load=0.3,
            config=_config(access),
            num_flows=250,
            size_scale=0.1,
            seed=31,
        )
        specs.extend(
            sweep_grid(template, schemes=["ecmp", "conga"], loads=LOADS)
        )
    sweep = run_sweep(specs, cache=None)
    return {
        (p.spec.config.host_rate_bps / 1e9, p.load, p.scheme):
            p.summary.mean_normalized
        for p in sweep
    }


def test_figure15_access_link_speed(benchmark):
    table = benchmark.pedantic(_run, rounds=1, iterations=1)
    rows = []
    for access in (2.5, 10.0):
        for load in LOADS:
            conga = table[(access, load, "conga")]
            ecmp = table[(access, load, "ecmp")]
            rows.append(
                [
                    f"{access:g}G access / 10G fabric",
                    load,
                    ecmp,
                    conga,
                    conga / ecmp,
                ]
            )
    report(
        "Figure 15: web-search FCT, CONGA relative to ECMP",
        ["topology", "load", "ecmp (norm)", "conga (norm)", "conga/ecmp"],
        rows,
    )
    # CONGA is comparable or better at every point (low-load points are
    # hash-luck noisy, so allow a small band), and clearly better at the
    # higher load in the equal-speed fabric.
    for access in (2.5, 10.0):
        for load in LOADS:
            assert (
                table[(access, load, "conga")]
                <= table[(access, load, "ecmp")] * 1.15
            )
    assert table[(10.0, 0.6, "conga")] < table[(10.0, 0.6, "ecmp")]
    # The improvement is larger when access speed equals fabric speed.
    slow_gain = 1 - (
        sum(table[(2.5, l, "conga")] for l in LOADS)
        / sum(table[(2.5, l, "ecmp")] for l in LOADS)
    )
    fast_gain = 1 - (
        sum(table[(10.0, l, "conga")] for l in LOADS)
        / sum(table[(10.0, l, "ecmp")] for l in LOADS)
    )
    assert fast_gain > slow_gain
