"""Figure 10: FCT statistics for the data-mining workload, baseline topology.

Paper shape: the data-mining workload is far heavier (95% of bytes in flows
> 35 MB), so ECMP's per-flow hashing is noticeably worst at higher loads —
both CONGA and MPTCP achieve up to ~35% better overall average FCT.  §6.2's
Theorem 2 explains why: load balancing difficulty grows with the size
distribution's coefficient of variation.
"""

from conftest import report

from repro.analysis import relative_to
from repro.apps import ExperimentSpec
from repro.runner import run_sweep, sweep_grid

LOADS = [0.3, 0.5, 0.7, 0.9]
SCHEMES = ["ecmp", "conga-flow", "conga", "mptcp"]

TEMPLATE = ExperimentSpec(
    scheme="ecmp",
    workload="data-mining",
    load=0.5,
    num_flows=200,
    size_scale=0.02,
    seed=31,
)


def _run():
    sweep = run_sweep(
        sweep_grid(TEMPLATE, schemes=SCHEMES, loads=LOADS), cache=None
    )
    return {
        (p.scheme, p.load): p.summary for p in sweep
    }


def test_figure10_datamining_fct(benchmark):
    results = benchmark.pedantic(_run, rounds=1, iterations=1)
    report(
        "Figure 10(a): data-mining overall avg FCT (normalized to optimal)",
        ["load"] + SCHEMES,
        [
            [load] + [results[(s, load)].mean_normalized for s in SCHEMES]
            for load in LOADS
        ],
    )
    report(
        "Figure 10(b): small flows (<100KB) avg FCT relative to ECMP",
        ["load"] + SCHEMES,
        [
            [load]
            + [
                relative_to(
                    results[(s, load)].mean_fct_small,
                    results[("ecmp", load)].mean_fct_small,
                )
                for s in SCHEMES
            ]
            for load in LOADS
        ],
    )
    # ECMP noticeably worst at the higher loads (the paper's headline).
    for load in (0.7, 0.9):
        assert (
            results[("conga", load)].mean_normalized
            < results[("ecmp", load)].mean_normalized
        )
    # The gap at high load is substantial (paper: up to ~35% better).
    top = 0.9
    improvement = 1 - (
        results[("conga", top)].mean_normalized
        / results[("ecmp", top)].mean_normalized
    )
    assert improvement > 0.15
    # CONGA-Flow also beats ECMP here: congestion-aware per-flow decisions
    # already help on heavy workloads.
    assert (
        results[("conga-flow", top)].mean_normalized
        < results[("ecmp", top)].mean_normalized
    )
