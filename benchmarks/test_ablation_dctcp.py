"""Ablation: CONGA with DCTCP (the paper's companion transport, [4]).

The paper's testbed runs standard TCP, but its datacenter context —
shallow buffers, burst tolerance, low latency — is built around DCTCP, and
the fabric supports the ECN marking it needs.  This bench shows the two
compose: with ECN marking enabled and DCTCP at the hosts,

* fabric queues collapse to near the marking threshold K at equal
  throughput (the signature DCTCP result), which also de-noises CONGA's
  DRE signal;
* the Incast scenario that breaks plain TCP at low buffer depth stops
  timing out, because DCTCP's graded backoff keeps drops away.
"""

import numpy as np
from conftest import report

from repro.apps import (
    ExperimentSpec,
    IncastClient,
    SchemeSpec,
    dctcp_flow_factory,
    register_scheme,
    tcp_flow_factory,
)
from repro.lb import CongaSelector
from repro.sim import Simulator
from repro.topology import build_leaf_spine, scaled_testbed
from repro.transport import TcpParams
from repro.units import kilobytes, megabytes, seconds

K = kilobytes(100)


def _register_dctcp_scheme() -> None:
    register_scheme(
        SchemeSpec(
            "conga-dctcp",
            CongaSelector.factory,
            lambda params: dctcp_flow_factory(params),
        ),
        replace=True,
    )


def _fct_comparison():
    _register_dctcp_scheme()
    results = {}
    for scheme, ecn in (("conga", None), ("conga-dctcp", K)):
        # conga-dctcp is registered only in this process: run serially.
        point = ExperimentSpec(  # repro-lint: ignore[S204] -- dynamic scheme exists only in-process; pool workers and the cache cannot resolve it
            scheme=scheme,
            workload="enterprise",
            load=0.6,
            config=scaled_testbed(ecn_threshold_bytes=ecn),
            num_flows=250,
            size_scale=0.05,
            seed=31,
        ).run()
        results[scheme] = {
            "fct": point.summary.mean_normalized,
            "max_fabric_queue": point.fabric_max_queue_bytes,
        }
    return results


def _incast(transport_factory, ecn):
    sim = Simulator(seed=1)
    fabric = build_leaf_spine(
        sim,
        scaled_testbed(
            hosts_per_leaf=16,
            host_queue_bytes=1_000_000,  # shallow edge buffer
            ecn_threshold_bytes=ecn,
        ),
    )
    fabric.finalize(CongaSelector.factory())
    servers = [h for h in sorted(fabric.hosts) if h != 0][:31]
    client = IncastClient(
        sim, fabric, client=0, servers=servers,
        flow_factory=transport_factory,
        request_bytes=megabytes(10), repeats=3,
    )
    client.start()
    sim.run(until=seconds(60))
    if not client.finished:
        return 0.0
    return client.result.throughput_percent(fabric.host(0).nic.rate_bps)


def _run():
    fct = _fct_comparison()
    incast = {
        "tcp (1MB buffer)": _incast(tcp_flow_factory(TcpParams()), None),
        "dctcp (1MB buffer, K=100KB)": _incast(
            dctcp_flow_factory(TcpParams()), K
        ),
    }
    return fct, incast


def test_conga_with_dctcp(benchmark):
    fct, incast = benchmark.pedantic(_run, rounds=1, iterations=1)
    report(
        "Ablation: CONGA + DCTCP, enterprise @60%",
        ["transport", "avg FCT (norm)", "max fabric queue (KB)"],
        [
            [k, v["fct"], v["max_fabric_queue"] / 1e3]
            for k, v in fct.items()
        ],
    )
    report(
        "Ablation: Incast (fan-in 31, shallow 1MB edge buffer)",
        ["transport", "effective throughput %"],
        [[k, v] for k, v in incast.items()],
    )
    # DCTCP slashes fabric queueing without hurting FCT.
    assert (
        fct["conga-dctcp"]["max_fabric_queue"]
        < 0.5 * fct["conga"]["max_fabric_queue"]
    )
    assert fct["conga-dctcp"]["fct"] < fct["conga"]["fct"] * 1.2
    # At shallow buffers, plain TCP incasts into timeouts; DCTCP does not.
    assert incast["dctcp (1MB buffer, K=100KB)"] > incast["tcp (1MB buffer)"]
    assert incast["dctcp (1MB buffer, K=100KB)"] > 80.0
