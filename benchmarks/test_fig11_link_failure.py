"""Figure 11: impact of a link failure (the asymmetric topology, Fig. 7b).

Paper shape: with one of the two Leaf1–Spine1 links down, the bisection
toward Leaf 1 is 75% of nominal and ECMP — which keeps hashing half the
Leaf0→Leaf1 traffic through Spine 1 — oversubscribes the surviving link once
offered load passes ~50%, so its FCT deteriorates drastically.  The adaptive
schemes shift traffic through Spine 0 and degrade gracefully; CONGA is best
(up to ~30% better than MPTCP on enterprise, ~2× on data-mining at 70%
load).  Part (c): the queue at the hotspot port [Spine1→Leaf1] is far
smaller with CONGA (4× smaller 90th percentile than MPTCP in the paper).

The run loads the Leaf0→Leaf1 direction (clients under Leaf 1), which is
the direction that crosses the degraded link.
"""

import numpy as np
from conftest import report

from repro.apps import ExperimentSpec, QueueMonitorSpec
from repro.faults import LinkDown
from repro.runner import run_sweep, sweep_grid

LOADS = [0.3, 0.5, 0.7]
SCHEMES = ["ecmp", "conga-flow", "conga", "mptcp"]

# The surviving Spine1->Leaf1 downlink is the hotspot the paper samples.
HOTSPOT = QueueMonitorSpec(tier="spine", direction="down", spine=1, leaf=1)

# The failure scenario goes through the fault plane: one Leaf1-Spine1 link
# down from t=0 (an initial condition, same event stream as the old
# pre-run fail_link call, but declarative / sweepable / cacheable).
FAULTS = (LinkDown(time=0, leaf=1, spine=1, which=0),)


def _specs():
    specs = []
    for workload, scale, flows in (
        ("enterprise", 0.05, 200),
        ("data-mining", 0.02, 150),
    ):
        template = ExperimentSpec(
            scheme="ecmp",
            workload=workload,
            load=0.5,
            num_flows=flows,
            size_scale=scale,
            seed=31,
            clients=range(8, 16),
            faults=FAULTS,
        )
        specs.extend(sweep_grid(template, schemes=SCHEMES, loads=LOADS))
    queue_template = ExperimentSpec(
        scheme="ecmp",
        workload="data-mining",
        load=0.6,
        num_flows=150,
        size_scale=0.05,
        seed=7,
        clients=range(8, 16),
        faults=FAULTS,
        queue_monitor=HOTSPOT,
    )
    specs.extend(sweep_grid(queue_template, schemes=SCHEMES))
    return specs


def _run():
    sweep = run_sweep(_specs(), cache=None)
    fct = {
        (p.workload, p.scheme, p.load): p.summary.mean_normalized
        for p in sweep
        if p.spec.queue_monitor is None
    }
    queues = {}
    for point in sweep.select(load=0.6):
        if point.spec.queue_monitor is None:
            continue
        hotspot = point.queue_series.port_names[0]
        series = np.array(point.queue_series.series(hotspot))
        queues[point.scheme] = {
            "mean": float(series.mean()),
            "p90": float(np.percentile(series, 90)),
        }
    return fct, queues


def test_figure11_link_failure(benchmark):
    fct, queues = benchmark.pedantic(_run, rounds=1, iterations=1)
    for workload in ("enterprise", "data-mining"):
        report(
            f"Figure 11: {workload} avg FCT with link failure (norm. to optimal)",
            ["load"] + SCHEMES,
            [
                [load] + [fct[(workload, s, load)] for s in SCHEMES]
                for load in LOADS
            ],
        )
    report(
        "Figure 11(c): hotspot [Spine1->Leaf1] queue occupancy, data-mining @60%",
        ["scheme", "mean (KB)", "p90 (KB)"],
        [
            [s, queues[s]["mean"] / 1e3, queues[s]["p90"] / 1e3]
            for s in SCHEMES
        ],
    )
    for workload in ("enterprise", "data-mining"):
        # ECMP's degradation beyond 50% load: the FCT gap vs CONGA widens
        # sharply from 0.5 to 0.7 offered load.
        gap_mid = fct[(workload, "ecmp", 0.5)] / fct[(workload, "conga", 0.5)]
        gap_high = fct[(workload, "ecmp", 0.7)] / fct[(workload, "conga", 0.7)]
        assert gap_high > 1.1
        assert gap_high > gap_mid * 0.9
        # CONGA best or tied at the highest load.
        best = min(fct[(workload, s, 0.7)] for s in SCHEMES)
        assert fct[(workload, "conga", 0.7)] <= best * 1.1
    # Part (c): CONGA controls the hotspot queue better than ECMP and MPTCP.
    assert queues["conga"]["mean"] < 0.5 * queues["ecmp"]["mean"]
    assert queues["conga"]["p90"] <= queues["mptcp"]["p90"]
