"""Ablation: CONGA's parameter choices (paper §3.6) and path metric (§7).

§3.6 claims CONGA's performance is "fairly robust" over Q = 3–6,
τ = 100–500 µs, and T_fl = 300 µs–1 ms.  This benchmark sweeps each knob on
the link-failure scenario (where congestion-awareness matters most) and
checks:

* all parameterizations in the paper's recommended ranges stay within a
  modest band of the default's FCT, and all beat ECMP;
* degenerate settings degrade gracefully: Q = 1 (a single congestion bit)
  loses accuracy, and a very large T_fl (13 ms, i.e. CONGA-Flow) gives up
  flowlet granularity;
* §7's alternative *sum* path metric (instead of max) is also evaluated —
  the paper chose max for implementability; both behave comparably here.
"""

from conftest import report

from repro.apps import ExperimentSpec, SchemeSpec, register_scheme
from repro.core import CongaParams
from repro.topology import scaled_testbed
from repro.lb import CongaSelector
from repro.lb.base import UplinkSelector
from repro.apps.traffic import tcp_flow_factory
from repro.units import microseconds, milliseconds

TEMPLATE = ExperimentSpec(
    scheme="ecmp",
    workload="data-mining",
    load=0.6,
    num_flows=150,
    size_scale=0.05,
    seed=7,
    clients=range(8, 16),
    failed_links=[(1, 1, 0)],
)


class SumMetricCongaSelector(CongaSelector):
    """§7 variant: path metric is local + remote instead of max."""

    name = "conga-sum"

    def path_metric(self, dst_leaf: int, uplink: int) -> int:
        local = self.leaf.local_metric(uplink)
        remote = self.leaf.to_leaf_table.metric(dst_leaf, uplink)
        return local + remote


def _register(name: str, selector_factory) -> None:
    register_scheme(
        SchemeSpec(name, lambda: selector_factory, tcp_flow_factory),
        replace=True,
    )


def _run():
    # Every variant registers a process-local scheme, so points run
    # serially via spec.run() rather than through a worker pool.
    variants = {
        "default (Q=3, tau=160us, Tfl=500us)": CongaParams(),
        "Q=1": CongaParams(quantization_bits=1),
        "Q=6": CongaParams(quantization_bits=6),
        "tau=100us": CongaParams(
            dre_time_constant=microseconds(100), dre_period=microseconds(20)
        ),
        "tau=500us": CongaParams(
            dre_time_constant=microseconds(500), dre_period=microseconds(20)
        ),
        "Tfl=300us": CongaParams(flowlet_timeout=microseconds(300)),
        "Tfl=1ms": CongaParams(flowlet_timeout=milliseconds(1)),
        "Tfl=13ms (CONGA-Flow)": CongaParams(flowlet_timeout=milliseconds(13)),
        # Figure 1's bottom branch: per-packet CONGA (a 1 us "flowlet" gap).
        # The paper expects this to need a reordering-resilient TCP; at the
        # simulated buffer depth cumulative ACKs absorb the reordering.
        "Tfl=1us (per-packet)": CongaParams(flowlet_timeout=microseconds(1)),
    }
    results = {}
    for label, params in variants.items():
        name = f"ablation-{label}"
        _register(name, CongaSelector.factory(params))
        # The parameter block must reach both the selector (flowlet table)
        # and the fabric (per-port DREs, congestion tables).
        results[label] = (
            TEMPLATE.with_(scheme=name, config=scaled_testbed(params=params))
            .run().summary.mean_normalized
        )
    _register("ablation-sum-metric", SumMetricCongaSelector)
    results["sum path metric (7)"] = (
        TEMPLATE.with_(scheme="ablation-sum-metric")
        .run().summary.mean_normalized
    )
    results["ecmp (reference)"] = TEMPLATE.run().summary.mean_normalized
    return results


def test_parameter_ablation(benchmark):
    results = benchmark.pedantic(_run, rounds=1, iterations=1)
    default = results["default (Q=3, tau=160us, Tfl=500us)"]
    report(
        "Ablation (3.6/7): CONGA variants, data-mining @60%, failed link",
        ["variant", "avg FCT (norm)", "vs default"],
        [[k, v, v / default] for k, v in results.items()],
    )
    ecmp = results["ecmp (reference)"]
    recommended = [
        "Q=6", "tau=100us", "tau=500us", "Tfl=300us", "Tfl=1ms",
    ]
    for label in recommended:
        # Within the recommended ranges, performance is robust (3.6) ...
        assert results[label] < default * 1.3
        # ... and every variant still beats static ECMP.
        assert results[label] < ecmp
    # The sum metric is a viable alternative (7).
    assert results["sum path metric (7)"] < ecmp
    # Per-packet CONGA balances at the finest granularity (Figure 1 calls
    # it optimal given a reordering-tolerant transport) and beats ECMP.
    assert results["Tfl=1us (per-packet)"] < ecmp
