"""§7 extension: CONGA in a multi-pod (3-tier) fabric.

The paper leaves larger topologies to future work but argues CONGA is
"beneficial even in these cases since it balances the traffic within each
pod optimally, which also reduces congestion for inter-pod traffic" and
"even for inter-pod traffic, CONGA makes better decisions than ECMP at the
first hop".  This bench builds a 2-pod × (2 leaves × 2 spines) fabric with
a core tier, degrades one leaf-spine pair inside pod 0, and drives a
web-search workload whose flows are a mix of intra- and inter-pod traffic.
"""

import numpy as np
from conftest import report

from repro.apps import get_scheme
from repro.apps.traffic import CrossRackTraffic
from repro.sim import Simulator
from repro.topology import MultiPodConfig, build_multipod
from repro.transport import TcpParams
from repro.units import seconds
from repro.workloads import WEB_SEARCH


def _run_scheme(scheme: str):
    sim = Simulator(seed=44)
    config = MultiPodConfig(
        num_pods=2,
        leaves_per_pod=2,
        spines_per_pod=2,
        hosts_per_leaf=4,
        num_cores=2,
        links_per_pair=2,
    )
    fabric = build_multipod(sim, config)
    spec = get_scheme(scheme)
    fabric.finalize(spec.make_selector())
    fabric.fail_link(1, 1, 0)  # asymmetry inside pod 0
    traffic = CrossRackTraffic(
        sim,
        fabric,
        WEB_SEARCH,
        0.6,
        flow_factory=spec.make_flow_factory(TcpParams()),
        num_flows=300,
        size_scale=0.1,
        on_all_done=sim.stop,
    )
    traffic.start()
    sim.run(until=seconds(20))
    records = traffic.stats.records
    intra = [
        r.normalized_fct
        for r in records
        if fabric.pod_of_leaf(fabric.leaf_of(r.src))
        == fabric.pod_of_leaf(fabric.leaf_of(r.dst))
    ]
    inter = [
        r.normalized_fct
        for r in records
        if fabric.pod_of_leaf(fabric.leaf_of(r.src))
        != fabric.pod_of_leaf(fabric.leaf_of(r.dst))
    ]
    return {
        "completed": traffic.stats.completed,
        "arrivals": traffic.stats.arrivals,
        "overall": float(np.mean([r.normalized_fct for r in records])),
        "intra_pod": float(np.mean(intra)) if intra else float("nan"),
        "inter_pod": float(np.mean(inter)) if inter else float("nan"),
        "core_bytes": sum(
            p.tx_bytes for core in fabric.cores for p in core.ports
        ),
    }


def _run():
    return {scheme: _run_scheme(scheme) for scheme in ("ecmp", "conga")}


def test_multipod_extension(benchmark):
    results = benchmark.pedantic(_run, rounds=1, iterations=1)
    report(
        "7 extension: 2-pod fabric, intra-pod failure, web-search @60%",
        ["scheme", "overall FCT", "intra-pod FCT", "inter-pod FCT"],
        [
            [s, d["overall"], d["intra_pod"], d["inter_pod"]]
            for s, d in results.items()
        ],
    )
    for data in results.values():
        assert data["completed"] == data["arrivals"]
        assert data["core_bytes"] > 0  # inter-pod traffic existed
    # CONGA no worse overall and clearly better within the asymmetric pod.
    assert results["conga"]["overall"] <= results["ecmp"]["overall"] * 1.05
    assert results["conga"]["intra_pod"] < results["ecmp"]["intra_pod"]
