"""Figure 2: congestion-aware load balancing needs non-local information.

Paper scenario: L0 sends 100 Gbps of TCP traffic to L1 over two spines; the
(S1, L1) link has half the capacity of the others.  Paper numbers:

* static ECMP delivers 90 Gbps (50/50 split, lower path capped at 40);
* local congestion-aware delivers only 80 Gbps (40/40 — *worse* than ECMP);
* global congestion-aware (CONGA) delivers 100 Gbps (66.6/33.3).
"""

from conftest import report

from repro.fluid import (
    conga_split,
    ecmp_split,
    figure2_demand,
    figure2_network,
    local_aware_split,
)

PAPER_THROUGHPUT = {"ecmp": 90.0, "local": 80.0, "conga": 100.0}


def _run():
    network = figure2_network()
    demand = figure2_demand()
    results = {}
    for name, allocator in (
        ("ecmp", ecmp_split),
        ("local", local_aware_split),
        ("conga", conga_split),
    ):
        allocation = allocator(network, demand)
        split = allocation.splits[0]
        results[name] = {
            "throughput": allocation.total_throughput(),
            "upper": split[("L0", "S0", "L1")],
            "lower": split[("L0", "S1", "L1")],
        }
    return results


def test_figure2_scheme_throughputs(benchmark):
    results = benchmark.pedantic(_run, rounds=1, iterations=1)
    rows = [
        [
            name,
            PAPER_THROUGHPUT[name],
            values["throughput"],
            values["upper"],
            values["lower"],
        ]
        for name, values in results.items()
    ]
    report(
        "Figure 2: asymmetric scenario throughput (Gbps)",
        ["scheme", "paper", "measured", "via S0", "via S1"],
        rows,
    )
    for name, paper_value in PAPER_THROUGHPUT.items():
        assert results[name]["throughput"] == (
            __import__("pytest").approx(paper_value, abs=1.0)
        )
    # CONGA's split equalizes utilization: 66.6 / 33.3.
    assert results["conga"]["upper"] == __import__("pytest").approx(66.7, abs=1.5)
    # The ordering that motivates global congestion awareness (2.4).
    assert (
        results["local"]["throughput"]
        < results["ecmp"]["throughput"]
        < results["conga"]["throughput"]
    )
