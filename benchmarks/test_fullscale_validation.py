"""Full-scale validation: the paper's testbed size, via the flow-level model.

The packet-level benchmarks scale the testbed down (fewer hosts, smaller
flows) to run in seconds.  This bench cross-checks that scaling by running
the *actual* evaluation scale — 64 hosts, 2×40 Gbps uplinks per pair, and
unscaled data-mining flow sizes — in the dynamic flow-level simulator
(idealized max-min-fair TCP, placement-only scheme differences):

* symmetric fabric: ECMP ≈ CONGA (ideal fair-sharing absorbs collisions —
  the benign end of the paper's Figure 9 observation);
* Figure 7(b) failure, loaded toward the degraded leaf: CONGA's
  congestion-aware placement beats ECMP, with the gap growing in load —
  the same shape the scaled packet-level Figure 11 bench shows, now at
  true scale.

Flow-level gaps are smaller than packet-level ones because max-min fairness
has no queueing, loss, or retransmission penalty; the *direction* and the
load trend are the validated properties.
"""

import numpy as np
from conftest import report

from repro.fluid import run_flow_level
from repro.topology import TESTBED
from repro.workloads import DATA_MINING


def _mean_norm(**kwargs) -> float:
    done = run_flow_level(TESTBED, DATA_MINING, num_flows=1200, **kwargs)
    return float(np.mean([c.normalized_fct for c in done]))


def _run():
    table = {}
    for load in (0.5, 0.6, 0.7):
        for scheme in ("ecmp", "conga"):
            table[("baseline", scheme, load)] = _mean_norm(
                load=load, scheme=scheme, seed=3
            )
            table[("failure", scheme, load)] = _mean_norm(
                load=load, scheme=scheme, seed=3,
                failed_links=[(1, 1, 0)], clients=list(range(32, 64)),
            )
    return table


def test_full_scale_flow_level_validation(benchmark):
    table = benchmark.pedantic(_run, rounds=1, iterations=1)
    rows = []
    for topo in ("baseline", "failure"):
        for load in (0.5, 0.6, 0.7):
            ecmp = table[(topo, "ecmp", load)]
            conga = table[(topo, "conga", load)]
            rows.append([topo, load, ecmp, conga, ecmp / conga])
    report(
        "Full-scale check (64 hosts, unscaled data-mining, flow-level)",
        ["topology", "load", "ecmp", "conga", "ecmp/conga"],
        rows,
    )
    # Symmetric: schemes comparable under idealized fair sharing.
    for load in (0.5, 0.6, 0.7):
        ecmp = table[("baseline", "ecmp", load)]
        conga = table[("baseline", "conga", load)]
        assert abs(ecmp - conga) / conga < 0.1
    # Failure: CONGA ahead at every load, gap growing toward high load.
    gaps = []
    for load in (0.5, 0.6, 0.7):
        ecmp = table[("failure", "ecmp", load)]
        conga = table[("failure", "conga", load)]
        assert conga < ecmp
        gaps.append(ecmp / conga)
    assert gaps[-1] > gaps[0]
