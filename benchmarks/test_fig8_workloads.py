"""Figure 8: the empirical traffic distributions driving the evaluation.

Prints the flow-size CDF and the byte-weighted CDF for the enterprise and
data-mining workloads and checks the properties §5.2.1 calls out: in the
enterprise workload ~50% of bytes come from flows smaller than 35 MB, while
in data-mining those flows contribute only ~5% (95% of bytes belong to the
~3.6% of flows larger than 35 MB).
"""

from pathlib import Path

import numpy as np
import pytest
from conftest import report

from repro.workloads import DATA_MINING, ENTERPRISE

pytest.importorskip("yaml", reason="scenario files need PyYAML")
from repro.scenarios import load_scenario  # noqa: E402  (after the gate)

SCENARIO = load_scenario(
    Path(__file__).resolve().parent.parent / "scenarios" / "fig8_workloads.yaml"
)
PIVOT_BYTES = SCENARIO.params["pivot_bytes"]


def _run():
    params = SCENARIO.params
    probes = np.logspace(
        params["probe_log10_min"],
        params["probe_log10_max"],
        params["probe_count"],
    )
    table = {}
    from repro.apps import get_workload

    for dist in (get_workload(name) for name in SCENARIO.workloads):
        flow_cdf = []
        byte_cdf = []
        for probe in probes:
            index = np.searchsorted([p[0] for p in dist.points], probe)
            flow_fraction = (
                dist.points[min(index, len(dist.points) - 1)][1]
                if probe >= dist.points[0][0]
                else 0.0
            )
            flow_cdf.append(flow_fraction)
            byte_cdf.append(dist.byte_fraction_below(probe))
        table[dist.name] = (flow_cdf, byte_cdf)
    return probes, table


def test_figure8_workload_distributions(benchmark):
    probes, table = benchmark.pedantic(_run, rounds=1, iterations=1)
    for name, (flow_cdf, byte_cdf) in table.items():
        report(
            f"Figure 8: {name} workload CDFs",
            ["size (B)", "flows <= size", "bytes <= size"],
            [
                [f"{p:.0f}", f"{f:.2f}", f"{b:.2f}"]
                for p, f, b in zip(probes, flow_cdf, byte_cdf)
            ],
        )
    report(
        "5.2.1: byte share of flows below 35 MB",
        ["workload", "paper", "measured"],
        [
            ["enterprise", "~50%",
             f"{ENTERPRISE.byte_fraction_below(PIVOT_BYTES):.0%}"],
            ["data-mining", "~5%",
             f"{DATA_MINING.byte_fraction_below(PIVOT_BYTES):.0%}"],
        ],
    )
    assert ENTERPRISE.byte_fraction_below(PIVOT_BYTES) == pytest.approx(0.5, abs=0.15)
    assert DATA_MINING.byte_fraction_below(PIVOT_BYTES) < 0.15
    # Heavy tails: a small fraction of flows carries most bytes in both.
    assert DATA_MINING.coefficient_of_variation() > ENTERPRISE.coefficient_of_variation() * 0.9
