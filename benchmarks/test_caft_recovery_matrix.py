"""CAFT recovery matrix: fault kind x tier x density on the 2-pod Clos.

A Figure-16-style resilience grid for the 3-tier fabric: brownouts
(``LinkDegrade`` to 10% rate — liveness-*invisible*, routing keeps the
port) and black holes (``LinkLoss`` p=1.0 — packets die silently) at the
leaf-spine and spine-core tiers, densities 1 and 2, schemes ecmp / conga /
caft, five replicate seeds.  The grid comes from
``scenarios/caft_recovery.yaml``; the scenario's own compiled sweep is the
*fault-free baseline*, and each run's in-window goodput is scored against
the same scheme+seed's healthy goodput over the identical window
(:func:`repro.analysis.window_goodput`), which removes the ramp-up noise
of a run's own 600us pre-fault phase.

Expected shape, all reproduced deterministically here:

* **Brownouts**: the degraded link keeps accepting traffic, so the fault
  is pure asymmetry.  ECMP hashes into it blindly; CONGA's CE/DRE
  feedback steers away once queues build; CAFT steers *earlier* because
  the residual-capacity weight scales the congestion metric by 1/health.
  Ordering: caft >= conga >= ecmp (the ISSUE's target ordering) on both
  in-window goodput and mean FCT.

* **Black holes**: the CAFT paper's (arXiv:2010.00720) core claim.  A
  black-holed path looks *uncongested* to CONGA — traffic into it dies,
  so its DRE drains and the stale from-leaf feedback keeps round-robining
  pre-fault values — so CONGA is actively *attracted* to the hole and
  lands **below ECMP**.  CAFT's liveness weighting (residual 0 => score
  inf) avoids the hole outright: best goodput, ~60% of the others' RTO
  timeouts.  Ordering: caft > ecmp > conga.
"""

from pathlib import Path

import numpy as np
import pytest

pytest.importorskip("yaml")

from conftest import report

from repro.analysis import window_goodput
from repro.faults import parse_fault
from repro.runner import run_sweep, sweep_grid
from repro.scenarios import load_scenario

SCENARIO = load_scenario(
    Path(__file__).resolve().parent.parent / "scenarios" / "caft_recovery.yaml"
)
SCHEMES = list(SCENARIO.schemes)
SEEDS = list(SCENARIO.seed_list())
CELLS = tuple(SCENARIO.params["cells"])


def _cell_key(cell):
    return (cell["tier"], cell["kind"], cell["density"])


def _run():
    baseline = run_sweep(SCENARIO.compile(), cache=None)
    healthy = {(p.scheme, p.spec.seed): p.records for p in baseline}
    matrix = {}
    for cell in CELLS:
        faults = tuple(parse_fault(s) for s in cell["faults"])
        sweep = run_sweep(
            sweep_grid(
                SCENARIO.template.with_(faults=faults),
                schemes=SCHEMES,
                seeds=SEEDS,
            ),
            cache=None,
        )
        stats = {}
        for point in sweep:
            d = point.degradation()
            window_end = d.window_end if d.window_end is not None else d.end_time
            base = window_goodput(
                healthy[(point.scheme, point.spec.seed)], d.window_start, window_end
            )
            entry = stats.setdefault(
                point.scheme, {"retained": [], "fct": [], "timeouts": [], "asym": []}
            )
            entry["retained"].append(d.goodput_during_bps / base)
            entry["fct"].append(point.summary.mean_normalized)
            entry["timeouts"].append(point.timeouts)
            entry["asym"].append(d.asymmetry_of(cell["tier"]))
        matrix[_cell_key(cell)] = {
            scheme: {stat: float(np.mean(values)) for stat, values in entry.items()}
            for scheme, entry in stats.items()
        }
    return matrix


def test_caft_recovery_matrix(benchmark):
    matrix = benchmark.pedantic(_run, rounds=1, iterations=1)
    rows = []
    for cell in CELLS:
        key = _cell_key(cell)
        for scheme in SCHEMES:
            cell_stats = matrix[key][scheme]
            rows.append(
                [
                    f"{key[0]}-{key[1]}/x{key[2]}",
                    scheme,
                    cell_stats["retained"],
                    cell_stats["fct"],
                    cell_stats["timeouts"],
                    cell_stats["asym"],
                ]
            )
    report(
        "CAFT recovery matrix: 2-pod Clos, enterprise @60%, faults @600us "
        "(goodput vs healthy baseline over the fault window)",
        [
            "cell",
            "scheme",
            "goodput retained",
            "mean FCT (norm)",
            "RTO timeouts",
            "peak tier asym",
        ],
        rows,
    )

    brownouts = [c for c in CELLS if c["kind"] == "brownout"]
    holes = [c for c in CELLS if c["kind"] == "blackhole"]

    # Brownouts are asymmetry the congestion feedback can see: conga beats
    # ecmp, and caft's 1/health scaling steers earlier still — the ISSUE's
    # target ordering caft >= conga >= ecmp, on FCT in every cell.
    for cell in brownouts:
        m = matrix[_cell_key(cell)]
        assert m["caft"]["fct"] < m["conga"]["fct"] < m["ecmp"]["fct"], cell

    # In-window goodput follows the same ordering wherever the brownout
    # bites hard enough to move whole-fabric goodput (the single-core-link
    # cell leaves 3 of 4 core links clean, so its goodput gap is noise).
    for cell in brownouts:
        if cell["tier"] == "leaf" or cell["density"] == 2:
            m = matrix[_cell_key(cell)]
            assert (
                m["caft"]["retained"]
                > m["conga"]["retained"]
                > m["ecmp"]["retained"]
            ), cell

    for cell in holes:
        m = matrix[_cell_key(cell)]
        # CAFT routes around what it cannot see congestion for: best
        # goodput and far fewer flows parked in RTO.
        assert m["caft"]["retained"] > max(
            m["conga"]["retained"], m["ecmp"]["retained"]
        ), cell
        assert m["caft"]["timeouts"] < 0.75 * min(
            m["conga"]["timeouts"], m["ecmp"]["timeouts"]
        ), cell
        # The CAFT paper's claim, reproduced: a black hole drains its own
        # congestion signal, so CONGA is attracted to it and lands below
        # even fault-blind ECMP.
        assert m["ecmp"]["retained"] > m["conga"]["retained"], cell

    # The injector's bookkeeping localizes every fault to its tier.
    for cell in CELLS:
        m = matrix[_cell_key(cell)]
        for scheme in SCHEMES:
            assert m[scheme]["asym"] > 0.0, (cell, scheme)
