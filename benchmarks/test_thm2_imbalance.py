"""Theorem 2 (§6.2): traffic imbalance under randomized load balancing.

E[χ(t)] ≤ 1/sqrt(λ_e t) + O(1/t) with λ_e = λ / (8 n log n (1 + CoV²)).
Three consequences are checked by Monte-Carlo:

* the imbalance decays like 1/sqrt(t);
* heavier flow-size distributions (higher CoV) balance worse — data-mining
  vs web-search, the paper's explanation for Figure 9 vs Figure 10;
* chopping flows into flowlet-sized pieces slashes the imbalance, the
  theoretical case for flowlet switching.
"""

import numpy as np
import pytest
from conftest import report

from repro.theory import (
    flowlet_split_sampler,
    imbalance_bound,
    sampler_from_distribution,
    simulate_imbalance,
)
from repro.workloads import DATA_MINING, ENTERPRISE, WEB_SEARCH

ARRIVAL_RATE = 400.0
NUM_LINKS = 4


def _run():
    horizons = [5.0, 20.0, 80.0]
    decay_rows = []
    for t in horizons:
        estimate = simulate_imbalance(
            arrival_rate=ARRIVAL_RATE,
            num_links=NUM_LINKS,
            mean_size=WEB_SEARCH.mean(),
            cov=WEB_SEARCH.coefficient_of_variation(),
            t=t,
            sampler=sampler_from_distribution(WEB_SEARCH),
            trials=120,
            seed=21,
        )
        decay_rows.append([t, estimate.mean_imbalance, estimate.bound])

    workload_rows = []
    for dist in (WEB_SEARCH, ENTERPRISE, DATA_MINING):
        estimate = simulate_imbalance(
            arrival_rate=ARRIVAL_RATE,
            num_links=NUM_LINKS,
            mean_size=dist.mean(),
            cov=dist.coefficient_of_variation(),
            t=30.0,
            sampler=sampler_from_distribution(dist),
            trials=120,
            seed=22,
        )
        workload_rows.append(
            [dist.name, dist.coefficient_of_variation(), estimate.mean_imbalance]
        )

    base = sampler_from_distribution(DATA_MINING)
    flowlet_rows = []
    for label, sampler in (
        ("per-flow", base),
        ("flowlet 500KB", flowlet_split_sampler(base, 500_000.0)),
        ("flowlet 50KB", flowlet_split_sampler(base, 50_000.0)),
    ):
        estimate = simulate_imbalance(
            arrival_rate=200.0,
            num_links=NUM_LINKS,
            mean_size=DATA_MINING.mean(),
            cov=DATA_MINING.coefficient_of_variation(),
            t=30.0,
            sampler=sampler,
            trials=80,
            seed=23,
        )
        flowlet_rows.append([label, estimate.mean_imbalance])
    return decay_rows, workload_rows, flowlet_rows


def test_theorem2_traffic_imbalance(benchmark):
    decay_rows, workload_rows, flowlet_rows = benchmark.pedantic(
        _run, rounds=1, iterations=1
    )
    report(
        "Theorem 2: E[chi(t)] vs the 1/sqrt(lambda_e t) bound (web-search)",
        ["t", "measured E[chi]", "bound"],
        decay_rows,
    )
    report(
        "Theorem 2: workload heaviness (CoV) drives imbalance @ t=30",
        ["workload", "CoV", "E[chi]"],
        workload_rows,
    )
    report(
        "Theorem 2: flowlet splitting improves balance (data-mining)",
        ["granularity", "E[chi]"],
        flowlet_rows,
    )
    # Bound holds at every horizon.
    for _t, measured, bound in decay_rows:
        assert measured <= bound * 1.05
    # Decay: quadrupling t should at least halve the imbalance (~1/sqrt t).
    assert decay_rows[-1][1] < decay_rows[0][1] / 2
    # CoV ordering: data-mining worst.
    assert workload_rows[2][2] > workload_rows[0][2]
    # Flowlets: the finer the pieces, the better the balance.
    assert flowlet_rows[1][1] < flowlet_rows[0][1]
    assert flowlet_rows[2][1] < flowlet_rows[1][1]
