"""Figure 9: FCT statistics for the enterprise workload, baseline topology.

Paper shape (64-server testbed, Fig. 7a, loads 10–90%):

* overall average FCT (normalized to optimal) is similar for all schemes,
  except MPTCP which is worse than CONGA (up to ~25% worse than the pack);
* CONGA/CONGA-Flow improve large flows (> 10 MB) by up to ~20% over ECMP;
* the enterprise workload is "light" enough that ECMP does respectably
  (contrast with Fig. 10, where it is clearly worst).

Scaled run: 16 hosts, 2:1 oversubscription preserved, flow sizes scaled by
0.05 so the shape of the distribution (and its CoV) is retained.
"""

import math
from pathlib import Path

import pytest
from conftest import report

from repro.analysis import relative_to
from repro.runner import run_sweep

pytest.importorskip("yaml", reason="scenario files need PyYAML")
from repro.scenarios import load_scenario  # noqa: E402  (after the gate)

SCENARIO = load_scenario(
    Path(__file__).resolve().parent.parent
    / "scenarios" / "fig9_enterprise.yaml"
)
LOADS = list(SCENARIO.loads)
SCHEMES = list(SCENARIO.schemes)


def _run():
    sweep = run_sweep(SCENARIO.compile(), cache=None)
    return {
        (p.scheme, p.load): p.summary for p in sweep
    }


def test_figure9_enterprise_fct(benchmark):
    results = benchmark.pedantic(_run, rounds=1, iterations=1)
    report(
        "Figure 9(a): enterprise overall avg FCT (normalized to optimal)",
        ["load"] + SCHEMES,
        [
            [load] + [results[(s, load)].mean_normalized for s in SCHEMES]
            for load in LOADS
        ],
    )
    report(
        "Figure 9(b): small flows (<100KB) avg FCT relative to ECMP",
        ["load"] + SCHEMES,
        [
            [load]
            + [
                relative_to(
                    results[(s, load)].mean_fct_small,
                    results[("ecmp", load)].mean_fct_small,
                )
                for s in SCHEMES
            ]
            for load in LOADS
        ],
    )
    report(
        "Figure 9(c): large flows (>10MB) avg FCT relative to ECMP",
        ["load"] + SCHEMES,
        [
            [load]
            + [
                relative_to(
                    results[(s, load)].mean_fct_large,
                    results[("ecmp", load)].mean_fct_large,
                )
                for s in SCHEMES
            ]
            for load in LOADS
        ],
    )
    for load in LOADS:
        # CONGA is never worse than ECMP overall on this workload.
        assert (
            results[("conga", load)].mean_normalized
            <= results[("ecmp", load)].mean_normalized * 1.05
        )
        # MPTCP trails CONGA overall (the paper's Fig. 9a ordering).
        assert (
            results[("conga", load)].mean_normalized
            <= results[("mptcp", load)].mean_normalized * 1.05
        )
    # Large flows: CONGA clearly better than ECMP on average across loads
    # (the paper reports up to ~20% improvement; individual load points are
    # elephant-dominated and noisy, so assert the aggregate).
    ratios = [
        relative_to(
            results[("conga", load)].mean_fct_large,
            results[("ecmp", load)].mean_fct_large,
        )
        for load in LOADS
    ]
    ratios = [r for r in ratios if not math.isnan(r)]
    assert ratios, "no large flows sampled"
    assert sum(ratios) / len(ratios) < 0.95
