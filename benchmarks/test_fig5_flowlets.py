"""Figure 5 and §2.6.1: flowlet measurements on (synthetic) packet traces.

Paper findings on production traces:

* 50% of bytes are in flows larger than ~30 MB, but with a 500 µs flowlet
  inactivity gap the byte-median transfer drops to ~500 KB — roughly two
  orders of magnitude finer balancing granularity;
* concurrent distinct 5-tuples per 1 ms are few (median ~130, max < 300),
  so a 64K-entry flowlet table is ample.

Production traces are proprietary; the synthetic generator reproduces the
two ingredients (heavy-tailed flows, NIC-offload line-rate bursts).
"""

import numpy as np
import pytest
from conftest import report

from repro.traces import (
    FIGURE5_GAPS,
    SyntheticTraceGenerator,
    byte_median_size,
    byte_weighted_cdf,
    concurrency_per_window,
    flowlet_sizes,
)


def _run():
    generator = SyntheticTraceGenerator(seed=42)
    trace = generator.generate(300)
    probes = np.logspace(1, 9, 17)
    curves = {}
    medians = {}
    for name, gap in FIGURE5_GAPS.items():
        sizes = flowlet_sizes(trace, gap)
        curves[name] = byte_weighted_cdf(sizes, probes)
        medians[name] = byte_median_size(sizes)
    busy = SyntheticTraceGenerator(seed=43).generate(
        500, arrival_rate_per_s=50_000.0
    )
    concurrency = concurrency_per_window(busy)
    return probes, curves, medians, concurrency


def test_figure5_flowlet_size_distribution(benchmark):
    probes, curves, medians, concurrency = benchmark.pedantic(
        _run, rounds=1, iterations=1
    )
    rows = [
        [f"{p:.0f}"] + [f"{curves[name][i]:.2f}" for name in FIGURE5_GAPS]
        for i, p in enumerate(probes)
    ]
    report(
        "Figure 5: fraction of bytes in transfers <= size",
        ["size (B)"] + list(FIGURE5_GAPS),
        rows,
    )
    report(
        "Figure 5: byte-median transfer size",
        ["granularity", "paper", "measured (B)"],
        [
            ["flow-250ms", "~30 MB", f"{medians['flow-250ms']:.3g}"],
            ["flowlet-500us", "~500 KB", f"{medians['flowlet-500us']:.3g}"],
            ["flowlet-100us", "< 500 KB", f"{medians['flowlet-100us']:.3g}"],
        ],
    )
    report(
        "2.6.1: concurrent distinct flows per 1 ms window",
        ["metric", "paper", "measured"],
        [
            ["median", "~130", int(np.median(concurrency))],
            ["max", "< 300", int(concurrency.max())],
        ],
    )
    # Shape assertions: flows are tens of MB by byte-median; 500 us flowlets
    # are ~2 orders of magnitude smaller; 100 us at most as large.
    assert medians["flow-250ms"] > 10e6
    assert medians["flowlet-500us"] < medians["flow-250ms"] / 30
    assert medians["flowlet-100us"] <= medians["flowlet-500us"]
    # Concurrency stays far below the 64K flowlet table (3.4).
    assert concurrency.max() < 65_536 / 8
