"""Figure 3: the optimal traffic split depends on the traffic matrix.

Paper scenario: three leaves, two spines, all links 40 Gbps, but L0 only
connects to S0.  The L1→L2 flow must adjust how much it sends through S0
based on how much L0→L2 traffic exists:

* (a) no L0→L2 traffic: L1→L2 can use both spines (about 50/50 is fine);
* (b) 40 Gbps of L0→L2: S0→L2 is consumed, so L1→L2 must move to S1.

No static weight vector handles both matrices — the argument against
oblivious routing (§2.4).
"""

import pytest
from conftest import report

from repro.fluid import (
    FluidAllocation,
    FluidDemand,
    conga_split,
    figure3_network,
)


def _run():
    network = figure3_network()
    outcomes = {}
    for l0_rate in (0.0, 40.0):
        demands = [FluidDemand("L1", "L2", 40.0)]
        if l0_rate:
            demands.append(FluidDemand("L0", "L2", l0_rate))
        allocation = conga_split(network, demands)
        split = allocation.splits[0]
        via_s0 = split[("L1", "S0", "L2")]
        outcomes[l0_rate] = {
            "via_s0": via_s0,
            "via_s1": split[("L1", "S1", "L2")],
            "bottleneck": allocation.max_utilization(),
            "delivered": allocation.total_throughput(),
        }
    # Static weights tuned for case (a) applied to case (b):
    demands_b = [FluidDemand("L1", "L2", 40.0), FluidDemand("L0", "L2", 40.0)]
    static = FluidAllocation(network, demands_b)
    static.splits = [
        {("L1", "S0", "L2"): 20.0, ("L1", "S1", "L2"): 20.0},
        {("L0", "S0", "L2"): 40.0},
    ]
    outcomes["static-weights-case-b"] = {
        "via_s0": 20.0,
        "via_s1": 20.0,
        "bottleneck": static.max_utilization(),
        "delivered": static.total_throughput(),
    }
    return outcomes


def test_figure3_optimal_split_depends_on_traffic_matrix(benchmark):
    outcomes = benchmark.pedantic(_run, rounds=1, iterations=1)
    report(
        "Figure 3: L1->L2 split through S0 vs traffic matrix (Gbps)",
        ["L0->L2 traffic", "via S0", "via S1", "bottleneck util", "delivered"],
        [
            [key, o["via_s0"], o["via_s1"], o["bottleneck"], o["delivered"]]
            for key, o in outcomes.items()
        ],
    )
    # (a) without L0 traffic: an even split is optimal.
    assert outcomes[0.0]["via_s0"] == pytest.approx(20.0, abs=2.0)
    # (b) with 40G of L0->L2: nearly everything must move to S1.
    assert outcomes[40.0]["via_s0"] < 5.0
    assert outcomes[40.0]["bottleneck"] <= 1.01
    # The static weights that were right for (a) congest S0->L2 in (b).
    assert outcomes["static-weights-case-b"]["bottleneck"] > 1.2
