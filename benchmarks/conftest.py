"""Shared helpers for the figure-reproduction benchmarks.

Each benchmark file regenerates one table or figure from the paper's
evaluation (§5, §6).  Runs are scaled down (fewer hosts, smaller flows)
from the 64-server testbed, so absolute numbers differ from the paper; the
*shape* — which scheme wins, by roughly what factor, and where behaviour
changes — is asserted, and the series the paper plots are printed so they
can be eyeballed against the original figures.
"""

from __future__ import annotations

from repro.analysis.report import print_table


def report(title: str, header: list[str], rows: list[list]) -> None:
    """Print a small aligned table under a figure title."""
    print_table(title, header, rows)
