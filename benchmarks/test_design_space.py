"""Design-space comparison (paper §2.2 and Figure 1).

The paper's argument for *distributed* load balancing: datacenter traffic
is too volatile for a centralized scheduler's control loop — Hedera runs
every 5 s and "would need to run every 100 ms to approach the performance
of a distributed solution", which CONGA in turn outperforms.  This bench
runs the full design tree on the link-failure scenario:

* static local (ECMP), the §2.4 local-congestion strawman,
* a Hedera-style centralized elephant scheduler at 1/10/100 ms periods
  (with natural-demand estimation and placement stability),
* distributed + global (CONGA).

Expected shape: the centralized scheduler is no better than ECMP at any
realistic period — the scaled flows live on the controller's timescale, so
pins always arrive late — while CONGA's round-trip-timescale reaction is
far ahead.
"""

from conftest import report

from repro.apps import ExperimentSpec, SchemeSpec, register_scheme
from repro.apps.traffic import tcp_flow_factory
from repro.lb import CentralizedScheduler, CentralizedSelector
from repro.units import milliseconds

TEMPLATE = ExperimentSpec(
    scheme="ecmp",
    workload="data-mining",
    load=0.6,
    num_flows=150,
    size_scale=0.05,
    seed=7,
    clients=range(8, 16),
    failed_links=[(1, 1, 0)],
)

INTERVALS_MS = [1, 10, 100]


def _register_hedera(interval_ms: int) -> str:
    name = f"hedera-{interval_ms}ms"
    register_scheme(
        SchemeSpec(
            name,
            lambda: CentralizedSelector,
            tcp_flow_factory,
            post_setup=lambda sim, fabric, ms=interval_ms: CentralizedScheduler(
                sim, fabric, interval=milliseconds(ms)
            ),
        ),
        replace=True,
    )
    return name


def _run():
    # Dynamically registered schemes only exist in this process, so these
    # points run serially via spec.run() rather than through a worker pool.
    results = {}
    for scheme in ("ecmp", "local", "conga"):
        results[scheme] = (
            TEMPLATE.with_(scheme=scheme).run().summary.mean_normalized
        )
    for interval in INTERVALS_MS:
        name = _register_hedera(interval)
        results[name] = (
            TEMPLATE.with_(scheme=name).run().summary.mean_normalized
        )
    return results


def test_design_space_under_asymmetry(benchmark):
    results = benchmark.pedantic(_run, rounds=1, iterations=1)
    report(
        "Design space (2.2): data-mining @60%, failed link — avg FCT (norm)",
        ["scheme", "avg FCT", "vs conga"],
        [[k, v, v / results["conga"]] for k, v in results.items()],
    )
    conga = results["conga"]
    ecmp = results["ecmp"]
    # CONGA clearly ahead of every alternative.
    for scheme, value in results.items():
        if scheme != "conga":
            assert value > conga * 1.1, f"{scheme} unexpectedly matched CONGA"
    # The centralized scheduler cannot beat ECMP meaningfully at any period:
    # its pins chase flows that live on the controller's own timescale.
    for interval in INTERVALS_MS:
        assert results[f"hedera-{interval}ms"] <= ecmp * 1.1
        assert results[f"hedera-{interval}ms"] >= conga
