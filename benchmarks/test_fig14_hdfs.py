"""Figure 14: HDFS TestDFSIO-style write benchmark, with and without failure.

Paper shape (40 trials of a 1 TB HDFS write with 3-way replication):

* baseline topology: ECMP and CONGA have nearly identical job completion
  times; MPTCP shows high-outlier trials;
* with the link failure, ECMP's completion times are nearly 2× the
  no-failure case, while CONGA is essentially unaffected; MPTCP is volatile.

Scaled model: every host writes replicated blocks (writer → off-rack
replica → same-rack replica, concurrently), which is the network footprint
of TestDFSIO.  The job here is network-bound, so no background traffic is
added (the paper needed it only because its testbed job was disk-bound).
"""

import numpy as np
from conftest import report

from repro.apps import HdfsWriteJob, mptcp_flow_factory, tcp_flow_factory
from repro.apps import get_scheme
from repro.sim import Simulator
from repro.topology import build_leaf_spine, scaled_testbed
from repro.transport import TcpParams
from repro.units import megabytes, seconds, to_milliseconds

TRIALS = 3
SCHEMES = ["ecmp", "conga", "mptcp"]


def _one(scheme: str, fail: bool, seed: int) -> float:
    sim = Simulator(seed=seed)
    fabric = build_leaf_spine(sim, scaled_testbed(hosts_per_leaf=8))
    spec = get_scheme(scheme)
    fabric.finalize(spec.make_selector())
    if fail:
        fabric.fail_link(1, 1, 0)
    job = HdfsWriteJob(
        sim,
        fabric,
        flow_factory=spec.make_flow_factory(TcpParams()),
        block_bytes=megabytes(2),
        blocks_per_writer=1,
    )
    job.start()
    sim.run(until=seconds(30))
    assert job.finished, f"{scheme} HDFS job did not finish"
    return to_milliseconds(job.result.completion_time)


def _run():
    table = {}
    for fail in (False, True):
        for scheme in SCHEMES:
            table[(scheme, fail)] = [
                _one(scheme, fail, seed) for seed in range(1, TRIALS + 1)
            ]
    return table


def test_figure14_hdfs_benchmark(benchmark):
    table = benchmark.pedantic(_run, rounds=1, iterations=1)
    rows = []
    for fail in (False, True):
        for scheme in SCHEMES:
            values = np.array(table[(scheme, fail)])
            rows.append(
                [
                    "failure" if fail else "baseline",
                    scheme,
                    float(values.mean()),
                    float(values.min()),
                    float(values.max()),
                ]
            )
    report(
        "Figure 14: HDFS write job completion time (ms), 3 trials",
        ["topology", "scheme", "mean", "min", "max"],
        rows,
    )
    ecmp_base = np.mean(table[("ecmp", False)])
    ecmp_fail = np.mean(table[("ecmp", True)])
    conga_base = np.mean(table[("conga", False)])
    conga_fail = np.mean(table[("conga", True)])
    # Baseline: ECMP and CONGA comparable (within 25%).
    assert abs(ecmp_base - conga_base) / conga_base < 0.25
    # Failure slows ECMP noticeably (the paper's disk-paced 1 TB job sees
    # ~2x; this network-bound scaled job sees a smaller but clear hit) ...
    assert ecmp_fail > 1.1 * ecmp_base
    # ... while CONGA barely notices (paper: "almost no impact").
    assert conga_fail < 1.1 * conga_base
    # And CONGA beats ECMP under failure.
    assert conga_fail < 0.92 * ecmp_fail
