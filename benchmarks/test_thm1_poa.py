"""Theorem 1 / Figure 17: the Price of Anarchy for CONGA is 2.

CONGA's uncoordinated leaf decisions form a bottleneck routing game [6].
Theorem 1: in Leaf-Spine networks the worst-case ratio between a Nash
flow's network bottleneck and the optimal bottleneck is exactly 2.  This
benchmark

* evaluates the worst-case gadget (a locked Nash at bottleneck 1 against an
  optimum of 1/2, attaining PoA = 2);
* verifies the upper bound over random asymmetric instances solved by
  best-response dynamics from adversarial random starting points;
* shows that from CONGA's natural starting point (even splits), dynamics
  land at the *good* equilibrium — which is why the paper says practice is
  "much closer to optimal" than the worst case.
"""

import numpy as np
import pytest
from conftest import report

from repro.theory import BottleneckGame, GameUser, figure17_gadget


def _run():
    game, nash = figure17_gadget()
    gadget = {
        "nash_bottleneck": game.network_bottleneck(nash),
        "optimal_bottleneck": game.optimal_bottleneck(),
        "poa": game.price_of_anarchy(nash),
        "is_nash": game.is_nash(nash),
    }
    natural = game.best_response_dynamics()
    gadget["natural_dynamics_bottleneck"] = game.network_bottleneck(natural)

    rng = np.random.default_rng(123)
    random_poas = []
    for _ in range(20):
        leaves = int(rng.integers(2, 4))
        spines = int(rng.integers(2, 4))
        up = rng.uniform(0.5, 2.0, size=(leaves, spines))
        down = rng.uniform(0.5, 2.0, size=(spines, leaves))
        users = []
        for _ in range(int(rng.integers(1, 5))):
            src, dst = rng.choice(leaves, size=2, replace=False)
            users.append(GameUser(int(src), int(dst), float(rng.uniform(0.2, 2.0))))
        game_r = BottleneckGame(up, down, users)
        start = np.zeros((len(users), spines))
        for index, user in enumerate(users):
            weights = rng.uniform(0.05, 1.0, size=spines)
            start[index] = user.demand * weights / weights.sum()
        nash_r = game_r.best_response_dynamics(start=start)
        random_poas.append(game_r.price_of_anarchy(nash_r))
    return gadget, np.array(random_poas)


def test_theorem1_price_of_anarchy(benchmark):
    gadget, random_poas = benchmark.pedantic(_run, rounds=1, iterations=1)
    report(
        "Theorem 1 / Figure 17: Price of Anarchy",
        ["quantity", "paper", "measured"],
        [
            ["worst-case gadget B(Nash)", "1", gadget["nash_bottleneck"]],
            ["worst-case gadget B(opt)", "1/2", gadget["optimal_bottleneck"]],
            ["worst-case gadget PoA", "2", gadget["poa"]],
            ["gadget flow is Nash", "yes", gadget["is_nash"]],
            [
                "dynamics from even split",
                "near-optimal",
                gadget["natural_dynamics_bottleneck"],
            ],
            ["random instances: max PoA", "<= 2", float(random_poas.max())],
            ["random instances: mean PoA", "close to 1", float(random_poas.mean())],
        ],
    )
    assert gadget["is_nash"]
    assert gadget["poa"] == pytest.approx(2.0, abs=1e-6)
    assert random_poas.max() <= 2.0 + 1e-6
    # Typical-case near-optimality (the paper's practical claim).
    assert random_poas.mean() < 1.2
