"""Figure 13: Incast — MPTCP's multiple subflows hurt at the edge.

Paper setup: a client requests a 10 MB file striped across N servers that
respond simultaneously; effective throughput at the client is measured for
fan-in 1..63, for minRTO ∈ {200 ms (Linux default), 1 ms (Vasudevan et
al.)} and MTU ∈ {1500 B, 9000 B}.  Paper shape:

* MPTCP degrades badly at high fan-in — under 30% with 1500 B packets and
  just ~5% with jumbo frames at minRTO = 200 ms;
* CONGA+TCP achieves 2–8× MPTCP's throughput in the same settings;
* reducing minRTO to 1 ms mitigates MPTCP's collapse only partially.

This experiment does not stress fabric load balancing (the bottleneck is
the client's access link); the transport is the variable.  In our model the
1500 B / 200 ms configuration survives at the simulated buffer depth (the
collapse threshold shifts with MTU); the jumbo-frame collapse and the
minRTO interplay reproduce clearly.
"""

from pathlib import Path

import pytest
from conftest import report

from repro.apps import IncastClient, mptcp_flow_factory, tcp_flow_factory
from repro.lb import CongaSelector, EcmpSelector
from repro.sim import Simulator
from repro.topology import build_leaf_spine
from repro.transport import TcpParams
from repro.units import megabytes, milliseconds, seconds

pytest.importorskip("yaml", reason="scenario files need PyYAML")
from repro.scenarios import load_scenario  # noqa: E402  (after the gate)

SCENARIO = load_scenario(
    Path(__file__).resolve().parent.parent / "scenarios" / "fig13_incast.yaml"
)
PARAMS = SCENARIO.params
FAN_INS = PARAMS["fan_ins"]


def _one(transport: str, fan_in: int, min_rto_ms: int, mtu: int) -> float:
    sim = Simulator(seed=SCENARIO.template.seed)
    fabric = build_leaf_spine(sim, SCENARIO.template.config)
    if transport == "tcp":
        fabric.finalize(CongaSelector.factory())
    else:
        fabric.finalize(EcmpSelector.factory())
    params = TcpParams(
        min_rto=milliseconds(min_rto_ms),
        initial_rto=milliseconds(max(min_rto_ms, 1)),
        mss=mtu - 40,
    )
    factory = (
        tcp_flow_factory(params)
        if transport == "tcp"
        else mptcp_flow_factory(params)
    )
    servers = [h for h in sorted(fabric.hosts) if h != 0][:fan_in]
    client = IncastClient(
        sim,
        fabric,
        client=0,
        servers=servers,
        flow_factory=factory,
        request_bytes=megabytes(PARAMS["request_mb"]),
        repeats=PARAMS["repeats"],
    )
    client.start()
    sim.run(until=seconds(PARAMS["deadline_s"]))
    if not client.finished:
        return 0.0
    return client.result.throughput_percent(fabric.host(0).nic.rate_bps)


def _run():
    table = {}
    for mtu in PARAMS["mtus"]:
        for min_rto in PARAMS["min_rtos_ms"]:
            for transport in PARAMS["transports"]:
                table[(mtu, min_rto, transport)] = [
                    _one(transport, fan_in, min_rto, mtu) for fan_in in FAN_INS
                ]
    return table


def test_figure13_incast(benchmark):
    table = benchmark.pedantic(_run, rounds=1, iterations=1)
    for mtu in PARAMS["mtus"]:
        report(
            f"Figure 13: Incast effective throughput %, MTU={mtu}",
            ["config"] + [f"N={n}" for n in FAN_INS],
            [
                [f"CONGA+TCP ({rto}ms)"] + table[(mtu, rto, "tcp")]
                for rto in (200, 1)
            ]
            + [
                [f"MPTCP ({rto}ms)"] + table[(mtu, rto, "mptcp")]
                for rto in (200, 1)
            ],
        )
    # Jumbo frames + default minRTO: MPTCP collapses (paper: ~5%), while
    # CONGA+TCP stays high — far beyond the paper's 2-8x claim.
    tcp_9000 = table[(9000, 200, "tcp")]
    mptcp_9000 = table[(9000, 200, "mptcp")]
    assert min(tcp_9000[-2:]) > 80.0
    assert max(mptcp_9000[-2:]) < 30.0
    assert min(tcp_9000[-2:]) > 2.0 * max(mptcp_9000[-2:], default=1.0)
    # 1 ms minRTO mitigates MPTCP's jumbo collapse, but does not fully fix
    # it (CONGA+TCP remains ahead).
    mptcp_9000_fast = table[(9000, 1, "mptcp")]
    assert mptcp_9000_fast[-1] > mptcp_9000[-1]
    assert table[(9000, 1, "tcp")][-1] > mptcp_9000_fast[-1]
    # CONGA+TCP never collapses at any tested configuration.
    for rto in (200, 1):
        for mtu in (1500, 9000):
            assert min(table[(mtu, rto, "tcp")]) > 50.0
