"""Figure 16: multiple link failures in a 288-port fabric.

Paper scenario: 6 leaves × 4 spines, 3×40 Gbps links per leaf-spine pair,
9 randomly chosen links failed, web-search workload at 60% load.  Paper
shape: CONGA balances traffic significantly better than ECMP everywhere,
and the improvement is much larger at the (remote) spine downlinks, because
ECMP spreads load equally on the local leaf uplinks but cannot react to the
downstream asymmetry — queues there are ~10× larger with ECMP.

Scaled: same 6×4 fabric with 3 links per pair (72 fabric links) at 5 Gbps,
4 hosts per leaf, the same 9 random failures for both schemes — injected
declaratively through the fault plane (``RandomLinkDowns`` at t=0, drawn
from the spec seed's named RNG stream, identical for every scheme).
"""

import numpy as np
from conftest import report

from repro.apps import ExperimentSpec, QueueMonitorSpec
from repro.faults import RandomLinkDowns
from repro.runner import run_sweep, sweep_grid
from repro.topology import scaled_testbed

FABRIC_6X4 = scaled_testbed(
    hosts_per_leaf=4,
    num_leaves=6,
    num_spines=4,
    links_per_pair=3,
    host_gbps=10.0,
    fabric_gbps=5.0,
)

TEMPLATE = ExperimentSpec(
    scheme="ecmp",
    workload="web-search",
    load=0.6,
    seed=77,
    num_flows=400,
    size_scale=0.1,
    config=FABRIC_6X4,
    faults=(RandomLinkDowns(time=0, count=9),),
    queue_monitor=QueueMonitorSpec(tier="fabric", direction="both"),
)


def _classify(queue_series):
    """Split the monitored (surviving) fabric ports into the paper's views."""
    leaf_up = [n for n in queue_series.port_names if ".up" in n]
    spine_down = [n for n in queue_series.port_names if n.startswith("spine")]
    return leaf_up, spine_down


def _run():
    sweep = run_sweep(sweep_grid(TEMPLATE, schemes=["ecmp", "conga"]), cache=None)
    results = {}
    for point in sweep:
        leaf_up, spine_down = _classify(point.queue_series)
        results[point.scheme] = {
            "completed": point.completed,
            "arrivals": point.arrivals,
            "mean_fct": point.summary.mean_normalized,
            "leaf_uplink_avg_q": [
                point.queue_series.mean(name) for name in leaf_up
            ],
            "spine_downlink_avg_q": [
                point.queue_series.mean(name) for name in spine_down
            ],
        }
    return results


def test_figure16_multiple_failures(benchmark):
    results = benchmark.pedantic(_run, rounds=1, iterations=1)
    rows = []
    for scheme, data in results.items():
        rows.append(
            [
                scheme,
                data["mean_fct"],
                float(np.mean(data["leaf_uplink_avg_q"])) / 1e3,
                float(np.mean(data["spine_downlink_avg_q"])) / 1e3,
                float(np.max(data["spine_downlink_avg_q"])) / 1e3,
            ]
        )
    report(
        "Figure 16: 6x4 fabric, 9 failed links, web-search @60% "
        "(time-averaged queues)",
        [
            "scheme",
            "avg FCT (norm)",
            "avg leaf-up queue (KB)",
            "avg spine-down queue (KB)",
            "worst spine-down queue (KB)",
        ],
        rows,
    )
    for data in results.values():
        assert data["completed"] == data["arrivals"]
    # CONGA balances substantially better overall (paper: "significantly
    # better than ECMP"): FCT improves by a large factor ...
    assert results["conga"]["mean_fct"] < 0.75 * results["ecmp"]["mean_fct"]
    # ... and total fabric queueing (leaf uplinks + spine downlinks) drops.
    def total_queue(data):
        return np.mean(data["leaf_uplink_avg_q"] + data["spine_downlink_avg_q"])

    assert total_queue(results["conga"]) < 0.85 * total_queue(results["ecmp"])
    # The leaf-uplink story matches the paper exactly: ECMP "spreads load
    # equally on the leaf uplinks" but cannot adapt, so its uplink queues
    # run much deeper than CONGA's.
    assert (
        np.mean(results["conga"]["leaf_uplink_avg_q"])
        < 0.75 * np.mean(results["ecmp"]["leaf_uplink_avg_q"])
    )
