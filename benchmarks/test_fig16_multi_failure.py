"""Figure 16: multiple link failures in a 288-port fabric.

Paper scenario: 6 leaves × 4 spines, 3×40 Gbps links per leaf-spine pair,
9 randomly chosen links failed, web-search workload at 60% load.  Paper
shape: CONGA balances traffic significantly better than ECMP everywhere,
and the improvement is much larger at the (remote) spine downlinks, because
ECMP spreads load equally on the local leaf uplinks but cannot react to the
downstream asymmetry — queues there are ~10× larger with ECMP.

Scaled: same 6×4 fabric with 3 links per pair (72 fabric links) at 5 Gbps,
4 hosts per leaf, the same 9 random failures for both schemes.
"""

import numpy as np
from conftest import report

from repro.analysis import QueueMonitor
from repro.apps import get_scheme
from repro.apps.traffic import CrossRackTraffic
from repro.sim import Simulator
from repro.topology import build_leaf_spine, fail_random_links, scaled_testbed
from repro.transport import TcpParams
from repro.units import seconds
from repro.workloads import WEB_SEARCH


def _run_scheme(scheme: str):
    sim = Simulator(seed=77)
    config = scaled_testbed(
        hosts_per_leaf=4,
        num_leaves=6,
        num_spines=4,
        links_per_pair=3,
        host_gbps=10.0,
        fabric_gbps=5.0,
    )
    fabric = build_leaf_spine(sim, config)
    spec = get_scheme(scheme)
    fabric.finalize(spec.make_selector())
    fail_random_links(fabric, 9)
    monitor = QueueMonitor(sim, list(fabric.fabric_ports()))
    monitor.start()
    traffic = CrossRackTraffic(
        sim,
        fabric,
        WEB_SEARCH,
        0.6,
        flow_factory=spec.make_flow_factory(TcpParams()),
        num_flows=400,
        size_scale=0.1,
        on_all_done=sim.stop,
    )
    traffic.start()
    sim.run(until=seconds(20))
    monitor.stop()
    leaf_uplink_avg = [
        monitor.mean(port) for port in fabric.leaf_uplink_ports()
    ]
    spine_downlink_avg = [
        monitor.mean(port) for port in fabric.spine_ports()
    ]
    return {
        "completed": traffic.stats.completed,
        "arrivals": traffic.stats.arrivals,
        "mean_fct": float(
            np.mean([r.normalized_fct for r in traffic.stats.records])
        ),
        "leaf_uplink_avg_q": leaf_uplink_avg,
        "spine_downlink_avg_q": spine_downlink_avg,
    }


def _run():
    return {scheme: _run_scheme(scheme) for scheme in ("ecmp", "conga")}


def test_figure16_multiple_failures(benchmark):
    results = benchmark.pedantic(_run, rounds=1, iterations=1)
    rows = []
    for scheme, data in results.items():
        rows.append(
            [
                scheme,
                data["mean_fct"],
                float(np.mean(data["leaf_uplink_avg_q"])) / 1e3,
                float(np.mean(data["spine_downlink_avg_q"])) / 1e3,
                float(np.max(data["spine_downlink_avg_q"])) / 1e3,
            ]
        )
    report(
        "Figure 16: 6x4 fabric, 9 failed links, web-search @60% "
        "(time-averaged queues)",
        [
            "scheme",
            "avg FCT (norm)",
            "avg leaf-up queue (KB)",
            "avg spine-down queue (KB)",
            "worst spine-down queue (KB)",
        ],
        rows,
    )
    for data in results.values():
        assert data["completed"] == data["arrivals"]
    # CONGA balances substantially better overall (paper: "significantly
    # better than ECMP"): FCT improves by a large factor ...
    assert results["conga"]["mean_fct"] < 0.75 * results["ecmp"]["mean_fct"]
    # ... and total fabric queueing (leaf uplinks + spine downlinks) drops.
    def total_queue(data):
        return np.mean(data["leaf_uplink_avg_q"] + data["spine_downlink_avg_q"])

    assert total_queue(results["conga"]) < 0.85 * total_queue(results["ecmp"])
    # The leaf-uplink story matches the paper exactly: ECMP "spreads load
    # equally on the leaf uplinks" but cannot adapt, so its uplink queues
    # run much deeper than CONGA's.
    assert (
        np.mean(results["conga"]["leaf_uplink_avg_q"])
        < 0.75 * np.mean(results["ecmp"]["leaf_uplink_avg_q"])
    )
