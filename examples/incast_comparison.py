#!/usr/bin/env python3
"""Incast: why putting load balancing in the transport backfires (§5.3).

Recreates the paper's Figure 13 micro-benchmark at a few fan-in levels: a
client requests a 10 MB file striped across N servers that all answer at
once.  CONGA+TCP keeps the client's access link busy; MPTCP's 8 subflows
per response multiply the contending windows at the edge and collapse under
jumbo frames with the default 200 ms minRTO.

Run:  python examples/incast_comparison.py
"""

from repro.apps import IncastClient, mptcp_flow_factory, tcp_flow_factory
from repro.lb import CongaSelector, EcmpSelector
from repro.sim import Simulator
from repro.topology import build_leaf_spine, scaled_testbed
from repro.transport import TcpParams
from repro.units import megabytes, milliseconds, seconds

FAN_INS = [1, 7, 15, 31]


def run_incast(transport: str, fan_in: int, mtu: int) -> float:
    """Effective client throughput (percent of line rate) for one config."""
    sim = Simulator(seed=1)
    fabric = build_leaf_spine(
        sim, scaled_testbed(hosts_per_leaf=16, host_queue_bytes=8_000_000)
    )
    selector = CongaSelector if transport == "tcp" else EcmpSelector
    fabric.finalize(selector.factory())
    params = TcpParams(
        min_rto=milliseconds(200), initial_rto=milliseconds(200), mss=mtu - 40
    )
    factory = (
        tcp_flow_factory(params)
        if transport == "tcp"
        else mptcp_flow_factory(params)
    )
    servers = [h for h in sorted(fabric.hosts) if h != 0][:fan_in]
    client = IncastClient(
        sim,
        fabric,
        client=0,
        servers=servers,
        flow_factory=factory,
        request_bytes=megabytes(10),
        repeats=3,
    )
    client.start()
    sim.run(until=seconds(60))
    if not client.finished:
        return 0.0
    return client.result.throughput_percent(fabric.host(0).nic.rate_bps)


def main() -> None:
    for mtu in (1500, 9000):
        print(f"\nIncast effective throughput, MTU {mtu}, minRTO 200 ms:")
        header = "  ".join(f"N={n:<3d}" for n in FAN_INS)
        print(f"  {'transport':12s} {header}")
        for transport, label in (("tcp", "CONGA+TCP"), ("mptcp", "MPTCP")):
            values = [run_incast(transport, n, mtu) for n in FAN_INS]
            cells = "  ".join(f"{v:4.0f}%" for v in values)
            print(f"  {label:12s} {cells}")


if __name__ == "__main__":
    main()
