#!/usr/bin/env python3
"""Link failure: how each scheme copes with an asymmetric fabric.

Recreates the paper's Figure 7(b)/Figure 11 scenario: one of the two links
between Leaf 1 and Spine 1 fails, leaving 75% of the bisection toward
Leaf 1.  A data-mining workload is pushed from Leaf 0 to Leaf 1 at 60% load
under ECMP, CONGA-Flow, CONGA, and MPTCP, and the example reports average
flow completion times plus the queue at the degraded [Spine1→Leaf1] link.

It also reruns the Figure 2 fluid analysis to show *why* local schemes
cannot handle this: with asymmetry, ECMP strands capacity, a local
congestion-aware scheme is even worse, and only global awareness (CONGA)
delivers the full demand.

Run:  python examples/link_failure_failover.py
"""

import numpy as np

from repro.apps import ExperimentSpec, QueueMonitorSpec
from repro.fluid import (
    conga_split,
    ecmp_split,
    figure2_demand,
    figure2_network,
    local_aware_split,
)
from repro.runner import run_sweep, sweep_grid

SCHEMES = ["ecmp", "conga-flow", "conga", "mptcp"]


def fluid_analysis() -> None:
    print("Figure 2 fluid analysis (100 Gbps demand, one half-rate path):")
    network, demand = figure2_network(), figure2_demand()
    for name, allocator in (
        ("ECMP (static)", ecmp_split),
        ("local congestion-aware", local_aware_split),
        ("CONGA (global)", conga_split),
    ):
        allocation = allocator(network, demand)
        print(f"  {name:24s} delivers {allocation.total_throughput():6.1f} Gbps")
    print()


def packet_level_failure() -> None:
    print("Packet-level: data-mining @60% load across the degraded fabric")
    print(f"{'scheme':12s} {'avg FCT (norm)':>15s} {'hotspot mean q':>15s}")

    template = ExperimentSpec(
        scheme="ecmp",
        workload="data-mining",
        load=0.6,
        num_flows=150,
        size_scale=0.05,
        seed=7,
        clients=range(8, 16),  # load the leaf0 -> leaf1 direction
        failed_links=[(1, 1, 0)],
        # Sample the queue at the surviving Spine1->Leaf1 downlink.
        queue_monitor=QueueMonitorSpec(
            tier="spine", direction="down", spine=1, leaf=1
        ),
    )
    sweep = run_sweep(sweep_grid(template, schemes=SCHEMES), cache=None)
    for point in sweep:
        hotspot = point.queue_series.port_names[0]
        queue_kb = np.mean(point.queue_series.series(hotspot)) / 1e3
        print(
            f"{point.scheme:12s} {point.summary.mean_normalized:15.1f} "
            f"{queue_kb:12.1f} KB"
        )


def main() -> None:
    fluid_analysis()
    packet_level_failure()


if __name__ == "__main__":
    main()
