#!/usr/bin/env python3
"""Link failure: how each scheme copes with an asymmetric fabric.

Recreates the paper's Figure 7(b)/Figure 11 scenario: one of the two links
between Leaf 1 and Spine 1 fails, leaving 75% of the bisection toward
Leaf 1.  A data-mining workload is pushed from Leaf 0 to Leaf 1 at 60% load
under ECMP, CONGA-Flow, CONGA, and MPTCP, and the example reports average
flow completion times plus the queue at the degraded [Spine1→Leaf1] link.

It also reruns the Figure 2 fluid analysis to show *why* local schemes
cannot handle this: with asymmetry, ECMP strands capacity, a local
congestion-aware scheme is even worse, and only global awareness (CONGA)
delivers the full demand.

Run:  python examples/link_failure_failover.py
"""

import numpy as np

from repro.apps import run_fct_experiment
from repro.fluid import (
    conga_split,
    ecmp_split,
    figure2_demand,
    figure2_network,
    local_aware_split,
)
from repro.workloads import DATA_MINING

SCHEMES = ["ecmp", "conga-flow", "conga", "mptcp"]


def fluid_analysis() -> None:
    print("Figure 2 fluid analysis (100 Gbps demand, one half-rate path):")
    network, demand = figure2_network(), figure2_demand()
    for name, allocator in (
        ("ECMP (static)", ecmp_split),
        ("local congestion-aware", local_aware_split),
        ("CONGA (global)", conga_split),
    ):
        allocation = allocator(network, demand)
        print(f"  {name:24s} delivers {allocation.total_throughput():6.1f} Gbps")
    print()


def packet_level_failure() -> None:
    print("Packet-level: data-mining @60% load across the degraded fabric")
    print(f"{'scheme':12s} {'avg FCT (norm)':>15s} {'hotspot mean q':>15s}")

    def hotspot_ports(fabric):
        spine1 = fabric.spines[1]
        return [spine1.ports[i] for i in spine1.ports_to_leaf(1)]

    for scheme in SCHEMES:
        result = run_fct_experiment(
            scheme,
            DATA_MINING,
            0.6,
            num_flows=150,
            size_scale=0.05,
            seed=7,
            clients=list(range(8, 16)),  # load the leaf0 -> leaf1 direction
            failed_links=[(1, 1, 0)],
            monitor_queue_ports=hotspot_ports,
        )
        port = hotspot_ports(result.fabric)[0]
        queue_kb = np.mean(result.queues.series(port)) / 1e3
        print(
            f"{scheme:12s} {result.summary.mean_normalized:15.1f} "
            f"{queue_kb:12.1f} KB"
        )


def main() -> None:
    fluid_analysis()
    packet_level_failure()


if __name__ == "__main__":
    main()
