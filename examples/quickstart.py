#!/usr/bin/env python3
"""Quickstart: build a Leaf-Spine fabric, run CONGA, inspect its state.

Builds a scaled version of the paper's testbed (Figure 7a), runs a handful
of TCP transfers across the fabric under CONGA, and prints flow completion
times along with the CONGA machinery's internal state: per-uplink DRE
metrics, the Congestion-To-Leaf table, and flowlet statistics.

Run:  python examples/quickstart.py
"""

from repro.lb import CongaSelector
from repro.sim import Simulator, run_until_idle
from repro.topology import build_leaf_spine, scaled_testbed
from repro.transport import TcpFlow
from repro.units import megabytes, to_microseconds


def main() -> None:
    sim = Simulator(seed=42)

    # A 2-leaf / 2-spine fabric, 8 hosts per leaf, 2:1 oversubscription —
    # the shape of the paper's 64-server testbed, scaled down.
    config = scaled_testbed(hosts_per_leaf=8)
    fabric = build_leaf_spine(sim, config)
    fabric.finalize(CongaSelector.factory())
    print(f"fabric: {len(fabric.leaves)} leaves x {len(fabric.spines)} spines, "
          f"{len(fabric.hosts)} hosts, "
          f"{config.uplinks_per_leaf} uplinks/leaf, "
          f"{config.oversubscription:g}:1 oversubscribed")

    # Start cross-rack transfers: hosts 0..3 (leaf 0) -> hosts 8..11 (leaf 1),
    # staggered by 200 us so the DREs see earlier flows when placing later
    # ones (simultaneous starts would be blind ties).
    flows = []
    for i in range(4):
        flow = TcpFlow(sim, fabric.host(i), fabric.host(8 + i), megabytes(5))
        sim.schedule(i * 200_000, flow.start)
        flows.append(flow)

    run_until_idle(sim)

    print("\nflow completion times:")
    for flow in flows:
        ideal = fabric.ideal_fct(flow.sender.src, flow.sender.dst, flow.size)
        print(f"  flow {flow.flow_id}: {to_microseconds(flow.fct):8.1f} us "
              f"(ideal {to_microseconds(ideal):8.1f} us, "
              f"normalized {flow.fct / ideal:.2f})")

    leaf0 = fabric.leaves[0]
    print("\nCONGA state at leaf 0:")
    print(f"  local DRE metrics per uplink: "
          f"{[dre.metric() for dre in leaf0.uplink_dres]}")
    print(f"  Congestion-To-Leaf[leaf 1]:   "
          f"{leaf0.to_leaf_table.metrics_toward(1)}")
    selector = leaf0.selector
    print(f"  flowlet decisions made:       {selector.decisions}")
    print(f"  feedback packets received:    {leaf0.tep.feedback_received}")

    print("\nper-uplink bytes at leaf 0 (the load CONGA balanced):")
    for index, port in enumerate(leaf0.uplinks):
        spine = leaf0.uplink_spine[index].name
        print(f"  uplink {index} -> {spine}: {port.tx_bytes / 1e6:7.2f} MB")


if __name__ == "__main__":
    main()
