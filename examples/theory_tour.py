#!/usr/bin/env python3
"""Tour of the paper's analytical results (§6).

Walks through both theorems with the library's game-theoretic and
stochastic machinery:

* Theorem 1 — the Price of Anarchy of CONGA's bottleneck routing game:
  evaluates the worst-case gadget (PoA exactly 2) and shows that
  best-response dynamics from CONGA's natural starting point land at the
  good equilibrium;
* Theorem 2 — traffic imbalance under randomized per-flow balancing:
  shows the 1/sqrt(t) decay, the coefficient-of-variation effect that
  separates the enterprise and data-mining workloads, and the gain from
  flowlet-sized pieces.

Run:  python examples/theory_tour.py
"""

from repro.analysis import print_table
from repro.theory import (
    figure17_gadget,
    flowlet_split_sampler,
    sampler_from_distribution,
    simulate_imbalance,
)
from repro.workloads import DATA_MINING, WEB_SEARCH


def theorem1() -> None:
    game, nash = figure17_gadget()
    natural = game.best_response_dynamics()
    print_table(
        "Theorem 1: Price of Anarchy (3x3 worst-case gadget)",
        ["quantity", "value"],
        [
            ["network bottleneck at the locked Nash", game.network_bottleneck(nash)],
            ["optimal network bottleneck", game.optimal_bottleneck()],
            ["Price of Anarchy", game.price_of_anarchy(nash)],
            ["locked flow is a Nash equilibrium", game.is_nash(nash)],
            ["bottleneck reached from even-split start", game.network_bottleneck(natural)],
        ],
    )


def theorem2() -> None:
    rows = []
    for dist in (WEB_SEARCH, DATA_MINING):
        estimate = simulate_imbalance(
            arrival_rate=400.0,
            num_links=4,
            mean_size=dist.mean(),
            cov=dist.coefficient_of_variation(),
            t=30.0,
            sampler=sampler_from_distribution(dist),
            trials=80,
            seed=1,
        )
        rows.append(
            [dist.name, f"{dist.coefficient_of_variation():.2f}",
             estimate.mean_imbalance, estimate.bound]
        )
    print_table(
        "Theorem 2: E[chi(t=30)] by workload heaviness",
        ["workload", "CoV", "measured", "bound"],
        rows,
    )

    base = sampler_from_distribution(DATA_MINING)
    rows = []
    for label, sampler in (
        ("per-flow", base),
        ("flowlets <= 500KB", flowlet_split_sampler(base, 500_000.0)),
    ):
        estimate = simulate_imbalance(
            arrival_rate=200.0,
            num_links=4,
            mean_size=DATA_MINING.mean(),
            cov=DATA_MINING.coefficient_of_variation(),
            t=30.0,
            sampler=sampler,
            trials=60,
            seed=2,
        )
        rows.append([label, estimate.mean_imbalance])
    print_table(
        "Theorem 2: what flowlet-sized pieces buy (data-mining)",
        ["granularity", "E[chi]"],
        rows,
    )


def main() -> None:
    theorem1()
    theorem2()


if __name__ == "__main__":
    main()
