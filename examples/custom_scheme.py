#!/usr/bin/env python3
"""Extending the library: plug in your own load balancing scheme.

Every scheme in this repository is an ``UplinkSelector`` — the single
decision point Figure 1's design tree varies.  This example implements a
custom selector ("least-queued": pick the uplink with the shortest local
egress queue, a common industrial heuristic) and races it against ECMP and
CONGA on the same workload and fabric.

It demonstrates exactly the pitfall §2.4 warns about: a purely local
heuristic can do well in symmetric fabrics yet has no way to see a
downstream bottleneck, while CONGA's leaf-to-leaf feedback handles both.

Run:  python examples/custom_scheme.py
"""

from repro.apps import ExperimentSpec, SchemeSpec, register_scheme
from repro.apps.traffic import tcp_flow_factory
from repro.lb.base import UplinkSelector
from repro.net.packet import Packet


class LeastQueuedSelector(UplinkSelector):
    """Send each packet to the uplink with the least-filled egress queue."""

    name = "least-queued"

    def choose_uplink(
        self, packet: Packet, dst_leaf: int, candidates: list[int]
    ) -> int:
        return min(
            candidates,
            key=lambda index: self.leaf.uplinks[index].queue.byte_occupancy,
        )


def main() -> None:
    # Register the custom scheme alongside the built-ins; after this,
    # "least-queued" works anywhere a scheme name does (ExperimentSpec,
    # the CLI, compare_schemes).
    register_scheme(
        SchemeSpec(
            "least-queued",
            make_selector=lambda: LeastQueuedSelector,
            make_flow_factory=tcp_flow_factory,
        )
    )

    base = ExperimentSpec(
        scheme="ecmp",
        workload="data-mining",
        load=0.6,
        num_flows=150,
        size_scale=0.05,
        seed=7,
    )
    for failed, label in (([], "symmetric fabric"), ([(1, 1, 0)], "with a failed link")):
        print(f"\ndata-mining workload @60% load, {label}:")
        for scheme in ("ecmp", "least-queued", "conga"):
            # Dynamically registered schemes only exist in this process,
            # so run the spec inline rather than through a worker pool.
            point = base.with_(
                scheme=scheme,
                clients=range(8, 16) if failed else None,
                failed_links=failed,
            ).run()
            print(
                f"  {scheme:14s} mean FCT (normalized): "
                f"{point.summary.mean_normalized:6.1f}"
            )


if __name__ == "__main__":
    main()
