"""Tests for traffic generation, Incast, HDFS apps, and the harness."""

import pytest

from repro.apps import (
    CrossRackTraffic,
    HdfsWriteJob,
    IncastClient,
    SCHEMES,
    compare_schemes,
    execute_experiment,
    get_scheme,
    tcp_flow_factory,
    mptcp_flow_factory,
)
from repro.lb import CongaSelector, EcmpSelector
from repro.sim import Simulator, run_until_idle
from repro.topology import build_leaf_spine, scaled_testbed
from repro.transport import TcpParams
from repro.units import megabytes, milliseconds, seconds
from repro.workloads import ENTERPRISE, WEB_SEARCH


def _fabric(seed=1, hosts_per_leaf=4, selector=None, **cfg):
    sim = Simulator(seed=seed)
    fabric = build_leaf_spine(sim, scaled_testbed(hosts_per_leaf=hosts_per_leaf, **cfg))
    fabric.finalize(selector or EcmpSelector.factory())
    return sim, fabric


class TestCrossRackTraffic:
    def _traffic(self, sim, fabric, load=0.3, num_flows=30, **kwargs):
        return CrossRackTraffic(
            sim,
            fabric,
            WEB_SEARCH,
            load,
            flow_factory=tcp_flow_factory(),
            num_flows=num_flows,
            size_scale=0.02,
            **kwargs,
        )

    def test_generates_requested_flow_count(self):
        sim, fabric = _fabric()
        traffic = self._traffic(sim, fabric)
        traffic.start()
        sim.run(until=seconds(10))
        assert traffic.stats.arrivals == 30
        assert traffic.stats.completed == 30
        assert traffic.finished

    def test_all_flows_cross_racks(self):
        sim, fabric = _fabric()
        traffic = self._traffic(sim, fabric)
        traffic.start()
        sim.run(until=seconds(10))
        for record in traffic.stats.records:
            assert fabric.leaf_of(record.src) != fabric.leaf_of(record.dst)

    def test_records_have_ideal_fct(self):
        sim, fabric = _fabric()
        traffic = self._traffic(sim, fabric)
        traffic.start()
        sim.run(until=seconds(10))
        for record in traffic.stats.records:
            assert record.ideal_fct > 0
            assert record.fct >= 0
            assert record.normalized_fct >= 0.5

    def test_on_all_done_fires(self):
        sim, fabric = _fabric()
        done = []
        traffic = self._traffic(sim, fabric, on_all_done=lambda: done.append(sim.now))
        traffic.start()
        sim.run(until=seconds(10))
        assert len(done) == 1

    def test_higher_load_means_faster_arrivals(self):
        sim1, fabric1 = _fabric()
        low = self._traffic(sim1, fabric1, load=0.1)
        low.start()
        sim1.run(until=seconds(30))
        sim2, fabric2 = _fabric()
        high = self._traffic(sim2, fabric2, load=0.9)
        high.start()
        sim2.run(until=seconds(30))
        low_span = max(r.start_time for r in low.stats.records)
        high_span = max(r.start_time for r in high.stats.records)
        assert high_span < low_span

    def test_validation(self):
        sim, fabric = _fabric()
        with pytest.raises(ValueError):
            CrossRackTraffic(
                sim, fabric, WEB_SEARCH, 0.0,
                flow_factory=tcp_flow_factory(), num_flows=10,
            )
        with pytest.raises(ValueError):
            CrossRackTraffic(
                sim, fabric, WEB_SEARCH, 0.5,
                flow_factory=tcp_flow_factory(), num_flows=0,
            )

    def test_mptcp_factory_works(self):
        sim, fabric = _fabric()
        traffic = CrossRackTraffic(
            sim, fabric, WEB_SEARCH, 0.3,
            flow_factory=mptcp_flow_factory(subflows=2),
            num_flows=5, size_scale=0.02,
        )
        traffic.start()
        sim.run(until=seconds(10))
        assert traffic.stats.completed == 5


class TestIncast:
    def test_request_completes_and_measures(self):
        sim, fabric = _fabric(hosts_per_leaf=8)
        servers = [h for h in sorted(fabric.hosts) if h != 0][:10]
        client = IncastClient(
            sim, fabric, client=0, servers=servers,
            flow_factory=tcp_flow_factory(),
            request_bytes=megabytes(1), repeats=3,
        )
        client.start()
        run_until_idle(sim)
        assert client.finished
        assert len(client.result.request_durations) == 3

    def test_effective_throughput_bounded_by_line_rate(self):
        sim, fabric = _fabric(hosts_per_leaf=8)
        servers = [h for h in sorted(fabric.hosts) if h != 0][:8]
        client = IncastClient(
            sim, fabric, client=0, servers=servers,
            flow_factory=tcp_flow_factory(),
            request_bytes=megabytes(1), repeats=2,
        )
        client.start()
        run_until_idle(sim)
        line_rate = fabric.host(0).nic.rate_bps
        percent = client.result.throughput_percent(line_rate)
        assert 0 < percent <= 100.5

    def test_stripes_sum_to_request(self):
        sim, fabric = _fabric(hosts_per_leaf=8)
        servers = [1, 2, 3]
        received = []
        factory = tcp_flow_factory()

        def counting_factory(src, dst, size, done):
            received.append(size)
            return factory(src, dst, size, done)

        client = IncastClient(
            sim, fabric, client=0, servers=servers,
            flow_factory=counting_factory,
            request_bytes=900_000, repeats=1,
        )
        client.start()
        run_until_idle(sim)
        assert received == [300_000] * 3

    def test_validation(self):
        sim, fabric = _fabric()
        with pytest.raises(ValueError):
            IncastClient(
                sim, fabric, client=0, servers=[],
                flow_factory=tcp_flow_factory(),
            )
        with pytest.raises(ValueError):
            IncastClient(
                sim, fabric, client=0, servers=[0, 1],
                flow_factory=tcp_flow_factory(),
            )


class TestHdfs:
    def test_job_completes(self):
        sim, fabric = _fabric(hosts_per_leaf=4)
        job = HdfsWriteJob(
            sim, fabric, flow_factory=tcp_flow_factory(),
            block_bytes=200_000, blocks_per_writer=1,
        )
        job.start()
        run_until_idle(sim)
        assert job.finished
        assert job.result.completion_time > 0
        assert job.result.blocks == 8

    def test_replication_traffic_pattern(self):
        """Each block creates one cross-rack and one intra-rack transfer."""
        sim, fabric = _fabric(hosts_per_leaf=4)
        transfers = []
        factory = tcp_flow_factory()

        def recording_factory(src, dst, size, done):
            transfers.append((src.host_id, dst.host_id))
            return factory(src, dst, size, done)

        job = HdfsWriteJob(
            sim, fabric, flow_factory=recording_factory, block_bytes=100_000
        )
        job.start()
        run_until_idle(sim)
        assert len(transfers) == 16  # 8 writers x 2 transfers
        cross = sum(
            1 for s, d in transfers if fabric.leaf_of(s) != fabric.leaf_of(d)
        )
        assert cross >= 8  # writer->replica1 is always off-rack

    def test_needs_two_racks(self):
        sim = Simulator()
        fabric = build_leaf_spine(
            sim, scaled_testbed(hosts_per_leaf=2, num_leaves=1)
        )
        fabric.finalize(EcmpSelector.factory())
        with pytest.raises(ValueError):
            HdfsWriteJob(sim, fabric, flow_factory=tcp_flow_factory())


class TestExperimentHarness:
    def test_all_schemes_registered(self):
        # Built-in schemes (experiments may register more dynamically).
        assert {
            "ecmp", "conga", "conga-flow", "mptcp", "local", "spray", "hedera"
        } <= set(SCHEMES)

    def test_unknown_scheme_rejected(self):
        with pytest.raises(ValueError):
            get_scheme("bogus")

    def test_runs_and_summarizes(self):
        result = execute_experiment(
            get_scheme("conga"), WEB_SEARCH, 0.4,
            num_flows=40, size_scale=0.02, seed=2,
        )
        assert result.completed == 40
        assert result.unfinished == 0
        assert result.summary.count == 40
        assert result.summary.mean_normalized >= 1.0 or result.summary.mean_normalized > 0

    def test_failed_links_passed_through(self):
        result = execute_experiment(
            get_scheme("conga"), WEB_SEARCH, 0.3, num_flows=20,
            size_scale=0.02, failed_links=[(1, 1, 0)], seed=2,
        )
        failed = result.fabric.uplink_ports(1, 1)[0]
        assert not failed.up
        assert result.completed == 20

    def test_monitors_attached(self):
        from repro.units import microseconds

        result = execute_experiment(
            get_scheme("ecmp"), WEB_SEARCH, 0.5,
            num_flows=40, size_scale=0.02, seed=2,
            monitor_imbalance_leaf=0,
            imbalance_interval=microseconds(50),
            monitor_queue_ports=lambda fabric: [fabric.spines[0].ports[0]],
        )
        assert result.imbalance is not None
        assert len(result.imbalance.samples) > 0
        assert result.queues is not None

    def test_compare_schemes_shares_scenario(self):
        results = compare_schemes(
            ["ecmp", "conga"], WEB_SEARCH, 0.4,
            num_flows=30, size_scale=0.02, seed=4,
        )
        assert set(results) == {"ecmp", "conga"}
        sizes_e = [r.size for r in results["ecmp"].records]
        sizes_c = [r.size for r in results["conga"].records]
        assert sorted(sizes_e) == sorted(sizes_c)  # same sampled workload

    def test_deterministic_given_seed(self):
        a = execute_experiment(
            get_scheme("conga"), WEB_SEARCH, 0.5,
            num_flows=30, size_scale=0.02, seed=9,
        )
        b = execute_experiment(
            get_scheme("conga"), WEB_SEARCH, 0.5,
            num_flows=30, size_scale=0.02, seed=9,
        )
        assert [r.fct for r in a.records] == [r.fct for r in b.records]
