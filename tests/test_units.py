"""Tests for unit conversions and clock conventions."""

import pytest
from hypothesis import given, strategies as st

from repro import units


class TestTimeConversions:
    def test_second_constant(self):
        assert units.SECOND == 1_000_000_000

    def test_microseconds(self):
        assert units.microseconds(1) == 1_000
        assert units.microseconds(160) == 160_000

    def test_milliseconds(self):
        assert units.milliseconds(200) == 200_000_000

    def test_seconds(self):
        assert units.seconds(1.5) == 1_500_000_000

    def test_fractional_rounding(self):
        assert units.microseconds(0.5) == 500
        assert units.nanoseconds(1.4) == 1

    def test_roundtrip(self):
        assert units.to_seconds(units.seconds(2.5)) == pytest.approx(2.5)
        assert units.to_microseconds(units.microseconds(37)) == pytest.approx(37)
        assert units.to_milliseconds(units.milliseconds(13)) == pytest.approx(13)


class TestRates:
    def test_gbps(self):
        assert units.gbps(10) == 10_000_000_000
        assert units.gbps(0.5) == 500_000_000

    def test_mbps(self):
        assert units.mbps(100) == 100_000_000

    def test_to_gbps(self):
        assert units.to_gbps(units.gbps(40)) == pytest.approx(40.0)


class TestSizes:
    def test_decimal_sizes(self):
        assert units.kilobytes(100) == 100_000
        assert units.megabytes(10) == 10_000_000
        assert units.gigabytes(1) == 1_000_000_000


class TestTransmissionTime:
    def test_basic(self):
        # 1500 bytes at 10 Gbps = 1.2 us.
        assert units.transmission_time(1500, units.gbps(10)) == 1200

    def test_rounds_up(self):
        # 1 byte at 10 Gbps = 0.8 ns -> 1 tick, never zero.
        assert units.transmission_time(1, units.gbps(10)) == 1

    def test_zero_bytes(self):
        assert units.transmission_time(0, units.gbps(10)) == 0

    def test_rejects_bad_rate(self):
        with pytest.raises(ValueError):
            units.transmission_time(100, 0)
        with pytest.raises(ValueError):
            units.transmission_time(100, -5)

    @given(
        size=st.integers(min_value=0, max_value=10**9),
        rate=st.sampled_from([10**9, 10**10, 4 * 10**10, 10**11]),
    )
    def test_never_underestimates(self, size, rate):
        ticks = units.transmission_time(size, rate)
        assert ticks * rate >= size * 8 * units.SECOND - rate

    @given(
        size=st.integers(min_value=1, max_value=10**8),
        rate=st.sampled_from([10**9, 10**10, 4 * 10**10]),
    )
    def test_monotone_in_size(self, size, rate):
        assert units.transmission_time(size + 1, rate) >= units.transmission_time(
            size, rate
        )


class TestBytesAtRate:
    def test_exact(self):
        # 10 Gbps for 1 us = 1250 bytes.
        assert units.bytes_at_rate(units.gbps(10), units.microseconds(1)) == 1250

    def test_inverse_of_transmission_time(self):
        rate = units.gbps(40)
        size = 9000
        ticks = units.transmission_time(size, rate)
        assert units.bytes_at_rate(rate, ticks) >= size
