"""Golden determinism fixtures for faulted runs (LinkDown/LinkUp mid-run).

Pins the sha256 digests of the complete per-flow FCT records for two
fixed-seed faulted specs:

* ``conga-linkdown-linkup`` — the original 2-tier fixture: CONGA on the
  scaled testbed whose fabric loses a leaf1↔spine1 link mid-run and gets
  it back a millisecond later;
* ``caft-multipod-coredown`` — the 3-tier fixture: CAFT on a 2-pod fabric
  whose spine1↔core0 link goes down mid-run and comes back, exercising
  the core-tier fault targets, the pod-spine fault-aware core LB, and the
  caft selector's liveness weighting under process fan-out.

Two properties are enforced for each:

* the digest is *bit-identical* whether the point runs inline (workers=0)
  or in a worker process pool — fault application rides the deterministic
  event kernel, so process fan-out must not move a single bit;
* the digest matches the pinned fixture, so refactors of the fault plane
  (or the kernel under it) that change faulted behaviour fail loudly.

Regenerate (only when behaviour is changed on purpose)::

    PYTHONPATH=src python tests/test_golden_faults.py --update
"""

import json
import sys
from pathlib import Path

import pytest

from repro.analysis.fct import records_digest
from repro.apps import ExperimentSpec
from repro.faults import LinkDown, LinkUp
from repro.runner import run_sweep
from repro.topology.multipod import MultiPodConfig
from repro.units import microseconds

GOLDEN_PATH = Path(__file__).parent / "golden" / "fault_digests.json"

#: Mid-run down/up bracket: the run ends around 2.3 ms, so the link is gone
#: for the busy middle [0.5 ms, 1.5 ms) — flowlets reroute on the way down
#: AND on the way back up.
FAULTS = (
    LinkDown(time=microseconds(500), leaf=1, spine=1, which=0),
    LinkUp(time=microseconds(1500), leaf=1, spine=1, which=0),
)

#: The 3-tier bracket: pod 0's spine 1 loses its core 0 uplink over the
#: same busy middle, so inter-pod flowlets reroute at both the leaf tier
#: (away from s1) and the pod-spine tier (s1's survivors pile onto c1).
MULTIPOD_FAULTS = (
    LinkDown(time=microseconds(500), spine=1, core=0, which=0),
    LinkUp(time=microseconds(1500), spine=1, core=0, which=0),
)


def golden_spec() -> ExperimentSpec:
    """The frozen faulted 2-tier spec the original digest is computed from."""
    return ExperimentSpec(
        scheme="conga",
        workload="enterprise",
        load=0.6,
        seed=7,
        num_flows=60,
        size_scale=0.05,
        faults=FAULTS,
    )


def multipod_spec() -> ExperimentSpec:
    """The frozen faulted 3-tier spec: caft on the default 2-pod fabric."""
    return ExperimentSpec(
        scheme="caft",
        workload="enterprise",
        load=0.6,
        seed=7,
        num_flows=60,
        size_scale=0.05,
        config=MultiPodConfig(),
        faults=MULTIPOD_FAULTS,
    )


#: fixture key -> spec factory; _update() regenerates every entry from this.
GOLDEN_SPECS = {
    "conga-linkdown-linkup": golden_spec,
    "caft-multipod-coredown": multipod_spec,
}


def compute_entry(spec: ExperimentSpec) -> dict:
    """Run a faulted golden spec inline and summarize it for the fixture."""
    point = spec.run()
    assert point.summary is not None
    return {
        "digest": records_digest(list(point.records)),
        "completed": point.completed,
        "arrivals": point.arrivals,
        "mean_normalized": point.summary.mean_normalized,
        "end_time": point.end_time,
    }


def _load_golden() -> dict:
    if not GOLDEN_PATH.exists():
        pytest.fail(
            f"golden fixture missing at {GOLDEN_PATH}; regenerate with "
            "`PYTHONPATH=src python tests/test_golden_faults.py --update`"
        )
    return json.loads(GOLDEN_PATH.read_text())


@pytest.mark.parametrize("key", sorted(GOLDEN_SPECS))
def test_faulted_run_matches_fixture(key):
    golden_all = _load_golden()
    assert key in golden_all, (
        f"fixture entry {key!r} missing; regenerate with "
        "`PYTHONPATH=src python tests/test_golden_faults.py --update`"
    )
    golden = golden_all[key]
    entry = compute_entry(GOLDEN_SPECS[key]())
    assert entry["completed"] == golden["completed"]
    assert entry["arrivals"] == golden["arrivals"]
    assert entry["end_time"] == golden["end_time"]
    assert entry["mean_normalized"] == golden["mean_normalized"]
    assert entry["digest"] == golden["digest"]


@pytest.mark.parametrize("key", sorted(GOLDEN_SPECS))
def test_faulted_digest_identical_across_worker_counts(key):
    """workers=0 (inline) and workers=2 (process pool) must agree exactly."""
    spec = GOLDEN_SPECS[key]()
    inline = run_sweep([spec], workers=0, cache=None)
    pooled = run_sweep([spec], workers=2, cache=None)
    digest_inline = records_digest(list(inline.points[0].records))
    digest_pooled = records_digest(list(pooled.points[0].records))
    assert digest_inline == digest_pooled
    assert inline.points[0].end_time == pooled.points[0].end_time


def _update() -> None:
    GOLDEN_PATH.parent.mkdir(parents=True, exist_ok=True)
    golden = json.loads(GOLDEN_PATH.read_text()) if GOLDEN_PATH.exists() else {}
    for key, factory in GOLDEN_SPECS.items():
        entry = compute_entry(factory())
        golden[key] = entry
        print(f"{key}: digest {entry['digest'][:16]}  "
              f"{entry['completed']}/{entry['arrivals']} flows, "
              f"end {entry['end_time']} ns")
    GOLDEN_PATH.write_text(json.dumps(golden, indent=2, sort_keys=True) + "\n")
    print(f"wrote {GOLDEN_PATH}")


if __name__ == "__main__":
    if "--update" in sys.argv:
        _update()
    else:
        print(__doc__)
