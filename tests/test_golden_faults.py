"""Golden determinism fixture for a faulted run (LinkDown/LinkUp mid-run).

Pins the sha256 digest of the complete per-flow FCT records for CONGA on a
fixed-seed spec whose fabric loses a leaf1↔spine1 link mid-run and gets it
back a millisecond later.  Two properties are enforced:

* the digest is *bit-identical* whether the point runs inline (workers=0)
  or in a worker process pool — fault application rides the deterministic
  event kernel, so process fan-out must not move a single bit;
* the digest matches the pinned fixture, so refactors of the fault plane
  (or the kernel under it) that change faulted behaviour fail loudly.

Regenerate (only when behaviour is changed on purpose)::

    PYTHONPATH=src python tests/test_golden_faults.py --update
"""

import json
import sys
from pathlib import Path

import pytest

from repro.analysis.fct import records_digest
from repro.apps import ExperimentSpec
from repro.faults import LinkDown, LinkUp
from repro.runner import run_sweep
from repro.units import microseconds

GOLDEN_PATH = Path(__file__).parent / "golden" / "fault_digests.json"

#: Mid-run down/up bracket: the run ends around 2.3 ms, so the link is gone
#: for the busy middle [0.5 ms, 1.5 ms) — flowlets reroute on the way down
#: AND on the way back up.
FAULTS = (
    LinkDown(time=microseconds(500), leaf=1, spine=1, which=0),
    LinkUp(time=microseconds(1500), leaf=1, spine=1, which=0),
)


def golden_spec() -> ExperimentSpec:
    """The frozen faulted spec the golden digest is computed from."""
    return ExperimentSpec(
        scheme="conga",
        workload="enterprise",
        load=0.6,
        seed=7,
        num_flows=60,
        size_scale=0.05,
        faults=FAULTS,
    )


def compute_entry() -> dict:
    """Run the faulted golden spec inline and summarize it for the fixture."""
    point = golden_spec().run()
    assert point.summary is not None
    return {
        "digest": records_digest(list(point.records)),
        "completed": point.completed,
        "arrivals": point.arrivals,
        "mean_normalized": point.summary.mean_normalized,
        "end_time": point.end_time,
    }


def _load_golden() -> dict:
    if not GOLDEN_PATH.exists():
        pytest.fail(
            f"golden fixture missing at {GOLDEN_PATH}; regenerate with "
            "`PYTHONPATH=src python tests/test_golden_faults.py --update`"
        )
    return json.loads(GOLDEN_PATH.read_text())


def test_faulted_run_matches_fixture():
    golden = _load_golden()["conga-linkdown-linkup"]
    entry = compute_entry()
    assert entry["completed"] == golden["completed"]
    assert entry["arrivals"] == golden["arrivals"]
    assert entry["end_time"] == golden["end_time"]
    assert entry["mean_normalized"] == golden["mean_normalized"]
    assert entry["digest"] == golden["digest"]


def test_faulted_digest_identical_across_worker_counts():
    """workers=0 (inline) and workers=2 (process pool) must agree exactly."""
    spec = golden_spec()
    inline = run_sweep([spec], workers=0, cache=None)
    pooled = run_sweep([spec], workers=2, cache=None)
    digest_inline = records_digest(list(inline.points[0].records))
    digest_pooled = records_digest(list(pooled.points[0].records))
    assert digest_inline == digest_pooled
    assert inline.points[0].end_time == pooled.points[0].end_time


def _update() -> None:
    GOLDEN_PATH.parent.mkdir(parents=True, exist_ok=True)
    entry = compute_entry()
    GOLDEN_PATH.write_text(
        json.dumps({"conga-linkdown-linkup": entry}, indent=2, sort_keys=True)
        + "\n"
    )
    print(f"wrote {GOLDEN_PATH}")
    print(f"  digest {entry['digest'][:16]}  "
          f"{entry['completed']}/{entry['arrivals']} flows, "
          f"end {entry['end_time']} ns")


if __name__ == "__main__":
    if "--update" in sys.argv:
        _update()
    else:
        print(__doc__)
