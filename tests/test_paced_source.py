"""Tests for application-paced (bursty) data sources and flowlet creation."""

import pytest

from repro.apps.traffic import bursty_tcp_flow_factory
from repro.lb import CongaSelector
from repro.net import Host, connect
from repro.sim import Simulator, run_until_idle
from repro.topology import build_leaf_spine, scaled_testbed
from repro.transport import PacedSource, TcpFlow, TcpParams
from repro.units import gbps, microseconds, milliseconds


def _two_hosts():
    sim = Simulator(seed=1)
    h1 = Host(sim, 0, gbps(10))
    h2 = Host(sim, 1, gbps(10))
    connect(h1.nic, h2.nic)
    return sim, h1, h2


class TestPacedSource:
    def test_initial_release_is_one_burst(self):
        sim = Simulator()
        source = PacedSource(sim, 1_000_000, burst_bytes=64_000)
        assert source.available() == 64_000
        assert not source.closed()

    def test_small_transfer_released_at_once(self):
        sim = Simulator()
        source = PacedSource(sim, 10_000, burst_bytes=64_000)
        assert source.available() == 10_000
        assert source.closed()

    def test_releases_until_size(self):
        sim = Simulator()
        source = PacedSource(
            sim, 200_000, burst_bytes=64_000, mean_gap=microseconds(100)
        )
        sim.run(until=milliseconds(10))
        assert source.available() == 200_000
        assert source.closed()

    def test_gaps_follow_mean(self):
        sim = Simulator()
        source = PacedSource(
            sim, 10_000_000, burst_bytes=64_000, mean_gap=microseconds(600)
        )
        sim.run(until=milliseconds(5))
        # ~5 ms / 600 us ~ 8 releases of 64 KB on top of the initial one.
        released = source.available()
        assert 4 * 64_000 <= released <= 14 * 64_000

    def test_validation(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            PacedSource(sim, 1000, burst_bytes=0)
        with pytest.raises(ValueError):
            PacedSource(sim, 1000, mean_gap=0)


class TestBurstyTransfer:
    def test_transfer_completes_exactly(self):
        sim, h1, h2 = _two_hosts()
        size = 500_000
        source = PacedSource(
            sim, size, burst_bytes=64_000, mean_gap=microseconds(300)
        )
        flow = TcpFlow(sim, h1, h2, size, source=source)
        flow.start()
        run_until_idle(sim)
        assert flow.finished
        assert flow.receiver.rcv_nxt == size

    def test_sender_wakes_on_release(self):
        """An idle sender must resume when the app releases more data."""
        sim, h1, h2 = _two_hosts()
        source = PacedSource(
            sim, 200_000, burst_bytes=64_000, mean_gap=milliseconds(2)
        )
        flow = TcpFlow(sim, h1, h2, 200_000, source=source)
        flow.start()
        # After 1 ms only the first burst could have been delivered.
        sim.run(until=milliseconds(1))
        assert flow.receiver.rcv_nxt == 64_000
        run_until_idle(sim)
        assert flow.finished

    def test_fct_dominated_by_app_pacing(self):
        sim, h1, h2 = _two_hosts()
        size = 640_000  # 10 bursts
        source = PacedSource(
            sim, size, burst_bytes=64_000, mean_gap=milliseconds(1)
        )
        flow = TcpFlow(sim, h1, h2, size, source=source)
        flow.start()
        run_until_idle(sim)
        # 9 gaps of ~1 ms dominate the 0.5 ms wire time.
        assert flow.fct > milliseconds(4)

    def test_bursty_factory_creates_working_flows(self):
        sim = Simulator(seed=3)
        fabric = build_leaf_spine(sim, scaled_testbed(hosts_per_leaf=2))
        fabric.finalize(CongaSelector.factory())
        done = []
        factory = bursty_tcp_flow_factory(TcpParams())
        flow = factory(
            fabric.host(0), fabric.host(2), 400_000, lambda f: done.append(f)
        )
        flow.start()
        run_until_idle(sim)
        assert len(done) == 1

    def test_bursty_flows_generate_multiple_flowlets(self):
        """The point of pacing: gaps beyond T_fl make new flowlets."""
        sim = Simulator(seed=3)
        fabric = build_leaf_spine(sim, scaled_testbed(hosts_per_leaf=2))
        fabric.finalize(CongaSelector.factory())
        source = PacedSource(
            sim, 1_000_000, burst_bytes=64_000, mean_gap=milliseconds(2)
        )
        flow = TcpFlow(sim, fabric.host(0), fabric.host(2), 1_000_000, source=source)
        flow.start()
        run_until_idle(sim)
        selector = fabric.leaves[0].selector
        # Every ~2 ms gap exceeds 2 x T_fl (500 us), so each burst of the
        # forward data path is a fresh flowlet decision.
        assert selector.decisions >= 10
