"""Tests for the Hedera-style centralized scheduler baseline."""

import pytest

from repro.lb import CentralizedScheduler, CentralizedSelector, EcmpSelector
from repro.net import Packet
from repro.sim import Simulator, run_until_idle
from repro.topology import build_leaf_spine, scaled_testbed
from repro.transport import TcpFlow
from repro.units import megabytes, milliseconds, seconds


def _fabric(seed=1, hosts_per_leaf=4):
    sim = Simulator(seed=seed)
    fabric = build_leaf_spine(sim, scaled_testbed(hosts_per_leaf=hosts_per_leaf))
    fabric.finalize(lambda leaf: CentralizedSelector(leaf))
    return sim, fabric


def _packet(sport, src=0, dst=4):
    return Packet(src=src, dst=dst, size=1500, sport=sport, dport=80, flow_id=1)


class TestCentralizedSelector:
    def test_falls_back_to_ecmp_without_pins(self):
        sim, fabric = _fabric()
        selector = fabric.leaves[0].selector
        packet = _packet(7)
        choices = {selector.choose_uplink(packet, 1, [0, 1, 2, 3]) for _ in range(5)}
        assert len(choices) == 1  # stable hash

    def test_honours_pins(self):
        sim, fabric = _fabric()
        selector = fabric.leaves[0].selector
        packet = _packet(7)
        default = selector.choose_uplink(packet, 1, [0, 1, 2, 3])
        pinned = (default + 1) % 4
        selector.pinned[packet.five_tuple] = pinned
        assert selector.choose_uplink(packet, 1, [0, 1, 2, 3]) == pinned

    def test_pin_to_down_uplink_ignored(self):
        sim, fabric = _fabric()
        selector = fabric.leaves[0].selector
        packet = _packet(7)
        selector.pinned[packet.five_tuple] = 3
        choice = selector.choose_uplink(packet, 1, [0, 1, 2])  # 3 not up
        assert choice in (0, 1, 2)

    def test_counts_bytes_per_flow(self):
        sim, fabric = _fabric()
        selector = fabric.leaves[0].selector
        for _ in range(3):
            selector.choose_uplink(_packet(7), 1, [0, 1, 2, 3])
        selector.choose_uplink(_packet(8), 1, [0, 1, 2, 3])
        counters = selector.drain_counters()
        sizes = sorted(size for size, _dst in counters.values())
        assert sizes == [1500, 4500]
        assert selector.drain_counters() == {}  # reset


class TestCentralizedScheduler:
    def test_requires_centralized_selectors(self):
        sim = Simulator()
        fabric = build_leaf_spine(sim, scaled_testbed(hosts_per_leaf=2))
        fabric.finalize(EcmpSelector.factory())
        with pytest.raises(ValueError):
            CentralizedScheduler(sim, fabric)

    def test_validation(self):
        sim, fabric = _fabric()
        with pytest.raises(ValueError):
            CentralizedScheduler(sim, fabric, interval=0)
        with pytest.raises(ValueError):
            CentralizedScheduler(sim, fabric, elephant_fraction=0.0)

    def test_pins_elephants(self):
        sim, fabric = _fabric()
        scheduler = CentralizedScheduler(
            sim, fabric, interval=milliseconds(1)
        )
        flows = [
            TcpFlow(sim, fabric.host(i), fabric.host(4 + i), megabytes(4))
            for i in range(4)
        ]
        for flow in flows:
            flow.start()
        sim.run(until=milliseconds(5))
        assert scheduler.rounds >= 4
        assert scheduler.pins_installed > 0
        assert any(leaf.selector.pinned for leaf in fabric.leaves)
        scheduler.stop()
        sim.run(until=seconds(5))
        assert all(flow.finished for flow in flows)

    def test_mice_are_not_pinned(self):
        sim, fabric = _fabric()
        scheduler = CentralizedScheduler(
            sim, fabric, interval=milliseconds(1), elephant_fraction=0.5
        )
        flow = TcpFlow(sim, fabric.host(0), fabric.host(4), 10_000)
        flow.start()
        sim.run(until=milliseconds(3))
        assert scheduler.pins_installed == 0
        scheduler.stop()

    def test_scheduler_avoids_overloading_one_uplink(self):
        """Two 10G-natural-demand elephants from different hosts must not
        share one 10G uplink after a scheduling round."""
        sim, fabric = _fabric()
        CentralizedScheduler(sim, fabric, interval=milliseconds(1))
        flows = [
            TcpFlow(sim, fabric.host(i), fabric.host(4 + i), megabytes(8))
            for i in range(2)
        ]
        for flow in flows:
            flow.start()
        sim.run(until=milliseconds(4))
        pins = fabric.leaves[0].selector.pinned
        if len(pins) == 2:
            assert len(set(pins.values())) == 2  # distinct uplinks
