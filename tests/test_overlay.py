"""Tests for the VXLAN-style overlay tunnel endpoint and feedback protocol."""

import pytest

from repro.net import Packet
from repro.overlay import TunnelEndpoint, VXLAN_OVERHEAD
from repro.sim import Simulator


def _packet(size=1000):
    return Packet(src=0, dst=10, size=size, sport=1, dport=2, flow_id=7)


class TestEncapsulation:
    def test_encap_sets_header_and_grows_packet(self):
        tep = TunnelEndpoint(Simulator(), leaf_id=0, num_uplinks=4)
        packet = _packet(1000)
        tep.encapsulate(packet, dst_leaf=1, lbtag=2)
        assert packet.size == 1000 + VXLAN_OVERHEAD
        assert packet.overlay.src_leaf == 0
        assert packet.overlay.dst_leaf == 1
        assert packet.overlay.lbtag == 2
        assert packet.overlay.ce == 0

    def test_double_encap_rejected(self):
        tep = TunnelEndpoint(Simulator(), leaf_id=0, num_uplinks=4)
        packet = _packet()
        tep.encapsulate(packet, dst_leaf=1, lbtag=0)
        with pytest.raises(ValueError):
            tep.encapsulate(packet, dst_leaf=1, lbtag=0)

    def test_decap_restores_size(self):
        sim = Simulator()
        src = TunnelEndpoint(sim, leaf_id=0, num_uplinks=4)
        dst = TunnelEndpoint(sim, leaf_id=1, num_uplinks=4)
        packet = _packet(1000)
        src.encapsulate(packet, dst_leaf=1, lbtag=0)
        dst.decapsulate(packet)
        assert packet.size == 1000
        assert packet.overlay is None

    def test_decap_requires_encap(self):
        tep = TunnelEndpoint(Simulator(), leaf_id=0, num_uplinks=4)
        with pytest.raises(ValueError):
            tep.decapsulate(_packet())

    def test_decap_wrong_leaf_rejected(self):
        sim = Simulator()
        src = TunnelEndpoint(sim, leaf_id=0, num_uplinks=4)
        wrong = TunnelEndpoint(sim, leaf_id=2, num_uplinks=4)
        packet = _packet()
        src.encapsulate(packet, dst_leaf=1, lbtag=0)
        with pytest.raises(ValueError):
            wrong.decapsulate(packet)


class TestFeedbackProtocol:
    """The five-step leaf-to-leaf loop of 3.3, driven by hand."""

    def test_ce_recorded_at_destination(self):
        sim = Simulator()
        a = TunnelEndpoint(sim, leaf_id=0, num_uplinks=4)
        b = TunnelEndpoint(sim, leaf_id=1, num_uplinks=4)
        packet = _packet()
        a.encapsulate(packet, dst_leaf=1, lbtag=2)
        packet.overlay.ce = 5  # fabric marked congestion on the way
        b.decapsulate(packet)
        assert b.from_leaf_table.select_feedback(0) == (2, 5)

    def test_full_feedback_loop_updates_source_table(self):
        sim = Simulator()
        a = TunnelEndpoint(sim, leaf_id=0, num_uplinks=4)
        b = TunnelEndpoint(sim, leaf_id=1, num_uplinks=4)

        # Forward: A -> B on uplink 2, experiencing congestion 5.
        forward = _packet()
        a.encapsulate(forward, dst_leaf=1, lbtag=2)
        forward.overlay.ce = 5
        b.decapsulate(forward)

        # Reverse: B -> A; B piggybacks its stored metric for A.
        reverse = Packet(src=10, dst=0, size=64)
        b.encapsulate(reverse, dst_leaf=0, lbtag=1)
        assert reverse.overlay.fb_valid
        assert (reverse.overlay.fb_lbtag, reverse.overlay.fb_metric) == (2, 5)
        a.decapsulate(reverse)

        # A's Congestion-To-Leaf table now knows path 2 toward B reads 5.
        assert a.to_leaf_table.metric(dst_leaf=1, lbtag=2) == 5

    def test_no_feedback_when_nothing_recorded(self):
        sim = Simulator()
        b = TunnelEndpoint(sim, leaf_id=1, num_uplinks=4)
        reverse = Packet(src=10, dst=0, size=64)
        b.encapsulate(reverse, dst_leaf=0, lbtag=0)
        assert not reverse.overlay.fb_valid

    def test_feedback_counters(self):
        sim = Simulator()
        a = TunnelEndpoint(sim, leaf_id=0, num_uplinks=2)
        b = TunnelEndpoint(sim, leaf_id=1, num_uplinks=2)
        forward = _packet()
        a.encapsulate(forward, dst_leaf=1, lbtag=0)
        b.decapsulate(forward)
        reverse = Packet(src=10, dst=0, size=64)
        b.encapsulate(reverse, dst_leaf=0, lbtag=0)
        a.decapsulate(reverse)
        assert b.feedback_sent == 1
        assert a.feedback_received == 1
        assert a.encapsulated == 1 and a.decapsulated == 1

    def test_every_packet_carries_at_most_one_feedback_pair(self):
        """Metrics for k uplinks need k reverse packets (3.3)."""
        sim = Simulator()
        a = TunnelEndpoint(sim, leaf_id=0, num_uplinks=4)
        b = TunnelEndpoint(sim, leaf_id=1, num_uplinks=4)
        for tag in range(4):
            forward = _packet()
            a.encapsulate(forward, dst_leaf=1, lbtag=tag)
            forward.overlay.ce = tag + 1
            b.decapsulate(forward)
        fed_back = set()
        for _ in range(4):
            reverse = Packet(src=10, dst=0, size=64)
            b.encapsulate(reverse, dst_leaf=0, lbtag=0)
            fed_back.add((reverse.overlay.fb_lbtag, reverse.overlay.fb_metric))
            a.decapsulate(reverse)
        assert fed_back == {(0, 1), (1, 2), (2, 3), (3, 4)}
        assert a.to_leaf_table.metrics_toward(1) == [1, 2, 3, 4]
