"""Tests for the declarative ExperimentSpec API and the sweep runner."""

import dataclasses
import math
import pickle

import pytest

from repro.apps import (
    ExperimentSpec,
    ImbalanceMonitorSpec,
    QueueMonitorSpec,
    SchemeSpec,
    UnknownSchemeError,
    UnknownWorkloadError,
    execute_experiment,
    get_scheme,
    get_workload,
    register_scheme,
)
from repro.apps.experiment import SCHEMES
from repro.apps.traffic import tcp_flow_factory
from repro.lb import EcmpSelector
from repro.runner import (
    DEFAULT_CACHE_DIR,
    ResultCache,
    derive_seeds,
    run_sweep,
    sweep_grid,
)
from repro.sim import Simulator
from repro.sim.kernel import run_until_idle
from repro.topology import build_leaf_spine, scaled_testbed
from repro.units import microseconds, seconds
from repro.workloads import WORKLOADS

# Small enough that one point simulates in well under a second.
TINY = ExperimentSpec(
    scheme="ecmp",
    workload="web-search",
    load=0.4,
    num_flows=12,
    size_scale=0.02,
)


def assert_summaries_equal(*summaries):
    """Field-wise equality that treats NaN == NaN (empty size buckets)."""
    first = summaries[0]
    for other in summaries[1:]:
        for field in dataclasses.fields(first):
            a = getattr(first, field.name)
            b = getattr(other, field.name)
            if isinstance(a, float) and math.isnan(a):
                assert math.isnan(b), field.name
            else:
                assert a == b, field.name


class TestSchemeRegistry:
    def test_get_scheme_returns_registered_spec(self):
        assert get_scheme("conga").name == "conga"

    def test_unknown_scheme_error_lists_available(self):
        with pytest.raises(UnknownSchemeError) as excinfo:
            get_scheme("bogus")
        message = str(excinfo.value)
        assert "bogus" in message
        assert "conga" in message and "ecmp" in message
        assert "register_scheme" in message

    def test_unknown_scheme_is_a_value_error(self):
        with pytest.raises(ValueError):
            get_scheme("bogus")

    def test_register_rejects_duplicates_unless_replace(self):
        spec = SchemeSpec("test-dup", lambda: EcmpSelector, tcp_flow_factory)
        register_scheme(spec, replace=True)
        try:
            with pytest.raises(ValueError, match="already registered"):
                register_scheme(spec)
            register_scheme(spec, replace=True)  # idempotent with replace
        finally:
            del SCHEMES["test-dup"]

    def test_registered_scheme_usable_by_name(self):
        register_scheme(
            SchemeSpec("test-ecmp2", lambda: EcmpSelector, tcp_flow_factory),
            replace=True,
        )
        try:
            point = TINY.with_(scheme="test-ecmp2").run()
            assert point.scheme == "test-ecmp2"
            assert point.completed == TINY.num_flows
        finally:
            del SCHEMES["test-ecmp2"]

    def test_unknown_workload_error_lists_available(self):
        with pytest.raises(UnknownWorkloadError) as excinfo:
            get_workload("bogus")
        assert "web-search" in str(excinfo.value)

    def test_get_workload(self):
        assert get_workload("enterprise") is WORKLOADS["enterprise"]


class TestExperimentSpec:
    def test_normalizes_clients_and_failed_links_to_tuples(self):
        spec = TINY.with_(clients=range(8, 16), failed_links=[(1, 1, 0)])
        assert spec.clients == tuple(range(8, 16))
        assert spec.failed_links == ((1, 1, 0),)

    def test_rejects_bad_load_and_flows(self):
        with pytest.raises(ValueError):
            TINY.with_(load=0.0)
        with pytest.raises(ValueError):
            TINY.with_(num_flows=0)

    def test_content_hash_is_stable_across_equal_specs(self):
        a = TINY.with_(failed_links=[(1, 1, 0)])
        b = TINY.with_(failed_links=[(1, 1, 0)])
        assert a == b
        assert a.content_hash() == b.content_hash()

    def test_content_hash_changes_with_any_field(self):
        base = TINY.content_hash()
        assert TINY.with_(seed=2).content_hash() != base
        assert TINY.with_(load=0.41).content_hash() != base
        assert TINY.with_(scheme="conga").content_hash() != base
        assert (
            TINY.with_(config=scaled_testbed(hosts_per_leaf=4)).content_hash()
            != base
        )
        assert (
            TINY.with_(queue_monitor=QueueMonitorSpec()).content_hash() != base
        )

    def test_spec_pickles(self):
        spec = TINY.with_(
            config=scaled_testbed(),
            queue_monitor=QueueMonitorSpec(tier="spine", direction="down"),
            imbalance_monitor=ImbalanceMonitorSpec(leaf=0),
        )
        clone = pickle.loads(pickle.dumps(spec))
        assert clone == spec
        assert clone.content_hash() == spec.content_hash()

    def test_run_produces_picklable_result(self):
        point = TINY.run()
        clone = pickle.loads(pickle.dumps(point))
        assert_summaries_equal(clone.summary, point.summary)
        assert clone.records == point.records
        assert clone.arrivals == point.arrivals == TINY.num_flows
        assert clone.fabric_drops == point.fabric_drops
        assert point.events_executed > 0
        assert point.events_per_sec > 0

    def test_run_matches_low_level_kwarg_api(self):
        point = TINY.run()
        low_level = execute_experiment(
            get_scheme(TINY.scheme),
            WORKLOADS[TINY.workload],
            TINY.load,
            seed=TINY.seed,
            num_flows=TINY.num_flows,
            size_scale=TINY.size_scale,
        )
        assert_summaries_equal(point.summary, low_level.summary)
        assert point.completed == low_level.completed

    def test_monitor_specs_resolve_on_fabric(self):
        sim = Simulator(seed=1)
        fabric = build_leaf_spine(sim, scaled_testbed())
        hotspot = QueueMonitorSpec(
            tier="spine", direction="down", spine=1, leaf=1
        )
        ports = hotspot.resolve(fabric)
        assert ports and all(p.name.startswith("spine1->leaf1") for p in ports)
        every = QueueMonitorSpec(tier="fabric", direction="both").resolve(fabric)
        assert len(every) > len(ports)
        uplinks = QueueMonitorSpec(
            tier="leaf", direction="up", leaf=0
        ).resolve(fabric)
        assert uplinks and all(p.name.startswith("leaf0.") for p in uplinks)

    def test_monitor_resolve_excludes_failed_ports(self):
        sim = Simulator(seed=1)
        fabric = build_leaf_spine(sim, scaled_testbed())
        before = QueueMonitorSpec(
            tier="spine", direction="down", spine=1, leaf=1
        ).resolve(fabric)
        fabric.fail_link(1, 1, 0)
        after = QueueMonitorSpec(
            tier="spine", direction="down", spine=1, leaf=1
        ).resolve(fabric)
        assert len(after) == len(before) - 1

    def test_monitor_spec_validates_tier_direction(self):
        with pytest.raises(ValueError, match="samples 'down'"):
            QueueMonitorSpec(tier="spine", direction="up")
        with pytest.raises(ValueError, match="tier"):
            QueueMonitorSpec(tier="core", direction="down")

    def test_queue_monitor_runs_and_snapshots(self):
        point = TINY.with_(
            # A tiny run lasts well under a millisecond of simulated time,
            # so sample much faster than the 1 ms default.
            queue_monitor=QueueMonitorSpec(
                tier="spine", direction="down", spine=1, leaf=1,
                interval=microseconds(10),
            ),
            clients=range(8, 16),
            failed_links=[(1, 1, 0)],
        ).run()
        series = point.queue_series
        assert series is not None
        assert series.port_names
        assert all(name.startswith("spine1->leaf1") for name in series.port_names)
        assert len(series.series(series.port_names[0])) > 0


class TestSweepHelpers:
    def test_derive_seeds_deterministic_and_distinct(self):
        seeds = derive_seeds(31, 4)
        assert seeds == derive_seeds(31, 4)
        assert len(set(seeds)) == 4
        assert all(0 < s < 2**31 for s in seeds)
        assert derive_seeds(31, 4, stream="other") != seeds

    def test_derive_seeds_rejects_zero_count(self):
        with pytest.raises(ValueError):
            derive_seeds(1, 0)

    def test_sweep_grid_order_and_overrides(self):
        specs = sweep_grid(
            TINY, schemes=["ecmp", "conga"], loads=[0.3, 0.5], seeds=[1, 2]
        )
        assert len(specs) == 8
        # scheme varies fastest, then load, then seed.
        assert [(s.seed, s.load, s.scheme) for s in specs[:4]] == [
            (1, 0.3, "ecmp"),
            (1, 0.3, "conga"),
            (1, 0.5, "ecmp"),
            (1, 0.5, "conga"),
        ]
        assert specs[4].seed == 2
        # Axes not given keep the template's values.
        assert all(s.workload == TINY.workload for s in specs)
        assert all(s.num_flows == TINY.num_flows for s in specs)


def _forbidden_executor(workers):
    raise AssertionError("executor must not be constructed on a full cache hit")


class TestRunSweep:
    def test_empty_sweep(self):
        result = run_sweep([], cache=None)
        assert len(result) == 0
        assert result.executed == result.cached == 0

    def test_serial_sweep_and_point_lookup(self, tmp_path):
        specs = sweep_grid(TINY, schemes=["ecmp", "conga"], loads=[0.3, 0.5])
        sweep = run_sweep(specs, workers=0, cache=tmp_path / "cache")
        assert sweep.executed == 4 and sweep.cached == 0
        assert [p.spec for p in sweep] == specs
        point = sweep.point(scheme="conga", load=0.5)
        assert point.scheme == "conga" and point.load == 0.5
        with pytest.raises(LookupError):
            sweep.point(scheme="conga")  # matches two loads
        with pytest.raises(LookupError):
            sweep.point(scheme="hedera")

    def test_progress_lines_emitted(self, tmp_path):
        lines = []
        run_sweep(
            [TINY], workers=0, cache=tmp_path / "cache", progress=lines.append
        )
        assert len(lines) == 1
        assert "ecmp web-search" in lines[0] and "events" in lines[0]

    def test_identical_specs_in_one_sweep_run_once(self, tmp_path):
        sweep = run_sweep([TINY, TINY], workers=0, cache=tmp_path / "cache")
        assert sweep.executed == 1
        assert_summaries_equal(
            sweep.points[0].summary, sweep.points[1].summary
        )

    def test_second_sweep_served_entirely_from_cache(self, tmp_path):
        specs = sweep_grid(TINY, schemes=["ecmp", "conga"], loads=[0.3, 0.5])
        cache = ResultCache(tmp_path / "cache")
        first = run_sweep(specs, workers=0, cache=cache)
        assert first.executed == len(specs)
        assert len(cache) == len(specs)
        # Poisoned executor factory: any attempt to execute (rather than
        # serve from cache) blows up, proving zero submissions.
        lines = []
        second = run_sweep(
            specs,
            workers=4,
            cache=cache,
            executor_factory=_forbidden_executor,
            progress=lines.append,
        )
        assert second.executed == 0
        assert second.cached == len(specs)
        assert second.all_cached
        assert all(p.from_cache for p in second)
        assert all(line.endswith("cached") for line in lines)
        for a, b in zip(first, second):
            assert_summaries_equal(a.summary, b.summary)
            assert a.records == b.records

    @pytest.mark.parametrize(
        "garbage",
        [b"not a pickle", b"garbage\n", b""],
        ids=["unpicklingerror", "valueerror", "empty"],
    )
    def test_corrupt_cache_entry_is_a_miss(self, tmp_path, garbage):
        cache = ResultCache(tmp_path / "cache")
        run_sweep([TINY], workers=0, cache=cache)
        path = cache.path(TINY)
        path.write_bytes(garbage)
        again = run_sweep([TINY], workers=0, cache=cache)
        assert again.executed == 1  # re-ran instead of crashing
        assert cache.get(TINY) is not None  # and repopulated the entry

    def test_cache_disabled(self, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        sweep = run_sweep([TINY, TINY.with_(seed=2)], workers=0, cache=None)
        assert sweep.executed == 2
        assert not (tmp_path / DEFAULT_CACHE_DIR).exists()

    def test_version_change_invalidates_cache(self, tmp_path, monkeypatch):
        cache = ResultCache(tmp_path / "cache")
        run_sweep([TINY], workers=0, cache=cache)
        import repro

        monkeypatch.setattr(repro, "__version__", "999.0.0")
        assert cache.get(TINY) is None

    def test_parallel_results_bit_identical_to_serial(self, tmp_path):
        # The acceptance-shaped sweep: 3 schemes x 4 loads = 12 points.
        specs = sweep_grid(
            TINY,
            schemes=["ecmp", "conga", "mptcp"],
            loads=[0.3, 0.4, 0.5, 0.6],
        )
        serial = run_sweep(specs, workers=0, cache=None)
        one_worker = run_sweep(specs, workers=1, cache=None)
        four_workers = run_sweep(
            specs, workers=4, cache=tmp_path / "cache"
        )
        for a, b, c in zip(serial, one_worker, four_workers):
            assert_summaries_equal(a.summary, b.summary, c.summary)
            assert a.records == b.records == c.records
            assert a.fabric_drops == b.fabric_drops == c.fabric_drops
            assert a.end_time == b.end_time == c.end_time
            assert (
                a.events_executed == b.events_executed == c.events_executed
            )


class TestKernelRegressions:
    def test_pending_live_events_prunes_cancelled_top(self):
        sim = Simulator()
        cancelled = sim.schedule(10, lambda: None)
        live = sim.schedule(20, lambda: None)
        assert sim.pending_live_events == 2
        Simulator.cancel(cancelled)
        assert sim.pending_live_events == 1  # pruned off the heap top
        assert sim.pending_events == 1  # physically removed, too
        Simulator.cancel(live)
        assert sim.pending_live_events == 0

    def test_pending_live_events_keeps_buried_cancelled(self):
        sim = Simulator()
        live = sim.schedule(5, lambda: None)
        buried = sim.schedule(10, lambda: None)
        Simulator.cancel(buried)
        # The cancelled event is not at the top; counted until it surfaces.
        assert sim.pending_live_events == 2
        sim.run()
        assert sim.now == 5  # the cancelled event never advanced the clock

    def test_run_until_idle_ignores_cancelled_far_future_timer(self):
        sim = Simulator()
        sim.schedule(100, lambda: None)
        stale = sim.schedule(seconds(3600), lambda: None)  # a disarmed RTO
        Simulator.cancel(stale)
        run_until_idle(sim, quantum=seconds(1), max_quanta=5)
        # Before the fix this burned one quantum per loop until the stale
        # timestamp passed (an hour of simulated time); now it exits as soon
        # as only cancelled events remain.
        assert sim.now <= seconds(1)

    def test_event_ties_break_in_fifo_order(self):
        sim = Simulator()
        order = []
        for tag in ("a", "b", "c"):
            sim.schedule(10, lambda tag=tag: order.append(tag))
        sim.run()
        assert order == ["a", "b", "c"]

    def test_perf_counters_accumulate(self):
        sim = Simulator()
        for delay in (1, 2, 3):
            sim.schedule(delay, lambda: None)
        sim.run()
        assert sim.events_executed == 3
        assert sim.wall_seconds > 0.0
        assert sim.events_per_sec > 0.0
