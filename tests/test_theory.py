"""Tests for the bottleneck routing game (Thm. 1) and imbalance model (Thm. 2)."""

import numpy as np
import pytest

from repro.theory import (
    BottleneckGame,
    GameUser,
    ImbalanceEstimate,
    complete_leaf_spine_game,
    effective_rate,
    figure17_gadget,
    flowlet_split_sampler,
    imbalance_bound,
    sampler_from_distribution,
    simulate_imbalance,
)
from repro.workloads import DATA_MINING, WEB_SEARCH


class TestGameBasics:
    def _simple_game(self):
        return complete_leaf_spine_game(
            2, 2, [GameUser(0, 1, 1.0)], up_capacity=1.0, down_capacity=1.0
        )

    def test_validate_flows(self):
        game = self._simple_game()
        flows = np.array([[0.5, 0.5]])
        assert game.validate_flows(flows) is not None
        with pytest.raises(ValueError):
            game.validate_flows(np.array([[0.4, 0.4]]))  # demand unmet
        with pytest.raises(ValueError):
            game.validate_flows(np.array([[1.5, -0.5]]))  # negative

    def test_network_bottleneck(self):
        game = self._simple_game()
        assert game.network_bottleneck(np.array([[1.0, 0.0]])) == pytest.approx(1.0)
        assert game.network_bottleneck(np.array([[0.5, 0.5]])) == pytest.approx(0.5)

    def test_user_bottleneck_counts_only_used_links(self):
        game = complete_leaf_spine_game(
            2, 2, [GameUser(0, 1, 1.0), GameUser(0, 1, 1.0)]
        )
        flows = np.array([[1.0, 0.0], [0.0, 1.0]])
        assert game.user_bottleneck(flows, 0) == pytest.approx(1.0)

    def test_best_response_spreads_single_user(self):
        game = self._simple_game()
        vector, bottleneck = game.best_response(np.array([[1.0, 0.0]]), 0)
        assert bottleneck == pytest.approx(0.5)
        assert vector == pytest.approx([0.5, 0.5])

    def test_optimal_bottleneck_single_user(self):
        assert self._simple_game().optimal_bottleneck() == pytest.approx(0.5)

    def test_user_validation(self):
        with pytest.raises(ValueError):
            GameUser(0, 0, 1.0)
        with pytest.raises(ValueError):
            GameUser(0, 1, 0.0)

    def test_game_validation(self):
        with pytest.raises(ValueError):
            BottleneckGame(np.ones((2, 2)), np.ones((3, 3)), [GameUser(0, 1, 1.0)])
        with pytest.raises(ValueError):
            complete_leaf_spine_game(2, 2, [])
        with pytest.raises(ValueError):
            complete_leaf_spine_game(2, 2, [GameUser(0, 5, 1.0)])

    def test_missing_link_not_usable(self):
        up = np.array([[1.0, 0.0]])  # leaf 0 only reaches spine 0
        down = np.array([[0.0, 1.0], [0.0, 1.0]])
        # one leaf? need 2 leaves: up shape (2, 2)
        up = np.array([[1.0, 0.0], [1.0, 1.0]])
        down = np.array([[1.0, 1.0], [1.0, 1.0]])
        game = BottleneckGame(up, down, [GameUser(0, 1, 1.0)])
        with pytest.raises(ValueError):
            game.validate_flows(np.array([[0.0, 1.0]]))


class TestNashAndPoa:
    def test_figure17_nash_bottleneck_is_one(self):
        game, nash = figure17_gadget()
        assert game.network_bottleneck(nash) == pytest.approx(1.0)

    def test_figure17_flow_is_nash(self):
        game, nash = figure17_gadget()
        assert game.is_nash(nash)

    def test_figure17_optimal_is_half(self):
        game, _nash = figure17_gadget()
        assert game.optimal_bottleneck() == pytest.approx(0.5)

    def test_figure17_poa_is_exactly_two(self):
        """Theorem 1: the Price of Anarchy bound of 2 is attained."""
        game, nash = figure17_gadget()
        assert game.price_of_anarchy(nash) == pytest.approx(2.0)

    def test_best_response_dynamics_reaches_nash(self):
        game, _ = figure17_gadget()
        flows = game.best_response_dynamics()
        assert game.is_nash(flows)

    def test_best_response_dynamics_from_even_split_is_optimal_here(self):
        """Starting from even splits (CONGA's initial state), dynamics stay
        at the good equilibrium — the worst case needs an adversarial start."""
        game, _ = figure17_gadget()
        flows = game.best_response_dynamics()
        assert game.network_bottleneck(flows) <= 1.0

    def test_symmetric_network_poa_is_one(self):
        users = [GameUser(0, 1, 1.0), GameUser(1, 0, 1.0)]
        game = complete_leaf_spine_game(2, 3, users)
        nash = game.best_response_dynamics()
        assert game.is_nash(nash)
        assert game.price_of_anarchy(nash) == pytest.approx(1.0, abs=1e-6)

    def test_poa_never_exceeds_two_on_random_instances(self):
        """Theorem 1's upper bound, checked over random games and
        best-response Nash flows from random starting points."""
        rng = np.random.default_rng(0)
        for trial in range(10):
            num_leaves = int(rng.integers(2, 4))
            num_spines = int(rng.integers(2, 4))
            up = rng.uniform(0.5, 2.0, size=(num_leaves, num_spines))
            down = rng.uniform(0.5, 2.0, size=(num_spines, num_leaves))
            users = []
            for _ in range(int(rng.integers(1, 5))):
                src, dst = rng.choice(num_leaves, size=2, replace=False)
                users.append(GameUser(int(src), int(dst), float(rng.uniform(0.2, 2.0))))
            game = BottleneckGame(up, down, users)
            start = np.zeros((len(users), num_spines))
            for index, user in enumerate(users):
                weights = rng.uniform(0.05, 1.0, size=num_spines)
                weights /= weights.sum()
                start[index] = user.demand * weights
            nash = game.best_response_dynamics(start=start)
            assert game.is_nash(nash)
            assert game.price_of_anarchy(nash) <= 2.0 + 1e-6

    def test_nash_not_worse_after_improvement_step(self):
        game, nash = figure17_gadget()
        improved = game.best_response_dynamics(start=nash)
        # A locked Nash cannot be improved by best responses.
        assert game.network_bottleneck(improved) == pytest.approx(1.0)


class TestTheorem2:
    def test_effective_rate_formula(self):
        # lambda_e = lambda / (8 n log n (1 + cov^2))
        value = effective_rate(100.0, 4, 1000.0, 1.0)
        expected = 100.0 / (8 * 4 * np.log(4) * 2.0)
        assert value == pytest.approx(expected)

    def test_bound_decays_like_sqrt_t(self):
        b1 = imbalance_bound(100.0, 4, 1000.0, 1.0, t=10.0)
        b2 = imbalance_bound(100.0, 4, 1000.0, 1.0, t=40.0)
        assert b2 == pytest.approx(b1 / 2.0)

    def test_higher_cov_weakens_bound(self):
        light = imbalance_bound(100.0, 4, 1000.0, 0.5, t=10.0)
        heavy = imbalance_bound(100.0, 4, 1000.0, 5.0, t=10.0)
        assert heavy > light

    def test_simulation_respects_bound_exponential_sizes(self):
        sampler = lambda rng, n: rng.exponential(1000.0, size=n)
        estimate = simulate_imbalance(
            arrival_rate=200.0, num_links=4, mean_size=1000.0, cov=1.0,
            t=50.0, sampler=sampler, trials=100, seed=3,
        )
        assert estimate.within_bound

    def test_simulation_respects_bound_for_workloads(self):
        for dist in (WEB_SEARCH, DATA_MINING):
            estimate = simulate_imbalance(
                arrival_rate=500.0,
                num_links=4,
                mean_size=dist.mean(),
                cov=dist.coefficient_of_variation(),
                t=20.0,
                sampler=sampler_from_distribution(dist),
                trials=60,
                seed=4,
            )
            assert estimate.within_bound

    def test_imbalance_decays_with_time(self):
        sampler = lambda rng, n: rng.exponential(1000.0, size=n)
        short = simulate_imbalance(
            arrival_rate=200.0, num_links=4, mean_size=1000.0, cov=1.0,
            t=5.0, sampler=sampler, trials=100, seed=5,
        )
        long = simulate_imbalance(
            arrival_rate=200.0, num_links=4, mean_size=1000.0, cov=1.0,
            t=80.0, sampler=sampler, trials=100, seed=5,
        )
        assert long.mean_imbalance < short.mean_imbalance

    def test_heavier_workload_balances_worse(self):
        """6.2: CoV drives imbalance — data-mining worse than web-search."""
        results = {}
        for dist in (WEB_SEARCH, DATA_MINING):
            estimate = simulate_imbalance(
                arrival_rate=500.0,
                num_links=4,
                mean_size=dist.mean(),
                cov=dist.coefficient_of_variation(),
                t=30.0,
                sampler=sampler_from_distribution(dist),
                trials=80,
                seed=6,
            )
            results[dist.name] = estimate.mean_imbalance
        assert results["data-mining"] > results["web-search"]

    def test_flowlet_splitting_improves_balance(self):
        """Splitting flows into <=500KB pieces slashes the imbalance,
        which is the theoretical story behind flowlet switching."""
        base = sampler_from_distribution(DATA_MINING)
        whole = simulate_imbalance(
            arrival_rate=300.0, num_links=4,
            mean_size=DATA_MINING.mean(),
            cov=DATA_MINING.coefficient_of_variation(),
            t=30.0, sampler=base, trials=60, seed=7,
        )
        split = simulate_imbalance(
            arrival_rate=300.0, num_links=4,
            mean_size=DATA_MINING.mean(),
            cov=DATA_MINING.coefficient_of_variation(),
            t=30.0, sampler=flowlet_split_sampler(base, 500_000.0),
            trials=60, seed=7,
        )
        assert split.mean_imbalance < 0.5 * whole.mean_imbalance

    def test_validation(self):
        with pytest.raises(ValueError):
            effective_rate(0.0, 4, 100.0, 1.0)
        with pytest.raises(ValueError):
            imbalance_bound(1.0, 4, 100.0, 1.0, t=0.0)
        with pytest.raises(ValueError):
            simulate_imbalance(
                arrival_rate=1.0, num_links=4, mean_size=100.0, cov=1.0,
                t=1.0, sampler=lambda r, n: np.ones(n), trials=1,
            )
