"""Tests for FCT statistics and runtime monitors."""

import math

import pytest

from repro.analysis import (
    FctSummary,
    LARGE_FLOW_BYTES,
    QueueMonitor,
    SMALL_FLOW_BYTES,
    ThroughputImbalanceMonitor,
    relative_to,
)
from repro.net import Host, Packet, connect
from repro.sim import Simulator, run_until_idle
from repro.transport.tcp import FlowRecord
from repro.units import gbps, microseconds


def _record(size, fct, ideal=100):
    return FlowRecord(
        flow_id=1, src=0, dst=1, size=size, start_time=0, fct=fct, ideal_fct=ideal
    )


class TestFctSummary:
    def test_thresholds_match_paper(self):
        assert SMALL_FLOW_BYTES == 100_000
        assert LARGE_FLOW_BYTES == 10_000_000

    def test_mean_normalized(self):
        records = [_record(1000, 200), _record(1000, 400)]
        summary = FctSummary.from_records(records)
        assert summary.mean_normalized == pytest.approx(3.0)
        assert summary.count == 2

    def test_buckets(self):
        records = [
            _record(50_000, 100),       # small
            _record(50_000, 300),       # small
            _record(500_000, 1000),     # neither
            _record(20_000_000, 5000),  # large
        ]
        summary = FctSummary.from_records(records)
        assert summary.count_small == 2
        assert summary.count_large == 1
        assert summary.mean_fct_small == pytest.approx(200.0)
        assert summary.mean_fct_large == pytest.approx(5000.0)

    def test_empty_bucket_is_nan(self):
        summary = FctSummary.from_records([_record(500_000, 100)])
        assert math.isnan(summary.mean_fct_small)
        assert math.isnan(summary.mean_fct_large)

    def test_percentiles_ordered(self):
        records = [_record(1000, fct) for fct in range(100, 2100, 100)]
        summary = FctSummary.from_records(records)
        assert summary.mean_normalized <= summary.p95_normalized <= summary.p99_normalized

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            FctSummary.from_records([])


class TestRelativeTo:
    def test_ratio(self):
        assert relative_to(4.0, 2.0) == 2.0

    def test_nan_propagates(self):
        assert math.isnan(relative_to(float("nan"), 2.0))
        assert math.isnan(relative_to(2.0, float("nan")))

    def test_rejects_zero_baseline(self):
        with pytest.raises(ValueError):
            relative_to(1.0, 0.0)


class _Sender:
    """Drives known byte counts through two ports for monitor tests."""

    def __init__(self):
        self.sim = Simulator()
        self.h = [Host(self.sim, i, gbps(10)) for i in range(4)]
        connect(self.h[0].nic, self.h[1].nic)
        connect(self.h[2].nic, self.h[3].nic)
        self.ports = [self.h[0].nic, self.h[2].nic]

    def send(self, port_index, size):
        src = self.h[0] if port_index == 0 else self.h[2]
        src.nic.send(Packet(src=src.host_id, dst=99, size=size, flow_id=1))


class TestThroughputImbalanceMonitor:
    def test_balanced_traffic_reads_zero(self):
        env = _Sender()
        monitor = ThroughputImbalanceMonitor(
            env.sim, env.ports, interval=microseconds(100)
        )
        monitor.start()
        for _ in range(50):
            env.send(0, 1000)
            env.send(1, 1000)
        env.sim.run(until=microseconds(150))
        monitor.stop()
        run_until_idle(env.sim)
        assert monitor.samples
        assert monitor.samples[0] == pytest.approx(0.0)

    def test_fully_skewed_traffic_reads_two(self):
        # (MAX - MIN) / AVG with one idle port = (x - 0) / (x/2) = 2.
        env = _Sender()
        monitor = ThroughputImbalanceMonitor(
            env.sim, env.ports, interval=microseconds(100)
        )
        monitor.start()
        for _ in range(50):
            env.send(0, 1000)
        env.sim.run(until=microseconds(150))
        monitor.stop()
        run_until_idle(env.sim)
        assert monitor.samples[0] == pytest.approx(2.0)

    def test_idle_intervals_skipped(self):
        env = _Sender()
        monitor = ThroughputImbalanceMonitor(
            env.sim, env.ports, interval=microseconds(10)
        )
        monitor.start()
        env.sim.run(until=microseconds(100))
        monitor.stop()
        assert monitor.samples == []

    def test_percentile_and_mean(self):
        env = _Sender()
        monitor = ThroughputImbalanceMonitor(
            env.sim, env.ports, interval=microseconds(100)
        )
        monitor.samples = [0.0, 1.0, 2.0]
        assert monitor.mean_percent() == pytest.approx(100.0)
        assert monitor.percentile(50) == pytest.approx(100.0)

    def test_needs_two_ports(self):
        env = _Sender()
        with pytest.raises(ValueError):
            ThroughputImbalanceMonitor(env.sim, env.ports[:1])

    def test_no_samples_raises(self):
        env = _Sender()
        monitor = ThroughputImbalanceMonitor(env.sim, env.ports)
        with pytest.raises(ValueError):
            monitor.mean_percent()


class TestQueueMonitor:
    def test_samples_occupancy(self):
        env = _Sender()
        monitor = QueueMonitor(env.sim, [env.ports[0]], interval=microseconds(1))
        monitor.start()
        # Queue 100 x 1500B packets; they drain at 10 Gbps (1.2 us each).
        for _ in range(100):
            env.send(0, 1500)
        env.sim.run(until=microseconds(20))
        monitor.stop()
        series = monitor.series(env.ports[0])
        assert len(series) >= 10
        assert max(series) > 0
        assert series == sorted(series, reverse=True)  # draining monotone

    def test_statistics(self):
        env = _Sender()
        monitor = QueueMonitor(env.sim, [env.ports[0]])
        monitor.samples[env.ports[0].name] = [0, 100, 200, 300]
        assert monitor.mean(env.ports[0]) == pytest.approx(150.0)
        assert monitor.percentile(env.ports[0], 100) == pytest.approx(300.0)

    def test_requires_ports(self):
        with pytest.raises(ValueError):
            QueueMonitor(Simulator(), [])

    def test_no_samples_raises(self):
        env = _Sender()
        monitor = QueueMonitor(env.sim, [env.ports[0]])
        with pytest.raises(ValueError):
            monitor.mean(env.ports[0])
