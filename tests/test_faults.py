"""Tests for the fault-injection plane (repro.faults).

Covers the event algebra (frozen values, CLI parsing, fault windows), the
injector's application semantics against a live fabric, the §3.3 metric
aging behaviour that FeedbackLoss exists to exercise, and the
analysis-side degradation metrics.
"""

import pickle

import pytest

from repro.analysis import DegradationSummary
from repro.analysis.fct import records_digest
from repro.apps import ExperimentSpec
from repro.core.params import CongaParams
from repro.core.tables import CongestionToLeafTable
from repro.faults import (
    FaultInjector,
    FeedbackLoss,
    LinkDegrade,
    LinkDown,
    LinkLoss,
    LinkUp,
    RandomLinkDowns,
    SwitchBlackout,
    fault_window,
    parse_fault,
)
from repro.lb import EcmpSelector
from repro.sim import Simulator
from repro.topology import build_leaf_spine, scaled_testbed
from repro.transport.tcp import FlowRecord
from repro.units import microseconds, milliseconds


def _fabric(seed=1, **overrides):
    sim = Simulator(seed=seed)
    fabric = build_leaf_spine(sim, scaled_testbed(hosts_per_leaf=4, **overrides))
    fabric.finalize(EcmpSelector.factory())
    return sim, fabric


# ---------------------------------------------------------------------------
# Event algebra


def test_events_are_frozen_hashable_picklable():
    events = (
        LinkDown(time=0, leaf=1, spine=1),
        LinkUp(time=5, leaf=1, spine=1),
        LinkDegrade(time=0, fraction=0.25),
        LinkLoss(time=0, probability=0.5),
        FeedbackLoss(time=0, leaf=1, probability=0.5, duration=10),
        SwitchBlackout(time=0, kind="spine", switch=1, duration=10),
        RandomLinkDowns(time=0, count=9),
    )
    assert len(set(events)) == len(events)  # hashable, all distinct
    assert pickle.loads(pickle.dumps(events)) == events
    with pytest.raises(Exception):
        events[0].leaf = 3  # frozen


def test_event_validation():
    with pytest.raises(ValueError):
        LinkDown(time=-1)
    with pytest.raises(ValueError):
        LinkDegrade(time=0, fraction=0.0)
    with pytest.raises(ValueError):
        LinkDegrade(time=0, fraction=1.5)
    with pytest.raises(ValueError):
        LinkLoss(time=0, probability=1.5)
    with pytest.raises(ValueError):
        FeedbackLoss(time=0, duration=0)
    with pytest.raises(ValueError):
        SwitchBlackout(time=0, kind="router")
    with pytest.raises(ValueError):
        RandomLinkDowns(time=0, count=0)
    with pytest.raises(ValueError):
        RandomLinkDowns(time=0, count=1, tier="aggregation")


def test_parse_fault_round_trips():
    assert parse_fault("link_down@0.1s:l0-s1") == LinkDown(
        time=100_000_000, leaf=0, spine=1, which=0
    )
    assert parse_fault("link_up@1500us:l1-s1.1") == LinkUp(
        time=1_500_000, leaf=1, spine=1, which=1
    )
    assert parse_fault("link_degrade@1ms:l1-s0=0.25") == LinkDegrade(
        time=1_000_000, leaf=1, spine=0, fraction=0.25
    )
    assert parse_fault("link_loss@0:l1-s1~0.01") == LinkLoss(
        time=0, leaf=1, spine=1, probability=0.01
    )
    assert parse_fault("feedback_loss@0.5ms:leaf1~0.5+2ms") == FeedbackLoss(
        time=500_000, leaf=1, probability=0.5, duration=2_000_000
    )
    assert parse_fault("feedback_loss@0") == FeedbackLoss(
        time=0, leaf=None, probability=1.0, duration=None
    )
    assert parse_fault("blackout@1ms:spine1+500us") == SwitchBlackout(
        time=1_000_000, kind="spine", switch=1, duration=500_000
    )
    assert parse_fault("random_downs@0=9") == RandomLinkDowns(time=0, count=9)


def test_parse_fault_errors():
    for bad in (
        "link_down",  # no @time
        "link_down@1ms",  # no target
        "link_down@1ms:spine1",  # wrong target shape
        "link_down@oops:l0-s1",  # bad time
        "link_degrade@1ms:l0-s1",  # missing =fraction
        "link_loss@1ms:l0-s1",  # missing ~prob
        "feedback_loss@0:spine1",  # feedback loss targets a leaf
        "blackout@1ms:l0-s1",  # blackout targets a switch
        "random_downs@0",  # missing =count
        "meteor_strike@0",  # unknown kind
    ):
        with pytest.raises(ValueError):
            parse_fault(bad)


def test_fault_window():
    down = LinkDown(time=100, leaf=1, spine=1)
    up = LinkUp(time=900, leaf=1, spine=1)
    assert fault_window((down, up)) == (100, 900)
    assert fault_window((down,)) == (100, None)
    assert fault_window((up,)) is None  # nothing degrades
    assert fault_window(()) is None
    # Duration-bearing events close their own window.
    assert fault_window((SwitchBlackout(time=50, duration=200),)) == (50, 250)
    assert fault_window((FeedbackLoss(time=10, duration=40),)) == (10, 50)


# ---------------------------------------------------------------------------
# Injector semantics against a live fabric


def test_time_zero_faults_apply_at_construction():
    sim, fabric = _fabric()
    injector = FaultInjector(sim, fabric, (LinkDown(time=0, leaf=1, spine=1),))
    port = fabric.uplink_ports(1, 1)[0]
    assert not port.up  # applied synchronously, before any event runs
    assert injector.applied == [(0, LinkDown(time=0, leaf=1, spine=1))]


def test_scheduled_down_then_up():
    sim, fabric = _fabric()
    down = LinkDown(time=1000, leaf=0, spine=1)
    up = LinkUp(time=5000, leaf=0, spine=1)
    injector = FaultInjector(sim, fabric, (down, up))
    port = fabric.uplink_ports(0, 1)[0]
    assert port.up  # nothing applied yet
    sim.run(until=2000)
    assert not port.up
    sim.run(until=6000)
    assert port.up
    assert injector.applied == [(1000, down), (5000, up)]


def test_link_degrade_scales_both_directions_and_dre():
    sim, fabric = _fabric()
    port = fabric.uplink_ports(0, 0)[0]
    peer = port.peer
    nominal, peer_nominal = port.rate_bps, peer.rate_bps
    FaultInjector(
        sim, fabric, (LinkDegrade(time=0, leaf=0, spine=0, fraction=0.25),)
    )
    assert port.rate_bps == round(nominal * 0.25)
    assert peer.rate_bps == round(peer_nominal * 0.25)
    assert port.dre is not None and port.dre.link_rate_bps == port.rate_bps
    assert peer.dre is not None and peer.dre.link_rate_bps == peer.rate_bps
    # fraction=1.0 is the restore.
    port.degrade(1.0)
    assert port.rate_bps == nominal
    assert peer.rate_bps == peer_nominal
    assert port.dre.link_rate_bps == nominal


def test_switch_blackout_and_timed_restore():
    sim, fabric = _fabric()
    FaultInjector(
        sim,
        fabric,
        (SwitchBlackout(time=1000, kind="spine", switch=1, duration=4000),),
    )
    ports = fabric.switch_ports("spine", 1)
    assert ports and all(p.up for p in ports)
    sim.run(until=2000)
    assert all(not p.up for p in ports)
    sim.run(until=6000)
    assert all(p.up for p in ports)


def test_random_downs_event_is_seed_deterministic():
    downed = []
    for _ in range(2):
        sim, fabric = _fabric(seed=3, num_leaves=4, num_spines=3)
        FaultInjector(sim, fabric, (RandomLinkDowns(time=0, count=4),))
        downed.append(
            tuple(
                port.name
                for leaf in fabric.leaves
                for port in leaf.uplinks
                if not port.up
            )
        )
        # No leaf is ever fully disconnected.
        for leaf in fabric.leaves:
            assert any(p.up for p in leaf.uplinks)
    assert downed[0] == downed[1]
    assert len(downed[0]) == 4


def test_injector_rejects_non_events_and_bad_links():
    sim, fabric = _fabric()
    with pytest.raises(TypeError):
        FaultInjector(sim, fabric, ("link_down@0:l0-s0",))
    with pytest.raises(ValueError):
        FaultInjector(sim, fabric, (LinkDown(time=0, leaf=0, spine=0, which=9),))


# ---------------------------------------------------------------------------
# Grey failures: seeded per-packet loss


def test_link_loss_drops_packets_deterministically():
    spec = ExperimentSpec(
        "ecmp",
        "enterprise",
        0.6,
        seed=11,
        num_flows=40,
        size_scale=0.05,
        faults=(LinkLoss(time=0, leaf=0, spine=0, probability=0.05),),
    )
    first = spec.run_live()
    second = spec.run_live()
    lost_first = sum(
        p.lost_packets + p.peer.lost_packets
        for leaf in first.fabric.leaves
        for p in leaf.uplinks
    )
    assert lost_first > 0  # the grey failure actually bit
    assert first.completed == second.completed
    assert records_digest(list(first.records)) == records_digest(
        list(second.records)
    )


# ---------------------------------------------------------------------------
# §3.3 metric aging under feedback loss


def test_metric_aging_decay_schedule():
    """Hand-computed §3.3 decay: fresh → linear ramp → zero → re-probe.

    With ``metric_age_time`` T, a metric of value 8 reads 8 up to age T,
    then decays linearly over one further period: 6 at 1.25T, 4 at 1.5T,
    2 at 1.75T, and 0 from 2T on — the optimistic reset that makes CONGA
    re-probe a path it has heard nothing about.
    """
    sim = Simulator(seed=1)
    params = CongaParams(metric_age_time=milliseconds(10))
    table = CongestionToLeafTable(sim, num_uplinks=4, params=params)
    table.update(dst_leaf=1, lbtag=2, metric=8)
    t = milliseconds(10)

    schedule = [
        (milliseconds(5), 8),  # younger than T: face value
        (t, 8),  # exactly T: still face value
        (t + t // 4, 6),  # 1.25T: int(8 * 0.75)
        (t + t // 2, 4),  # 1.5T:  int(8 * 0.5)
        (t + 3 * t // 4, 2),  # 1.75T: int(8 * 0.25)
        (2 * t, 0),  # 2T and beyond: fully aged out
        (3 * t, 0),
    ]
    for when, expected in schedule:
        sim.run(until=when)
        assert table.metric(1, 2) == expected, f"age {when}ns"
    # A refresh restarts the clock at full value.
    table.update(dst_leaf=1, lbtag=2, metric=5)
    assert table.metric(1, 2) == 5


def test_feedback_loss_starves_tables_but_traffic_flows():
    """FeedbackLoss severs the reverse channel; forwarding must survive.

    With probability-1 stripping from t=0, no (FB_LBTag, FB_Metric) pair
    ever reaches a Congestion-To-Leaf table, the stripped counter grows,
    and CONGA — seeing only aged-to-zero (optimistic) metrics — keeps
    spreading flowlets over multiple uplinks rather than wedging onto one.
    """
    spec = ExperimentSpec(
        "conga",
        "enterprise",
        0.6,
        seed=7,
        num_flows=60,
        size_scale=0.05,
        faults=(FeedbackLoss(time=0, probability=1.0),),
    )
    live = spec.run_live()
    teps = [leaf.tep for leaf in live.fabric.leaves]
    assert sum(tep.feedback_lost for tep in teps) > 0
    assert sum(tep.feedback_received for tep in teps) == 0
    assert live.completed == live.arrivals
    used = [
        p
        for leaf in live.fabric.leaves
        for p in leaf.uplinks
        if p.tx_packets > 0
    ]
    assert len(used) >= 4  # still re-probing across paths, not wedged


def test_feedback_loss_duration_restores_channel():
    spec = ExperimentSpec(
        "conga",
        "enterprise",
        0.6,
        seed=7,
        num_flows=60,
        size_scale=0.05,
        faults=(
            FeedbackLoss(time=0, probability=1.0, duration=microseconds(200)),
        ),
    )
    live = spec.run_live()
    teps = [leaf.tep for leaf in live.fabric.leaves]
    assert sum(tep.feedback_lost for tep in teps) > 0
    assert sum(tep.feedback_received for tep in teps) > 0  # after the clear


# ---------------------------------------------------------------------------
# Degradation metrics


def _record(flow_id, start, fct, size):
    return FlowRecord(
        flow_id=flow_id,
        src=0,
        dst=1,
        size=size,
        start_time=start,
        fct=fct,
        ideal_fct=max(1, fct // 2),
    )


def test_degradation_summary_hand_computed():
    # One flow of 1000 B completes in each 1 ms phase: before [0, 1ms),
    # during [1ms, 2ms), after [2ms, 3ms).  The during-phase completes only
    # half the bytes, so goodput_retained is exactly 0.5.
    records = [
        _record(1, 0, milliseconds(1) // 2, 1000),  # completes at 0.5 ms
        _record(2, milliseconds(1), milliseconds(1) // 2, 500),  # at 1.5 ms
        _record(3, milliseconds(2), milliseconds(1) // 2, 1000),  # at 2.5 ms
    ]
    summary = DegradationSummary.from_records(
        records,
        window_start=milliseconds(1),
        window_end=milliseconds(2),
        end_time=milliseconds(3),
        retransmissions=4,
        timeouts=1,
    )
    bits_per_ms = 1000 * 8 * 1000  # 1000 B per 1 ms, in bits/sec
    assert summary.goodput_before_bps == pytest.approx(bits_per_ms)
    assert summary.goodput_during_bps == pytest.approx(bits_per_ms / 2)
    assert summary.goodput_after_bps == pytest.approx(bits_per_ms)
    assert summary.goodput_retained == pytest.approx(0.5)
    # The first post-window 1 ms bin already reaches 90% of the pre-fault
    # goodput, so recovery is one bin.
    assert summary.recovery_time == milliseconds(1)
    assert summary.retransmissions == 4
    assert summary.timeouts == 1


def test_degradation_open_window_and_no_recovery():
    records = [_record(1, 0, milliseconds(1) // 2, 1000)]
    summary = DegradationSummary.from_records(
        records,
        window_start=milliseconds(1),
        window_end=None,
        end_time=milliseconds(3),
    )
    assert summary.goodput_after_bps == 0.0
    assert summary.recovery_time is None
    # During-phase had no completions at all.
    assert summary.goodput_during_bps == 0.0
    assert summary.goodput_retained == pytest.approx(0.0)


def test_point_result_degradation_requires_fault_window():
    spec = ExperimentSpec(
        "ecmp", "enterprise", 0.6, seed=1, num_flows=10, size_scale=0.02
    )
    point = spec.run()
    with pytest.raises(ValueError):
        point.degradation()


# ---------------------------------------------------------------------------
# Spec integration


def test_spec_rejects_raw_fault_strings():
    with pytest.raises(TypeError):
        ExperimentSpec(
            "ecmp", "enterprise", 0.6, faults=("link_down@0:l0-s0",)
        )


def test_faults_change_content_hash():
    base = ExperimentSpec("ecmp", "enterprise", 0.6)
    faulted = base.with_(faults=(LinkDown(time=0, leaf=1, spine=1),))
    assert base.content_hash() != faulted.content_hash()
    # Same fault tuple → same hash (cacheable).
    again = base.with_(faults=(LinkDown(time=0, leaf=1, spine=1),))
    assert faulted.content_hash() == again.content_hash()
