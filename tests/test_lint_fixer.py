"""Round-trip tests for ``--fix-suppress`` (``repro.lint.fixer``).

The fixer's contract: applying suppressions is idempotent, preserves the
source encoding (PEP 263 cookie / BOM) and newline style byte for byte,
and the rewritten file survives a re-lint cleanly.
"""

from __future__ import annotations

from pathlib import Path

from repro.lint import ALL_RULES, lint_paths
from repro.lint.engine import Violation
from repro.lint.fixer import apply_suppressions

D101_SOURCE = "import time\n\n\ndef now():\n    return time.time()\n"


def lint_file(path: Path):
    return lint_paths([path], ALL_RULES)


def test_apply_then_relint_clean(tmp_path):
    target = tmp_path / "mod.py"
    target.write_text(D101_SOURCE, encoding="utf-8")
    report = lint_file(target)
    assert [v.rule for v in report.violations] == ["D101"]

    edited = apply_suppressions(report.violations)
    assert edited == {str(target): 1}
    assert "# repro-lint: ignore[D101] -- triaged" in target.read_text(
        encoding="utf-8"
    )
    assert lint_file(target).ok


def test_apply_is_idempotent(tmp_path):
    target = tmp_path / "mod.py"
    target.write_text(D101_SOURCE, encoding="utf-8")
    violations = lint_file(target).violations

    apply_suppressions(violations)
    first = target.read_bytes()
    # Re-applying the same violations merges into the existing bracket
    # (sorted, deduplicated) instead of stacking a second comment.
    apply_suppressions(violations)
    assert target.read_bytes() == first


def test_merges_into_existing_bracket(tmp_path):
    target = tmp_path / "mod.py"
    target.write_text(
        "import time\n\n\ndef now():\n"
        "    return time.time()  # repro-lint: ignore[D102] -- fixture\n",
        encoding="utf-8",
    )
    apply_suppressions(
        [Violation(rule="D101", path=str(target), line=5, col=12, message="x")]
    )
    text = target.read_text(encoding="utf-8")
    assert "ignore[D101,D102]" in text
    assert text.count("repro-lint") == 1
    assert lint_file(target).ok


def test_crlf_newlines_preserved(tmp_path):
    target = tmp_path / "mod.py"
    target.write_bytes(D101_SOURCE.replace("\n", "\r\n").encode("utf-8"))
    report = lint_file(target)
    assert not report.ok

    apply_suppressions(report.violations)
    raw = target.read_bytes()
    assert raw.count(b"\r\n") == D101_SOURCE.count("\n")
    assert b"\n" not in raw.replace(b"\r\n", b"")
    # The comment lands before the CRLF terminator, not after it.
    assert b"ignore[D101] -- triaged\r\n" in raw
    assert lint_file(target).ok


def test_utf8_sig_bom_preserved(tmp_path):
    target = tmp_path / "mod.py"
    target.write_bytes(b"\xef\xbb\xbf" + D101_SOURCE.encode("utf-8"))
    apply_suppressions(
        [Violation(rule="D101", path=str(target), line=5, col=12, message="x")]
    )
    raw = target.read_bytes()
    assert raw.startswith(b"\xef\xbb\xbf")
    assert raw.count(b"\xef\xbb\xbf") == 1
    assert b"ignore[D101]" in raw


def test_latin1_coding_cookie_preserved(tmp_path):
    target = tmp_path / "mod.py"
    source = (
        "# -*- coding: latin-1 -*-\n"
        "# caf\xe9\n"
        "import time\n\n\ndef now():\n"
        "    return time.time()\n"
    )
    target.write_bytes(source.encode("latin-1"))
    apply_suppressions(
        [Violation(rule="D101", path=str(target), line=7, col=12, message="x")]
    )
    raw = target.read_bytes()
    assert b"caf\xe9" in raw  # still latin-1, not re-encoded as utf-8
    text = raw.decode("latin-1")
    assert text.startswith("# -*- coding: latin-1 -*-\n")
    assert "ignore[D101]" in text


def test_final_line_without_newline(tmp_path):
    target = tmp_path / "mod.py"
    target.write_bytes(b"import time\n\n\ndef now():\n    return time.time()")
    report = lint_file(target)
    apply_suppressions(report.violations)
    raw = target.read_bytes()
    assert raw.endswith(b"ignore[D101] -- triaged")
    assert lint_file(target).ok


def test_same_line_violations_share_one_comment(tmp_path):
    target = tmp_path / "mod.py"
    target.write_text(
        "import time\n\n\ndef f(x):\n"
        "    return time.time() + hash(x)\n",
        encoding="utf-8",
    )
    report = lint_file(target)
    assert {v.rule for v in report.violations} == {"D101", "D103"}
    apply_suppressions(report.violations)
    text = target.read_text(encoding="utf-8")
    assert "ignore[D101,D103]" in text
    assert text.count("repro-lint") == 1
    assert lint_file(target).ok
