"""Tests for the tracked kernel benchmark harness (``repro bench``)."""

import json

import pytest

from repro.perf import (
    BENCH_SCHEMA,
    BENCH_SPECS,
    BenchResult,
    compare_bench,
    comparison_failed,
    load_bench_file,
    run_bench,
    write_bench_file,
)


def _result(
    name: str,
    ev_per_sec: float,
    *,
    events: int = 1000,
    digest: str = "d" * 64,
) -> BenchResult:
    return BenchResult(
        name=name,
        events_executed=events,
        wall_seconds=events / ev_per_sec,
        events_per_sec=ev_per_sec,
        peak_rss_kb=4096,
        alloc_blocks=1234,
        sim_end_time=123,
        digest=digest,
    )


class TestBenchFile:
    def test_first_write_freezes_baseline(self, tmp_path):
        path = tmp_path / "bench.json"
        payload = write_bench_file({"a": _result("a", 100.0)}, path)
        assert payload["schema"] == BENCH_SCHEMA
        assert payload["baseline"]["a"]["events_per_sec"] == 100.0
        assert payload["speedup"]["a"] == 1.0
        on_disk = json.loads(path.read_text())
        assert on_disk == payload

    def test_later_writes_keep_baseline_and_compute_speedup(self, tmp_path):
        path = tmp_path / "bench.json"
        write_bench_file({"a": _result("a", 100.0)}, path)
        payload = write_bench_file({"a": _result("a", 160.0)}, path)
        assert payload["baseline"]["a"]["events_per_sec"] == 100.0
        assert payload["results"]["a"]["events_per_sec"] == 160.0
        assert payload["speedup"]["a"] == 1.6

    def test_set_baseline_overwrites(self, tmp_path):
        path = tmp_path / "bench.json"
        write_bench_file({"a": _result("a", 100.0)}, path)
        payload = write_bench_file(
            {"a": _result("a", 200.0)}, path, set_baseline=True
        )
        assert payload["baseline"]["a"]["events_per_sec"] == 200.0
        assert payload["speedup"]["a"] == 1.0

    def test_new_spec_without_baseline_entry_gets_no_speedup(self, tmp_path):
        path = tmp_path / "bench.json"
        write_bench_file({"a": _result("a", 100.0)}, path)
        payload = write_bench_file({"b": _result("b", 50.0)}, path)
        assert "b" not in payload["speedup"]

    def test_load_missing_or_corrupt_returns_none(self, tmp_path):
        assert load_bench_file(tmp_path / "absent.json") is None
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        assert load_bench_file(bad) is None
        notdict = tmp_path / "list.json"
        notdict.write_text("[1, 2]")
        assert load_bench_file(notdict) is None


def _payload(*results: BenchResult) -> dict:
    from dataclasses import asdict

    return {"schema": BENCH_SCHEMA, "results": {r.name: asdict(r) for r in results}}


class TestCompareBench:
    def test_speedup_and_no_regression(self):
        rows = compare_bench(
            _payload(_result("a", 100.0)), _payload(_result("a", 150.0))
        )
        assert len(rows) == 1
        assert rows[0].speedup == 1.5
        assert not rows[0].regression
        assert rows[0].digest_match is True
        assert not comparison_failed(rows)

    def test_regression_beyond_tolerance_flags(self):
        rows = compare_bench(
            _payload(_result("a", 100.0)), _payload(_result("a", 96.0))
        )
        assert rows[0].regression
        assert comparison_failed(rows)

    def test_small_slowdown_within_tolerance_passes(self):
        rows = compare_bench(
            _payload(_result("a", 100.0)), _payload(_result("a", 98.0))
        )
        assert not rows[0].regression
        assert not comparison_failed(rows)

    def test_matching_digests_require_equal_event_counts(self):
        # The satellite-1 drift bug: behaviourally identical runs reporting
        # different events_executed is a kernel accounting error, not perf.
        rows = compare_bench(
            _payload(_result("a", 100.0, events=1000)),
            _payload(_result("a", 100.0, events=1003)),
        )
        assert rows[0].error is not None
        assert "accounting drift" in rows[0].error
        assert comparison_failed(rows)

    def test_different_digests_allow_different_event_counts(self):
        rows = compare_bench(
            _payload(_result("a", 100.0, events=1000, digest="a" * 64)),
            _payload(_result("a", 100.0, events=1003, digest="b" * 64)),
        )
        assert rows[0].error is None
        assert rows[0].digest_match is False

    def test_missing_spec_is_an_error(self):
        rows = compare_bench(
            _payload(_result("a", 100.0)),
            _payload(_result("b", 100.0)),
        )
        by_name = {r.name: r for r in rows}
        assert by_name["a"].error == "missing from new file"
        assert by_name["b"].error == "missing from old file"
        assert comparison_failed(rows)

    def test_schema1_results_without_new_fields_compare(self):
        # Old checkouts wrote schema-1 files with no alloc_blocks and, in
        # the earliest versions, no digest; comparing must degrade, not die.
        old = {
            "schema": 1,
            "results": {
                "a": {"events_per_sec": 100.0, "events_executed": 1000}
            },
        }
        rows = compare_bench(old, _payload(_result("a", 120.0)))
        assert rows[0].speedup == 1.2
        assert rows[0].digest_match is None
        assert not comparison_failed(rows)

    def test_rows_render(self):
        rows = compare_bench(
            _payload(_result("a", 100.0)), _payload(_result("a", 80.0))
        )
        line = rows[0].row()
        assert "REGRESSION" in line
        assert "0.80x" in line


class TestRunBench:
    def test_unknown_spec_rejected(self):
        with pytest.raises(ValueError, match="unknown bench spec"):
            run_bench(specs=["no-such-spec"])

    def test_quick_fct_spec_runs_and_reports(self):
        lines = []
        results = run_bench(
            quick=True, specs=["fct-ecmp-datamining"], progress=lines.append
        )
        result = results["fct-ecmp-datamining"]
        assert result.events_executed > 10_000
        assert result.events_per_sec > 0
        assert len(result.digest) == 64
        assert result.sim_end_time > 0
        assert any("fct-ecmp-datamining" in line for line in lines)

    def test_quick_runs_are_behaviourally_deterministic(self):
        first = run_bench(quick=True, specs=["fct-ecmp-datamining"])
        second = run_bench(quick=True, specs=["fct-ecmp-datamining"])
        a = first["fct-ecmp-datamining"]
        b = second["fct-ecmp-datamining"]
        assert a.digest == b.digest
        assert a.events_executed == b.events_executed
        assert a.sim_end_time == b.sim_end_time

    def test_canonical_spec_set(self):
        assert list(BENCH_SPECS) == [
            "incast-rto",
            "fct-conga-enterprise",
            "fct-ecmp-datamining",
        ]
