"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_fct_defaults(self):
        args = build_parser().parse_args(["fct"])
        assert args.scheme == "conga"
        assert args.workload == "enterprise"
        assert args.load == 0.6

    def test_rejects_unknown_scheme(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fct", "--scheme", "bogus"])

    def test_fail_link_repeatable(self):
        args = build_parser().parse_args(
            ["fct", "--fail-link", "1,1,0", "--fail-link", "0,1,1"]
        )
        assert args.fail_link == ["1,1,0", "0,1,1"]


class TestCommands:
    def test_poa(self, capsys):
        assert main(["poa"]) == 0
        output = capsys.readouterr().out
        assert "Price of Anarchy" in output
        assert "2.000" in output

    def test_fct_runs(self, capsys):
        code = main(
            ["fct", "--scheme", "ecmp", "--workload", "web-search",
             "--load", "0.3", "--flows", "20", "--size-scale", "0.02"]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "flows completed:        20/20" in output

    def test_fct_with_failed_link(self, capsys):
        code = main(
            ["fct", "--scheme", "conga", "--workload", "web-search",
             "--load", "0.3", "--flows", "15", "--size-scale", "0.02",
             "--fail-link", "1,1,0"]
        )
        assert code == 0
        assert "mean FCT" in capsys.readouterr().out

    def test_sweep_runs_and_caches(self, capsys, tmp_path):
        argv = [
            "sweep", "--schemes", "ecmp", "--workload", "web-search",
            "--loads", "0.3", "--seeds", "1", "--flows", "15",
            "--size-scale", "0.02", "--workers", "0",
            "--cache-dir", str(tmp_path / "cache"),
        ]
        assert main(argv) == 0
        assert "1 executed, 0 cached" in capsys.readouterr().out
        assert main(argv) == 0
        assert "0 executed, 1 cached" in capsys.readouterr().out

    def test_sweep_rejects_unknown_scheme_before_running(self, capsys):
        code = main(["sweep", "--schemes", "ecmp,bogus"])
        assert code == 2
        captured = capsys.readouterr()
        assert "unknown scheme 'bogus'" in captured.err
        assert captured.out == ""  # no point executed

    def test_incast_runs(self, capsys):
        code = main(
            ["incast", "--transport", "tcp", "--fan-in", "3", "--repeats", "1"]
        )
        assert code == 0
        assert "effective throughput" in capsys.readouterr().out

    def test_bench_quick_writes_file(self, capsys, tmp_path):
        out = tmp_path / "bench.json"
        code = main([
            "bench", "--quick", "--specs", "fct-ecmp-datamining",
            "--output", str(out),
        ])
        assert code == 0
        captured = capsys.readouterr().out
        assert "fct-ecmp-datamining" in captured
        assert "1.00x vs baseline" in captured  # first write is the baseline
        assert out.exists()

    def test_bench_rejects_unknown_spec(self, capsys, tmp_path):
        code = main([
            "bench", "--quick", "--specs", "bogus",
            "--output", str(tmp_path / "bench.json"),
        ])
        assert code == 2
        assert "unknown bench spec" in capsys.readouterr().err
