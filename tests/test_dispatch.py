"""Tests for the dispatcher redesign: backends, streaming, the worker.

The core guarantee under test is backend interchangeability — a point run
is a pure function of its spec, so the ``subprocess`` backend must
produce the same :meth:`SweepResult.digest` as the historical in-process
pool.  The worker protocol itself is exercised hermetically through
:func:`repro.runner.worker.serve` over ``StringIO`` pipes.
"""

from __future__ import annotations

import base64
import io
import json
import pickle
import sys

import pytest

from repro.apps import ExperimentSpec, PointResult
from repro.runner import (
    BACKENDS,
    Backend,
    Dispatcher,
    LocalBackend,
    PointFailure,
    SubprocessBackend,
    get_backend,
)
from repro.runner.worker import serve

# Small enough that one point simulates in well under a second.
TINY = ExperimentSpec(
    scheme="ecmp",
    workload="web-search",
    load=0.4,
    num_flows=12,
    size_scale=0.02,
)
GRID = (TINY, TINY.with_(scheme="conga"))


def protocol(*messages: object) -> list[dict]:
    """Feed raw lines through the worker; return its decoded replies."""
    lines = [
        m if isinstance(m, str) else json.dumps(m) for m in messages
    ]
    out = io.StringIO()
    assert serve(io.StringIO("\n".join(lines) + "\n"), out) == 0
    return [json.loads(line) for line in out.getvalue().splitlines()]


def encode_spec(spec: ExperimentSpec) -> str:
    return base64.b64encode(
        pickle.dumps(spec, protocol=pickle.HIGHEST_PROTOCOL)
    ).decode("ascii")


class TestBackendRegistry:
    def test_registry_names_match_classes(self):
        assert get_backend("local") is LocalBackend
        assert get_backend("subprocess") is SubprocessBackend
        assert set(BACKENDS) == {"local", "subprocess"}

    def test_unknown_backend_lists_available(self):
        with pytest.raises(ValueError, match="local.*subprocess"):
            get_backend("bogus")

    def test_backend_classes_expose_names(self):
        for name, cls in BACKENDS.items():
            assert issubclass(cls, Backend)
            assert cls.name == name

    def test_subprocess_backend_validates_knobs(self):
        with pytest.raises(ValueError, match="at least one worker"):
            SubprocessBackend(workers=0)
        with pytest.raises(ValueError, match="retries"):
            SubprocessBackend(retries=-1)


class TestWorkerProtocol:
    def test_ping_and_exit(self):
        replies = protocol({"op": "ping"}, {"op": "exit"})
        assert replies == [
            {"ok": True, "op": "pong"},
            {"ok": True, "op": "exit"},
        ]

    def test_run_matches_inline_execution(self):
        replies = protocol(
            {"op": "init", "workloads": []},
            {"op": "run", "id": 7, "spec": encode_spec(TINY)},
            {"op": "exit"},
        )
        assert replies[0] == {"ok": True, "op": "init"}
        reply = replies[1]
        assert reply["ok"] and reply["id"] == 7
        result = pickle.loads(base64.b64decode(reply["result"]))
        assert isinstance(result, PointResult)
        local = TINY.run()
        assert result.spec == local.spec
        assert result.records == local.records

    def test_run_failure_is_structured(self):
        blob = base64.b64encode(b"not a pickle").decode("ascii")
        replies = protocol(
            {"op": "run", "id": 3, "spec": blob}, {"op": "exit"}
        )
        reply = replies[0]
        assert reply["id"] == 3
        assert reply["ok"] is False
        assert reply["kind"] == "exception"
        assert reply["error"]

    def test_malformed_lines_do_not_kill_the_worker(self):
        replies = protocol(
            "this is not json",
            json.dumps(["not", "an", "object"]),
            {"op": "frobnicate"},
            {"op": "ping"},
            {"op": "exit"},
        )
        assert [r.get("kind") for r in replies[:3]] == ["protocol"] * 3
        assert all(r["ok"] is False for r in replies[:3])
        assert "frobnicate" in replies[2]["error"]
        assert replies[3] == {"ok": True, "op": "pong"}

    def test_eof_without_exit_returns_cleanly(self):
        out = io.StringIO()
        assert serve(io.StringIO(""), out) == 0
        assert out.getvalue() == ""


class TestDispatcher:
    def test_empty_grid_short_circuits(self):
        dispatcher = Dispatcher(LocalBackend(workers=0), cache=None)
        result = dispatcher.run([])
        assert len(result) == 0
        assert result.executed == result.cached == 0
        assert dispatcher.last_result is result
        assert list(dispatcher.stream([])) == []

    def test_string_backend_resolves_via_registry(self):
        dispatcher = Dispatcher("local", cache=None)
        assert isinstance(dispatcher.backend, LocalBackend)

    def test_cache_hits_skip_the_backend(self, tmp_path):
        cache_dir = tmp_path / "cache"
        first = Dispatcher(LocalBackend(workers=0), cache=cache_dir).run(
            [TINY]
        )
        assert first.executed == 1 and first.cached == 0

        class ExplodingBackend(Backend):
            name = "exploding"

            def execute(self, specs, misses, *, finish, fail,
                        metrics=None, telemetry=None):
                raise AssertionError("backend should not be reached")

        second = Dispatcher(ExplodingBackend(), cache=cache_dir).run([TINY])
        assert second.executed == 0 and second.cached == 1
        assert second.digest() == first.digest()

    def test_duplicate_specs_computed_once(self):
        result = Dispatcher(LocalBackend(workers=0), cache=None).run(
            [TINY, TINY, TINY]
        )
        assert result.executed == 1
        assert len(result) == 3
        assert result.points[0] is result.points[1] is result.points[2]
        assert result.metrics is not None
        assert result.metrics.counters["sweep.duplicates"] == 2

    def test_stream_yields_each_point_once(self, tmp_path):
        cache_dir = tmp_path / "cache"
        Dispatcher(LocalBackend(workers=0), cache=cache_dir).run([TINY])
        dispatcher = Dispatcher(LocalBackend(workers=0), cache=cache_dir)
        specs = [TINY, GRID[1], GRID[1]]  # one hit, one miss, one duplicate
        seen = dict(dispatcher.stream(specs))
        assert sorted(seen) == [0, 1, 2]
        assert all(isinstance(p, PointResult) for p in seen.values())
        assert seen[1].records == seen[2].records
        result = dispatcher.last_result
        assert result is not None
        assert result.executed == 1 and result.cached == 1
        assert tuple(seen[i] for i in range(3)) == result.points

    def test_progress_summary_lines_render_from_metrics(self):
        lines: list[str] = []
        Dispatcher(
            LocalBackend(workers=0),
            cache=None,
            progress=lines.append,
            summary_every=1,
        ).run(list(GRID))
        summaries = [l for l in lines if l.startswith("[sweep ")]
        assert summaries, lines
        assert summaries[-1].startswith(f"[sweep {len(GRID)}/{len(GRID)}]")
        assert "2 run" in summaries[-1]


class TestSubprocessBackend:
    def test_worker_death_fails_point_as_crash(self):
        # A "worker" that acks init then exits: every run attempt sees a
        # dead child, burns a restart, and the point fails as a crash.
        script = (
            "import json, sys\n"
            "sys.stdin.readline()\n"
            "print(json.dumps({'ok': True, 'op': 'init'}), flush=True)\n"
        )
        backend = SubprocessBackend(
            workers=1,
            command=[sys.executable, "-u", "-c", script],
            retries=1,
            retry_backoff=0.0,
            max_worker_restarts=2,
        )
        failures: dict[int, PointFailure] = {}
        backend.execute(
            [TINY],
            [0],
            finish=lambda i, r: pytest.fail("point should not succeed"),
            fail=failures.__setitem__,
        )
        assert set(failures) == {0}
        assert failures[0].kind == "crash"
        assert failures[0].attempts >= 1

    def test_unspawnable_worker_fails_all_points(self):
        backend = SubprocessBackend(
            workers=2,
            command=[sys.executable, "-c", "import sys; sys.exit(1)"],
            retries=0,
            retry_backoff=0.0,
            max_worker_restarts=0,
        )
        failures: dict[int, PointFailure] = {}
        backend.execute(
            list(GRID),
            [0, 1],
            finish=lambda i, r: pytest.fail("point should not succeed"),
            fail=failures.__setitem__,
        )
        assert set(failures) == {0, 1}
        assert all(f.kind == "crash" for f in failures.values())

    @pytest.mark.scenario_smoke
    def test_digest_matches_local_backend(self):
        # The acceptance check for backend interchangeability: the same
        # grid through two subprocess workers and through the in-process
        # path must agree bit-for-bit on what was computed.
        local = Dispatcher(LocalBackend(workers=0), cache=None).run(
            list(GRID)
        )
        remote = Dispatcher(
            SubprocessBackend(workers=2, retries=0), cache=None
        ).run(list(GRID))
        assert remote.executed == len(GRID)
        assert not remote.failures
        assert remote.digest() == local.digest()
