"""Tests for the TCP model: windows, recovery, timers, receivers."""

import pytest

from repro.lb import EcmpSelector
from repro.net import Host, Packet, connect
from repro.sim import Simulator, run_until_idle
from repro.topology import build_leaf_spine, scaled_testbed
from repro.transport import (
    DataSource,
    INCAST_RECOMMENDED,
    TcpFlow,
    TcpParams,
    TcpReceiver,
    TcpSender,
)
from repro.transport.tcp import OPEN, RECOVERY, FlowRecord
from repro.units import gbps, megabytes, milliseconds, microseconds


def _two_hosts(rate=gbps(10), delay=500, queue=None):
    sim = Simulator()
    h1 = Host(sim, 0, rate)
    h2 = Host(sim, 1, rate)
    connect(h1.nic, h2.nic, delay)
    return sim, h1, h2


def _fabric_pair(seed=1, **cfg):
    sim = Simulator(seed=seed)
    fabric = build_leaf_spine(sim, scaled_testbed(hosts_per_leaf=2, **cfg))
    fabric.finalize(EcmpSelector.factory())
    return sim, fabric


class TestTcpParams:
    def test_defaults(self):
        params = TcpParams()
        assert params.mss == 1460
        assert params.min_rto == milliseconds(200)
        assert params.initial_cwnd == 10 * 1460

    def test_incast_variant(self):
        assert INCAST_RECOMMENDED.min_rto == milliseconds(1)

    @pytest.mark.parametrize(
        "kwargs",
        [{"mss": 0}, {"min_rto": 0}, {"max_rto": 1, "min_rto": 2}, {"ack_every": 0}],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            TcpParams(**kwargs)


class TestBasicTransfer:
    def test_small_flow_completes(self):
        sim, h1, h2 = _two_hosts()
        flow = TcpFlow(sim, h1, h2, 10_000)
        flow.start()
        run_until_idle(sim)
        assert flow.finished
        assert flow.receiver.bytes_received == 10_000

    def test_large_flow_completes_near_line_rate(self):
        sim, h1, h2 = _two_hosts()
        size = megabytes(5)
        flow = TcpFlow(sim, h1, h2, size)
        flow.start()
        run_until_idle(sim)
        assert flow.finished
        # Wire time for 5 MB at 10 Gbps is 4 ms; allow 25% slack for
        # slow-start ramp and per-segment overheads.
        assert flow.fct < 1.25 * (size * 8 / 10)

    def test_single_byte_flow(self):
        sim, h1, h2 = _two_hosts()
        flow = TcpFlow(sim, h1, h2, 1)
        flow.start()
        run_until_idle(sim)
        assert flow.finished

    def test_flow_size_not_multiple_of_mss(self):
        sim, h1, h2 = _two_hosts()
        flow = TcpFlow(sim, h1, h2, 1460 * 3 + 123)
        flow.start()
        run_until_idle(sim)
        assert flow.finished
        assert flow.receiver.bytes_received == 1460 * 3 + 123

    def test_fct_positive_and_reported_once(self):
        sim, h1, h2 = _two_hosts()
        flow = TcpFlow(sim, h1, h2, 50_000)
        flow.start()
        run_until_idle(sim)
        assert flow.fct > 0

    def test_fct_before_completion_raises(self):
        sim, h1, h2 = _two_hosts()
        flow = TcpFlow(sim, h1, h2, 50_000)
        with pytest.raises(RuntimeError):
            _ = flow.fct

    def test_completion_callback(self):
        sim, h1, h2 = _two_hosts()
        done = []
        flow = TcpFlow(sim, h1, h2, 10_000, on_complete=done.append)
        flow.start()
        run_until_idle(sim)
        assert done == [flow]

    def test_endpoints_unbound_after_completion(self):
        sim, h1, h2 = _two_hosts()
        flow = TcpFlow(sim, h1, h2, 10_000)
        flow.start()
        run_until_idle(sim)
        # A stray packet for the finished flow is counted, not delivered.
        h1.receive(
            Packet(src=1, dst=0, size=64, flow_id=flow.flow_id, is_ack=True),
            h1.nic,
        )
        assert h1.undelivered_packets == 1

    def test_rejects_nonpositive_size(self):
        sim, h1, h2 = _two_hosts()
        with pytest.raises(ValueError):
            TcpFlow(sim, h1, h2, 0)


class TestSlowStartAndAvoidance:
    def test_cwnd_doubles_per_rtt_in_slow_start(self):
        sim, h1, h2 = _two_hosts()
        flow = TcpFlow(sim, h1, h2, megabytes(2))
        flow.start()
        initial = flow.sender.cwnd
        sim.run(until=microseconds(50))  # ~ a few RTTs in
        assert flow.sender.cwnd > 1.5 * initial

    def test_congestion_avoidance_linear(self):
        sim, h1, h2 = _two_hosts()
        flow = TcpFlow(sim, h1, h2, megabytes(1))
        flow.sender.ssthresh = flow.sender.cwnd  # force CA immediately
        flow.start()
        before = flow.sender.cwnd
        sim.run(until=microseconds(30))
        after = flow.sender.cwnd
        # Grows, but far less than slow start's doubling per RTT.
        assert before < after < before * 2

    def test_window_limits_inflight(self):
        sim, h1, h2 = _two_hosts()
        params = TcpParams(receive_window=5 * 1460)
        flow = TcpFlow(sim, h1, h2, megabytes(1), params=params)
        flow.start()
        sim.run(until=microseconds(5))
        assert flow.sender.inflight <= 5 * 1460


class TestRttEstimation:
    def test_srtt_converges_to_path_rtt(self):
        sim, h1, h2 = _two_hosts(delay=microseconds(10))
        flow = TcpFlow(sim, h1, h2, megabytes(1))
        flow.start()
        run_until_idle(sim)
        assert flow.sender.stats.rtt_samples > 10
        # Base RTT is 2 * 10 us propagation plus serialization.
        assert flow.sender.srtt > 2 * microseconds(10)
        assert flow.sender.srtt < milliseconds(2)

    def test_rto_clamped_to_min(self):
        sim, h1, h2 = _two_hosts()
        flow = TcpFlow(sim, h1, h2, 100_000)
        flow.start()
        run_until_idle(sim)
        assert flow.sender.rto >= TcpParams().min_rto


class TestLossRecovery:
    def _lossy_transfer(self, queue_bytes, size=megabytes(1), params=None):
        """Send through a bottleneck with a tiny queue to force drops."""
        sim = Simulator(seed=2)
        h1 = Host(sim, 0, gbps(10))
        mid_in = Host(sim, 2, gbps(10))  # relay modelled by two hosts? no -
        # Use a fabric with a tiny fabric queue instead: cleaner.
        fabric = build_leaf_spine(
            sim,
            scaled_testbed(hosts_per_leaf=2, fabric_queue_bytes=queue_bytes),
        )
        fabric.finalize(EcmpSelector.factory())
        flow = TcpFlow(
            sim,
            fabric.host(0),
            fabric.host(2),
            size,
            params=params or TcpParams(min_rto=milliseconds(2), initial_rto=milliseconds(2)),
        )
        flow.start()
        run_until_idle(sim)
        return flow, fabric

    def test_fast_retransmit_recovers_from_drops(self):
        flow, fabric = self._lossy_transfer(queue_bytes=20_000)
        assert flow.finished
        assert fabric.total_fabric_drops() > 0
        assert flow.sender.stats.retransmissions > 0
        assert flow.receiver.rcv_nxt == megabytes(1)

    def test_cwnd_halved_on_fast_retransmit(self):
        sim, h1, h2 = _two_hosts()
        flow = TcpFlow(sim, h1, h2, megabytes(1))
        flow.start()
        sim.run(until=microseconds(30))
        sender = flow.sender
        cwnd_before = sender.cwnd
        inflight = sender.inflight
        # Deliver 3 duplicate ACKs by hand.
        for _ in range(3):
            sender._on_packet(
                Packet(
                    src=1, dst=0, size=64, flow_id=flow.flow_id,
                    is_ack=True, ack_no=sender.snd_una,
                )
            )
        assert sender.state == RECOVERY
        assert sender.ssthresh == pytest.approx(max(inflight / 2, 2 * 1460))
        assert sender.stats.fast_retransmits == 1

    def test_timeout_resets_to_one_mss(self):
        sim, h1, h2 = _two_hosts()
        params = TcpParams(min_rto=milliseconds(1), initial_rto=milliseconds(1))
        flow = TcpFlow(sim, h1, h2, megabytes(1), params=params)
        flow.start()
        sim.run(until=microseconds(10))
        # Cut the link so everything in flight dies, then wait out the RTO.
        h1.nic.fail()
        sim.run(until=sim.now + milliseconds(5))
        assert flow.sender.stats.timeouts >= 1
        assert flow.sender.cwnd == pytest.approx(1460)
        # Restore and let it finish.
        h1.nic.restore()
        run_until_idle(sim)
        assert flow.finished

    def test_rto_exponential_backoff(self):
        sim, h1, h2 = _two_hosts()
        params = TcpParams(min_rto=milliseconds(1), initial_rto=milliseconds(1))
        flow = TcpFlow(sim, h1, h2, megabytes(1), params=params)
        flow.start()
        sim.run(until=microseconds(10))
        h1.nic.fail()
        sim.run(until=sim.now + milliseconds(40))
        # Backed-off RTOs: 1, 2, 4, 8, 16 ms -> about 5 timeouts in 40 ms.
        assert 3 <= flow.sender.stats.timeouts <= 7

    def test_transfer_survives_transient_blackhole(self):
        sim, h1, h2 = _two_hosts()
        params = TcpParams(min_rto=milliseconds(1), initial_rto=milliseconds(1))
        flow = TcpFlow(sim, h1, h2, 500_000, params=params)
        flow.start()
        sim.run(until=microseconds(50))
        h1.nic.fail()
        sim.run(until=sim.now + milliseconds(3))
        h1.nic.restore()
        run_until_idle(sim)
        assert flow.finished
        assert flow.receiver.rcv_nxt == 500_000  # distinct bytes (dups excluded)


class TestReceiver:
    def _receiver(self, ack_every=1):
        sim, h1, h2 = _two_hosts()
        receiver = TcpReceiver(
            sim, h2, 0, flow_id=500, params=TcpParams(ack_every=ack_every)
        )
        acks = []
        h1.bind(500, acks.append)
        return sim, receiver, acks

    def _data(self, seq, length, fin=False):
        return Packet(
            src=0, dst=1, size=length + 58, flow_id=500,
            seq=seq, payload_len=length, fin=fin, created_at=0,
        )

    def test_in_order_cumulative_acks(self):
        sim, receiver, acks = self._receiver()
        receiver._on_packet(self._data(0, 1000))
        receiver._on_packet(self._data(1000, 1000))
        run_until_idle(sim)
        assert [a.ack_no for a in acks] == [1000, 2000]

    def test_out_of_order_generates_dup_acks(self):
        sim, receiver, acks = self._receiver()
        receiver._on_packet(self._data(0, 1000))
        receiver._on_packet(self._data(2000, 1000))  # hole at 1000
        receiver._on_packet(self._data(3000, 1000))
        run_until_idle(sim)
        assert [a.ack_no for a in acks] == [1000, 1000, 1000]

    def test_hole_filled_acks_jump(self):
        sim, receiver, acks = self._receiver()
        receiver._on_packet(self._data(0, 1000))
        receiver._on_packet(self._data(2000, 1000))
        receiver._on_packet(self._data(1000, 1000))  # fills the hole
        run_until_idle(sim)
        assert acks[-1].ack_no == 3000

    def test_duplicate_segment_ignored_in_count(self):
        sim, receiver, acks = self._receiver()
        receiver._on_packet(self._data(0, 1000))
        receiver._on_packet(self._data(0, 1000))  # pure duplicate
        run_until_idle(sim)
        assert receiver.rcv_nxt == 1000

    def test_overlapping_segments_merge(self):
        sim, receiver, _acks = self._receiver()
        receiver._on_packet(self._data(1000, 2000))
        receiver._on_packet(self._data(2000, 2000))
        receiver._on_packet(self._data(0, 1000))
        run_until_idle(sim)
        assert receiver.rcv_nxt == 4000

    def test_delayed_ack_coalesces(self):
        sim, receiver, acks = self._receiver(ack_every=2)
        receiver._on_packet(self._data(0, 1000))
        receiver._on_packet(self._data(1000, 1000))
        receiver._on_packet(self._data(2000, 1000))
        receiver._on_packet(self._data(3000, 1000))
        run_until_idle(sim)
        assert [a.ack_no for a in acks] == [2000, 4000]

    def test_fin_acked_immediately_despite_delack(self):
        sim, receiver, acks = self._receiver(ack_every=2)
        receiver._on_packet(self._data(0, 1000, fin=True))
        run_until_idle(sim)
        assert [a.ack_no for a in acks] == [1000]

    def test_echo_carries_data_timestamp(self):
        sim, receiver, acks = self._receiver()
        packet = self._data(0, 1000)
        packet.created_at = 12345
        receiver._on_packet(packet)
        run_until_idle(sim)
        assert acks[0].echo == 12345


class TestDataSource:
    def test_fixed_source(self):
        source = DataSource(1000)
        assert source.available() == 1000
        assert source.closed()

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            DataSource(0)


class TestFlowRecord:
    def test_normalized_fct(self):
        record = FlowRecord(
            flow_id=1, src=0, dst=1, size=100, start_time=0, fct=500, ideal_fct=100
        )
        assert record.normalized_fct == 5.0

    def test_requires_ideal(self):
        record = FlowRecord(
            flow_id=1, src=0, dst=1, size=100, start_time=0, fct=500
        )
        with pytest.raises(ValueError):
            _ = record.normalized_fct


class TestFabricTransfers:
    def test_cross_fabric_flow(self):
        sim, fabric = _fabric_pair()
        flow = TcpFlow(sim, fabric.host(0), fabric.host(2), megabytes(1))
        flow.start()
        run_until_idle(sim)
        assert flow.finished
        norm = flow.fct / fabric.ideal_fct(0, 2, megabytes(1))
        assert norm < 1.5

    def test_two_deterministic_runs_identical(self):
        def run_once():
            sim, fabric = _fabric_pair(seed=7)
            flow = TcpFlow(sim, fabric.host(0), fabric.host(3), 300_000)
            flow.start()
            run_until_idle(sim)
            return flow.fct

        assert run_once() == run_once()
