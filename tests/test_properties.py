"""Property-based tests of core invariants (hypothesis)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core import DEFAULT_PARAMS, DRE
from repro.fluid import FluidDemand, FluidLeafSpine, FluidLink, ecmp_split
from repro.net import Host, Packet, connect
from repro.net.hashing import stable_hash
from repro.sim import Simulator, run_until_idle
from repro.transport import TcpFlow, TcpParams, TcpReceiver
from repro.units import gbps
from repro.workloads import WEB_SEARCH


# ---------------------------------------------------------------------------
# TCP receiver: any arrival order of a segment set yields correct reassembly.
# ---------------------------------------------------------------------------


class TestReceiverReassembly:
    @given(
        order=st.permutations(list(range(8))),
        duplicates=st.lists(st.integers(min_value=0, max_value=7), max_size=4),
    )
    @settings(deadline=None, max_examples=60)
    def test_any_arrival_order_reassembles(self, order, duplicates):
        sim = Simulator()
        h1 = Host(sim, 0, gbps(10))
        h2 = Host(sim, 1, gbps(10))
        connect(h1.nic, h2.nic)
        receiver = TcpReceiver(sim, h2, 0, flow_id=1)
        segment = 1000
        for index in list(order) + list(duplicates):
            receiver._on_packet(
                Packet(
                    src=0, dst=1, size=segment + 58, flow_id=1,
                    seq=index * segment, payload_len=segment,
                )
            )
        assert receiver.rcv_nxt == 8 * segment
        assert receiver._out_of_order == []

    @given(
        segments=st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=20_000),
                st.integers(min_value=1, max_value=3_000),
            ),
            min_size=1,
            max_size=25,
        )
    )
    @settings(deadline=None, max_examples=60)
    def test_rcv_nxt_is_exactly_the_contiguous_prefix(self, segments):
        sim = Simulator()
        h1 = Host(sim, 0, gbps(10))
        h2 = Host(sim, 1, gbps(10))
        connect(h1.nic, h2.nic)
        receiver = TcpReceiver(sim, h2, 0, flow_id=1)
        covered = set()
        for seq, length in segments:
            receiver._on_packet(
                Packet(
                    src=0, dst=1, size=length + 58, flow_id=1,
                    seq=seq, payload_len=length,
                )
            )
            covered.update(range(seq, seq + length))
        expected = 0
        while expected in covered:
            expected += 1
        assert receiver.rcv_nxt == expected


# ---------------------------------------------------------------------------
# Max-min fairness invariants.
# ---------------------------------------------------------------------------


class TestFluidInvariants:
    @given(
        demands=st.lists(
            st.floats(min_value=0.5, max_value=200.0), min_size=1, max_size=5
        ),
        capacities=st.tuples(
            st.floats(min_value=5.0, max_value=100.0),
            st.floats(min_value=5.0, max_value=100.0),
        ),
    )
    @settings(deadline=None, max_examples=50)
    def test_never_exceeds_capacity_or_demand(self, demands, capacities):
        c0, c1 = capacities
        network = FluidLeafSpine(
            [
                FluidLink("L0", "S0", c0),
                FluidLink("S0", "L1", c0),
                FluidLink("L0", "S1", c1),
                FluidLink("S1", "L1", c1),
            ]
        )
        flows = [FluidDemand("L0", "L1", d) for d in demands]
        allocation = ecmp_split(network, flows)
        delivered = allocation.delivered_throughput()
        for demand, rate in zip(flows, delivered):
            assert rate <= demand.rate + 1e-6
        assert sum(delivered) <= c0 + c1 + 1e-6


# ---------------------------------------------------------------------------
# DRE: decay is monotone and scale-invariant in time.
# ---------------------------------------------------------------------------


class TestDreInvariants:
    @given(
        increments=st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=1_000_000),  # time offset
                st.integers(min_value=1, max_value=100_000),  # bytes
            ),
            min_size=1,
            max_size=20,
        )
    )
    @settings(deadline=None, max_examples=50)
    def test_register_bounded_by_total_bytes(self, increments):
        sim = Simulator()
        dre = DRE(sim, gbps(10), DEFAULT_PARAMS)
        total = 0
        now = 0
        for offset, size in sorted(increments):
            sim.run(until=offset)
            dre.on_transmit(size)
            total += size
        assert 0 <= dre.register <= total + 1e-9

    def test_decay_is_monotone_without_traffic(self):
        sim = Simulator()
        dre = DRE(sim, gbps(10), DEFAULT_PARAMS)
        dre.on_transmit(150_000)
        previous = dre.register
        for _ in range(40):
            sim.run(until=sim.now + DEFAULT_PARAMS.dre_period)
            current = dre.register
            assert current <= previous + 1e-9
            previous = current


# ---------------------------------------------------------------------------
# Hashing: stable, well-spread, protocol-aware.
# ---------------------------------------------------------------------------


class TestHashingProperties:
    @given(
        tuples=st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=1000),
                st.integers(min_value=0, max_value=1000),
                st.integers(min_value=0, max_value=65_535),
                st.integers(min_value=0, max_value=65_535),
                st.sampled_from(["tcp", "udp"]),
            ),
            min_size=2,
            max_size=50,
            unique=True,
        )
    )
    @settings(deadline=None, max_examples=50)
    def test_deterministic_and_salt_sensitive(self, tuples):
        for t in tuples:
            assert stable_hash(t) == stable_hash(t)
        salted = [stable_hash(t, salt=1) for t in tuples]
        unsalted = [stable_hash(t) for t in tuples]
        # With >= 2 distinct tuples, salting virtually never preserves all.
        if len(tuples) >= 8:
            assert salted != unsalted

    def test_spread_over_buckets(self):
        values = [
            stable_hash((0, 1, sport, 80, "tcp")) % 4 for sport in range(4000)
        ]
        counts = np.bincount(values, minlength=4)
        assert counts.min() > 800  # roughly uniform


# ---------------------------------------------------------------------------
# End-to-end conservation: every TCP byte sent is delivered exactly once.
# ---------------------------------------------------------------------------


class TestConservation:
    @given(size=st.integers(min_value=1, max_value=300_000))
    @settings(deadline=None, max_examples=20)
    def test_bytes_delivered_exactly_once(self, size):
        sim = Simulator(seed=size)
        h1 = Host(sim, 0, gbps(10))
        h2 = Host(sim, 1, gbps(10))
        connect(h1.nic, h2.nic)
        flow = TcpFlow(sim, h1, h2, size)
        flow.start()
        run_until_idle(sim)
        assert flow.finished
        assert flow.receiver.rcv_nxt == size

    @given(seed=st.integers(min_value=0, max_value=10_000))
    @settings(deadline=None, max_examples=10)
    def test_workload_samples_always_positive(self, seed):
        rng = np.random.default_rng(seed)
        sizes = WEB_SEARCH.sample_many(rng, 100)
        assert (sizes >= 1).all()
