"""Tests for the bounded stride-decimated sample series."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.core.series import DEFAULT_SERIES_LIMIT, DecimatedSeries


class TestBasics:
    def test_small_series_keeps_everything(self):
        series = DecimatedSeries(limit=100)
        for i in range(50):
            series.append(i)
        assert list(series) == list(range(50))
        assert series.stride == 1

    def test_list_protocol(self):
        series = DecimatedSeries(limit=16, values=[3, 1, 4])
        assert len(series) == 3
        assert series[0] == 3
        assert series[-1] == 4
        assert bool(series)
        assert not DecimatedSeries(limit=16)
        assert series == [3, 1, 4]
        assert series == (3, 1, 4)
        assert series.values == [3, 1, 4]

    def test_equality_against_other_series(self):
        a = DecimatedSeries(limit=16, values=[1, 2])
        b = DecimatedSeries(limit=32, values=[1, 2])
        assert a == b

    def test_rejects_tiny_limit(self):
        with pytest.raises(ValueError):
            DecimatedSeries(limit=1)

    def test_default_limit(self):
        assert DecimatedSeries().limit == DEFAULT_SERIES_LIMIT


class TestDecimation:
    def test_memory_is_bounded(self):
        series = DecimatedSeries(limit=64)
        for i in range(1_000_000):
            series.append(i)
        assert len(series) < 64

    def test_retained_samples_are_uniformly_strided(self):
        series = DecimatedSeries(limit=64)
        n = 10_000
        for i in range(n):
            series.append(i)
        stride = series.stride
        assert list(series) == list(range(0, n, stride))[: len(series)]

    def test_stride_doubles_on_overflow(self):
        series = DecimatedSeries(limit=8)
        for i in range(8):
            series.append(i)
        # Hitting the limit halves the retained set and doubles the stride.
        assert series.stride == 2
        assert list(series) == [0, 2, 4, 6]

    def test_decimation_is_deterministic(self):
        def fill():
            series = DecimatedSeries(limit=32)
            for i in range(5_000):
                series.append(i * 37 % 1013)
            return list(series), series.stride

        assert fill() == fill()

    def test_percentiles_survive_decimation(self):
        # A slowly varying occupancy series: the decimated percentiles must
        # track the full-series percentiles closely (uniform subsample).
        full = [int(5000 * (1 + np.sin(i / 500.0))) for i in range(200_000)]
        series = DecimatedSeries(limit=4096)
        for value in full:
            series.append(value)
        for q in (50.0, 90.0, 99.0):
            dec = float(np.percentile(list(series), q))
            ref = float(np.percentile(full, q))
            assert dec == pytest.approx(ref, rel=0.05)

    @given(st.lists(st.integers(min_value=0, max_value=10**6), max_size=300))
    def test_never_exceeds_limit_and_starts_at_first_sample(self, values):
        series = DecimatedSeries(limit=16)
        for value in values:
            series.append(value)
        assert len(series) <= 16
        if values:
            assert series[0] == values[0]
