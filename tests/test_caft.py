"""Tests for the CAFT scheme and the full-fabric (3-tier) fault plane.

Covers the surface this plane adds on top of the original leaf-spine
faults: core-tier fault targets and grammar, per-port residual capacity,
tier-aware random failures, the caft selector's liveness weighting, and
the degradation metrics that score recovery runs.
"""

from __future__ import annotations

import pytest

from repro.analysis.degradation import DegradationSummary, window_goodput
from repro.apps import ExperimentSpec
from repro.faults import (
    LinkDegrade,
    LinkDown,
    LinkLoss,
    LinkUp,
    RandomLinkDowns,
    SwitchBlackout,
    parse_fault,
)
from repro.sim import Simulator
from repro.topology.failures import TIERS, fail_random_links
from repro.topology.multipod import MultiPodConfig, build_multipod
from repro.transport.tcp import FlowRecord
from repro.units import microseconds, milliseconds


class TestCoreFaultGrammar:
    def test_core_link_targets(self):
        assert parse_fault("link_down@0.5ms:s1-c0") == LinkDown(
            time=microseconds(500), spine=1, core=0
        )
        assert parse_fault("link_up@1ms:s1-c0.1") == LinkUp(
            time=milliseconds(1), spine=1, core=0, which=1
        )
        assert parse_fault("link_degrade@1ms:s2-c1=0.25") == LinkDegrade(
            time=milliseconds(1), spine=2, core=1, fraction=0.25
        )
        assert parse_fault("link_loss@1ms:s1-c0~1.0") == LinkLoss(
            time=milliseconds(1), spine=1, core=0, probability=1.0
        )

    def test_core_switch_blackout(self):
        assert parse_fault("blackout@1ms:core1+500us") == SwitchBlackout(
            time=milliseconds(1),
            kind="core",
            switch=1,
            duration=microseconds(500),
        )

    def test_random_downs_tier(self):
        assert parse_fault("random_downs@0:core=3") == RandomLinkDowns(
            time=0, count=3, tier="core"
        )
        assert parse_fault("random_downs@0=3") == RandomLinkDowns(
            time=0, count=3, tier="leaf"
        )


class TestResidualCapacity:
    def _fabric(self):
        sim = Simulator(seed=1)
        fabric = build_multipod(sim, MultiPodConfig())
        return fabric

    def test_healthy_port_residual_is_one(self):
        fabric = self._fabric()
        port = fabric.core_uplink_ports(1, 0)[0]
        assert port.residual_fraction() == 1.0

    def test_down_port_residual_is_zero(self):
        fabric = self._fabric()
        fabric.fail_core_link(1, 0, 0)
        assert fabric.core_uplink_ports(1, 0)[0].residual_fraction() == 0.0
        fabric.restore_core_link(1, 0, 0)
        assert fabric.core_uplink_ports(1, 0)[0].residual_fraction() == 1.0

    def test_black_hole_is_invisible_to_liveness_but_not_residual(self):
        fabric = self._fabric()
        port = fabric.core_uplink_ports(1, 0)[0]
        port.set_loss(1.0)
        assert port.up  # routing still believes in it
        assert port.residual_fraction() == 0.0


class TestTierAwareRandomFailures:
    def test_tiers(self):
        assert TIERS == ("leaf", "core")

    def test_same_stream_same_selection(self):
        a = build_multipod(Simulator(seed=1), MultiPodConfig())
        b = build_multipod(Simulator(seed=1), MultiPodConfig())
        fail_random_links(a, 2, "chaos-7", tier="core")
        fail_random_links(b, 2, "chaos-7", tier="core")
        downs_a = [
            (s, c)
            for s in range(len(a.spines))
            for c in range(a.config.num_cores)
            if not a.core_uplink_ports(s, c)[0].up
        ]
        downs_b = [
            (s, c)
            for s in range(len(b.spines))
            for c in range(b.config.num_cores)
            if not b.core_uplink_ports(s, c)[0].up
        ]
        assert downs_a == downs_b
        assert len(downs_a) == 2

    def test_bad_tier_rejected(self):
        with pytest.raises(ValueError):
            RandomLinkDowns(time=0, count=1, tier="aggregation")


def _tiny_multipod(scheme: str, faults=()) -> ExperimentSpec:
    return ExperimentSpec(
        scheme=scheme,
        workload="enterprise",
        load=0.5,
        seed=11,
        num_flows=40,
        size_scale=0.05,
        config=MultiPodConfig(),
        faults=tuple(faults),
    )


class TestCaftScheme:
    def test_healthy_run_never_fault_reroutes(self):
        point = _tiny_multipod("caft").run()
        assert point.completed == point.arrivals
        assert "lb.caft.fault_reroutes" not in point.metrics.counters
        assert point.tier_asymmetry == ()

    def test_black_hole_triggers_fault_reroutes(self):
        faults = (
            LinkLoss(time=microseconds(200), spine=1, core=0, probability=1.0),
            LinkLoss(time=milliseconds(5), spine=1, core=0, probability=0.0),
        )
        point = _tiny_multipod("caft", faults).run()
        assert point.metrics.counters.get("lb.caft.fault_reroutes", 0) > 0
        assert point.tier_asymmetry == (("core", 0.125),)

    def test_conga_records_no_caft_metric(self):
        faults = (
            LinkLoss(time=microseconds(200), spine=1, core=0, probability=1.0),
        )
        point = _tiny_multipod("conga", faults).run()
        assert "lb.caft.fault_reroutes" not in point.metrics.counters


@pytest.mark.caft_smoke
class TestCaftSmokeScenario:
    """CI gate: the committed caft smoke scenario through worker processes."""

    def test_subprocess_backend_matches_inline(self):
        pytest.importorskip("yaml", reason="scenario files need PyYAML")
        from pathlib import Path

        from repro.analysis.fct import records_digest
        from repro.runner import Dispatcher, SubprocessBackend, run_sweep
        from repro.scenarios import load_scenario

        scenario = load_scenario(
            Path(__file__).resolve().parents[1] / "scenarios" / "caft_smoke.yaml"
        )
        specs = scenario.compile()
        inline = run_sweep(specs, cache=None)
        dispatched = Dispatcher(SubprocessBackend(workers=2), cache=None).run(specs)
        assert len(inline.points) == len(dispatched.points) == 2
        for mine, theirs in zip(inline.points, dispatched.points):
            assert mine.spec.content_hash() == theirs.spec.content_hash()
            assert records_digest(list(mine.records)) == records_digest(
                list(theirs.records)
            )
        # The fault actually bit: the caft point rerouted around the hole.
        by_scheme = {p.scheme: p for p in inline.points}
        assert by_scheme["caft"].tier_asymmetry == (("core", 0.125),)


class TestDegradationMetrics:
    def _records(self):
        # one flow completing per millisecond bucket, 1 KB each
        return [
            FlowRecord(
                flow_id=i,
                src=0,
                dst=1,
                size=1000,
                start_time=0,
                fct=milliseconds(i) + 1,
            )
            for i in range(6)
        ]

    def test_window_goodput_counts_only_the_window(self):
        records = self._records()
        # [1ms, 3ms) holds completions at 1ms+1 and 2ms+1: 2 KB over 2 ms.
        got = window_goodput(records, milliseconds(1), milliseconds(3))
        assert got == pytest.approx(2000 * 8e9 / milliseconds(2))
        assert window_goodput(records, milliseconds(1), milliseconds(1)) == 0.0

    def test_tier_asymmetry_round_trip(self):
        summary = DegradationSummary.from_records(
            self._records(),
            window_start=milliseconds(1),
            window_end=milliseconds(3),
            end_time=milliseconds(6),
            tier_asymmetry=(("core", 0.5), ("leaf", 0.0)),
        )
        assert summary.asymmetry_of("core") == 0.5
        assert summary.asymmetry_of("leaf") == 0.0
        assert summary.asymmetry_of("unknown") == 0.0

    def test_goodput_recovered(self):
        summary = DegradationSummary.from_records(
            self._records(),
            window_start=milliseconds(1),
            window_end=milliseconds(3),
            end_time=milliseconds(6),
        )
        assert summary.goodput_recovered == pytest.approx(
            summary.goodput_after_bps / summary.goodput_before_bps
        )
