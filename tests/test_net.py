"""Tests for the network substrate: packets, queues, ports, links, hosts."""

import pytest
from hypothesis import given, strategies as st

from repro.net import (
    ACK_BYTES,
    DropTailQueue,
    HEADER_BYTES,
    Host,
    Node,
    OverlayHeader,
    Packet,
    Port,
    ack_packet,
    connect,
    data_packet,
)
from repro.sim import Simulator
from repro.units import gbps, transmission_time


class TestPacket:
    def test_data_packet_size_includes_headers(self):
        packet = data_packet(
            src=1, dst=2, sport=10, dport=20, flow_id=5, seq=0, payload_len=1460
        )
        assert packet.size == 1460 + HEADER_BYTES
        assert not packet.is_ack

    def test_ack_packet(self):
        ack = ack_packet(src=2, dst=1, sport=20, dport=10, flow_id=5, ack_no=1460)
        assert ack.is_ack
        assert ack.size == ACK_BYTES
        assert ack.ack_no == 1460

    def test_five_tuple(self):
        packet = data_packet(
            src=1, dst=2, sport=10, dport=20, flow_id=5, seq=0, payload_len=100
        )
        assert packet.five_tuple == (1, 2, 10, 20, "tcp")

    def test_end_seq(self):
        packet = data_packet(
            src=1, dst=2, sport=1, dport=1, flow_id=1, seq=1000, payload_len=500
        )
        assert packet.end_seq == 1500

    def test_packet_ids_unique(self):
        a = data_packet(src=1, dst=2, sport=1, dport=1, flow_id=1, seq=0, payload_len=1)
        b = data_packet(src=1, dst=2, sport=1, dport=1, flow_id=1, seq=0, payload_len=1)
        assert a.packet_id != b.packet_id

    def test_overlay_header_defaults(self):
        header = OverlayHeader(src_leaf=0, dst_leaf=1)
        assert header.ce == 0
        assert not header.fb_valid

    def test_ack_echo_default(self):
        ack = ack_packet(src=2, dst=1, sport=1, dport=1, flow_id=1, ack_no=0)
        assert ack.echo == -1


class TestDropTailQueue:
    def _packet(self, size=1000):
        return Packet(src=0, dst=1, size=size)

    def test_fifo_order(self):
        queue = DropTailQueue(10_000)
        first, second = self._packet(), self._packet()
        assert queue.offer(first)
        assert queue.offer(second)
        assert queue.poll() is first
        assert queue.poll() is second
        assert queue.poll() is None

    def test_capacity_enforced_in_bytes(self):
        queue = DropTailQueue(2500)
        assert queue.offer(self._packet(1000))
        assert queue.offer(self._packet(1000))
        assert not queue.offer(self._packet(1000))  # would exceed 2500
        assert queue.offer(self._packet(500))  # exactly fits
        assert queue.stats.dropped_packets == 1
        assert queue.stats.dropped_bytes == 1000

    def test_occupancy_tracking(self):
        queue = DropTailQueue(10_000)
        queue.offer(self._packet(700))
        queue.offer(self._packet(300))
        assert queue.byte_occupancy == 1000
        queue.poll()
        assert queue.byte_occupancy == 300
        assert queue.stats.max_bytes == 1000

    def test_unbounded(self):
        queue = DropTailQueue(None)
        for _ in range(1000):
            assert queue.offer(self._packet(10_000))
        assert queue.byte_occupancy == 10_000_000

    def test_rejects_bad_capacity(self):
        with pytest.raises(ValueError):
            DropTailQueue(0)

    def test_sample_occupancy(self):
        queue = DropTailQueue(10_000)
        queue.offer(self._packet(500))
        queue.sample_occupancy()
        queue.poll()
        queue.sample_occupancy()
        assert queue.stats.samples == [500, 0]

    @given(sizes=st.lists(st.integers(min_value=1, max_value=2000), max_size=60))
    def test_byte_conservation(self, sizes):
        queue = DropTailQueue(5000)
        for size in sizes:
            queue.offer(Packet(src=0, dst=1, size=size))
        drained = 0
        while True:
            packet = queue.poll()
            if packet is None:
                break
            drained += packet.size
        stats = queue.stats
        assert stats.enqueued_bytes == drained
        assert stats.enqueued_bytes + stats.dropped_bytes == sum(sizes)


class _Sink(Node):
    """Test node recording arrivals."""

    def __init__(self, sim, name="sink"):
        super().__init__(sim, name)
        self.received = []

    def receive(self, packet, port):
        self.received.append((packet, port, self.sim.now))


class TestPortAndLink:
    def _pair(self, rate=gbps(10), delay=500, capacity=10_000_000):
        sim = Simulator()
        a = _Sink(sim, "a")
        b = _Sink(sim, "b")
        pa = a.add_port(rate, capacity)
        pb = b.add_port(rate, capacity)
        connect(pa, pb, delay)
        return sim, a, b, pa, pb

    def test_delivery_timing_is_exact(self):
        sim, _a, b, pa, _pb = self._pair()
        packet = Packet(src=0, dst=1, size=1500)
        pa.send(packet)
        sim.run()
        serialization = transmission_time(1500, gbps(10))
        assert b.received == [(packet, _pb_of(b), serialization + 500)]

    def test_back_to_back_serialization(self):
        sim, _a, b, pa, _pb = self._pair()
        p1, p2 = Packet(src=0, dst=1, size=1500), Packet(src=0, dst=1, size=1500)
        pa.send(p1)
        pa.send(p2)
        sim.run()
        t1 = b.received[0][2]
        t2 = b.received[1][2]
        assert t2 - t1 == transmission_time(1500, gbps(10))

    def test_connect_rejects_double_wiring(self):
        sim = Simulator()
        a, b, c = _Sink(sim, "a"), _Sink(sim, "b"), _Sink(sim, "c")
        pa, pb, pc = (n.add_port(gbps(1)) for n in (a, b, c))
        connect(pa, pb)
        with pytest.raises(ValueError):
            connect(pa, pc)

    def test_send_without_peer_drops(self):
        sim = Simulator()
        a = _Sink(sim, "a")
        pa = a.add_port(gbps(1))
        assert not pa.send(Packet(src=0, dst=1, size=100))

    def test_failed_link_drops_both_directions(self):
        sim, a, b, pa, pb = self._pair()
        pa.fail()
        assert not pb.up
        assert not pa.send(Packet(src=0, dst=1, size=100))
        assert not pb.send(Packet(src=1, dst=0, size=100))
        sim.run()
        assert a.received == [] and b.received == []

    def test_restore(self):
        sim, _a, b, pa, _pb = self._pair()
        pa.fail()
        pa.restore()
        assert pa.send(Packet(src=0, dst=1, size=100))
        sim.run()
        assert len(b.received) == 1

    def test_queue_overflow_drops(self):
        sim, _a, b, pa, _pb = self._pair(capacity=3000)
        for _ in range(5):
            pa.send(Packet(src=0, dst=1, size=1500))
        sim.run()
        # One packet in flight immediately + two queued (3000B) fit.
        assert len(b.received) == 3
        assert pa.queue.stats.dropped_packets == 2

    def test_on_transmit_hook_fires_per_packet(self):
        sim, _a, _b, pa, _pb = self._pair()
        seen = []
        pa.on_transmit.append(lambda packet: seen.append(packet.size))
        pa.send(Packet(src=0, dst=1, size=700))
        pa.send(Packet(src=0, dst=1, size=900))
        sim.run()
        assert seen == [700, 900]

    def test_counters(self):
        sim, _a, b, pa, pb = self._pair()
        pa.send(Packet(src=0, dst=1, size=1500))
        sim.run()
        assert pa.tx_packets == 1 and pa.tx_bytes == 1500
        assert pb.rx_packets == 1 and pb.rx_bytes == 1500

    def test_hop_count_increments(self):
        sim, _a, b, pa, _pb = self._pair()
        packet = Packet(src=0, dst=1, size=100)
        pa.send(packet)
        sim.run()
        assert packet.hops == 1

    def test_rejects_bad_rate(self):
        sim = Simulator()
        node = _Sink(sim)
        with pytest.raises(ValueError):
            node.add_port(0)


def _pb_of(node):
    return node.ports[0]


class TestHost:
    def test_bind_and_deliver(self):
        sim = Simulator()
        h1 = Host(sim, 0, gbps(10))
        h2 = Host(sim, 1, gbps(10))
        connect(h1.nic, h2.nic)
        got = []
        h2.bind(42, got.append)
        h1.send(Packet(src=0, dst=1, size=100, flow_id=42))
        sim.run()
        assert len(got) == 1

    def test_unbound_flow_counted(self):
        sim = Simulator()
        h1 = Host(sim, 0, gbps(10))
        h2 = Host(sim, 1, gbps(10))
        connect(h1.nic, h2.nic)
        h1.send(Packet(src=0, dst=1, size=100, flow_id=7))
        sim.run()
        assert h2.undelivered_packets == 1

    def test_double_bind_rejected(self):
        sim = Simulator()
        host = Host(sim, 0, gbps(10))
        host.bind(1, lambda p: None)
        with pytest.raises(ValueError):
            host.bind(1, lambda p: None)

    def test_unbind_is_idempotent(self):
        sim = Simulator()
        host = Host(sim, 0, gbps(10))
        host.bind(1, lambda p: None)
        host.unbind(1)
        host.unbind(1)  # no error

    def test_node_receive_abstract(self):
        sim = Simulator()
        node = Node(sim, "n")
        with pytest.raises(NotImplementedError):
            node.receive(Packet(src=0, dst=1, size=1), None)
