"""Tests for uplink selectors: ECMP, spraying, weighted, CONGA, local-only."""

import pytest

from repro.core import DEFAULT_PARAMS
from repro.lb import (
    CongaFlowSelector,
    CongaSelector,
    EcmpSelector,
    LocalAwareSelector,
    PacketSpraySelector,
    WeightedRandomSelector,
    ecmp_hash,
)
from repro.net import Packet
from repro.sim import Simulator
from repro.topology import build_leaf_spine, scaled_testbed
from repro.units import microseconds, milliseconds


def _leaf(selector_factory, seed=1):
    sim = Simulator(seed=seed)
    fabric = build_leaf_spine(sim, scaled_testbed(hosts_per_leaf=2))
    fabric.finalize(selector_factory)
    return sim, fabric, fabric.leaves[0]


def _packet(sport=100, dport=200, src=0, dst=2):
    return Packet(src=src, dst=dst, size=1500, sport=sport, dport=dport, flow_id=1)


class TestEcmpHash:
    def test_deterministic(self):
        tup = (1, 2, 3, 4, "tcp")
        assert ecmp_hash(tup) == ecmp_hash(tup)

    def test_salt_decorrelates(self):
        tup = (1, 2, 3, 4, "tcp")
        values = {ecmp_hash(tup, salt=s) % 16 for s in range(64)}
        assert len(values) > 1


class TestEcmpSelector:
    def test_same_flow_always_same_uplink(self):
        _sim, _fabric, leaf = _leaf(EcmpSelector.factory())
        packet = _packet()
        choices = {
            leaf.selector.choose_uplink(packet, 1, [0, 1, 2, 3]) for _ in range(20)
        }
        assert len(choices) == 1

    def test_different_flows_spread(self):
        _sim, _fabric, leaf = _leaf(EcmpSelector.factory())
        choices = {
            leaf.selector.choose_uplink(_packet(sport=s), 1, [0, 1, 2, 3])
            for s in range(200)
        }
        assert choices == {0, 1, 2, 3}

    def test_respects_candidates(self):
        _sim, _fabric, leaf = _leaf(EcmpSelector.factory())
        for s in range(50):
            choice = leaf.selector.choose_uplink(_packet(sport=s), 1, [1, 3])
            assert choice in (1, 3)


class TestPacketSpray:
    def test_round_robin(self):
        _sim, _fabric, leaf = _leaf(PacketSpraySelector.factory())
        packet = _packet()
        picks = [
            leaf.selector.choose_uplink(packet, 1, [0, 1, 2, 3]) for _ in range(8)
        ]
        assert picks == [0, 1, 2, 3, 0, 1, 2, 3]


class TestWeightedRandom:
    def test_distribution_follows_weights(self):
        _sim, _fabric, leaf = _leaf(WeightedRandomSelector.factory([3, 1, 0, 0]))
        counts = [0, 0, 0, 0]
        for s in range(2000):
            counts[leaf.selector.choose_uplink(_packet(sport=s), 1, [0, 1, 2, 3])] += 1
        assert counts[2] == 0 and counts[3] == 0
        assert counts[0] / counts[1] == pytest.approx(3.0, rel=0.25)

    def test_rejects_wrong_length(self):
        with pytest.raises(ValueError):
            _leaf(WeightedRandomSelector.factory([1, 2]))

    def test_rejects_all_zero(self):
        with pytest.raises(ValueError):
            _leaf(WeightedRandomSelector.factory([0, 0, 0, 0]))


class TestCongaSelector:
    def test_picks_min_of_max_local_remote(self):
        _sim, _fabric, leaf = _leaf(CongaSelector.factory())
        selector = leaf.selector
        # Remote metrics: uplink 0 bad, others good.
        leaf.to_leaf_table.update(1, 0, 7)
        leaf.to_leaf_table.update(1, 1, 1)
        leaf.to_leaf_table.update(1, 2, 5)
        leaf.to_leaf_table.update(1, 3, 4)
        choice = selector.choose_uplink(_packet(), 1, [0, 1, 2, 3])
        assert choice == 1

    def test_local_congestion_considered(self):
        _sim, _fabric, leaf = _leaf(CongaSelector.factory())
        # Saturate uplink 1's DRE locally; remote all zero.
        leaf.uplink_dres[1].on_transmit(10_000_000)
        packet = _packet()
        choice = leaf.selector.choose_uplink(packet, 1, [1, 2])
        assert choice == 2

    def test_path_metric_is_max(self):
        _sim, _fabric, leaf = _leaf(CongaSelector.factory())
        leaf.to_leaf_table.update(1, 0, 3)
        leaf.uplink_dres[0].on_transmit(10_000_000)  # local saturated
        assert leaf.selector.path_metric(1, 0) == 7

    def test_flowlet_stickiness(self):
        _sim, _fabric, leaf = _leaf(CongaSelector.factory())
        packet = _packet()
        first = leaf.selector.choose_uplink(packet, 1, [0, 1, 2, 3])
        # Make the chosen uplink look terrible; the active flowlet must stick.
        leaf.to_leaf_table.update(1, first, 7)
        again = leaf.selector.choose_uplink(packet, 1, [0, 1, 2, 3])
        assert again == first

    def test_new_flowlet_can_move(self):
        sim, _fabric, leaf = _leaf(CongaSelector.factory())
        packet = _packet()
        first = leaf.selector.choose_uplink(packet, 1, [0, 1, 2, 3])
        leaf.to_leaf_table.update(1, first, 7)
        sim.run(until=milliseconds(5))  # flowlet gap >> T_fl
        # Refresh the metric so it has not aged away by decision time.
        leaf.to_leaf_table.update(1, first, 7)
        moved = leaf.selector.choose_uplink(packet, 1, [0, 1, 2, 3])
        assert moved != first

    def test_tie_prefers_previous_port(self):
        """3.5: a flow only moves if a strictly better uplink exists."""
        sim, _fabric, leaf = _leaf(CongaSelector.factory())
        packet = _packet()
        first = leaf.selector.choose_uplink(packet, 1, [0, 1, 2, 3])
        sim.run(until=milliseconds(5))  # expire the flowlet; all metrics 0
        assert leaf.selector.choose_uplink(packet, 1, [0, 1, 2, 3]) == first

    def test_flowlet_expired_port_down_reroutes(self):
        sim, fabric, leaf = _leaf(CongaSelector.factory())
        packet = _packet()
        first = leaf.selector.choose_uplink(packet, 1, [0, 1, 2, 3])
        leaf.uplinks[first].fail()
        candidates = [i for i in range(4) if i != first]
        choice = leaf.selector.choose_uplink(packet, 1, candidates)
        assert choice != first

    def test_decision_counter(self):
        _sim, _fabric, leaf = _leaf(CongaSelector.factory())
        leaf.selector.choose_uplink(_packet(sport=1), 1, [0, 1])
        leaf.selector.choose_uplink(_packet(sport=2), 1, [0, 1])
        leaf.selector.choose_uplink(_packet(sport=1), 1, [0, 1])  # cached
        assert leaf.selector.decisions == 2


class TestCongaFlowSelector:
    def test_uses_13ms_timeout(self):
        _sim, _fabric, leaf = _leaf(CongaFlowSelector.factory())
        assert leaf.selector.params.flowlet_timeout == milliseconds(13)

    def test_sticks_across_large_gaps(self):
        sim, _fabric, leaf = _leaf(CongaFlowSelector.factory())
        packet = _packet()
        first = leaf.selector.choose_uplink(packet, 1, [0, 1, 2, 3])
        leaf.to_leaf_table.update(1, first, 7)
        sim.run(until=milliseconds(10))  # >> 500us but < 13ms
        assert leaf.selector.choose_uplink(packet, 1, [0, 1, 2, 3]) == first


class TestLocalAwareSelector:
    def test_ignores_remote_metrics(self):
        _sim, _fabric, leaf = _leaf(LocalAwareSelector.factory())
        # Remote says uplink 0 is terrible; local scheme cannot see it.
        leaf.to_leaf_table.update(1, 0, 7)
        for u in (1, 2, 3):
            leaf.uplink_dres[u].on_transmit(10_000_000)
        choice = leaf.selector.choose_uplink(_packet(), 1, [0, 1, 2, 3])
        assert choice == 0

    def test_prefers_locally_idle(self):
        _sim, _fabric, leaf = _leaf(LocalAwareSelector.factory())
        leaf.uplink_dres[0].on_transmit(10_000_000)
        choice = leaf.selector.choose_uplink(_packet(), 1, [0, 1])
        assert choice == 1
