"""Fault tolerance of the sweep runner itself.

The fault plane's second half: ``run_sweep`` must survive points that
raise, hang, or kill their worker process, return a structured
:class:`PointFailure` in the failing point's input-order slot, and keep
the result cache uncorrupted throughout.

The chaos schemes here misbehave *inside* ``make_selector`` so the damage
happens in the worker that executes the point, not at spec construction.
They are registered at import time (for the parent and forked workers) and
again via the ``ProcessPoolExecutor`` initializer (for spawned workers).
"""

import os
import pickle
import time
from concurrent.futures import ProcessPoolExecutor

import pytest

from repro.apps import ExperimentSpec
from repro.apps.experiment import SchemeSpec, register_scheme
from repro.apps.traffic import tcp_flow_factory
from repro.lb import EcmpSelector
from repro.runner import PointFailure, ResultCache, run_sweep
from repro.runner.failures import FAILURE_KINDS


def _crash_selector():
    os._exit(3)  # simulates a segfault / OOM kill: no exception, no cleanup


def _sleep_selector():
    time.sleep(15.0)  # far beyond any test timeout; killed, never finishes
    return EcmpSelector.factory()


def _error_selector():
    raise RuntimeError("chaos: injected point failure")


def _register_chaos_schemes():
    """Register the misbehaving schemes (idempotent; used as pool initializer)."""
    for name, selector in (
        ("chaos-crash", _crash_selector),
        ("chaos-sleep", _sleep_selector),
        ("chaos-error", _error_selector),
    ):
        register_scheme(
            SchemeSpec(name, selector, tcp_flow_factory), replace=True
        )


_register_chaos_schemes()


def _chaos_pool(n):
    return ProcessPoolExecutor(max_workers=n, initializer=_register_chaos_schemes)


def _tiny(scheme, seed=1):
    return ExperimentSpec(
        scheme, "enterprise", 0.4, seed=seed, num_flows=12, size_scale=0.02
    )


# ---------------------------------------------------------------------------
# PointFailure value semantics


def test_point_failure_validation():
    spec = _tiny("ecmp")
    with pytest.raises(ValueError):
        PointFailure(spec, "boom", kind="meteor", attempts=1, wall_seconds=0.0)
    with pytest.raises(ValueError):
        PointFailure(spec, "boom", kind="crash", attempts=0, wall_seconds=0.0)
    failure = PointFailure(spec, "boom", kind="exception", attempts=2, wall_seconds=0.1)
    assert failure.scheme == "ecmp"
    assert failure.workload == "enterprise"
    assert failure.load == 0.4
    assert not failure.from_cache
    assert set(FAILURE_KINDS) == {"exception", "timeout", "crash"}


# ---------------------------------------------------------------------------
# Inline (workers=0) failure handling


def test_inline_exception_becomes_point_failure(tmp_path):
    cache = ResultCache(tmp_path / "cache")
    specs = [_tiny("ecmp"), _tiny("chaos-error")]
    sweep = run_sweep(specs, workers=0, cache=cache, retries=1, retry_backoff=0.0)
    assert len(sweep.points) == 2  # one entry per spec, in input order
    good, bad = sweep.points
    assert good.spec.scheme == "ecmp" and good.completed == good.arrivals
    assert isinstance(bad, PointFailure)
    assert bad.kind == "exception"
    assert bad.attempts == 2  # first try + one retry
    assert "chaos: injected point failure" in bad.error
    assert sweep.failures == [bad]
    # Only the good point was cached; failures are never cached.
    assert len(cache) == 1
    assert cache.get(specs[0]) is not None
    assert cache.get(specs[1]) is None
    # events_executed must skip failures rather than crash on them.
    assert sweep.events_executed == good.events_executed


def test_inline_retry_can_succeed(monkeypatch):
    calls = {"n": 0}

    def flaky():
        calls["n"] += 1
        if calls["n"] == 1:
            raise RuntimeError("transient")
        return EcmpSelector.factory()

    register_scheme(
        SchemeSpec("chaos-flaky", flaky, tcp_flow_factory), replace=True
    )
    sweep = run_sweep(
        [_tiny("chaos-flaky")], workers=0, cache=None, retries=1, retry_backoff=0.0
    )
    assert sweep.failures == []
    assert sweep.points[0].completed == sweep.points[0].arrivals


# ---------------------------------------------------------------------------
# Worker-process death (the chaos-smoke gate in CI)


@pytest.mark.chaos_smoke
def test_worker_crash_yields_one_failure_and_clean_cache(tmp_path):
    cache = ResultCache(tmp_path / "cache")
    specs = [
        _tiny("ecmp", seed=1),
        _tiny("chaos-crash"),
        _tiny("ecmp", seed=2),
        _tiny("conga", seed=1),
    ]
    sweep = run_sweep(
        specs,
        workers=2,
        cache=cache,
        executor_factory=_chaos_pool,
        retries=1,
        retry_backoff=0.0,
    )
    assert len(sweep.points) == 4
    failures = sweep.failures
    assert len(failures) == 1
    assert failures[0].kind == "crash"
    assert failures[0].spec.scheme == "chaos-crash"
    assert failures[0].attempts == 2
    # Every good point completed despite sharing a pool with the crasher.
    good = [p for p in sweep.points if not isinstance(p, PointFailure)]
    assert len(good) == 3
    assert all(p.completed == p.arrivals for p in good)
    # The cache holds exactly the three good results and no debris.
    assert len(cache) == 3
    assert not list((tmp_path / "cache").glob("*.tmp.*"))
    for spec, point in zip(specs, sweep.points):
        if not isinstance(point, PointFailure):
            assert cache.get(spec) is not None


@pytest.mark.chaos_smoke
def test_point_timeout_is_killed_and_reported(tmp_path):
    cache = ResultCache(tmp_path / "cache")
    specs = [_tiny("chaos-sleep"), _tiny("ecmp", seed=3), _tiny("ecmp", seed=4)]
    sweep = run_sweep(
        specs,
        workers=2,
        cache=cache,
        executor_factory=_chaos_pool,
        timeout=2.0,
        retries=0,
        retry_backoff=0.0,
    )
    failures = sweep.failures
    assert len(failures) == 1
    assert failures[0].kind == "timeout"
    assert failures[0].spec.scheme == "chaos-sleep"
    good = [p for p in sweep.points if not isinstance(p, PointFailure)]
    assert len(good) == 2  # innocents requeued after the pool kill
    assert all(p.completed == p.arrivals for p in good)
    assert len(cache) == 2


# ---------------------------------------------------------------------------
# Cache hardening


def test_cache_put_failure_leaves_no_debris(tmp_path, monkeypatch):
    from repro.runner import cache as cache_module

    cache = ResultCache(tmp_path / "cache")
    spec = _tiny("ecmp")
    point = spec.run()

    def explode(*args, **kwargs):
        raise OSError("disk full")

    monkeypatch.setattr(cache_module.pickle, "dump", explode)
    with pytest.raises(OSError):
        cache.put(spec, point)
    monkeypatch.undo()
    # No partial entry, no stale tmp file.
    assert cache.get(spec) is None
    assert list((tmp_path / "cache").iterdir()) == []
    # And a clean put still works afterwards.
    cache.put(spec, point)
    assert cache.get(spec) is not None


def test_cache_clear_sweeps_stale_tmp_files(tmp_path):
    root = tmp_path / "cache"
    cache = ResultCache(root)
    spec = _tiny("ecmp")
    cache.put(spec, spec.run())
    (root / "deadbeef.tmp.12345").write_bytes(b"partial write")
    assert cache.clear() == 1  # one real entry removed ...
    assert list(root.iterdir()) == []  # ... and the stale tmp swept up
    assert len(cache) == 0


def test_corrupt_cache_entry_is_a_miss(tmp_path):
    cache = ResultCache(tmp_path / "cache")
    spec = _tiny("ecmp")
    path = cache.put(spec, spec.run())
    path.write_bytes(pickle.dumps(object())[:10])  # truncated garbage
    assert cache.get(spec) is None
    assert not path.exists()  # corrupt entry dropped, not left to re-fail
