"""Tests for the dynamic flow-level simulator."""

import numpy as np
import pytest

from repro.fluid import (
    ActiveFlow,
    FlowLevelFabric,
    FlowLevelSimulation,
    max_min_rates,
    run_flow_level,
)
from repro.topology import TESTBED, scaled_testbed
from repro.workloads import DATA_MINING, WEB_SEARCH


class TestFlowLevelFabric:
    def test_capacity_inventory(self):
        fabric = FlowLevelFabric(scaled_testbed(hosts_per_leaf=4))
        # 8 hosts x 2 access directions + 2 leaves x 4 uplinks + 2 spines x
        # 2 leaves aggregated downlinks.
        assert len(fabric.capacity) == 16 + 8 + 4

    def test_fail_link_removes_capacity(self):
        fabric = FlowLevelFabric(scaled_testbed(hosts_per_leaf=4))
        before = fabric.capacity[("down", 1, 1)]
        fabric.fail_link(1, 1, 0)
        assert ("up", 1, 2) not in fabric.capacity
        assert fabric.capacity[("down", 1, 1)] == before / 2

    def test_fail_unknown_link_raises(self):
        fabric = FlowLevelFabric(scaled_testbed(hosts_per_leaf=4))
        fabric.fail_link(1, 1, 0)
        with pytest.raises(ValueError):
            fabric.fail_link(1, 1, 0)

    def test_candidate_uplinks_respect_failures(self):
        fabric = FlowLevelFabric(scaled_testbed(hosts_per_leaf=4))
        assert fabric.candidate_uplinks(0, 1) == [0, 1, 2, 3]
        fabric.fail_link(0, 1, 0)
        assert fabric.candidate_uplinks(0, 1) == [0, 1, 3]

    def test_path_links_cross_rack(self):
        fabric = FlowLevelFabric(scaled_testbed(hosts_per_leaf=4))
        links = fabric.path_links(0, 4, uplink=2)
        assert ("up", 0, 2) in links
        assert ("down", 1, 1) in links  # uplink 2 -> spine 1

    def test_intra_rack_path_skips_fabric(self):
        fabric = FlowLevelFabric(scaled_testbed(hosts_per_leaf=4))
        links = fabric.path_links(0, 1, uplink=0)
        assert all(link[0].startswith("acc") for link in links)


class TestMaxMinRates:
    def _flow(self, links, flow_id=1):
        return ActiveFlow(
            flow_id=flow_id, src=0, dst=1, size=1, remaining=1.0,
            links=tuple(links), started_at=0.0,
        )

    def test_single_flow_gets_bottleneck(self):
        flows = [self._flow([("a",), ("b",)])]
        max_min_rates(flows, {("a",): 10.0, ("b",): 4.0})
        assert flows[0].rate == pytest.approx(4.0)

    def test_equal_sharing(self):
        flows = [self._flow([("a",)], i) for i in range(4)]
        max_min_rates(flows, {("a",): 8.0})
        assert all(f.rate == pytest.approx(2.0) for f in flows)

    def test_classic_max_min_example(self):
        # Two links: A (cap 10) shared by f1,f2; B (cap 4) used by f2 only.
        f1 = self._flow([("A",)], 1)
        f2 = self._flow([("A",), ("B",)], 2)
        max_min_rates([f1, f2], {("A",): 10.0, ("B",): 4.0})
        assert f2.rate == pytest.approx(4.0)
        assert f1.rate == pytest.approx(6.0)

    def test_no_link_exceeds_capacity(self):
        rng = np.random.default_rng(0)
        links = [(chr(97 + i),) for i in range(5)]
        capacity = {link: float(rng.uniform(1, 10)) for link in links}
        flows = []
        for i in range(20):
            chosen = rng.choice(5, size=2, replace=False)
            flows.append(self._flow([links[c] for c in chosen], i))
        max_min_rates(flows, capacity)
        for link in links:
            load = sum(f.rate for f in flows if link in f.links)
            assert load <= capacity[link] * (1 + 1e-6)


class TestSimulation:
    def test_all_flows_complete(self):
        done = run_flow_level(
            scaled_testbed(hosts_per_leaf=4), WEB_SEARCH, 0.5,
            scheme="ecmp", num_flows=200, seed=1,
        )
        assert len(done) == 200
        assert all(c.fct > 0 for c in done)
        assert all(c.normalized_fct >= 1.0 - 1e-9 for c in done)

    def test_deterministic(self):
        def once():
            return [
                c.fct
                for c in run_flow_level(
                    scaled_testbed(hosts_per_leaf=4), WEB_SEARCH, 0.5,
                    scheme="conga", num_flows=100, seed=9,
                )
            ]

        assert once() == once()

    def test_rejects_unknown_scheme(self):
        with pytest.raises(ValueError):
            FlowLevelSimulation(TESTBED, WEB_SEARCH, 0.5, scheme="bogus")

    def test_full_scale_testbed_runs_fast(self):
        """The point of the abstraction: the paper's 64-host testbed with
        unscaled data-mining flows completes in seconds."""
        done = run_flow_level(
            TESTBED, DATA_MINING, 0.6, scheme="conga", num_flows=500, seed=2
        )
        assert len(done) == 500

    def test_conga_better_under_failure_full_scale(self):
        """Flow-level confirmation of Figure 11 at the true testbed size."""
        results = {}
        for scheme in ("ecmp", "conga"):
            done = run_flow_level(
                TESTBED, DATA_MINING, 0.7,
                scheme=scheme, num_flows=800, seed=3,
                failed_links=[(1, 1, 0)], clients=list(range(32, 64)),
            )
            results[scheme] = float(
                np.mean([c.normalized_fct for c in done])
            )
        assert results["conga"] < results["ecmp"]

    def test_schemes_tie_on_symmetric_fabric(self):
        """With idealized fair sharing and no failures, ECMP's collisions
        cost little — the flow-level analogue of the paper's enterprise
        baseline result."""
        results = {}
        for scheme in ("ecmp", "conga"):
            done = run_flow_level(
                TESTBED, WEB_SEARCH, 0.5, scheme=scheme,
                num_flows=500, seed=4,
            )
            results[scheme] = float(np.mean([c.normalized_fct for c in done]))
        assert results["conga"] == pytest.approx(results["ecmp"], rel=0.1)
