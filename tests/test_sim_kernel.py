"""Tests for the discrete-event simulation kernel."""

import pytest
from hypothesis import given, strategies as st

from repro.sim import (
    PeriodicTimer,
    SimulationError,
    Simulator,
    Timer,
    run_until_idle,
)


class TestScheduling:
    def test_starts_at_zero(self):
        assert Simulator().now == 0

    def test_events_run_in_time_order(self):
        sim = Simulator()
        order = []
        sim.schedule(30, lambda: order.append("c"))
        sim.schedule(10, lambda: order.append("a"))
        sim.schedule(20, lambda: order.append("b"))
        sim.run()
        assert order == ["a", "b", "c"]

    def test_ties_break_by_insertion_order(self):
        sim = Simulator()
        order = []
        for label in "abcde":
            sim.schedule(42, lambda l=label: order.append(l))
        sim.run()
        assert order == list("abcde")

    def test_now_advances_to_event_time(self):
        sim = Simulator()
        seen = []
        sim.schedule(100, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [100]
        assert sim.now == 100

    def test_schedule_at_absolute_time(self):
        sim = Simulator()
        seen = []
        sim.schedule_at(77, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [77]

    def test_cannot_schedule_in_past(self):
        sim = Simulator()
        sim.schedule(10, lambda: None)
        sim.run()
        with pytest.raises(SimulationError):
            sim.schedule_at(5, lambda: None)

    def test_events_scheduled_during_execution(self):
        sim = Simulator()
        order = []

        def first():
            order.append("first")
            sim.schedule(5, lambda: order.append("nested"))

        sim.schedule(10, first)
        sim.schedule(12, lambda: order.append("second"))
        sim.run()
        # nested was scheduled for t=15, after "second" at t=12
        assert order == ["first", "second", "nested"]

    def test_cancel(self):
        sim = Simulator()
        fired = []
        event = sim.schedule(10, lambda: fired.append(1))
        Simulator.cancel(event)
        sim.run()
        assert fired == []

    def test_events_executed_counter(self):
        sim = Simulator()
        for _ in range(7):
            sim.schedule(1, lambda: None)
        sim.run()
        assert sim.events_executed == 7


class TestRunControl:
    def test_run_until_pauses_clock(self):
        sim = Simulator()
        sim.schedule(1000, lambda: None)
        assert sim.run(until=500) == 500
        assert sim.now == 500
        sim.run()
        assert sim.now == 1000

    def test_run_until_resumes(self):
        sim = Simulator()
        seen = []
        sim.schedule(100, lambda: seen.append("a"))
        sim.schedule(300, lambda: seen.append("b"))
        sim.run(until=200)
        assert seen == ["a"]
        sim.run(until=400)
        assert seen == ["a", "b"]

    def test_run_until_with_empty_heap_advances_clock(self):
        sim = Simulator()
        sim.run(until=1234)
        assert sim.now == 1234

    def test_stop(self):
        sim = Simulator()
        seen = []
        sim.schedule(1, lambda: (seen.append(1), sim.stop()))
        sim.schedule(2, lambda: seen.append(2))
        sim.run()
        assert seen == [1]
        sim.run()
        assert seen == [1, 2]

    def test_max_events(self):
        sim = Simulator()
        seen = []
        for i in range(10):
            sim.schedule(i + 1, lambda i=i: seen.append(i))
        sim.run(max_events=3)
        assert seen == [0, 1, 2]

    def test_run_until_idle(self):
        sim = Simulator()
        seen = []
        sim.schedule(5, lambda: sim.schedule(5, lambda: seen.append("done")))
        run_until_idle(sim)
        assert seen == ["done"]
        assert sim.pending_events == 0


class TestRandomStreams:
    def test_named_streams_are_stable(self):
        sim = Simulator(seed=5)
        a = sim.rng("x")
        assert sim.rng("x") is a

    def test_streams_are_independent_of_creation_order(self):
        sim1 = Simulator(seed=5)
        first = sim1.rng("a").integers(1000)
        sim2 = Simulator(seed=5)
        sim2.rng("b")  # creating another stream first must not matter
        second = sim2.rng("a").integers(1000)
        assert first == second

    def test_different_seeds_differ(self):
        draws1 = Simulator(seed=1).rng("x").integers(2**30, size=8)
        draws2 = Simulator(seed=2).rng("x").integers(2**30, size=8)
        assert list(draws1) != list(draws2)

    def test_seed_property(self):
        assert Simulator(seed=99).seed == 99


class TestTimer:
    def test_fires_after_delay(self):
        sim = Simulator()
        fired = []
        timer = Timer(sim, lambda: fired.append(sim.now))
        timer.start(50)
        sim.run()
        assert fired == [50]

    def test_restart_replaces_expiry(self):
        sim = Simulator()
        fired = []
        timer = Timer(sim, lambda: fired.append(sim.now))
        timer.start(50)
        sim.schedule(30, lambda: timer.start(100))
        sim.run()
        assert fired == [130]

    def test_stop(self):
        sim = Simulator()
        fired = []
        timer = Timer(sim, lambda: fired.append(1))
        timer.start(50)
        timer.stop()
        sim.run()
        assert fired == []
        assert not timer.running

    def test_running_and_expiry(self):
        sim = Simulator()
        timer = Timer(sim, lambda: None)
        assert not timer.running
        assert timer.expires_at is None
        timer.start(10)
        assert timer.running
        assert timer.expires_at == 10


class TestPeriodicTimer:
    def test_fires_every_period(self):
        sim = Simulator()
        fired = []
        timer = PeriodicTimer(sim, 10, lambda: fired.append(sim.now))
        sim.run(until=35)
        timer.stop()
        assert fired == [10, 20, 30]

    def test_stop_and_restart(self):
        sim = Simulator()
        fired = []
        timer = PeriodicTimer(sim, 10, lambda: fired.append(sim.now))
        sim.run(until=15)
        timer.stop()
        sim.run(until=50)
        assert fired == [10]
        timer.start()
        sim.run(until=75)
        timer.stop()
        assert fired == [10, 60, 70]

    def test_rejects_bad_period(self):
        with pytest.raises(ValueError):
            PeriodicTimer(Simulator(), 0, lambda: None)

    def test_jittered_period_stays_close(self):
        sim = Simulator(seed=3)
        fired = []
        timer = PeriodicTimer(
            sim, 1000, lambda: fired.append(sim.now), jitter_stream="j"
        )
        sim.run(until=100_000)
        timer.stop()
        gaps = [b - a for a, b in zip(fired, fired[1:])]
        assert all(950 <= gap <= 1050 for gap in gaps)
        assert len(set(gaps)) > 1  # actually jittered


class TestDeterminism:
    @given(delays=st.lists(st.integers(min_value=0, max_value=10**6), max_size=50))
    def test_arbitrary_schedules_execute_sorted(self, delays):
        sim = Simulator()
        seen = []
        for delay in delays:
            sim.schedule(delay, lambda d=delay: seen.append(d))
        sim.run()
        assert seen == sorted(delays, key=lambda d: (d,))
        # Stable for equal keys: equal delays keep insertion order.
        assert seen == sorted(delays)

    def test_identical_runs_produce_identical_traces(self):
        def run():
            sim = Simulator(seed=11)
            trace = []
            rng = sim.rng("w")

            def tick():
                trace.append((sim.now, int(rng.integers(100))))
                if sim.now < 1000:
                    sim.schedule(int(rng.integers(1, 50)), tick)

            sim.schedule(1, tick)
            sim.run()
            return trace

        assert run() == run()
