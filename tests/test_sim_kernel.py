"""Tests for the discrete-event simulation kernel."""

import pytest
from hypothesis import given, strategies as st

from repro.sim import (
    PeriodicTimer,
    SimulationError,
    Simulator,
    Timer,
    run_until_idle,
)


class TestScheduling:
    def test_starts_at_zero(self):
        assert Simulator().now == 0

    def test_events_run_in_time_order(self):
        sim = Simulator()
        order = []
        sim.schedule(30, lambda: order.append("c"))
        sim.schedule(10, lambda: order.append("a"))
        sim.schedule(20, lambda: order.append("b"))
        sim.run()
        assert order == ["a", "b", "c"]

    def test_ties_break_by_insertion_order(self):
        sim = Simulator()
        order = []
        for label in "abcde":
            sim.schedule(42, lambda l=label: order.append(l))
        sim.run()
        assert order == list("abcde")

    def test_now_advances_to_event_time(self):
        sim = Simulator()
        seen = []
        sim.schedule(100, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [100]
        assert sim.now == 100

    def test_schedule_at_absolute_time(self):
        sim = Simulator()
        seen = []
        sim.schedule_at(77, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [77]

    def test_cannot_schedule_in_past(self):
        sim = Simulator()
        sim.schedule(10, lambda: None)
        sim.run()
        with pytest.raises(SimulationError):
            sim.schedule_at(5, lambda: None)

    def test_events_scheduled_during_execution(self):
        sim = Simulator()
        order = []

        def first():
            order.append("first")
            sim.schedule(5, lambda: order.append("nested"))

        sim.schedule(10, first)
        sim.schedule(12, lambda: order.append("second"))
        sim.run()
        # nested was scheduled for t=15, after "second" at t=12
        assert order == ["first", "second", "nested"]

    def test_cancel(self):
        sim = Simulator()
        fired = []
        event = sim.schedule(10, lambda: fired.append(1))
        Simulator.cancel(event)
        sim.run()
        assert fired == []

    def test_events_executed_counter(self):
        sim = Simulator()
        for _ in range(7):
            sim.schedule(1, lambda: None)
        sim.run()
        assert sim.events_executed == 7


class TestRunControl:
    def test_run_until_pauses_clock(self):
        sim = Simulator()
        sim.schedule(1000, lambda: None)
        assert sim.run(until=500) == 500
        assert sim.now == 500
        sim.run()
        assert sim.now == 1000

    def test_run_until_resumes(self):
        sim = Simulator()
        seen = []
        sim.schedule(100, lambda: seen.append("a"))
        sim.schedule(300, lambda: seen.append("b"))
        sim.run(until=200)
        assert seen == ["a"]
        sim.run(until=400)
        assert seen == ["a", "b"]

    def test_run_until_with_empty_heap_advances_clock(self):
        sim = Simulator()
        sim.run(until=1234)
        assert sim.now == 1234

    def test_stop(self):
        sim = Simulator()
        seen = []
        sim.schedule(1, lambda: (seen.append(1), sim.stop()))
        sim.schedule(2, lambda: seen.append(2))
        sim.run()
        assert seen == [1]
        sim.run()
        assert seen == [1, 2]

    def test_max_events(self):
        sim = Simulator()
        seen = []
        for i in range(10):
            sim.schedule(i + 1, lambda i=i: seen.append(i))
        sim.run(max_events=3)
        assert seen == [0, 1, 2]

    def test_run_until_idle(self):
        sim = Simulator()
        seen = []
        sim.schedule(5, lambda: sim.schedule(5, lambda: seen.append("done")))
        run_until_idle(sim)
        assert seen == ["done"]
        assert sim.pending_events == 0


class TestRandomStreams:
    def test_named_streams_are_stable(self):
        sim = Simulator(seed=5)
        a = sim.rng("x")
        assert sim.rng("x") is a

    def test_streams_are_independent_of_creation_order(self):
        sim1 = Simulator(seed=5)
        first = sim1.rng("a").integers(1000)
        sim2 = Simulator(seed=5)
        sim2.rng("b")  # creating another stream first must not matter
        second = sim2.rng("a").integers(1000)
        assert first == second

    def test_different_seeds_differ(self):
        draws1 = Simulator(seed=1).rng("x").integers(2**30, size=8)
        draws2 = Simulator(seed=2).rng("x").integers(2**30, size=8)
        assert list(draws1) != list(draws2)

    def test_seed_property(self):
        assert Simulator(seed=99).seed == 99


class TestTimer:
    def test_fires_after_delay(self):
        sim = Simulator()
        fired = []
        timer = Timer(sim, lambda: fired.append(sim.now))
        timer.start(50)
        sim.run()
        assert fired == [50]

    def test_restart_replaces_expiry(self):
        sim = Simulator()
        fired = []
        timer = Timer(sim, lambda: fired.append(sim.now))
        timer.start(50)
        sim.schedule(30, lambda: timer.start(100))
        sim.run()
        assert fired == [130]

    def test_stop(self):
        sim = Simulator()
        fired = []
        timer = Timer(sim, lambda: fired.append(1))
        timer.start(50)
        timer.stop()
        sim.run()
        assert fired == []
        assert not timer.running

    def test_running_and_expiry(self):
        sim = Simulator()
        timer = Timer(sim, lambda: None)
        assert not timer.running
        assert timer.expires_at is None
        timer.start(10)
        assert timer.running
        assert timer.expires_at == 10


class TestPeriodicTimer:
    def test_fires_every_period(self):
        sim = Simulator()
        fired = []
        timer = PeriodicTimer(sim, 10, lambda: fired.append(sim.now))
        sim.run(until=35)
        timer.stop()
        assert fired == [10, 20, 30]

    def test_stop_and_restart(self):
        sim = Simulator()
        fired = []
        timer = PeriodicTimer(sim, 10, lambda: fired.append(sim.now))
        sim.run(until=15)
        timer.stop()
        sim.run(until=50)
        assert fired == [10]
        timer.start()
        sim.run(until=75)
        timer.stop()
        assert fired == [10, 60, 70]

    def test_rejects_bad_period(self):
        with pytest.raises(ValueError):
            PeriodicTimer(Simulator(), 0, lambda: None)

    def test_jittered_period_stays_close(self):
        sim = Simulator(seed=3)
        fired = []
        timer = PeriodicTimer(
            sim, 1000, lambda: fired.append(sim.now), jitter_stream="j"
        )
        sim.run(until=100_000)
        timer.stop()
        gaps = [b - a for a, b in zip(fired, fired[1:])]
        assert all(950 <= gap <= 1050 for gap in gaps)
        assert len(set(gaps)) > 1  # actually jittered


class TestDeterminism:
    @given(delays=st.lists(st.integers(min_value=0, max_value=10**6), max_size=50))
    def test_arbitrary_schedules_execute_sorted(self, delays):
        sim = Simulator()
        seen = []
        for delay in delays:
            sim.schedule(delay, lambda d=delay: seen.append(d))
        sim.run()
        assert seen == sorted(delays, key=lambda d: (d,))
        # Stable for equal keys: equal delays keep insertion order.
        assert seen == sorted(delays)

    def test_identical_runs_produce_identical_traces(self):
        def run():
            sim = Simulator(seed=11)
            trace = []
            rng = sim.rng("w")

            def tick():
                trace.append((sim.now, int(rng.integers(100))))
                if sim.now < 1000:
                    sim.schedule(int(rng.integers(1, 50)), tick)

            sim.schedule(1, tick)
            sim.run()
            return trace

        assert run() == run()


class TestLazyTimerReprogramming:
    """The lazy-restart fast path must be observationally identical to an
    eager cancel-and-repush timer while doing O(1) heap work per restart."""

    def test_restart_storm_keeps_one_heap_entry(self):
        sim = Simulator()
        fired = []
        timer = Timer(sim, lambda: fired.append(sim.now))
        timer.start(5)
        baseline = sim.pending_events
        for _ in range(10_000):
            timer.start(100)  # each restart pushes the deadline later
        # Lazy reprogramming: restarts move the soft deadline without
        # touching the heap, so the storm leaves no debris behind.
        assert sim.pending_events == baseline
        sim.run()
        assert fired == [100]

    def test_restart_storm_consumes_one_sequence_per_start(self):
        # Sequence-number parity with the eager implementation is what keeps
        # same-time event tie-breaking (and whole runs) bit-identical.
        sim = Simulator()
        timer = Timer(sim, lambda: None)
        before = sim._sequence
        timer.start(5)
        for _ in range(1000):
            timer.start(100)
        assert sim._sequence - before == 1001

    def test_restart_earlier_fires_at_new_deadline(self):
        sim = Simulator()
        fired = []
        timer = Timer(sim, lambda: fired.append(sim.now))
        timer.start(500)
        sim.schedule(10, lambda: timer.start(20))  # pull expiry earlier
        sim.run()
        assert fired == [30]

    def test_restart_onto_parked_expiry_keeps_restart_order(self):
        # A restart landing exactly on the queued expiry must fire at the
        # *restart's* sequence position among same-time events, as eager
        # would — not at the parked entry's older position.
        sim = Simulator()
        order = []
        timer = Timer(sim, lambda: order.append("timer"))
        timer.start(30)  # parked entry at t=30, oldest sequence
        sim.schedule(30, lambda: order.append("rival"))
        sim.schedule(20, lambda: timer.start(10))  # deadline 30 == parked
        sim.run()
        # Eager semantics: the restart re-inserts the timer *after* the
        # rival, so the rival fires first despite the older parked entry.
        assert order == ["rival", "timer"]

    def test_stop_start_interleavings(self):
        sim = Simulator()
        fired = []
        timer = Timer(sim, lambda: fired.append(sim.now))
        timer.start(50)
        sim.schedule(10, timer.stop)
        sim.schedule(20, lambda: timer.start(15))   # refire at 35
        sim.schedule(30, lambda: timer.start(100))  # push to 130
        sim.schedule(40, timer.stop)
        sim.schedule(60, lambda: timer.start(5))    # refire at 65
        sim.run()
        assert fired == [65]

    def test_restart_from_callback_rearms(self):
        sim = Simulator()
        fired = []
        timer = Timer(sim, lambda: fired.append(sim.now))

        def tick():
            fired.append(sim.now)
            if len(fired) < 3:
                timer.start(10)

        timer._callback = tick
        timer.start(10)
        sim.run()
        assert fired == [10, 20, 30]

    def test_running_and_expiry_track_soft_deadline(self):
        sim = Simulator()
        timer = Timer(sim, lambda: None)
        timer.start(50)
        sim.schedule(10, lambda: timer.start(100))
        sim.run(until=20)
        assert timer.running
        assert timer.expires_at == 110
        sim.run()
        assert not timer.running
        assert timer.expires_at is None

    def test_negative_delay_rejected(self):
        timer = Timer(Simulator(), lambda: None)
        with pytest.raises(SimulationError):
            timer.start(-1)

    def test_pending_live_events_counts_parked_timer_once(self):
        sim = Simulator()
        timer = Timer(sim, lambda: None)
        timer.start(10)
        for _ in range(100):
            timer.start(50)
        assert sim.pending_live_events == 1
        timer.stop()
        assert sim.pending_live_events == 0

    def test_run_until_idle_with_parked_timers(self):
        sim = Simulator()
        fired = []
        timer = Timer(sim, lambda: fired.append(sim.now))
        timer.start(10)
        timer.start(250)
        run_until_idle(sim, quantum=100)
        assert fired == [250]


class TestHeapCompaction:
    def test_cancelled_storm_triggers_compaction(self):
        sim = Simulator()
        events = [sim.schedule(1000 + i, lambda: None) for i in range(5000)]
        for event in events:
            Simulator.cancel(event)
        # Pushing more events crosses the compaction threshold and sheds the
        # dead entries instead of carrying them in every push/pop.
        for i in range(5000):
            sim.schedule(10 + i, lambda: None)
        assert sim.heap_compactions >= 1
        assert sim.pending_events < 10_000

    def test_compaction_during_run_keeps_draining_new_events(self):
        # Regression: compaction must not replace the heap list object out
        # from under the run loop's local alias, or every event scheduled
        # after the compaction silently never fires.
        sim = Simulator()
        for i in range(300):
            Simulator.cancel(sim.schedule(10_000 + i, lambda: None))
        seen = []

        def chain(n):
            seen.append(n)
            if n < 50:
                sim.schedule(10, lambda: chain(n + 1))

        sim.schedule(1, lambda: chain(0))
        sim.run()
        assert sim.heap_compactions >= 1
        assert seen == list(range(51))

    def test_compaction_preserves_order(self):
        sim = Simulator()
        doomed = [sim.schedule(500, lambda: None) for _ in range(500)]
        order = []
        for delay in (40, 10, 30, 20):
            sim.schedule(delay, lambda d=delay: order.append(d))
        for event in doomed:
            Simulator.cancel(event)
        for i in range(100):  # trigger the compaction scan
            sim.schedule(60 + i, lambda: None)
        sim.run()
        assert order == [10, 20, 30, 40]


class TestEventArg:
    def test_schedule_with_arg_invokes_callback_with_it(self):
        sim = Simulator()
        seen = []
        sim.schedule(5, seen.append, "payload")
        sim.schedule_at(7, seen.append, "absolute")
        sim.run()
        assert seen == ["payload", "absolute"]

    def test_arg_events_cancel(self):
        sim = Simulator()
        seen = []
        event = sim.schedule(5, seen.append, "nope")
        Simulator.cancel(event)
        sim.run()
        assert seen == []


class TestCalendarQueue:
    """Edge cases of the two-tier bucketed calendar queue (ring + overflow).

    The ring/bucket geometry is shrunk (tiny buckets, 4-slot ring) so a few
    hundred nanoseconds of simulated time exercises bucket rollover, ring
    wrap-around, and overflow adoption many times over.
    """

    @given(
        delays=st.lists(
            st.integers(min_value=0, max_value=3_000_000), min_size=1, max_size=80
        ),
        bucket_bits=st.integers(min_value=2, max_value=12),
        ring_bits=st.integers(min_value=1, max_value=6),
    )
    def test_pop_order_matches_heap_reference(self, delays, bucket_bits, ring_bits):
        import heapq

        sim = Simulator(bucket_bits=bucket_bits, ring_bits=ring_bits)
        reference = []
        for seq, delay in enumerate(delays):
            heapq.heappush(reference, (delay, seq))
        popped = []
        for delay in delays:
            sim.schedule(delay, lambda d=delay: popped.append((sim.now, d)))
        sim.run()
        expected = []
        while reference:
            time, seq = heapq.heappop(reference)
            expected.append((time, delays[seq]))
        assert popped == expected

    @given(
        jobs=st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=200_000),
                st.integers(min_value=0, max_value=200_000),
            ),
            min_size=1,
            max_size=40,
        ),
    )
    def test_reentrant_schedules_match_heap_reference(self, jobs):
        # Events scheduled from inside callbacks land in the *active* bucket
        # (or ahead of it) while the wheel is mid-drain — the insort-behind-
        # the-scan-position path a plain pre-loaded run never touches.  The
        # reference model allocates sequence numbers in the same order the
        # kernel does: initial jobs first, then one per fired job.
        import heapq

        sim = Simulator(bucket_bits=6, ring_bits=3)
        popped = []

        def follow():
            popped.append(sim.now)

        def fire(second):
            popped.append(sim.now)
            sim.schedule(second, follow)

        for first, second in jobs:
            sim.schedule(first, fire, second)
        sim.run()

        ref_heap = []
        seq = 0
        followup = {}
        for first, second in jobs:
            heapq.heappush(ref_heap, (first, seq))
            followup[seq] = second
            seq += 1
        expected = []
        while ref_heap:
            time, s = heapq.heappop(ref_heap)
            expected.append(time)
            if s in followup:
                heapq.heappush(ref_heap, (time + followup.pop(s), seq))
                seq += 1
        assert popped == expected

    def test_until_exit_inside_future_bucket_preserves_order(self):
        sim = Simulator(bucket_bits=4, ring_bits=2)
        order = []
        sim.schedule(1000, lambda: order.append("far"))
        assert sim.run(until=500) == 500
        assert order == []
        # The wheel had scanned ahead to the far event's bucket before the
        # deadline exit; an event scheduled between runs at an earlier time
        # must still run first (cur_tick rewind on until-exit).
        sim.schedule(10, lambda: order.append("near"))  # fires at t=510
        sim.run()
        assert order == ["near", "far"]
        assert sim.now == 1000

    def test_repeated_until_steps_across_bucket_rollover(self):
        # Drive the run deadline through every bucket boundary and several
        # full ring wraps; each exit parks the wheel mid-calendar and the
        # next run must resume without skipping or reordering anything.
        sim = Simulator(bucket_bits=4, ring_bits=2)
        fired = []
        for t in range(0, 400, 7):
            sim.schedule_at(t, fired.append, t)
        clock = 0
        while sim.pending_live_events:
            clock = sim.run(until=clock + 13)
        assert fired == list(range(0, 400, 7))

    def test_timer_restart_into_overflow_region(self):
        sim = Simulator(bucket_bits=4, ring_bits=2)  # horizon: 4 * 16 ns
        fired = []
        timer = Timer(sim, lambda: fired.append(sim.now))
        timer.start(5)  # entry lands in the ring
        timer.start(1_000_000)  # deadline far beyond the ring horizon
        sim.run()
        assert fired == [1_000_000]

    def test_timer_restart_from_overflow_back_into_ring(self):
        sim = Simulator(bucket_bits=4, ring_bits=2)
        fired = []
        timer = Timer(sim, lambda: fired.append(sim.now))
        timer.start(1_000_000)  # parked in the overflow heap
        timer.start(3)  # earlier deadline must take effect immediately
        sim.run()
        assert fired == [3]

    def test_timer_lazy_restart_interleaved_with_run(self):
        # Keepalive pattern: periodic traffic keeps pushing the deadline
        # out, so the stale ring entry bounces (re-arms) several times
        # before the timer finally fires once, 40 ns after the last poke.
        sim = Simulator(bucket_bits=4, ring_bits=2)
        fired = []
        timer = Timer(sim, lambda: fired.append(sim.now))
        timer.start(20)
        for t in range(0, 200, 10):
            sim.schedule_at(t, lambda _=None: timer.start(40))
        sim.run()
        assert fired == [190 + 40]
        # Re-arm bounces are kernel bookkeeping, not simulation work: the
        # executed-event count must see 20 pokes + 1 firing, nothing more.
        assert sim.events_executed == 21
        assert sim.timer_rearms > 0
