"""Tests for leaf/spine forwarding, CE marking, and feedback plumbing."""

import pytest

from repro.lb import CongaSelector, EcmpSelector
from repro.net import Packet
from repro.sim import Simulator, run_until_idle
from repro.topology import build_leaf_spine, scaled_testbed
from repro.transport import UdpSink, UdpSource
from repro.units import gbps, megabytes


def _fabric(selector=None, hosts_per_leaf=2, seed=1, **cfg):
    sim = Simulator(seed=seed)
    fabric = build_leaf_spine(sim, scaled_testbed(hosts_per_leaf=hosts_per_leaf, **cfg))
    fabric.finalize(selector or EcmpSelector.factory())
    return sim, fabric


def _udp(sim, fabric, src, dst, size=100_000, rate=gbps(1), flow_id=99):
    sink = UdpSink(fabric.host(dst), flow_id)
    source = UdpSource(
        sim, fabric.host(src), dst, size, rate, flow_id=flow_id
    )
    source.start()
    return source, sink


class TestLeafForwarding:
    def test_intra_leaf_traffic_stays_local(self):
        sim, fabric = _fabric()
        _source, sink = _udp(sim, fabric, src=0, dst=1)
        run_until_idle(sim)
        assert sink.received_bytes == 100_000
        # No packets should have touched any uplink.
        assert all(port.tx_packets == 0 for port in fabric.leaf_uplink_ports())

    def test_cross_leaf_traffic_uses_fabric(self):
        sim, fabric = _fabric()
        _source, sink = _udp(sim, fabric, src=0, dst=2)
        run_until_idle(sim)
        assert sink.received_bytes == 100_000
        assert sum(p.tx_packets for p in fabric.leaf_uplink_ports()) > 0

    def test_packets_decapsulated_before_delivery(self):
        sim, fabric = _fabric()
        received = []
        fabric.host(2).bind(55, received.append)
        packet = Packet(src=0, dst=2, size=1000, flow_id=55)
        fabric.host(0).send(packet)
        run_until_idle(sim)
        assert len(received) == 1
        assert received[0].overlay is None
        assert received[0].size == 1000

    def test_unroutable_host_dropped(self):
        sim, fabric = _fabric()
        leaf = fabric.leaves[0]
        packet = Packet(src=0, dst=999, size=100, flow_id=1)
        with pytest.raises(KeyError):
            leaf.receive(packet, leaf.ports[0])

    def test_unfinalized_leaf_asserts(self):
        sim = Simulator()
        fabric = build_leaf_spine(sim, scaled_testbed(hosts_per_leaf=2))
        packet = Packet(src=0, dst=2, size=100, flow_id=1)
        with pytest.raises(AssertionError):
            fabric.leaves[0]._receive_from_host(packet)

    def test_all_uplinks_down_drops(self):
        sim, fabric = _fabric()
        for port in fabric.leaves[0].uplinks:
            port.fail()
        _source, sink = _udp(sim, fabric, src=0, dst=2)
        run_until_idle(sim)
        assert sink.received_bytes == 0
        assert fabric.leaves[0].dropped_unroutable > 0


class TestSpineForwarding:
    def test_spine_balances_parallel_links_by_flow(self):
        sim, fabric = _fabric()
        for flow in range(40):
            _udp(sim, fabric, src=0, dst=2, size=3000, flow_id=1000 + flow)
        run_until_idle(sim)
        for spine in fabric.spines:
            ports = [spine.ports[i] for i in spine.ports_to_leaf(1)]
            used = [p for p in ports if p.tx_packets > 0]
            if sum(p.tx_packets for p in ports) >= 8:
                assert len(used) == 2  # ECMP used both parallel links

    def test_spine_avoids_failed_parallel_link(self):
        sim, fabric = _fabric()
        fabric.fail_link(1, 0, 0)  # one of spine0's two links to leaf 1
        _source, sink = _udp(sim, fabric, src=0, dst=2, size=200_000)
        run_until_idle(sim)
        assert sink.received_bytes == 200_000

    def test_spine_drops_unencapsulated(self):
        sim, fabric = _fabric()
        spine = fabric.spines[0]
        spine.receive(Packet(src=0, dst=2, size=100), spine.ports[0])
        assert spine.dropped_unroutable == 1

    def test_spine_drops_when_destination_unreachable(self):
        sim, fabric = _fabric()
        spine = fabric.spines[0]
        fabric.fail_link(1, 0, 0)
        fabric.fail_link(1, 0, 1)
        packet = Packet(src=0, dst=2, size=100, flow_id=1)
        # Leaf 0 will not pick spine 0 anymore; force-feed the spine.
        from repro.net import OverlayHeader

        packet.overlay = OverlayHeader(src_leaf=0, dst_leaf=1)
        spine.receive(packet, spine.ports[0])
        assert spine.dropped_unroutable == 1


class TestCongestionMarking:
    def test_ce_reflects_max_along_path(self):
        sim, fabric = _fabric(CongaSelector.factory())
        received = []
        # Snoop CE values at the destination leaf by wrapping decapsulate.
        leaf1 = fabric.leaves[1]
        original = leaf1.tep.decapsulate

        def snoop(packet):
            received.append(packet.overlay.ce)
            return original(packet)

        leaf1.tep.decapsulate = snoop
        # Saturate leaf0's uplink 0 DRE, then send on it.
        fabric.leaves[0].uplink_dres[0].on_transmit(10_000_000)
        packet = Packet(src=0, dst=2, size=1000, flow_id=77, sport=1, dport=1)
        fabric.host(2).bind(77, lambda p: None)
        # Force the selector's flowlet cache to use uplink 0.
        entry = fabric.leaves[0].selector.flowlets.lookup(packet.five_tuple)
        fabric.leaves[0].selector.flowlets.install(entry, 0)
        fabric.host(0).send(packet)
        run_until_idle(sim)
        assert received and received[0] == 7

    def test_feedback_loop_populates_tables_end_to_end(self):
        sim, fabric = _fabric(CongaSelector.factory(), hosts_per_leaf=4)
        # Bidirectional traffic so piggybacking has carriers.
        _udp(sim, fabric, src=0, dst=4, size=500_000, flow_id=201)
        _udp(sim, fabric, src=4, dst=0, size=500_000, flow_id=202)
        run_until_idle(sim)
        leaf0 = fabric.leaves[0]
        # Leaf 0 must have learned at least one remote metric toward leaf 1.
        assert leaf0.tep.feedback_received > 0

    def test_dre_registers_grow_with_traffic(self):
        sim, fabric = _fabric(CongaSelector.factory())
        _udp(sim, fabric, src=0, dst=2, size=1_000_000, rate=gbps(5))
        sim.run(until=400_000)  # mid-transfer
        assert any(dre.register > 0 for dre in fabric.leaves[0].uplink_dres)


class TestThroughputAndCounters:
    def test_udp_throughput_conservation(self):
        sim, fabric = _fabric()
        size = megabytes(2)
        _source, sink = _udp(sim, fabric, src=0, dst=2, size=size, rate=gbps(2))
        run_until_idle(sim)
        assert sink.received_bytes == size

    def test_total_fabric_drops_zero_without_congestion(self):
        sim, fabric = _fabric()
        _udp(sim, fabric, src=0, dst=2, size=100_000)
        run_until_idle(sim)
        assert fabric.total_fabric_drops() == 0
