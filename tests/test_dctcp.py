"""Tests for DCTCP: ECN marking, CE echo, and the alpha estimator."""

import pytest

from repro.apps import dctcp_flow_factory, tcp_flow_factory
from repro.lb import CongaSelector
from repro.net import DropTailQueue, Host, Packet, connect
from repro.sim import Simulator, run_until_idle
from repro.topology import build_leaf_spine, scaled_testbed
from repro.transport import DctcpCC, TcpFlow, TcpReceiver
from repro.transport.dctcp import DEFAULT_G
from repro.units import gbps, kilobytes, megabytes


class TestEcnMarking:
    def test_queue_marks_above_threshold(self):
        queue = DropTailQueue(1_000_000, ecn_threshold_bytes=3000)
        packets = [Packet(src=0, dst=1, size=1500) for _ in range(4)]
        for packet in packets:
            queue.offer(packet)
        # Occupancy before 3rd enqueue is 3000 >= K: packets 3 and 4 marked.
        assert [p.ecn_ce for p in packets] == [False, False, True, True]
        assert queue.stats.ecn_marked == 2

    def test_no_threshold_means_no_marking(self):
        queue = DropTailQueue(1_000_000)
        packet = Packet(src=0, dst=1, size=1500)
        for _ in range(100):
            queue.offer(Packet(src=0, dst=1, size=1500))
        queue.offer(packet)
        assert not packet.ecn_ce

    def test_rejects_bad_threshold(self):
        with pytest.raises(ValueError):
            DropTailQueue(1000, ecn_threshold_bytes=0)


class TestCeEcho:
    def test_receiver_echoes_ce(self):
        sim = Simulator()
        h1 = Host(sim, 0, gbps(10))
        h2 = Host(sim, 1, gbps(10))
        connect(h1.nic, h2.nic)
        acks = []
        h1.bind(9, acks.append)
        receiver = TcpReceiver(sim, h2, 0, flow_id=9)
        marked = Packet(src=0, dst=1, size=1058, flow_id=9, seq=0,
                        payload_len=1000, ecn_ce=True)
        clean = Packet(src=0, dst=1, size=1058, flow_id=9, seq=1000,
                       payload_len=1000)
        receiver._on_packet(marked)
        receiver._on_packet(clean)
        run_until_idle(sim)
        assert [a.ecn_echo for a in acks] == [True, False]


class TestDctcpController:
    def test_alpha_starts_at_zero(self):
        assert DctcpCC().alpha == 0.0

    def test_rejects_bad_gain(self):
        with pytest.raises(ValueError):
            DctcpCC(g=0.0)
        with pytest.raises(ValueError):
            DctcpCC(g=1.5)

    def test_alpha_rises_with_marks_and_decays_without(self):
        sim = Simulator()
        h1 = Host(sim, 0, gbps(10))
        h2 = Host(sim, 1, gbps(10))
        connect(h1.nic, h2.nic)
        cc = DctcpCC()
        flow = TcpFlow(sim, h1, h2, megabytes(1), cc=cc)
        sender = flow.sender
        sender.snd_nxt = 100_000  # pretend data is in flight
        # Fully marked window:
        cc.state.window_end = 0
        sender.snd_una = 1
        cc.on_ack(sender, 10_000, True)
        assert cc.alpha == pytest.approx(DEFAULT_G * 1.0)
        # Unmarked window decays alpha.
        previous = cc.alpha
        cc.state.window_end = 0
        cc.on_ack(sender, 10_000, False)
        assert cc.alpha == pytest.approx(previous * (1 - DEFAULT_G))

    def test_reduction_proportional_to_alpha(self):
        sim = Simulator()
        h1 = Host(sim, 0, gbps(10))
        h2 = Host(sim, 1, gbps(10))
        connect(h1.nic, h2.nic)
        cc = DctcpCC()
        flow = TcpFlow(sim, h1, h2, megabytes(1), cc=cc)
        sender = flow.sender
        sender.cwnd = 100_000.0
        sender.snd_una = 1
        sender.snd_nxt = 50_000
        cc.state.window_end = 0
        cc.on_ack(sender, 10_000, True)
        expected = 100_000.0 * (1 - cc.alpha / 2)
        assert sender.cwnd == pytest.approx(expected)
        assert cc.state.reductions == 1


class TestEndToEnd:
    def _run(self, factory, ecn):
        sim = Simulator(seed=5)
        fabric = build_leaf_spine(
            sim,
            scaled_testbed(hosts_per_leaf=4, ecn_threshold_bytes=ecn),
        )
        fabric.finalize(CongaSelector.factory())
        flows = [
            factory(fabric.host(i), fabric.host(4 + i), megabytes(4), lambda f: None)
            for i in range(4)
        ]
        for flow in flows:
            flow.start()
        run_until_idle(sim)
        max_queue = max(p.queue.stats.max_bytes for p in fabric.fabric_ports())
        return flows, max_queue, fabric

    def test_dctcp_controls_fabric_queues(self):
        """The signature DCTCP result: near-K queues at full throughput."""
        reno_flows, reno_queue, _ = self._run(tcp_flow_factory(), None)
        dctcp_flows, dctcp_queue, fabric = self._run(
            dctcp_flow_factory(), kilobytes(100)
        )
        assert all(f.finished for f in reno_flows + dctcp_flows)
        assert dctcp_queue < reno_queue / 4
        assert sum(p.queue.stats.ecn_marked for p in fabric.fabric_ports()) > 0
        # Throughput is not sacrificed: completion times comparable.
        reno_fct = max(f.fct for f in reno_flows)
        dctcp_fct = max(f.fct for f in dctcp_flows)
        assert dctcp_fct < reno_fct * 1.15

    def test_dctcp_without_marking_behaves_like_reno(self):
        flows, _q, fabric = self._run(dctcp_flow_factory(), None)
        assert all(f.finished for f in flows)
        assert all(f.sender.cc.alpha == 0.0 for f in flows)
