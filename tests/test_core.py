"""Tests for CONGA core machinery: DRE, flowlet table, congestion tables."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import (
    CONGA_FLOW_PARAMS,
    CongaParams,
    CongestionFromLeafTable,
    CongestionToLeafTable,
    DEFAULT_PARAMS,
    DRE,
    FlowletTable,
)
from repro.sim import Simulator
from repro.units import gbps, microseconds, milliseconds


class TestCongaParams:
    def test_defaults_match_paper(self):
        assert DEFAULT_PARAMS.quantization_bits == 3
        assert DEFAULT_PARAMS.dre_time_constant == microseconds(160)
        assert DEFAULT_PARAMS.flowlet_timeout == microseconds(500)
        assert DEFAULT_PARAMS.flowlet_table_size == 65_536

    def test_conga_flow_timeout(self):
        assert CONGA_FLOW_PARAMS.flowlet_timeout == milliseconds(13)

    def test_alpha(self):
        params = CongaParams(dre_period=microseconds(20), dre_time_constant=microseconds(160))
        assert params.alpha == pytest.approx(0.125)

    def test_metric_levels(self):
        assert DEFAULT_PARAMS.metric_levels == 8
        assert DEFAULT_PARAMS.max_metric == 7
        assert CongaParams(quantization_bits=6).max_metric == 63

    def test_with_flowlet_timeout(self):
        changed = DEFAULT_PARAMS.with_flowlet_timeout(milliseconds(1))
        assert changed.flowlet_timeout == milliseconds(1)
        assert changed.quantization_bits == DEFAULT_PARAMS.quantization_bits

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"quantization_bits": 0},
            {"quantization_bits": 9},
            {"dre_period": 0},
            {"dre_period": microseconds(200), "dre_time_constant": microseconds(100)},
            {"flowlet_timeout": 0},
            {"flowlet_table_size": 0},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            CongaParams(**kwargs)


class TestDRE:
    def test_starts_idle(self):
        dre = DRE(Simulator(), gbps(10))
        assert dre.register == 0
        assert dre.metric() == 0
        assert dre.utilization() == 0

    def test_increment(self):
        dre = DRE(Simulator(), gbps(10))
        dre.on_transmit(1500)
        assert dre.register == 1500

    def test_decay_matches_closed_form(self):
        sim = Simulator()
        params = DEFAULT_PARAMS
        dre = DRE(sim, gbps(10), params)
        dre.on_transmit(100_000)
        periods = 5
        sim.run(until=params.dre_period * periods)
        expected = 100_000 * (1 - params.alpha) ** periods
        assert dre.register == pytest.approx(expected)

    def test_steady_state_tracks_rate(self):
        """X converges to R * tau for constant-rate traffic (paper 3.2)."""
        sim = Simulator()
        params = DEFAULT_PARAMS
        rate = gbps(10)
        dre = DRE(sim, rate, params)
        # Offer exactly 50% utilization: one 1250-byte packet per microsecond.
        for t in range(0, 2_000):
            sim.schedule_at(t * 1000, lambda: dre.on_transmit(625))
        sim.run()
        assert dre.utilization() == pytest.approx(0.5, rel=0.1)

    def test_metric_quantization(self):
        sim = Simulator()
        dre = DRE(sim, gbps(10), DEFAULT_PARAMS)
        # Fill to ~100% of C*tau: 10 Gbps * 160 us = 200 KB.
        dre.on_transmit(200_000)
        assert dre.metric() == 7  # saturates at max
        dre.reset()
        dre.on_transmit(100_000)  # 50% -> level 4 of 8
        assert dre.metric() == 4

    def test_metric_clamped_at_max(self):
        dre = DRE(Simulator(), gbps(10))
        dre.on_transmit(10_000_000)
        assert dre.metric() == DEFAULT_PARAMS.max_metric

    def test_decays_to_zero(self):
        sim = Simulator()
        dre = DRE(sim, gbps(10))
        dre.on_transmit(200_000)
        sim.run(until=milliseconds(10))
        assert dre.metric() == 0

    def test_reset(self):
        sim = Simulator()
        dre = DRE(sim, gbps(10))
        dre.on_transmit(5000)
        dre.reset()
        assert dre.register == 0

    def test_rejects_bad_rate(self):
        with pytest.raises(ValueError):
            DRE(Simulator(), 0)

    def test_faster_link_reads_lower_utilization(self):
        sim = Simulator()
        slow = DRE(sim, gbps(10))
        fast = DRE(sim, gbps(40))
        slow.on_transmit(100_000)
        fast.on_transmit(100_000)
        assert slow.utilization() == pytest.approx(4 * fast.utilization())

    def test_decay_table_is_bit_identical_to_direct_pow(self):
        """The precomputed decay table must match ``(1-alpha)**k`` exactly.

        The lazy decay switched from a per-call float pow to a table lookup
        for small elapsed tick counts; any numeric drift between the two
        paths would silently change CONGA's congestion metrics, so equality
        here must be exact, not approximate.
        """
        from repro.core.dre import _DECAY_TABLE_SIZE

        params = DEFAULT_PARAMS
        dre = DRE(Simulator(), gbps(10), params)
        base = 1.0 - params.alpha
        for k in range(_DECAY_TABLE_SIZE):
            assert dre._decay_table[k] == base**k  # bit-exact, no approx

    def test_decay_identical_for_table_and_fallback_elapsed(self):
        """Registers decayed via table vs direct pow agree bit for bit."""
        from repro.core.dre import _DECAY_TABLE_SIZE

        params = DEFAULT_PARAMS
        for elapsed in (1, 7, _DECAY_TABLE_SIZE - 1, _DECAY_TABLE_SIZE + 3):
            sim = Simulator()
            dre = DRE(sim, gbps(10), params)
            dre.on_transmit(123_457)
            sim.run(until=params.dre_period * elapsed)
            expected = 123_457 * (1.0 - params.alpha) ** elapsed
            assert dre.register == expected  # exact float equality


class TestFlowletTable:
    def _table(self, sim, timeout=microseconds(500)):
        return FlowletTable(sim, DEFAULT_PARAMS.with_flowlet_timeout(timeout))

    def test_first_packet_starts_flowlet(self):
        sim = Simulator()
        table = self._table(sim)
        entry = table.lookup(("f",))
        assert not entry.valid
        table.install(entry, 3)
        assert table.new_flowlets == 1

    def test_active_flowlet_reuses_port(self):
        sim = Simulator()
        table = self._table(sim)
        entry = table.lookup(("f",))
        table.install(entry, 3)
        sim.run(until=microseconds(100))
        entry = table.lookup(("f",))
        assert entry.valid and entry.port == 3

    def test_gap_below_timeout_never_expires(self):
        sim = Simulator()
        table = self._table(sim, timeout=microseconds(500))
        entry = table.lookup(("f",))
        table.install(entry, 1)
        for _ in range(20):
            sim.run(until=sim.now + microseconds(400))  # gaps < T_fl
            assert table.lookup(("f",)).valid

    def test_gap_above_twice_timeout_always_expires(self):
        sim = Simulator()
        table = self._table(sim, timeout=microseconds(500))
        entry = table.lookup(("f",))
        table.install(entry, 1)
        sim.run(until=sim.now + microseconds(1001))
        entry = table.lookup(("f",))
        assert not entry.valid
        assert table.expired_flowlets == 1

    def test_expired_entry_remembers_previous_port(self):
        """3.5: ties prefer the port the last flowlet used."""
        sim = Simulator()
        table = self._table(sim)
        entry = table.lookup(("f",))
        table.install(entry, 5)
        sim.run(until=milliseconds(10))
        entry = table.lookup(("f",))
        assert not entry.valid
        assert entry.port == 5

    def test_detection_window_semantics(self):
        """Gaps are detected between T_fl and 2*T_fl (age-bit scanning)."""
        timeout = microseconds(500)
        # A gap crossing two scan boundaries expires; within one does not.
        sim = Simulator()
        table = self._table(sim, timeout=microseconds(500))
        # Install just before a boundary: expires soon after the next one.
        sim.run(until=microseconds(499))
        entry = table.lookup(("f",))
        table.install(entry, 1)
        sim.run(until=microseconds(1001))  # gap of 502 us, crosses 500 & 1000
        assert not table.lookup(("f",)).valid

    def test_hash_collisions_share_entry(self):
        sim = Simulator()
        params = CongaParams(flowlet_table_size=1)
        table = FlowletTable(sim, params)
        entry = table.lookup(("flow-a",))
        table.install(entry, 2)
        other = table.lookup(("flow-b",))
        assert other is entry  # collision: same slot
        assert other.valid and other.port == 2

    def test_active_flowlets_count(self):
        sim = Simulator()
        table = self._table(sim)
        for key in range(10):
            entry = table.lookup((key,))
            table.install(entry, 0)
        assert table.active_flowlets == 10
        sim.run(until=milliseconds(50))
        assert table.active_flowlets == 0

    @given(
        gaps=st.lists(
            st.integers(min_value=1, max_value=2_000_000), min_size=1, max_size=30
        )
    )
    @settings(deadline=None)
    def test_expiry_invariant(self, gaps):
        """An entry is valid iff the gap spans fewer than 2 scan boundaries."""
        timeout = microseconds(500)
        sim = Simulator()
        table = self._table(sim, timeout=timeout)
        entry = table.lookup(("f",))
        table.install(entry, 1)
        last_touch = sim.now
        for gap in gaps:
            sim.run(until=sim.now + gap)
            entry = table.lookup(("f",))
            boundaries = sim.now // timeout - last_touch // timeout
            assert entry.valid == (boundaries < 2)
            if not entry.valid:
                table.install(entry, 1)
            last_touch = sim.now


class TestCongestionToLeafTable:
    def test_unknown_paths_read_zero(self):
        table = CongestionToLeafTable(Simulator(), num_uplinks=4)
        assert table.metric(dst_leaf=9, lbtag=2) == 0

    def test_update_and_read(self):
        table = CongestionToLeafTable(Simulator(), num_uplinks=4)
        table.update(1, 2, 5)
        assert table.metric(1, 2) == 5
        assert table.metric(1, 3) == 0

    def test_metrics_toward(self):
        table = CongestionToLeafTable(Simulator(), num_uplinks=3)
        table.update(1, 0, 2)
        table.update(1, 2, 7)
        assert table.metrics_toward(1) == [2, 0, 7]

    def test_aging_decays_gradually_to_zero(self):
        sim = Simulator()
        table = CongestionToLeafTable(sim, num_uplinks=2)
        table.update(0, 0, 6)
        age = DEFAULT_PARAMS.metric_age_time
        sim.run(until=age)  # still fresh at exactly the age time
        assert table.metric(0, 0) == 6
        sim.run(until=age + age // 2)  # halfway through the decay ramp
        assert table.metric(0, 0) == 3
        sim.run(until=2 * age + 1)
        assert table.metric(0, 0) == 0

    def test_refresh_resets_age(self):
        sim = Simulator()
        table = CongestionToLeafTable(sim, num_uplinks=2)
        table.update(0, 0, 6)
        sim.run(until=DEFAULT_PARAMS.metric_age_time - 1000)
        table.update(0, 0, 6)
        sim.run(until=sim.now + DEFAULT_PARAMS.metric_age_time // 2)
        assert table.metric(0, 0) == 6

    def test_rejects_bad_lbtag(self):
        table = CongestionToLeafTable(Simulator(), num_uplinks=2)
        with pytest.raises(ValueError):
            table.update(0, 2, 1)

    def test_rejects_zero_uplinks(self):
        with pytest.raises(ValueError):
            CongestionToLeafTable(Simulator(), num_uplinks=0)


class TestCongestionFromLeafTable:
    def test_empty_returns_none(self):
        table = CongestionFromLeafTable(num_lbtags=4)
        assert table.select_feedback(0) is None

    def test_records_and_feeds_back(self):
        table = CongestionFromLeafTable(num_lbtags=4)
        table.record(0, 1, 5)
        assert table.select_feedback(0) == (1, 5)

    def test_round_robin_over_lbtags(self):
        table = CongestionFromLeafTable(num_lbtags=3)
        for tag in range(3):
            table.record(0, tag, tag + 1)
        picks = [table.select_feedback(0)[0] for _ in range(6)]
        assert sorted(picks[:3]) == [0, 1, 2]
        assert sorted(picks[3:]) == [0, 1, 2]

    def test_changed_metrics_have_priority(self):
        table = CongestionFromLeafTable(num_lbtags=3)
        for tag in range(3):
            table.record(0, tag, 1)
        for _ in range(3):
            table.select_feedback(0)  # clear all changed bits
        table.record(0, 2, 7)  # only tag 2 changed
        assert table.select_feedback(0) == (2, 7)

    def test_unchanged_value_does_not_set_changed(self):
        table = CongestionFromLeafTable(num_lbtags=2)
        table.record(0, 0, 4)
        table.select_feedback(0)
        table.record(0, 0, 4)  # same value: not "changed"
        table.record(0, 1, 9)
        assert table.select_feedback(0) == (1, 9)

    def test_per_source_leaf_isolation(self):
        table = CongestionFromLeafTable(num_lbtags=2)
        table.record(0, 0, 3)
        table.record(1, 1, 6)
        assert table.select_feedback(0) == (0, 3)
        assert table.select_feedback(1) == (1, 6)

    def test_rejects_bad_lbtag(self):
        table = CongestionFromLeafTable(num_lbtags=2)
        with pytest.raises(ValueError):
            table.record(0, 5, 1)
