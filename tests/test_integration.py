"""End-to-end integration tests reproducing the paper's qualitative claims.

These are scaled-down packet-level versions of the headline results; the
full parameter sweeps live in ``benchmarks/``.
"""

import pytest

from repro.apps import compare_schemes, execute_experiment, get_scheme
from repro.lb import CongaSelector, EcmpSelector, LocalAwareSelector
from repro.sim import Simulator, run_until_idle
from repro.topology import build_leaf_spine, scaled_testbed
from repro.transport import TcpFlow
from repro.units import gbps, megabytes, seconds
from repro.workloads import DATA_MINING, ENTERPRISE, WEB_SEARCH


class TestAsymmetryPacketLevel:
    """Packet-level confirmation of the Figure 2 fluid analysis."""

    def _run_throughput(self, selector_factory, seed=3):
        """Aggregate goodput of many long flows over an asymmetric fabric."""
        sim = Simulator(seed=seed)
        # 2 leaves, 2 spines, 1 link per pair; fail nothing but make the
        # S1<->L1 pair half-rate by failing one of two parallel links.
        config = scaled_testbed(hosts_per_leaf=4, links_per_pair=2)
        fabric = build_leaf_spine(sim, config)
        fabric.finalize(selector_factory)
        fabric.fail_link(1, 1, 0)  # Figure 7(b) asymmetry
        flows = []
        for i in range(4):
            flow = TcpFlow(
                sim, fabric.host(i), fabric.host(4 + i), megabytes(4)
            )
            flow.start()
            flows.append(flow)
        sim.run(until=seconds(1))
        done = [f for f in flows if f.finished]
        assert len(done) == len(flows)
        span = max(f.sender.completed_at for f in done)
        return sum(f.size for f in done) * 8 / span  # bits per tick ~ Gbps

    def test_conga_beats_ecmp_under_asymmetry(self):
        ecmp = self._run_throughput(EcmpSelector.factory())
        conga = self._run_throughput(CongaSelector.factory())
        assert conga > ecmp

    def test_spray_completes_under_asymmetry(self):
        # Per-packet spraying still delivers (reordering is absorbed by the
        # receiver's cumulative ACKs, at some FCT cost).
        spray = self._run_throughput(
            __import__("repro.lb", fromlist=["PacketSpraySelector"]).PacketSpraySelector.factory()
        )
        assert spray > 0


class TestLinkFailureFct:
    """Figure 11's shape: with a failed link, CONGA degrades gracefully."""

    @pytest.fixture(scope="class")
    def results(self):
        def hotspot_ports(fabric):
            spine1 = fabric.spines[1]
            return [spine1.ports[i] for i in spine1.ports_to_leaf(1)]

        # Load the leaf0 -> leaf1 direction (clients under leaf 1), which is
        # the direction crossing the degraded [Spine1 -> Leaf1] link.
        return compare_schemes(
            ["ecmp", "conga"],
            DATA_MINING,
            0.6,
            num_flows=120,
            size_scale=0.05,
            seed=7,
            clients=list(range(8, 16)),
            failed_links=[(1, 1, 0)],
            monitor_queue_ports=hotspot_ports,
        )

    def test_all_flows_complete(self, results):
        for result in results.values():
            assert result.unfinished == 0

    def test_conga_better_overall_fct(self, results):
        assert (
            results["conga"].summary.mean_normalized
            < results["ecmp"].summary.mean_normalized
        )

    def test_conga_controls_hotspot_queue(self, results):
        """Figure 11(c): the queue at [Spine1->Leaf1] is far smaller with
        CONGA because it steers traffic away before congestion builds."""
        import numpy as np

        means = {}
        for scheme, result in results.items():
            spine1 = result.fabric.spines[1]
            port = spine1.ports[spine1.ports_to_leaf(1)[0]]
            means[scheme] = float(np.mean(result.queues.series(port)))
        assert means["conga"] < 0.5 * means["ecmp"]


class TestBaselineFct:
    """Figure 9/10 shape at one load point."""

    def test_conga_at_least_as_good_as_ecmp_datamining(self):
        results = compare_schemes(
            ["ecmp", "conga"],
            DATA_MINING,
            0.6,
            num_flows=150,
            size_scale=0.02,
            seed=11,
        )
        assert (
            results["conga"].summary.mean_normalized
            <= results["ecmp"].summary.mean_normalized * 1.05
        )

    def test_mptcp_hurts_small_flows(self):
        """5.2.1: MPTCP degrades small-flow FCT relative to ECMP."""
        results = compare_schemes(
            ["ecmp", "mptcp"],
            ENTERPRISE,
            0.5,
            num_flows=150,
            size_scale=0.02,
            seed=13,
        )
        assert (
            results["mptcp"].summary.mean_fct_small
            > results["ecmp"].summary.mean_fct_small
        )


class TestImbalanceShape:
    """Figure 12's shape: CONGA balances uplinks far better than ECMP."""

    def test_conga_lower_imbalance_than_ecmp(self):
        from repro.units import microseconds

        results = {}
        for scheme in ("ecmp", "conga"):
            result = execute_experiment(
                get_scheme(scheme),
                ENTERPRISE,
                0.6,
                num_flows=200,
                size_scale=0.02,
                seed=17,
                monitor_imbalance_leaf=0,
                imbalance_interval=microseconds(200),
            )
            results[scheme] = result.imbalance.mean_percent()
        assert results["conga"] < results["ecmp"]


class TestIncrementalDeployment:
    """7: CONGA can run on a subset of leaves and still work."""

    def test_mixed_selectors_coexist(self):
        sim = Simulator(seed=19)
        fabric = build_leaf_spine(sim, scaled_testbed(hosts_per_leaf=2))
        # Leaf 0 runs CONGA, leaf 1 runs ECMP.
        factories = [CongaSelector.factory(), EcmpSelector.factory()]
        for leaf, factory in zip(fabric.leaves, factories):
            leaf.finalize(factory)
        flows = [
            TcpFlow(sim, fabric.host(0), fabric.host(2), megabytes(1)),
            TcpFlow(sim, fabric.host(3), fabric.host(1), megabytes(1)),
        ]
        for flow in flows:
            flow.start()
        run_until_idle(sim)
        assert all(flow.finished for flow in flows)


class TestFeedbackDynamics:
    def test_metrics_age_out_when_traffic_stops(self):
        result = execute_experiment(
            get_scheme("conga"), WEB_SEARCH, 0.5,
            num_flows=50, size_scale=0.02, seed=23,
        )
        leaf0 = result.fabric.leaves[0]
        sim = result.sim
        # Immediately after the run some remote metric is typically set;
        # after 25 ms of silence everything must have aged to zero.
        sim.run(until=sim.now + seconds(1))
        metrics = leaf0.to_leaf_table.metrics_toward(1)
        assert all(m == 0 for m in metrics)

    def test_conga_feedback_flows_in_both_directions(self):
        result = execute_experiment(
            get_scheme("conga"), WEB_SEARCH, 0.5,
            num_flows=50, size_scale=0.02, seed=29,
        )
        for leaf in result.fabric.leaves:
            assert leaf.tep.feedback_received > 0
            assert leaf.tep.feedback_sent > 0
