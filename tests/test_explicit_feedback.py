"""Tests for the explicit-feedback option (§3.3's design alternative)."""

import pytest

from repro.lb import CongaSelector
from repro.sim import Simulator
from repro.topology import build_leaf_spine, scaled_testbed
from repro.transport import UdpSink, UdpSource
from repro.units import gbps, megabytes, microseconds, milliseconds, seconds


def _one_way_scenario(explicit: bool, seed=3):
    """UDP flows leaf0 -> leaf1 only: no reverse traffic to piggyback on."""
    sim = Simulator(seed=seed)
    fabric = build_leaf_spine(sim, scaled_testbed(hosts_per_leaf=4))
    fabric.finalize(CongaSelector.factory())
    if explicit:
        for leaf in fabric.leaves:
            leaf.enable_explicit_feedback(microseconds(500))
    sinks = []
    for i in range(4):
        sinks.append(UdpSink(fabric.host(4 + i), flow_id=100 + i))
        UdpSource(
            sim, fabric.host(i), 4 + i, megabytes(2), gbps(5), flow_id=100 + i
        ).start()
    sim.run(until=milliseconds(3))  # mid-transfer
    return sim, fabric


class TestExplicitFeedback:
    def test_piggyback_only_starves_one_way_senders(self):
        _sim, fabric = _one_way_scenario(explicit=False)
        leaf0 = fabric.leaves[0]
        # No reverse traffic ever existed, so leaf0 learned nothing.
        assert leaf0.tep.feedback_received == 0
        assert all(m == 0 for m in leaf0.to_leaf_table.metrics_toward(1))

    def test_explicit_feedback_fills_tables(self):
        _sim, fabric = _one_way_scenario(explicit=True)
        leaf0 = fabric.leaves[0]
        leaf1 = fabric.leaves[1]
        assert leaf1.explicit_feedback_sent > 0
        assert leaf0.tep.feedback_received > 0
        # The loaded uplinks' remote metrics are now visible at the sender.
        assert any(m > 0 for m in leaf0.to_leaf_table.metrics_toward(1))

    def test_control_packets_not_delivered_to_hosts(self):
        _sim, fabric = _one_way_scenario(explicit=True)
        for host in fabric.hosts.values():
            assert host.undelivered_packets == 0

    def test_no_feedback_packets_when_nothing_owed(self):
        sim = Simulator(seed=1)
        fabric = build_leaf_spine(sim, scaled_testbed(hosts_per_leaf=2))
        fabric.finalize(CongaSelector.factory())
        for leaf in fabric.leaves:
            leaf.enable_explicit_feedback(microseconds(500))
        sim.run(until=milliseconds(5))  # idle fabric
        assert all(leaf.explicit_feedback_sent == 0 for leaf in fabric.leaves)

    def test_disable_stops_generation(self):
        sim, fabric = _one_way_scenario(explicit=True)
        before = fabric.leaves[1].explicit_feedback_sent
        for leaf in fabric.leaves:
            leaf.disable_explicit_feedback()
        sim.run(until=sim.now + milliseconds(2))
        assert fabric.leaves[1].explicit_feedback_sent == before

    def test_validation(self):
        sim = Simulator()
        fabric = build_leaf_spine(sim, scaled_testbed(hosts_per_leaf=2))
        fabric.finalize(CongaSelector.factory())
        with pytest.raises(ValueError):
            fabric.leaves[0].enable_explicit_feedback(0)

    def test_feedback_volume_is_modest(self):
        """Control traffic stays tiny relative to data (why 3.3 says a
        handful of packets suffice per leaf pair)."""
        _sim, fabric = _one_way_scenario(explicit=True)
        control_bytes = fabric.leaves[1].explicit_feedback_sent * 64
        data_bytes = sum(
            port.tx_bytes for port in fabric.leaves[0].uplinks
        )
        assert control_bytes < data_bytes / 100
