"""Tests for MPTCP: subflows, coupled congestion control, data scheduling."""

import pytest

from repro.lb import EcmpSelector
from repro.sim import Simulator, run_until_idle
from repro.topology import build_leaf_spine, scaled_testbed
from repro.transport import MptcpConnection, TcpParams
from repro.transport.mptcp import LinkedIncreasesCC
from repro.units import megabytes, microseconds


def _fabric(seed=1, hosts_per_leaf=2, **cfg):
    sim = Simulator(seed=seed)
    fabric = build_leaf_spine(sim, scaled_testbed(hosts_per_leaf=hosts_per_leaf, **cfg))
    fabric.finalize(EcmpSelector.factory())
    return sim, fabric


class TestBasics:
    def test_transfer_completes(self):
        sim, fabric = _fabric()
        conn = MptcpConnection(sim, fabric.host(0), fabric.host(2), megabytes(1))
        conn.start()
        run_until_idle(sim)
        assert conn.finished
        assert conn.fct > 0

    def test_all_bytes_delivered_exactly_once(self):
        sim, fabric = _fabric()
        conn = MptcpConnection(sim, fabric.host(0), fabric.host(2), megabytes(2))
        conn.start()
        run_until_idle(sim)
        delivered = sum(r.rcv_nxt for r in conn.receivers)
        assert delivered == megabytes(2)
        assigned = sum(f.source.assigned for f in conn.subflows)
        assert assigned == megabytes(2)
        assert conn.pool_remaining == 0

    def test_uses_multiple_subflows(self):
        sim, fabric = _fabric()
        conn = MptcpConnection(sim, fabric.host(0), fabric.host(2), megabytes(4))
        conn.start()
        run_until_idle(sim)
        active = [f for f in conn.subflows if f.source.assigned > 0]
        assert len(active) == 8

    def test_subflows_have_distinct_five_tuples(self):
        sim, fabric = _fabric()
        conn = MptcpConnection(sim, fabric.host(0), fabric.host(2), megabytes(1))
        tuples = {(f.src, f.dst, f.sport, f.dport) for f in conn.subflows}
        assert len(tuples) == 8

    def test_subflows_spread_over_fabric_paths(self):
        sim, fabric = _fabric()
        conn = MptcpConnection(sim, fabric.host(0), fabric.host(2), megabytes(8))
        conn.start()
        run_until_idle(sim)
        used = [p for p in fabric.leaves[0].uplinks if p.tx_packets > 100]
        assert len(used) >= 2  # ECMP hashed the 8 subflows over >= 2 uplinks

    def test_tiny_flow_single_subflow(self):
        sim, fabric = _fabric()
        conn = MptcpConnection(sim, fabric.host(0), fabric.host(2), 500)
        conn.start()
        run_until_idle(sim)
        assert conn.finished
        carriers = [f for f in conn.subflows if f.source.assigned > 0]
        assert len(carriers) == 1

    def test_configurable_subflow_count(self):
        sim, fabric = _fabric()
        conn = MptcpConnection(
            sim, fabric.host(0), fabric.host(2), megabytes(1), num_subflows=2
        )
        assert len(conn.subflows) == 2
        conn.start()
        run_until_idle(sim)
        assert conn.finished

    def test_validation(self):
        sim, fabric = _fabric()
        with pytest.raises(ValueError):
            MptcpConnection(sim, fabric.host(0), fabric.host(2), 0)
        with pytest.raises(ValueError):
            MptcpConnection(
                sim, fabric.host(0), fabric.host(2), 100, num_subflows=0
            )

    def test_fct_before_completion_raises(self):
        sim, fabric = _fabric()
        conn = MptcpConnection(sim, fabric.host(0), fabric.host(2), megabytes(1))
        with pytest.raises(RuntimeError):
            _ = conn.fct

    def test_completion_callback(self):
        sim, fabric = _fabric()
        done = []
        conn = MptcpConnection(
            sim, fabric.host(0), fabric.host(2), 100_000, on_complete=done.append
        )
        conn.start()
        run_until_idle(sim)
        assert done == [conn]

    def test_deterministic(self):
        def once():
            sim, fabric = _fabric(seed=5)
            conn = MptcpConnection(sim, fabric.host(0), fabric.host(3), megabytes(1))
            conn.start()
            run_until_idle(sim)
            return conn.fct

        assert once() == once()


class TestLinkedIncreases:
    def test_alpha_equals_one_for_single_symmetric_subflow(self):
        sim, fabric = _fabric()
        conn = MptcpConnection(
            sim, fabric.host(0), fabric.host(2), megabytes(1), num_subflows=1
        )
        # One subflow: alpha = total * (w/rtt^2) / (w/rtt)^2 = 1.
        assert conn.lia_alpha() == pytest.approx(1.0)

    def test_alpha_with_equal_subflows(self):
        sim, fabric = _fabric()
        conn = MptcpConnection(
            sim, fabric.host(0), fabric.host(2), megabytes(1), num_subflows=4
        )
        # Equal windows and RTTs: alpha = N*w * (w/r^2) / (N*w/r)^2 = 1/N.
        assert conn.lia_alpha() == pytest.approx(1.0 / 4.0)

    def test_coupled_increase_no_more_aggressive_than_single_tcp(self):
        sim, fabric = _fabric()
        conn = MptcpConnection(
            sim, fabric.host(0), fabric.host(2), megabytes(1), num_subflows=8
        )
        cc = conn.subflows[0].cc
        assert isinstance(cc, LinkedIncreasesCC)
        single_tcp_increase = 1460 * 1460 / conn.subflows[0].cwnd
        coupled = cc.ca_increase(conn.subflows[0], 1460)
        assert coupled <= single_tcp_increase + 1e-9

    def test_total_cwnd_sums_subflows(self):
        sim, fabric = _fabric()
        conn = MptcpConnection(
            sim, fabric.host(0), fabric.host(2), megabytes(1), num_subflows=3
        )
        assert conn.total_cwnd() == pytest.approx(3 * 10 * 1460)


class TestScheduling:
    def test_pool_never_negative(self):
        sim, fabric = _fabric()
        conn = MptcpConnection(sim, fabric.host(0), fabric.host(2), megabytes(1))
        conn.start()
        while sim.pending_events:
            sim.run(max_events=1000)
            assert conn.pool_remaining >= 0

    def test_grant_respects_subflow_window(self):
        sim, fabric = _fabric()
        conn = MptcpConnection(sim, fabric.host(0), fabric.host(2), megabytes(4))
        conn.start()
        sim.run(until=microseconds(5))
        for flow in conn.subflows:
            assert flow.inflight <= flow.cwnd + flow.params.mss
