"""Tests for the UDP transport model."""

import pytest

from repro.net import Host, connect
from repro.sim import Simulator, run_until_idle
from repro.transport import UdpSink, UdpSource
from repro.units import gbps, to_seconds


def _pair():
    sim = Simulator()
    h1 = Host(sim, 0, gbps(10))
    h2 = Host(sim, 1, gbps(10))
    connect(h1.nic, h2.nic)
    return sim, h1, h2


class TestUdpSource:
    def test_sends_all_bytes(self):
        sim, h1, h2 = _pair()
        sink = UdpSink(h2, flow_id=5)
        source = UdpSource(sim, h1, 1, 100_000, gbps(1), flow_id=5)
        source.start()
        run_until_idle(sim)
        assert source.done
        assert sink.received_bytes == 100_000

    def test_paced_at_requested_rate(self):
        sim, h1, h2 = _pair()
        sink = UdpSink(h2, flow_id=5)
        size = 1_000_000
        source = UdpSource(sim, h1, 1, size, gbps(1), flow_id=5)
        source.start()
        sim.run()  # plain run leaves the clock at the last event
        elapsed = to_seconds(sim.now)
        achieved = size * 8 / elapsed
        assert achieved == pytest.approx(1e9, rel=0.1)

    def test_respects_datagram_size(self):
        sim, h1, h2 = _pair()
        sink = UdpSink(h2, flow_id=5)
        source = UdpSource(
            sim, h1, 1, 10_000, gbps(1), flow_id=5, datagram_size=500
        )
        source.start()
        run_until_idle(sim)
        assert sink.received_packets == 20

    def test_done_callback(self):
        sim, h1, h2 = _pair()
        UdpSink(h2, flow_id=5)
        done = []
        source = UdpSource(
            sim, h1, 1, 5000, gbps(1), flow_id=5, on_done=done.append
        )
        source.start()
        run_until_idle(sim)
        assert done == [source]

    def test_validation(self):
        sim, h1, _h2 = _pair()
        with pytest.raises(ValueError):
            UdpSource(sim, h1, 1, 0, gbps(1))
        with pytest.raises(ValueError):
            UdpSource(sim, h1, 1, 100, 0)

    def test_sink_close(self):
        sim, h1, h2 = _pair()
        sink = UdpSink(h2, flow_id=5)
        sink.close()
        source = UdpSource(sim, h1, 1, 5000, gbps(1), flow_id=5)
        source.start()
        run_until_idle(sim)
        assert h2.undelivered_packets > 0
