"""Tests for synthetic traces and flowlet measurement analysis (Fig. 5)."""

import numpy as np
import pytest

from repro.traces import (
    FIGURE5_GAPS,
    PacketTrace,
    SyntheticTraceGenerator,
    byte_median_size,
    byte_weighted_cdf,
    concurrency_per_window,
    flowlet_sizes,
)
from repro.units import MICROSECOND, MILLISECOND
from repro.workloads import WEB_SEARCH


def _trace(times, flows, sizes):
    return PacketTrace(
        times=np.array(times, dtype=np.int64),
        flows=np.array(flows, dtype=np.int64),
        sizes=np.array(sizes, dtype=np.int64),
    )


class TestPacketTrace:
    def test_validation_length(self):
        with pytest.raises(ValueError):
            _trace([1, 2], [0], [100])

    def test_validation_sorted(self):
        with pytest.raises(ValueError):
            _trace([5, 1], [0, 0], [100, 100])

    def test_totals(self):
        trace = _trace([0, 10, 20], [0, 0, 1], [100, 200, 300])
        assert trace.total_bytes == 600
        assert trace.duration == 20


class TestFlowletExtraction:
    def test_single_flow_no_gaps(self):
        trace = _trace([0, 10, 20], [0, 0, 0], [100, 100, 100])
        sizes = flowlet_sizes(trace, gap=50)
        assert list(sizes) == [300]

    def test_gap_splits_flowlets(self):
        trace = _trace([0, 10, 1000], [0, 0, 0], [100, 100, 100])
        sizes = flowlet_sizes(trace, gap=50)
        assert sorted(sizes) == [100, 200]

    def test_gap_boundary_is_exclusive(self):
        trace = _trace([0, 50], [0, 0], [100, 100])
        assert list(flowlet_sizes(trace, gap=50)) == [200]  # gap == limit: same
        assert sorted(flowlet_sizes(trace, gap=49)) == [100, 100]

    def test_interleaved_flows_tracked_separately(self):
        trace = _trace([0, 1, 2, 3], [0, 1, 0, 1], [10, 20, 30, 40])
        sizes = flowlet_sizes(trace, gap=100)
        assert sorted(sizes) == [40, 60]

    def test_byte_conservation(self):
        gen = SyntheticTraceGenerator(seed=9, workload=WEB_SEARCH)
        trace = gen.generate(50)
        for gap in (100 * MICROSECOND, 10 * MILLISECOND):
            assert flowlet_sizes(trace, gap).sum() == trace.total_bytes

    def test_smaller_gap_never_fewer_flowlets(self):
        gen = SyntheticTraceGenerator(seed=10, workload=WEB_SEARCH)
        trace = gen.generate(40)
        n_100us = len(flowlet_sizes(trace, 100 * MICROSECOND))
        n_500us = len(flowlet_sizes(trace, 500 * MICROSECOND))
        n_250ms = len(flowlet_sizes(trace, 250 * MILLISECOND))
        assert n_100us >= n_500us >= n_250ms

    def test_rejects_bad_gap(self):
        trace = _trace([0], [0], [1])
        with pytest.raises(ValueError):
            flowlet_sizes(trace, 0)


class TestByteWeightedCdf:
    def test_known_values(self):
        sizes = np.array([100, 300])
        probes = np.array([50, 100, 300])
        cdf = byte_weighted_cdf(sizes, probes)
        assert cdf == pytest.approx([0.0, 0.25, 1.0])

    def test_monotone(self):
        rng = np.random.default_rng(1)
        sizes = rng.pareto(1.5, size=500) * 1000
        probes = np.logspace(1, 8, 40)
        cdf = byte_weighted_cdf(sizes, probes)
        assert (np.diff(cdf) >= -1e-12).all()

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            byte_weighted_cdf(np.array([]), np.array([1.0]))

    def test_byte_median(self):
        sizes = np.array([100, 100, 800])
        assert byte_median_size(sizes) == 800


class TestConcurrency:
    def test_counts_distinct_flows(self):
        window = MILLISECOND
        trace = _trace(
            [0, 1, 2, window + 1, window + 2],
            [0, 1, 0, 2, 2],
            [1, 1, 1, 1, 1],
        )
        counts = concurrency_per_window(trace, window)
        assert list(counts) == [2, 1]

    def test_empty_trace(self):
        trace = _trace([], [], [])
        assert len(concurrency_per_window(trace)) == 0

    def test_rejects_bad_window(self):
        trace = _trace([0], [0], [1])
        with pytest.raises(ValueError):
            concurrency_per_window(trace, 0)


class TestSyntheticGenerator:
    def test_generates_requested_flows(self):
        gen = SyntheticTraceGenerator(seed=1, workload=WEB_SEARCH)
        trace = gen.generate(30)
        assert len(np.unique(trace.flows)) == 30

    def test_packet_sizes_bounded_by_mtu(self):
        gen = SyntheticTraceGenerator(seed=1, workload=WEB_SEARCH)
        trace = gen.generate(20)
        assert trace.sizes.max() <= 1500
        assert trace.sizes.min() >= 1

    def test_deterministic(self):
        a = SyntheticTraceGenerator(seed=5, workload=WEB_SEARCH).generate(10)
        b = SyntheticTraceGenerator(seed=5, workload=WEB_SEARCH).generate(10)
        assert (a.times == b.times).all() and (a.sizes == b.sizes).all()

    def test_bursts_at_line_rate(self):
        gen = SyntheticTraceGenerator(seed=2, workload=WEB_SEARCH)
        trace = gen.generate(5)
        # Within one flow, minimum inter-packet spacing is the line-rate gap.
        for flow in np.unique(trace.flows):
            times = trace.times[trace.flows == flow]
            if len(times) > 1:
                gaps = np.diff(np.sort(times))
                assert gaps.min() >= 1100  # ~1.2 us at 10 Gbps for 1500 B

    def test_validation(self):
        with pytest.raises(ValueError):
            SyntheticTraceGenerator(burst_bytes=100, packet_bytes=1500)
        with pytest.raises(ValueError):
            SyntheticTraceGenerator(min_app_rate_bps=0)
        gen = SyntheticTraceGenerator()
        with pytest.raises(ValueError):
            gen.generate(0)


class TestFigure5Shape:
    """The headline measurement: flowlets are ~2 orders finer than flows."""

    def test_flowlet_gaps_shrink_byte_median(self):
        gen = SyntheticTraceGenerator(seed=11)
        trace = gen.generate(200)
        medians = {
            name: byte_median_size(flowlet_sizes(trace, gap))
            for name, gap in FIGURE5_GAPS.items()
        }
        assert medians["flow-250ms"] > 10e6  # flows: tens of MB
        assert medians["flowlet-500us"] < medians["flow-250ms"] / 30
        assert medians["flowlet-100us"] <= medians["flowlet-500us"]

    def test_concurrency_supports_small_table(self):
        """2.6.1: concurrent flowlets are few, so a 64K table is ample."""
        gen = SyntheticTraceGenerator(seed=12)
        trace = gen.generate(400, arrival_rate_per_s=20_000.0)
        counts = concurrency_per_window(trace)
        assert counts.max() < 65_536 / 8


class TestPersistence:
    def test_save_load_roundtrip(self, tmp_path):
        import numpy as np

        gen = SyntheticTraceGenerator(seed=3, workload=WEB_SEARCH)
        trace = gen.generate(20)
        path = tmp_path / "trace.npz"
        trace.save(path)
        loaded = PacketTrace.load(path)
        assert (loaded.times == trace.times).all()
        assert (loaded.flows == trace.flows).all()
        assert (loaded.sizes == trace.sizes).all()

    def test_loaded_trace_analyzable(self, tmp_path):
        gen = SyntheticTraceGenerator(seed=3, workload=WEB_SEARCH)
        trace = gen.generate(20)
        path = tmp_path / "trace.npz"
        trace.save(path)
        loaded = PacketTrace.load(path)
        gap = 500 * MICROSECOND
        assert (
            flowlet_sizes(loaded, gap).sum()
            == flowlet_sizes(trace, gap).sum()
        )
