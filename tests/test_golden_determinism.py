"""Golden determinism fixtures for the simulation kernel's hot paths.

The kernel, port, timer, and packet fast paths are rewritten for speed from
time to time (ISSUE 2's event-kernel overhaul being the first); these tests
pin sha256 digests of the *complete per-flow FCT records* of three schemes
(ecmp / conga / dctcp) on a small fixed-seed spec, so any refactor that
changes simulation behaviour — event ordering, timer firing, serialization
rounding — fails loudly instead of silently shifting the paper's figures.

The fixture was captured on the pre-optimization (PR 1) kernel; matching it
proves an optimized kernel is *bit-identical*, not just statistically close.

Regenerate (only when behaviour is changed on purpose)::

    PYTHONPATH=src python tests/test_golden_determinism.py --update
"""

import json
import sys
from pathlib import Path

import pytest

from repro.analysis.fct import records_digest
from repro.apps import ExperimentSpec
from repro.topology import scaled_testbed
from repro.units import kilobytes

GOLDEN_PATH = Path(__file__).parent / "golden" / "summary_digests.json"

#: The pinned scenario: small enough for tier-1, busy enough that every hot
#: path (timers, fast retransmit, flowlets, DRE decay, ECN marking) runs.
SCHEMES = ("ecmp", "conga", "dctcp")


def golden_spec(scheme: str) -> ExperimentSpec:
    """The frozen spec each golden digest is computed from."""
    config = (
        scaled_testbed(ecn_threshold_bytes=kilobytes(100))
        if scheme == "dctcp"
        else None
    )
    return ExperimentSpec(
        scheme=scheme,
        workload="enterprise",
        load=0.6,
        seed=7,
        num_flows=60,
        size_scale=0.05,
        config=config,
    )


def compute_entry(scheme: str) -> dict:
    """Run the golden spec for ``scheme`` and summarize it for the fixture."""
    point = golden_spec(scheme).run()
    assert point.summary is not None
    return {
        "digest": records_digest(list(point.records)),
        "completed": point.completed,
        "arrivals": point.arrivals,
        "mean_normalized": point.summary.mean_normalized,
        "p99_normalized": point.summary.p99_normalized,
        "end_time": point.end_time,
    }


def _load_golden() -> dict:
    if not GOLDEN_PATH.exists():
        pytest.fail(
            f"golden fixture missing at {GOLDEN_PATH}; regenerate with "
            "`PYTHONPATH=src python tests/test_golden_determinism.py --update`"
        )
    return json.loads(GOLDEN_PATH.read_text())


@pytest.mark.parametrize("scheme", SCHEMES)
def test_summary_bit_identical(scheme):
    golden = _load_golden()
    assert scheme in golden, f"no golden entry for {scheme}; regenerate fixture"
    entry = compute_entry(scheme)
    expected = golden[scheme]
    # The digest covers every integer field of every flow record; the
    # aggregate fields are asserted too so a mismatch names what moved.
    assert entry["completed"] == expected["completed"]
    assert entry["arrivals"] == expected["arrivals"]
    assert entry["end_time"] == expected["end_time"]
    assert entry["mean_normalized"] == expected["mean_normalized"]
    assert entry["p99_normalized"] == expected["p99_normalized"]
    assert entry["digest"] == expected["digest"]


def test_same_process_repeatability():
    """Two runs of one spec in one process must agree exactly."""
    first = compute_entry("ecmp")
    second = compute_entry("ecmp")
    assert first == second


def _update() -> None:
    GOLDEN_PATH.parent.mkdir(parents=True, exist_ok=True)
    golden = {scheme: compute_entry(scheme) for scheme in SCHEMES}
    GOLDEN_PATH.write_text(json.dumps(golden, indent=2, sort_keys=True) + "\n")
    print(f"wrote {GOLDEN_PATH}")
    for scheme, entry in golden.items():
        print(f"  {scheme:<8} digest {entry['digest'][:16]}  "
              f"{entry['completed']}/{entry['arrivals']} flows")


if __name__ == "__main__":
    if "--update" in sys.argv:
        _update()
    else:
        print(__doc__)
