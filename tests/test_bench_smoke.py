"""End-to-end smoke of the sweep runner at benchmark-like scale.

Marked ``bench_smoke`` so CI can run it as its own step: one real
scheme-comparison sweep through the on-disk cache, twice — executing the
first time, fully cache-served the second — in well under a minute.
"""

import pytest

from repro.apps import ExperimentSpec
from repro.runner import ResultCache, run_sweep, sweep_grid

pytestmark = pytest.mark.bench_smoke


def test_cached_sweep_end_to_end(tmp_path):
    template = ExperimentSpec(
        scheme="ecmp",
        workload="enterprise",
        load=0.5,
        num_flows=60,
        size_scale=0.05,
        seed=31,
    )
    specs = sweep_grid(template, schemes=["ecmp", "conga"], loads=[0.3, 0.6])
    cache = ResultCache(tmp_path / "cache")
    lines = []

    first = run_sweep(specs, cache=cache, progress=lines.append)
    assert first.executed == len(specs)
    assert len(lines) == len(specs)
    assert all(p.completed == p.arrivals == 60 for p in first)
    assert all(p.summary is not None for p in first)
    # CONGA holds its own against ECMP on this scenario (loose sanity
    # bound — the tight figure assertions live in benchmarks/).
    assert (
        first.point(scheme="conga", load=0.6).summary.mean_normalized
        < first.point(scheme="ecmp", load=0.6).summary.mean_normalized * 1.5
    )

    second = run_sweep(specs, cache=cache)
    assert second.all_cached
    # repr round-trips floats exactly (and treats NaN uniformly), so this
    # is a bit-identical comparison.
    assert [repr(p.summary) for p in second] == [
        repr(p.summary) for p in first
    ]
