"""Tests for the declarative scenario API (repro.scenarios).

Covers the two contracts the scenario plane guarantees:

* **Hash fidelity** — a scenario compiles to the *exact* spec grid (and
  content hashes) the equivalent hand-written ``sweep_grid`` call builds,
  so committed scenarios never invalidate existing ``.repro-cache/``
  entries.
* **Typed errors with provenance** — every loader failure is a
  :class:`ScenarioError` carrying the source file and YAML line, so a
  typo'd scenario fails as ``file.yaml:12: ...`` instead of a stack
  trace mid-sweep.

The ``scenario_smoke`` marker selects the committed-file checks CI runs
against every ``scenarios/*.yaml``.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.apps import ExperimentSpec
from repro.runner import derive_seeds, sweep_grid
from repro.scenarios import Scenario, ScenarioError, SeedPlan, scenario_from_mapping
from repro.topology import LeafSpineConfig
from repro.transport import TcpParams
from repro.units import megabytes, milliseconds
from repro.workloads import BUILTIN_WORKLOAD_NAMES, WORKLOADS

yaml = pytest.importorskip("yaml", reason="scenario files need PyYAML")

from repro.scenarios import load_scenario  # noqa: E402  (after the gate)

SCENARIO_DIR = Path(__file__).resolve().parents[1] / "scenarios"
COMMITTED = sorted(SCENARIO_DIR.glob("*.yaml"))

TEMPLATE = ExperimentSpec(
    scheme="ecmp",
    workload="enterprise",
    load=0.5,
    num_flows=250,
    size_scale=0.05,
    seed=31,
)


def load_text(tmp_path: Path, text: str, name: str = "scenario.yaml"):
    path = tmp_path / name
    path.write_text(text, encoding="utf-8")
    return load_scenario(path)


class TestScenarioValues:
    def test_seed_plan_matches_derive_seeds(self):
        plan = SeedPlan(base=31, count=4)
        assert plan.resolve() == tuple(derive_seeds(31, 4))

    def test_seed_plan_rejects_empty(self):
        with pytest.raises(ValueError):
            SeedPlan(base=1, count=0)

    def test_compile_is_bit_identical_to_sweep_grid(self):
        scenario = Scenario(
            name="fig9",
            template=TEMPLATE,
            schemes=("ecmp", "conga"),
            loads=(0.3, 0.5),
            seeds=SeedPlan(base=31, count=2),
        )
        hand = sweep_grid(
            TEMPLATE,
            schemes=["ecmp", "conga"],
            loads=[0.3, 0.5],
            seeds=derive_seeds(31, 2),
        )
        assert scenario.compile() == hand
        assert list(scenario.grid_hashes()) == [
            spec.content_hash() for spec in hand
        ]

    def test_point_count_matches_compile(self):
        scenario = Scenario(
            name="grid",
            template=TEMPLATE,
            schemes=("ecmp", "conga"),
            loads=(0.3, 0.5, 0.7),
        )
        assert scenario.point_count() == 6 == len(scenario.compile())

    def test_unknown_scheme_fails_validation(self):
        scenario = Scenario(
            name="bad", template=TEMPLATE, schemes=("ecmp", "bogus")
        )
        with pytest.raises(ValueError, match="bogus"):
            scenario.validate()

    def test_content_hash_ignores_source(self):
        a = Scenario(name="x", template=TEMPLATE, source="/a/b.yaml")
        b = Scenario(name="x", template=TEMPLATE, source=None)
        assert a == b
        assert a.content_hash() == b.content_hash()

    def test_params_round_trip(self):
        scenario = Scenario(
            name="p", template=TEMPLATE, params_json='{"fan_ins": [1, 7]}'
        )
        assert scenario.params == {"fan_ins": [1, 7]}
        with pytest.raises(ValueError):
            Scenario(name="p", template=TEMPLATE, params_json="not json")


class TestYamlLoader:
    def test_round_trip_hashes_equal_hand_built_grid(self, tmp_path):
        scenario = load_text(
            tmp_path,
            """
            name: fig9-enterprise
            template:
              scheme: ecmp
              workload: enterprise
              load: 0.5
              seed: 31
              num_flows: 250
              size_scale: 0.05
            grid:
              schemes: [ecmp, conga-flow, conga, mptcp]
              loads: [0.3, 0.5, 0.7, 0.9]
            """,
        )
        hand = sweep_grid(
            TEMPLATE,
            schemes=["ecmp", "conga-flow", "conga", "mptcp"],
            loads=[0.3, 0.5, 0.7, 0.9],
        )
        assert scenario.compile() == hand
        assert list(scenario.grid_hashes()) == [
            spec.content_hash() for spec in hand
        ]

    def test_units_resolve_to_value_objects(self, tmp_path):
        scenario = load_text(
            tmp_path,
            """
            name: tuned
            template:
              scheme: conga
              workload: enterprise
              load: 0.5
              tcp: {min_rto: 200ms}
              topology: {hosts_per_leaf: 32, host_queue_bytes: 8MB}
            grid:
              seeds: {base: 31, count: 2}
            """,
        )
        template = scenario.template
        assert template.tcp_params == TcpParams(min_rto=milliseconds(200))
        assert template.config == LeafSpineConfig(
            hosts_per_leaf=32, host_queue_bytes=megabytes(8)
        )
        assert scenario.seed_list() == tuple(derive_seeds(31, 2))

    def test_unknown_key_error_carries_file_and_line(self, tmp_path):
        with pytest.raises(ScenarioError) as info:
            load_text(
                tmp_path,
                "name: broken\n"
                "template:\n"
                "  scheme: ecmp\n"
                "  workload: enterprise\n"
                "  load: 0.5\n"
                "  num_flowz: 10\n",
            )
        err = info.value
        assert err.source and err.source.endswith("scenario.yaml")
        assert err.line == 6
        assert "num_flowz" in str(err)
        assert "scenario.yaml:6:" in str(err)

    def test_bad_cdf_error_carries_file_and_line(self, tmp_path):
        with pytest.raises(ScenarioError) as info:
            load_text(
                tmp_path,
                "name: badcdf\n"
                "template:\n"
                "  scheme: ecmp\n"
                "  workload: my-mix\n"
                "  load: 0.5\n"
                "workloads:\n"
                "  my-mix:\n"
                "    points: [[1000, 0.9], [2000, 0.2]]\n",
            )
        err = info.value
        assert err.source and err.line == 8
        assert "non-decreasing" in str(err)

    def test_unknown_scheme_names_grid_index(self, tmp_path):
        with pytest.raises(ScenarioError) as info:
            load_text(
                tmp_path,
                "name: typo\n"
                "template:\n"
                "  scheme: ecmp\n"
                "  workload: enterprise\n"
                "  load: 0.5\n"
                "grid:\n"
                "  schemes: [ecmp, bogus]\n",
            )
        assert "bogus" in str(info.value)
        assert info.value.line == 7

    def test_yaml_syntax_error_is_scenario_error(self, tmp_path):
        with pytest.raises(ScenarioError) as info:
            load_text(tmp_path, "name: [unclosed\n")
        assert info.value.source is not None

    def test_missing_file_is_scenario_error(self, tmp_path):
        with pytest.raises(ScenarioError):
            load_scenario(tmp_path / "nope.yaml")

    def test_inline_workload_registers_and_compiles(self, tmp_path):
        scenario = load_text(
            tmp_path,
            """
            name: custom
            template:
              scheme: ecmp
              workload: test-inline-mix
              load: 0.4
              num_flows: 10
            workloads:
              test-inline-mix:
                points: [[1000, 0.5], [1000000, 1.0]]
            """,
        )
        specs = scenario.compile()
        assert len(specs) == 1
        assert specs[0].workload == "test-inline-mix"
        assert "test-inline-mix" in WORKLOADS
        assert "test-inline-mix" not in BUILTIN_WORKLOAD_NAMES

    def test_mapping_loader_needs_no_file(self):
        scenario = scenario_from_mapping(
            {
                "name": "inline",
                "template": {
                    "scheme": "ecmp",
                    "workload": "enterprise",
                    "load": 0.5,
                },
                "grid": {"loads": [0.3, 0.6]},
            }
        )
        assert scenario.point_count() == 2


class TestMultipodScenarios:
    """Multipod topology keys and fault-target validation in YAML."""

    def test_multipod_key_selects_three_tier_config(self, tmp_path):
        scenario = load_text(
            tmp_path,
            """
            name: threetier
            template:
              scheme: ecmp
              workload: enterprise
              load: 0.5
              topology: {num_pods: 2, hosts_per_leaf: 8}
            """,
        )
        from repro.topology.multipod import MultiPodConfig

        assert scenario.template.config == MultiPodConfig(
            num_pods=2, hosts_per_leaf=8
        )

    def test_core_fault_on_two_tier_template_rejected(self, tmp_path):
        with pytest.raises(ScenarioError) as info:
            load_text(
                tmp_path,
                "name: badcore\n"
                "template:\n"
                "  scheme: ecmp\n"
                "  workload: enterprise\n"
                "  load: 0.5\n"
                "  faults: [\"link_down@1ms:s1-c0\"]\n",
            )
        assert "need a multipod topology" in str(info.value)
        assert info.value.line == 6

    def test_core_index_out_of_range_names_fault(self, tmp_path):
        with pytest.raises(ScenarioError) as info:
            load_text(
                tmp_path,
                "name: badidx\n"
                "template:\n"
                "  scheme: ecmp\n"
                "  workload: enterprise\n"
                "  load: 0.5\n"
                "  topology: {num_pods: 2}\n"
                "  faults: [\"link_down@1ms:s1-c5\"]\n",
            )
        assert "core 5 out of range" in str(info.value)
        assert "LinkDown" in str(info.value)

    def test_leaf_index_checked_against_default_testbed(self, tmp_path):
        with pytest.raises(ScenarioError) as info:
            load_text(
                tmp_path,
                "name: badleaf\n"
                "template:\n"
                "  scheme: ecmp\n"
                "  workload: enterprise\n"
                "  load: 0.5\n"
                "  faults: [\"link_down@1ms:l7-s1\"]\n",
            )
        assert "leaf 7 out of range" in str(info.value)

    def test_valid_core_fault_compiles(self, tmp_path):
        scenario = load_text(
            tmp_path,
            """
            name: okcore
            template:
              scheme: caft
              workload: enterprise
              load: 0.5
              topology: {num_pods: 2}
              faults: ["link_down@1ms:s1-c0", "blackout@2ms:core1+1ms"]
            grid:
              seeds: [1, 2]
            """,
        )
        scenario.validate()
        assert scenario.point_count() == 2


@pytest.mark.scenario_smoke
class TestCommittedScenarios:
    """CI gate: every committed scenarios/*.yaml compiles and stays stable."""

    def test_scenario_dir_is_populated(self):
        assert COMMITTED, "no committed scenario files found"

    @pytest.mark.parametrize(
        "path", COMMITTED, ids=[p.name for p in COMMITTED]
    )
    def test_compiles_with_stable_hashes(self, path):
        scenario = load_scenario(path)
        scenario.validate()
        assert scenario.point_count() == len(scenario.compile())
        # Compiling twice must give the identical grid digest (hash
        # stability is what lets CI pin committed grids).
        assert scenario.grid_digest() == scenario.grid_digest()

    def test_fig9_scenario_matches_benchmark_grid(self):
        scenario = load_scenario(SCENARIO_DIR / "fig9_enterprise.yaml")
        hand = sweep_grid(
            TEMPLATE,
            schemes=["ecmp", "conga-flow", "conga", "mptcp"],
            loads=[0.3, 0.5, 0.7, 0.9],
        )
        assert scenario.compile() == hand
