"""Tests for topology construction, configuration, and failure injection."""

import pytest

from repro.lb import EcmpSelector
from repro.sim import Simulator
from repro.topology import (
    LeafSpineConfig,
    TESTBED,
    build_leaf_spine,
    fail_random_links,
    scaled_testbed,
)
from repro.units import gbps


class TestLeafSpineConfig:
    def test_testbed_matches_figure7(self):
        assert TESTBED.num_leaves == 2
        assert TESTBED.num_spines == 2
        assert TESTBED.hosts_per_leaf == 32
        assert TESTBED.links_per_pair == 2
        assert TESTBED.host_rate_bps == gbps(10)
        assert TESTBED.fabric_rate_bps == gbps(40)

    def test_testbed_oversubscription_is_2_to_1(self):
        assert TESTBED.oversubscription == pytest.approx(2.0)

    def test_uplinks_per_leaf(self):
        assert TESTBED.uplinks_per_leaf == 4
        assert LeafSpineConfig(num_spines=3, links_per_pair=1).uplinks_per_leaf == 3

    def test_leaf_uplink_capacity(self):
        assert TESTBED.leaf_uplink_capacity_bps == 4 * gbps(40)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"num_leaves": 0},
            {"num_spines": 0},
            {"hosts_per_leaf": 0},
            {"links_per_pair": 0},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            LeafSpineConfig(**kwargs)

    def test_scaled_testbed_preserves_oversubscription(self):
        config = scaled_testbed(hosts_per_leaf=8)
        assert config.oversubscription == pytest.approx(2.0)
        config = scaled_testbed(hosts_per_leaf=6, oversubscription=3.0)
        assert config.oversubscription == pytest.approx(3.0)

    def test_scaled_testbed_explicit_fabric_rate(self):
        config = scaled_testbed(hosts_per_leaf=4, fabric_gbps=40.0)
        assert config.fabric_rate_bps == gbps(40)


class TestBuilder:
    def _build(self, config=None):
        sim = Simulator()
        fabric = build_leaf_spine(sim, config or scaled_testbed(hosts_per_leaf=4))
        fabric.finalize(EcmpSelector.factory())
        return sim, fabric

    def test_counts(self):
        _sim, fabric = self._build()
        assert len(fabric.leaves) == 2
        assert len(fabric.spines) == 2
        assert len(fabric.hosts) == 8

    def test_host_ids_are_leaf_major(self):
        _sim, fabric = self._build()
        assert fabric.leaf_of(0) == 0
        assert fabric.leaf_of(3) == 0
        assert fabric.leaf_of(4) == 1
        assert fabric.hosts_under(1) == [4, 5, 6, 7]

    def test_each_leaf_has_expected_uplinks(self):
        _sim, fabric = self._build()
        for leaf in fabric.leaves:
            assert len(leaf.uplinks) == 4  # 2 spines x 2 links
            assert all(port.connected for port in leaf.uplinks)

    def test_uplinks_alternate_spines(self):
        _sim, fabric = self._build()
        leaf = fabric.leaves[0]
        spine_ids = [spine.spine_id for spine in leaf.uplink_spine]
        assert sorted(spine_ids) == [0, 0, 1, 1]

    def test_spine_ports_to_each_leaf(self):
        _sim, fabric = self._build()
        for spine in fabric.spines:
            assert len(spine.ports_to_leaf(0)) == 2
            assert len(spine.ports_to_leaf(1)) == 2

    def test_hosts_connected_to_leaf(self):
        _sim, fabric = self._build()
        host = fabric.host(0)
        assert host.nic.peer is fabric.leaves[0].host_port(0)

    def test_larger_fabric(self):
        config = scaled_testbed(
            hosts_per_leaf=2, num_leaves=6, num_spines=4, links_per_pair=1
        )
        sim = Simulator()
        fabric = build_leaf_spine(sim, config)
        fabric.finalize(EcmpSelector.factory())
        assert len(fabric.leaves) == 6
        assert len(fabric.spines) == 4
        assert all(len(leaf.uplinks) == 4 for leaf in fabric.leaves)


class TestFailureInjection:
    def _build(self):
        sim = Simulator()
        fabric = build_leaf_spine(sim, scaled_testbed(hosts_per_leaf=2))
        fabric.finalize(EcmpSelector.factory())
        return sim, fabric

    def test_fail_link_figure_7b(self):
        _sim, fabric = self._build()
        port = fabric.fail_link(1, 1, 0)
        assert not port.up
        # The parallel link survives, so spine 1 still reaches leaf 1.
        assert fabric.spines[1].can_reach(1)
        assert len(fabric.spines[1].ports_to_leaf(1)) == 1

    def test_fail_both_parallel_links_disconnects_pair(self):
        _sim, fabric = self._build()
        fabric.fail_link(1, 1, 0)
        fabric.fail_link(1, 1, 1)
        assert not fabric.spines[1].can_reach(1)
        # Leaf 0 must then exclude uplinks to spine 1 for traffic to leaf 1.
        assert fabric.leaves[0].candidate_uplinks(1) == [
            index
            for index, spine in enumerate(fabric.leaves[0].uplink_spine)
            if spine.spine_id == 0
        ]

    def test_fail_link_out_of_range(self):
        _sim, fabric = self._build()
        with pytest.raises(ValueError):
            fabric.fail_link(0, 0, 5)

    def test_fail_random_links_never_disconnects_leaf(self):
        for seed in range(5):
            sim = Simulator(seed=seed)
            config = scaled_testbed(
                hosts_per_leaf=2, num_leaves=6, num_spines=4, links_per_pair=3
            )
            fabric = build_leaf_spine(sim, config)
            fabric.finalize(EcmpSelector.factory())
            failed = fail_random_links(fabric, 9)
            assert len(failed) == 9
            for leaf in fabric.leaves:
                assert any(port.up for port in leaf.uplinks)

    def test_fail_random_links_too_many(self):
        sim = Simulator()
        fabric = build_leaf_spine(sim, scaled_testbed(hosts_per_leaf=2))
        fabric.finalize(EcmpSelector.factory())
        with pytest.raises(ValueError):
            fail_random_links(fabric, 100)

    def test_restore_after_failure(self):
        _sim, fabric = self._build()
        port = fabric.fail_link(1, 1, 0)
        port.restore()
        assert port.up
        assert len(fabric.spines[1].ports_to_leaf(1)) == 2


class TestIdealFct:
    def test_cross_rack_larger_than_intra(self):
        sim = Simulator()
        fabric = build_leaf_spine(sim, scaled_testbed(hosts_per_leaf=4))
        fabric.finalize(EcmpSelector.factory())
        intra = fabric.ideal_fct(0, 1, 1_000_000)
        cross = fabric.ideal_fct(0, 4, 1_000_000)
        assert cross > intra

    def test_monotone_in_size(self):
        sim = Simulator()
        fabric = build_leaf_spine(sim, scaled_testbed(hosts_per_leaf=4))
        fabric.finalize(EcmpSelector.factory())
        sizes = [1_000, 100_000, 10_000_000]
        fcts = [fabric.ideal_fct(0, 4, s) for s in sizes]
        assert fcts == sorted(fcts)

    def test_dominated_by_access_link_rate(self):
        sim = Simulator()
        fabric = build_leaf_spine(sim, scaled_testbed(hosts_per_leaf=4))
        fabric.finalize(EcmpSelector.factory())
        size = 10_000_000
        fct = fabric.ideal_fct(0, 4, size)
        # Must be at least the plain payload serialization at 10 Gbps.
        assert fct >= size * 8 / 10  # ns at 10 Gbps = bits/10
