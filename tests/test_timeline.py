"""The sim-time telemetry plane: collector determinism, hashes, reports.

Three contracts are pinned here:

* **Read-only sampling** — attaching a :class:`TimelineCollector` must not
  move a single bit of the simulation: the golden faulted fixtures (the
  same specs ``test_golden_faults`` pins) produce identical records
  digests with the timeline on and off, and the timeline's own digest is
  bit-identical between inline (workers=0) and process-pool execution.
* **Hash semantics** — ``obs.timeline`` participates in the spec content
  hash when set (timeline points cache separately) and is stripped when
  ``None``; ``obs.trace_path`` never participates (an output sink).
* **Reporting plane** — the sweep/recovery HTML reports are single-file
  and dependency-free, and the sweep health telemetry stream records one
  event per lifecycle transition.
"""

import json
import pickle

import pytest

from repro.analysis import recovery_report, sweep_report
from repro.analysis.fct import records_digest
from repro.apps import ExperimentSpec, ObsSpec
from repro.obs import Timeline, TimelineCollector, TimelineSpec, build_manifest
from repro.runner import TelemetrySink, run_sweep
from repro.units import microseconds

from tests.test_golden_faults import golden_spec, multipod_spec


def _with_timeline(spec: ExperimentSpec, **kwargs) -> ExperimentSpec:
    return spec.with_(
        obs=ObsSpec(categories=(), timeline=TimelineSpec(**kwargs))
    )


class TestTimelineSpec:
    def test_defaults_are_bounded(self):
        spec = TimelineSpec()
        assert spec.interval >= 1
        assert spec.limit >= 2

    def test_rejects_bad_values(self):
        with pytest.raises(ValueError):
            TimelineSpec(interval=0)
        with pytest.raises(ValueError):
            TimelineSpec(limit=1)


class TestContentHash:
    def test_timeline_none_is_hash_neutral(self):
        bare = golden_spec()
        with_obs = bare.with_(obs=ObsSpec())
        assert bare.content_hash() == bare.with_(obs=None).content_hash()
        # An ObsSpec without a timeline hashes like a pre-timeline ObsSpec
        # (the field is stripped when None), so existing caches survive.
        assert with_obs.obs.timeline is None
        assert with_obs.content_hash() != bare.content_hash()

    def test_timeline_set_changes_the_hash(self):
        bare = golden_spec()
        sampled = _with_timeline(bare)
        assert sampled.content_hash() != bare.content_hash()
        # ... and different cadences hash differently (different payloads).
        coarse = _with_timeline(bare, interval=microseconds(200))
        assert coarse.content_hash() != sampled.content_hash()

    def test_trace_path_never_in_the_hash(self):
        spec = golden_spec().with_(obs=ObsSpec())
        routed = spec.with_(
            obs=ObsSpec(trace_path="/tmp/anywhere.ndjson")
        )
        assert routed.content_hash() == spec.content_hash()


class TestCollectorDeterminism:
    """The collector must be strictly read-only and itself deterministic."""

    @pytest.mark.parametrize(
        "make_spec", [golden_spec, multipod_spec], ids=["conga", "caft-multipod"]
    )
    def test_records_identical_with_timeline_on_and_off(self, make_spec):
        off = make_spec().run()
        on = _with_timeline(make_spec()).run()
        assert records_digest(list(on.records)) == records_digest(
            list(off.records)
        )
        assert on.end_time == off.end_time
        assert on.timeline is not None and off.timeline is None

    @pytest.mark.parametrize(
        "make_spec", [golden_spec, multipod_spec], ids=["conga", "caft-multipod"]
    )
    def test_timeline_digest_identical_across_worker_counts(
        self, make_spec, tmp_path
    ):
        spec = _with_timeline(make_spec())
        inline = run_sweep([spec], workers=0, cache=tmp_path / "c0")
        pooled = run_sweep([spec], workers=2, cache=tmp_path / "c2")
        t_inline = inline.points[0].timeline
        t_pooled = pooled.points[0].timeline
        assert t_inline is not None and t_pooled is not None
        assert t_inline.digest() == t_pooled.digest()
        assert inline.digest() == pooled.digest()

    def test_timeline_survives_pickling(self):
        point = run_sweep(
            [_with_timeline(golden_spec())], workers=0, cache=None
        ).points[0]
        clone = pickle.loads(pickle.dumps(point))
        assert clone.timeline.digest() == point.timeline.digest()


class TestTimelineContent:
    def test_samples_cover_the_run(self):
        result = _with_timeline(golden_spec()).run()
        timeline = result.timeline
        assert isinstance(timeline, Timeline)
        assert timeline.samples >= 2
        assert len(timeline) >= 2
        assert len(timeline.port_names) > 0
        # Lockstep series: every per-port series shares the time axis.
        for port in timeline.port_names:
            assert len(timeline.utilization[port]) == len(timeline.times)
            assert len(timeline.residual[port]) == len(timeline.times)
        assert all(0.0 <= u <= 1.0 + 1e-9
                   for series in timeline.utilization.values()
                   for u in series)

    def test_fault_events_recorded_with_restore_flags(self):
        timeline = _with_timeline(golden_spec()).run().timeline
        kinds = [(name, restores) for _, name, restores in
                 timeline.fault_events]
        assert ("LinkDown", False) in kinds
        assert ("LinkUp", True) in kinds

    def test_limit_bounds_retention(self):
        timeline = _with_timeline(
            golden_spec(), interval=microseconds(5), limit=16
        ).run().timeline
        assert timeline.samples > 16  # decimation actually engaged
        assert len(timeline) <= 16

    def test_manifest_carries_timeline_block(self):
        result = _with_timeline(golden_spec()).run()
        manifest = build_manifest(result)
        block = manifest["timeline"]
        assert block["digest"] == result.timeline.digest()
        assert block["samples"] == result.timeline.samples
        assert block["retained"] == len(result.timeline)

    def test_collector_requires_obs_spec(self):
        assert golden_spec().run().timeline is None


class TestTraceStreaming:
    def test_stream_keeps_events_the_ring_evicts(self, tmp_path):
        path = tmp_path / "stream.ndjson"
        spec = golden_spec().with_(
            obs=ObsSpec(buffer_limit=8, trace_path=str(path))
        )
        result = spec.run()
        trace = result.trace
        assert trace.dropped > 0  # the tiny ring evicted
        lines = path.read_text().splitlines()
        assert len(lines) == trace.emitted  # the stream kept everything
        json.loads(lines[0])  # valid NDJSON
        manifest = build_manifest(result)
        assert manifest["trace"]["stream_path"] == str(path)


class TestHealthTelemetry:
    def test_ndjson_events_per_lifecycle_transition(self, tmp_path):
        path = tmp_path / "health.ndjson"
        spec = _with_timeline(golden_spec())
        run_sweep([spec], workers=0, cache=tmp_path / "c", telemetry=str(path))
        events = [json.loads(line) for line in path.read_text().splitlines()]
        names = [e["event"] for e in events]
        assert names == ["sweep_started", "point_completed", "sweep_finished"]
        done = events[1]
        assert done["spec_hash"] == spec.content_hash()
        assert done["wall_seconds"] > 0
        # Second run: the cache serves the point.
        path2 = tmp_path / "health2.ndjson"
        run_sweep([spec], workers=0, cache=tmp_path / "c",
                  telemetry=str(path2))
        names2 = [json.loads(l)["event"]
                  for l in path2.read_text().splitlines()]
        assert names2 == ["sweep_started", "cache_hit", "sweep_finished"]

    def test_sink_accepts_callable_and_metrics_aggregate(self, tmp_path):
        seen = []
        sweep = run_sweep(
            [_with_timeline(golden_spec())],
            workers=0,
            cache=None,
            telemetry=TelemetrySink(seen.append),
        )
        assert [e["event"] for e in seen][0] == "sweep_started"
        assert "sweep.point_wall_seconds" in sweep.metrics.histograms
        assert sweep.metrics.counters["sweep.worker_restarts"] == 0

    def test_sink_never_raises_after_close(self, tmp_path):
        sink = TelemetrySink(tmp_path / "s.ndjson")
        sink.emit("sweep_started", total=1)
        sink.close()
        sink.emit("late", total=1)  # dropped, not raised
        sink.close()  # idempotent
        assert sink.emitted == 1


class TestHtmlReports:
    def _points(self, tmp_path, faulted: bool = False):
        spec = _with_timeline(golden_spec() if faulted else
                              golden_spec().with_(faults=()))
        sweep = run_sweep([spec], workers=0, cache=tmp_path / "cache")
        return list(sweep.points)

    def test_sweep_report_is_self_contained(self, tmp_path):
        html = sweep_report(
            self._points(tmp_path, faulted=True),
            title="smoke", subtitle="one point",
        )
        assert html.startswith("<!DOCTYPE html>")
        assert "<script" not in html
        assert 'src="http' not in html and 'href="http' not in html
        assert "<svg" in html
        assert "fabric port utilization" in html  # the timeline heatmap

    def test_recovery_report_scores_against_baseline(self, tmp_path):
        baseline = self._points(tmp_path)
        faulted = self._points(tmp_path, faulted=True)
        cell = {"tier": "leaf", "kind": "blackhole", "density": 1}
        html = recovery_report(
            title="recovery smoke",
            baseline=baseline,
            cells=[(cell, faulted)],
        )
        assert "Healthy baseline" in html
        assert "Cell: leaf-blackhole" in html
        assert "goodput retained" in html
        assert "<script" not in html
