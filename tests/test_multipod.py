"""Tests for the multi-pod (3-tier) topology extension (paper §7)."""

import pytest

from repro.lb import CongaSelector, EcmpSelector
from repro.sim import Simulator, run_until_idle
from repro.topology import MultiPodConfig, build_multipod
from repro.transport import TcpFlow, UdpSink, UdpSource
from repro.units import gbps, megabytes, seconds


def _fabric(selector=None, seed=1, **overrides):
    sim = Simulator(seed=seed)
    fabric = build_multipod(sim, MultiPodConfig(**overrides))
    fabric.finalize(selector or CongaSelector.factory())
    return sim, fabric


class TestConstruction:
    def test_default_shape(self):
        _sim, fabric = _fabric()
        assert len(fabric.leaves) == 4
        assert len(fabric.spines) == 4
        assert len(fabric.cores) == 2
        assert len(fabric.hosts) == 16

    def test_pod_directory(self):
        _sim, fabric = _fabric()
        assert fabric.pod_of_leaf(0) == 0
        assert fabric.pod_of_leaf(1) == 0
        assert fabric.pod_of_leaf(2) == 1
        assert [l.leaf_id for l in fabric.pod_leaves(1)] == [2, 3]

    def test_spines_have_core_uplinks(self):
        _sim, fabric = _fabric()
        for spine in fabric.spines:
            assert len(spine.up_core_ports()) == 2  # one per core

    def test_cores_reach_all_pods(self):
        _sim, fabric = _fabric()
        for core in fabric.cores:
            assert len(core.ports_to_pod(0)) == 2
            assert len(core.ports_to_pod(1)) == 2

    def test_validation(self):
        with pytest.raises(ValueError):
            MultiPodConfig(num_pods=0)
        with pytest.raises(ValueError):
            MultiPodConfig(num_cores=0)

    def test_fabric_ports_include_core(self):
        _sim, fabric = _fabric()
        names = [p.name for p in fabric.fabric_ports()]
        assert any("core" in n for n in names)


class TestRouting:
    def test_intra_pod_traffic_stays_in_pod(self):
        sim, fabric = _fabric()
        sink = UdpSink(fabric.host(5), flow_id=9)
        UdpSource(sim, fabric.host(0), 5, 100_000, gbps(1), flow_id=9).start()
        run_until_idle(sim)
        assert sink.received_bytes == 100_000
        assert all(
            p.tx_packets == 0 for core in fabric.cores for p in core.ports
        )

    def test_inter_pod_traffic_crosses_core(self):
        sim, fabric = _fabric()
        sink = UdpSink(fabric.host(9), flow_id=9)
        UdpSource(sim, fabric.host(0), 9, 100_000, gbps(1), flow_id=9).start()
        run_until_idle(sim)
        assert sink.received_bytes == 100_000
        core_tx = sum(p.tx_packets for c in fabric.cores for p in c.ports)
        assert core_tx > 0

    def test_inter_pod_tcp_completes_near_ideal(self):
        sim, fabric = _fabric()
        flow = TcpFlow(sim, fabric.host(0), fabric.host(12), megabytes(2))
        flow.start()
        run_until_idle(sim)
        assert flow.finished
        norm = flow.fct / fabric.ideal_fct(0, 12, megabytes(2))
        assert norm < 1.3

    def test_inter_pod_ideal_larger_than_intra(self):
        _sim, fabric = _fabric()
        intra = fabric.ideal_fct(0, 5, 1_000_000)
        inter = fabric.ideal_fct(0, 9, 1_000_000)
        assert inter > intra

    def test_core_link_failure_rerouted(self):
        sim, fabric = _fabric()
        # Fail one spine->core link; ECMP at the spine must use the other.
        spine = fabric.spines[0]
        spine.ports[spine.up_core_ports()[0]].fail()
        flows = [
            TcpFlow(sim, fabric.host(i), fabric.host(8 + i), 300_000)
            for i in range(4)
        ]
        for flow in flows:
            flow.start()
        run_until_idle(sim)
        assert all(flow.finished for flow in flows)

    def test_all_core_links_down_drops(self):
        sim, fabric = _fabric()
        for spine in fabric.spines[:2]:  # pod 0's spines
            for index in spine.up_core_ports():
                spine.ports[index].fail()
        sink = UdpSink(fabric.host(9), flow_id=9)
        UdpSource(sim, fabric.host(0), 9, 10_000, gbps(1), flow_id=9).start()
        sim.run(until=seconds(1))
        assert sink.received_bytes == 0


class TestCongaAcrossPods:
    def test_feedback_reaches_across_pods(self):
        """Leaf-to-leaf feedback spans pods: dst leaf piggybacks metrics."""
        sim, fabric = _fabric()
        forward = TcpFlow(sim, fabric.host(0), fabric.host(9), megabytes(1))
        reverse = TcpFlow(sim, fabric.host(9), fabric.host(0), megabytes(1))
        forward.start()
        reverse.start()
        run_until_idle(sim)
        leaf0 = fabric.leaves[0]
        assert leaf0.tep.feedback_received > 0

    def test_ce_marking_on_core_links(self):
        """A congested core link must be visible in the packet CE field."""
        sim, fabric = _fabric()
        # Saturate the DRE of every spine->core and core->spine port.
        for spine in fabric.spines[:2]:
            for index in spine.up_core_ports():
                port = spine.ports[index]
                # Reach the attached DRE through its transmit hook.
                from repro.net import Packet

                probe = Packet(src=0, dst=9, size=10_000_000, flow_id=0)
                from repro.net import OverlayHeader

                probe.overlay = OverlayHeader(src_leaf=0, dst_leaf=2)
                for hook in port.on_transmit:
                    hook(probe)
                assert probe.overlay.ce > 0

    def test_conga_handles_intra_pod_failure_better_than_ecmp(self):
        """7's claim: CONGA balances within each pod, helping all traffic."""

        def run(selector_factory):
            sim, fabric = _fabric(selector_factory, seed=5, hosts_per_leaf=4,
                                  links_per_pair=2)
            # Degrade one leaf-spine pair inside pod 0.
            fabric.fail_link(1, 1, 0)
            flows = []
            for i in range(4):
                flows.append(
                    TcpFlow(sim, fabric.host(i), fabric.host(4 + i), megabytes(2))
                )
            for flow in flows:
                sim.schedule(i * 100_000, flow.start)
            sim.run(until=seconds(5))
            assert all(flow.finished for flow in flows)
            return max(flow.sender.completed_at for flow in flows)

        ecmp_span = run(EcmpSelector.factory())
        conga_span = run(CongaSelector.factory())
        assert conga_span <= ecmp_span * 1.05
