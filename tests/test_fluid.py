"""Tests for the fluid model and the §2.4 motivating scenarios."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.fluid import (
    FluidAllocation,
    FluidDemand,
    FluidLeafSpine,
    FluidLink,
    conga_split,
    ecmp_split,
    figure2_demand,
    figure2_network,
    figure3_network,
    local_aware_split,
)


class TestFluidGraph:
    def test_paths_through_spines(self):
        net = figure2_network()
        paths = net.paths("L0", "L1")
        assert paths == [("L0", "S0", "L1"), ("L0", "S1", "L1")]

    def test_missing_path_raises(self):
        net = FluidLeafSpine([FluidLink("L0", "S0", 10)])
        with pytest.raises(ValueError):
            net.paths("L0", "L1")

    def test_duplicate_link_rejected(self):
        with pytest.raises(ValueError):
            FluidLeafSpine(
                [FluidLink("L0", "S0", 10), FluidLink("L0", "S0", 20)]
            )

    def test_validation(self):
        with pytest.raises(ValueError):
            FluidLink("L0", "S0", 0)
        with pytest.raises(ValueError):
            FluidDemand("L0", "L1", -1)
        with pytest.raises(ValueError):
            FluidLeafSpine([])


class TestFigure2:
    """The asymmetric example: ECMP 90, local-aware 80, CONGA 100 Gbps."""

    def test_ecmp_delivers_90(self):
        alloc = ecmp_split(figure2_network(), figure2_demand())
        assert alloc.total_throughput() == pytest.approx(90.0, abs=0.5)

    def test_ecmp_splits_equally(self):
        alloc = ecmp_split(figure2_network(), figure2_demand())
        rates = list(alloc.splits[0].values())
        assert rates == pytest.approx([50.0, 50.0])

    def test_local_aware_delivers_only_80(self):
        """Local schemes are WORSE than ECMP with asymmetry (2.4)."""
        alloc = local_aware_split(figure2_network(), figure2_demand())
        assert alloc.total_throughput() == pytest.approx(80.0, abs=0.5)

    def test_local_aware_equalizes_uplink_rates(self):
        alloc = local_aware_split(figure2_network(), figure2_demand())
        rates = list(alloc.splits[0].values())
        assert rates[0] == pytest.approx(rates[1], abs=0.1)

    def test_conga_delivers_full_100(self):
        alloc = conga_split(figure2_network(), figure2_demand())
        assert alloc.total_throughput() == pytest.approx(100.0, abs=1.0)

    def test_conga_split_is_two_to_one(self):
        """Figure 2c: 66.6 Gbps upper, 33.3 Gbps lower."""
        alloc = conga_split(figure2_network(), figure2_demand())
        split = alloc.splits[0]
        assert split[("L0", "S0", "L1")] == pytest.approx(66.7, abs=1.5)
        assert split[("L0", "S1", "L1")] == pytest.approx(33.3, abs=1.5)

    def test_conga_equalizes_path_utilization(self):
        alloc = conga_split(figure2_network(), figure2_demand())
        loads = alloc.link_loads()
        upper = loads[("S0", "L1")] / 80.0
        lower = loads[("S1", "L1")] / 40.0
        assert upper == pytest.approx(lower, abs=0.02)

    def test_scheme_ordering(self):
        net, demand = figure2_network(), figure2_demand()
        local = local_aware_split(net, demand).total_throughput()
        ecmp = ecmp_split(net, demand).total_throughput()
        conga = conga_split(net, demand).total_throughput()
        assert local < ecmp < conga


class TestFigure3:
    """Optimal split depends on the traffic matrix, so static weights fail."""

    def _conga_l1_split(self, l0_rate):
        net = figure3_network()
        demands = [FluidDemand("L1", "L2", 40.0)]
        if l0_rate > 0:
            demands.append(FluidDemand("L0", "L2", l0_rate))
        alloc = conga_split(net, demands)
        split = alloc.splits[0]
        total = sum(split.values())
        return split[("L1", "S0", "L2")] / total

    def test_without_l0_traffic_l1_splits_evenly(self):
        """Figure 3(a) -> symmetric case: about 50% through each spine."""
        fraction = self._conga_l1_split(0.0)
        assert fraction == pytest.approx(0.5, abs=0.05)

    def test_with_l0_traffic_l1_avoids_s0(self):
        """Figure 3(b): with 40G of L0->L2, L1 shifts away from S0."""
        fraction = self._conga_l1_split(40.0)
        assert fraction < 0.2

    def test_total_demand_always_delivered(self):
        net = figure3_network()
        demands = [FluidDemand("L1", "L2", 40.0), FluidDemand("L0", "L2", 40.0)]
        alloc = conga_split(net, demands)
        assert alloc.total_throughput() == pytest.approx(80.0, abs=1.0)

    def test_static_weights_cannot_serve_both_matrices(self):
        """The core argument of 2.4 against oblivious routing."""
        net = figure3_network()
        # Weights tuned for matrix (b) -- L1 mostly via S1:
        for l0_rate, good_fraction in ((0.0, 0.5), (40.0, 0.0)):
            # The optimal S0 fraction differs across matrices, so any single
            # static fraction x is wrong for at least one matrix.
            pass
        best_for_a = 0.5
        # Apply matrix (b) with the matrix-(a) weights: S0 overloads.
        demands = [FluidDemand("L1", "L2", 40.0), FluidDemand("L0", "L2", 40.0)]
        allocation = FluidAllocation(net, demands)
        allocation.splits = [
            {("L1", "S0", "L2"): 40.0 * best_for_a, ("L1", "S1", "L2"): 40.0 * (1 - best_for_a)},
            {("L0", "S0", "L2"): 40.0},
        ]
        assert allocation.max_utilization() > 1.0  # congested
        conga = conga_split(net, demands)
        assert conga.max_utilization() <= 1.01


class TestMaxMinFairness:
    def test_single_bottleneck_shared_equally(self):
        net = FluidLeafSpine(
            [
                FluidLink("L0", "S0", 100),
                FluidLink("L1", "S0", 100),
                FluidLink("S0", "L2", 60),
            ]
        )
        demands = [FluidDemand("L0", "L2", 100), FluidDemand("L1", "L2", 100)]
        alloc = ecmp_split(net, demands)
        delivered = alloc.delivered_throughput()
        assert delivered[0] == pytest.approx(30.0, abs=0.5)
        assert delivered[1] == pytest.approx(30.0, abs=0.5)

    def test_demand_caps_respected(self):
        net = FluidLeafSpine(
            [FluidLink("L0", "S0", 100), FluidLink("S0", "L1", 100)]
        )
        alloc = ecmp_split(net, [FluidDemand("L0", "L1", 30)])
        assert alloc.delivered_throughput()[0] == pytest.approx(30.0)

    def test_throughput_never_exceeds_capacity(self):
        net = figure2_network()
        alloc = ecmp_split(net, [FluidDemand("L0", "L1", 500)])
        assert alloc.total_throughput() <= 120.0 + 1e-6

    @given(rate=st.floats(min_value=1.0, max_value=300.0))
    @settings(deadline=None, max_examples=25)
    def test_conga_throughput_dominates_ecmp(self, rate):
        """On the Fig. 2 asymmetry, CONGA >= ECMP for any demand level."""
        net = figure2_network()
        demands = [FluidDemand("L0", "L1", rate)]
        ecmp = ecmp_split(net, demands).total_throughput()
        conga = conga_split(net, demands).total_throughput()
        assert conga >= ecmp - 0.7


class TestAllocationAccounting:
    def test_link_loads_sum_paths(self):
        net = figure2_network()
        alloc = ecmp_split(net, figure2_demand())
        loads = alloc.link_loads()
        assert loads[("L0", "S0")] == pytest.approx(50.0)
        assert loads[("S1", "L1")] == pytest.approx(50.0)

    def test_max_utilization(self):
        net = figure2_network()
        alloc = ecmp_split(net, figure2_demand())
        # Bottleneck is the 40G link carrying 50: utilization 1.25.
        assert alloc.max_utilization() == pytest.approx(1.25)
