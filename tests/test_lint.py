"""Tests for the repro static analyzer (``conga-repro lint``).

Three layers:

* per-rule fixtures — one seeded violation per rule asserting the rule id
  and line, plus a negative twin showing the sanctioned idiom passes;
* machinery — suppression comments, scoping, ``--select``, JSON schema,
  the ``--fix-suppress`` round trip, and exit codes through the real CLI;
* the self-check — ``src/repro`` must be violation-free, which is the
  acceptance criterion the CI lint job enforces.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.cli import main
from repro.lint import (
    ALL_RULES,
    UnknownRuleError,
    get_rules,
    lint_paths,
    lint_source,
)
from repro.lint.engine import parse_suppressions, scope_of

REPO_SRC = Path(__file__).resolve().parents[1] / "src" / "repro"


def rule_ids(violations) -> list[str]:
    return [violation.rule for violation in violations]


def lint_snippet(source: str, *, path: str = "repro/sim/snippet.py") -> list:
    """Lint an in-memory snippet under a scoped pseudo-path."""
    return lint_source(source, ALL_RULES, path=Path(path))


# ---------------------------------------------------------------------------
# D101 — wall clock
# ---------------------------------------------------------------------------


def test_d101_flags_time_time():
    violations = lint_snippet(
        "import time\n"
        "def stamp():\n"
        "    return time.time()\n"
    )
    assert rule_ids(violations) == ["D101"]
    assert violations[0].line == 3


def test_d101_flags_from_import_and_aliases():
    violations = lint_snippet(
        "from time import perf_counter as pc\n"
        "import time as t\n"
        "def stamp():\n"
        "    return pc() + t.monotonic()\n"
    )
    assert rule_ids(violations) == ["D101", "D101"]


def test_d101_flags_datetime_now():
    violations = lint_snippet(
        "from datetime import datetime\n"
        "def stamp():\n"
        "    return datetime.now()\n"
    )
    assert rule_ids(violations) == ["D101"]


def test_d101_allows_sim_now():
    assert lint_snippet(
        "def stamp(sim):\n"
        "    return sim.now\n"
    ) == []


# ---------------------------------------------------------------------------
# D102 — random module / numpy global state
# ---------------------------------------------------------------------------


def test_d102_flags_random_import():
    violations = lint_snippet("import random\n")
    assert rule_ids(violations) == ["D102"]
    assert violations[0].line == 1


def test_d102_flags_numpy_global_random():
    violations = lint_snippet(
        "import numpy as np\n"
        "def draw():\n"
        "    return np.random.uniform(0, 1)\n"
    )
    assert rule_ids(violations) == ["D102"]


def test_d102_allows_named_simulator_streams():
    assert lint_snippet(
        "def draw(sim):\n"
        "    return sim.rng('ecmp').integers(0, 4)\n"
    ) == []


# ---------------------------------------------------------------------------
# D103 — unstable hashes
# ---------------------------------------------------------------------------


def test_d103_flags_builtin_hash_and_id():
    violations = lint_snippet(
        "def pick(flow, ports):\n"
        "    return ports[hash(flow) % len(ports)] or id(flow)\n"
    )
    assert rule_ids(violations) == ["D103", "D103"]
    assert violations[0].line == 2


def test_d103_allows_stable_hash_and_shadowed_names():
    assert lint_snippet(
        "from repro.net.hashing import stable_hash\n"
        "def hash(x):\n"
        "    return stable_hash(x)\n"
        "def pick(flow, ports):\n"
        "    return ports[hash(flow) % len(ports)]\n"
    ) == []


# ---------------------------------------------------------------------------
# D104 — unordered iteration (scoped to core/lb/sim/switch)
# ---------------------------------------------------------------------------


def test_d104_flags_dict_view_and_set_iteration():
    source = (
        "def drain(table):\n"
        "    for key, value in table.items():\n"
        "        yield key, value\n"
        "    total = [port for port in {1, 2, 3}]\n"
    )
    violations = lint_snippet(source, path="repro/lb/snippet.py")
    assert rule_ids(violations) == ["D104", "D104"]
    assert violations[0].line == 2


def test_d104_allows_sorted_views():
    assert lint_snippet(
        "def drain(table):\n"
        "    for key, value in sorted(table.items()):\n"
        "        yield key, value\n",
        path="repro/switch/snippet.py",
    ) == []


def test_d104_not_applied_outside_scoped_packages():
    source = (
        "def drain(table):\n"
        "    for key in table.keys():\n"
        "        yield key\n"
    )
    assert lint_snippet(source, path="repro/analysis/snippet.py") == []
    # ...but files outside any repro tree get every rule (fixture behavior).
    assert rule_ids(lint_source(source, ALL_RULES, path=Path("scratch.py"))) == [
        "D104"
    ]


# ---------------------------------------------------------------------------
# D105 — float accumulation in loops (scoped to core/)
# ---------------------------------------------------------------------------


def test_d105_flags_float_accumulation_in_loop():
    violations = lint_snippet(
        "def total(samples):\n"
        "    acc = 0.0\n"
        "    for sample in samples:\n"
        "        acc += sample * 0.5\n"
        "    return acc\n",
        path="repro/core/snippet.py",
    )
    assert rule_ids(violations) == ["D105"]
    assert violations[0].line == 4


def test_d105_allows_integer_and_fsum_accumulation():
    assert lint_snippet(
        "from math import fsum\n"
        "def total(samples):\n"
        "    count = 0\n"
        "    acc = 0.0\n"
        "    for sample in samples:\n"
        "        count += 1\n"
        "        acc += fsum([sample])\n"
        "    return acc, count\n",
        path="repro/core/snippet.py",
    ) == []


# ---------------------------------------------------------------------------
# S201 — event-heap callbacks
# ---------------------------------------------------------------------------


def test_s201_flags_lambda_callback():
    violations = lint_snippet(
        "def arm(sim, packet):\n"
        "    sim.schedule(10, lambda: packet.send())\n"
    )
    assert rule_ids(violations) == ["S201"]
    assert violations[0].line == 2


def test_s201_flags_nested_function_callback():
    violations = lint_snippet(
        "def arm(sim):\n"
        "    def fire():\n"
        "        pass\n"
        "    sim.schedule(10, fire)\n"
    )
    assert rule_ids(violations) == ["S201"]


def test_s201_allows_bound_method_with_arg_slot():
    assert lint_snippet(
        "class Nic:\n"
        "    def arm(self, sim, packet):\n"
        "        sim.schedule(10, self.send, packet)\n"
        "    def send(self, packet):\n"
        "        pass\n"
    ) == []


# ---------------------------------------------------------------------------
# S202 — frozen spec dataclasses
# ---------------------------------------------------------------------------


def test_s202_flags_unfrozen_spec_and_mutable_field():
    violations = lint_snippet(
        "from dataclasses import dataclass\n"
        "@dataclass\n"
        "class SweepSpec:\n"
        "    loads: list[float]\n"
    )
    assert rule_ids(violations) == ["S202", "S202"]


def test_s202_allows_frozen_tuple_spec():
    assert lint_snippet(
        "from dataclasses import dataclass\n"
        "@dataclass(frozen=True)\n"
        "class SweepSpec:\n"
        "    loads: tuple[float, ...]\n"
    ) == []


# ---------------------------------------------------------------------------
# S203 — registry writes
# ---------------------------------------------------------------------------


def test_s203_flags_direct_registry_writes():
    violations = lint_snippet(
        "from repro.apps import experiment\n"
        "def install(spec):\n"
        "    experiment.SCHEMES[spec.name] = spec\n"
        "    experiment.SCHEMES.update({})\n"
    )
    assert rule_ids(violations) == ["S203", "S203"]


def test_s203_allows_register_scheme():
    assert lint_snippet(
        "from repro.apps import register_scheme\n"
        "def install(spec):\n"
        "    register_scheme(spec)\n"
    ) == []


# ---------------------------------------------------------------------------
# S204 — ad-hoc spec grids in benchmark files
# ---------------------------------------------------------------------------


def test_s204_flags_spec_run_in_loop():
    violations = lint_snippet(
        "from repro.apps import ExperimentSpec\n"
        "def sweep():\n"
        "    for load in (0.3, 0.5):\n"
        "        ExperimentSpec('ecmp', 'enterprise', load).run()\n",
        path="benchmarks/test_fake.py",
    )
    assert rule_ids(violations) == ["S204"]
    assert violations[0].line == 4


def test_s204_flags_append_in_loop_and_comprehension():
    violations = lint_snippet(
        "from repro.apps import ExperimentSpec\n"
        "def grids():\n"
        "    specs = []\n"
        "    for load in (0.3, 0.5):\n"
        "        specs.append(ExperimentSpec('ecmp', 'enterprise', load))\n"
        "    return [ExperimentSpec('ecmp', 'enterprise', l).run()\n"
        "            for l in (0.7, 0.9)]\n",
        path="benchmarks/test_fake.py",
    )
    assert rule_ids(violations) == ["S204", "S204"]


def test_s204_only_patrols_benchmark_paths():
    source = (
        "from repro.apps import ExperimentSpec\n"
        "def sweep():\n"
        "    for load in (0.3, 0.5):\n"
        "        ExperimentSpec('ecmp', 'enterprise', load).run()\n"
    )
    assert lint_snippet(source, path="tests/test_fake.py") == []


def test_s204_allows_sweep_grid_idiom():
    assert lint_snippet(
        "from repro.runner import run_sweep, sweep_grid\n"
        "def sweep(template):\n"
        "    return run_sweep(\n"
        "        sweep_grid(template, schemes=['ecmp'], loads=[0.3, 0.5])\n"
        "    )\n",
        path="benchmarks/test_fake.py",
    ) == []


# ---------------------------------------------------------------------------
# S205 — no closure/lambda allocation in core/sim/net hot-path methods
# ---------------------------------------------------------------------------


def test_s205_flags_lambda_in_method():
    violations = lint_snippet(
        "class Port:\n"
        "    def send(self, packet):\n"
        "        hook = lambda p: p.size\n"
        "        return hook(packet)\n",
        path="repro/net/port.py",
    )
    assert rule_ids(violations) == ["S205"]
    assert violations[0].line == 3
    assert "Port.send" in violations[0].message


def test_s205_flags_nested_def_in_method():
    violations = lint_snippet(
        "class DRE:\n"
        "    def measure(self, packet):\n"
        "        def decay(register):\n"
        "            return register * 0.5\n"
        "        return decay(packet.size)\n",
        path="repro/core/dre.py",
    )
    assert rule_ids(violations) == ["S205"]
    assert "decay" in violations[0].message


def test_s205_exempts_dunder_methods():
    assert lint_snippet(
        "class Simulator:\n"
        "    def __init__(self):\n"
        "        self.key = lambda e: e.time\n"
        "    def __repr__(self):\n"
        "        fmt = lambda t: str(t)\n"
        "        return fmt(0)\n",
        path="repro/sim/kernel.py",
    ) == []


def test_s205_allows_module_level_functions_and_comprehensions():
    assert lint_snippet(
        "def build_table(alpha):\n"
        "    decay = lambda k: (1 - alpha) ** k\n"
        "    return tuple(decay(k) for k in range(4))\n"
        "class DRE:\n"
        "    def metric(self):\n"
        "        return sum(x for x in (1, 2))\n",
        path="repro/core/dre.py",
    ) == []


def test_s205_only_patrols_hot_packages():
    source = (
        "class Report:\n"
        "    def render(self, rows):\n"
        "        return sorted(rows, key=lambda r: r.name)\n"
    )
    assert lint_snippet(source, path="repro/analysis/report.py") == []
    assert rule_ids(
        lint_snippet(source, path="repro/net/report.py")
    ) == ["S205"]


# ---------------------------------------------------------------------------
# R301 — print / logging on simulator code paths
# ---------------------------------------------------------------------------


def test_r301_flags_print_and_logging():
    violations = lint_snippet(
        "import logging\n"
        "def report(x):\n"
        "    print(x)\n",
        path="repro/transport/snippet.py",
    )
    assert rule_ids(violations) == ["R301", "R301"]
    assert [violation.line for violation in violations] == [1, 3]


def test_r301_flags_from_logging_import():
    violations = lint_snippet(
        "from logging import getLogger\n",
        path="repro/core/snippet.py",
    )
    assert rule_ids(violations) == ["R301"]


def test_r301_allows_traced_emission_and_shadowed_print():
    assert lint_snippet(
        "def run(self):\n"
        "    tracer = self.sim.tracer\n"
        "    if tracer is not None and tracer.flowlet:\n"
        "        tracer.emit(event)\n"
    ) == []
    assert lint_snippet(
        "def print(x):\n"
        "    return x\n"
        "def use():\n"
        "    return print(1)\n"
    ) == []


def test_r301_not_applied_outside_scoped_packages():
    assert lint_snippet(
        "def report(x):\n"
        "    print(x)\n",
        path="repro/analysis/snippet.py",
    ) == []


# ---------------------------------------------------------------------------
# E001 + suppressions + scoping machinery
# ---------------------------------------------------------------------------


def test_syntax_error_reports_e001():
    violations = lint_snippet("def broken(:\n")
    assert rule_ids(violations) == ["E001"]


def test_inline_suppression_silences_only_that_line():
    source = (
        "import time\n"
        "def stamp():\n"
        "    a = time.time()  # repro-lint: ignore[D101] -- reporting only\n"
        "    b = time.time()\n"
        "    return a, b\n"
    )
    violations = lint_snippet(source)
    assert rule_ids(violations) == ["D101"]
    assert violations[0].line == 4


def test_file_level_suppression_and_wildcard():
    source = (
        "# repro-lint: ignore-file[D101]\n"
        "import time\n"
        "def stamp():\n"
        "    return time.time()\n"
    )
    assert lint_snippet(source) == []
    wildcard = (
        "import random  # repro-lint: ignore[*] -- fixture\n"
    )
    assert lint_snippet(wildcard) == []


def test_parse_suppressions_reads_comma_lists():
    suppressions = parse_suppressions(
        "x = 1  # repro-lint: ignore[D101, S201] -- both\n"
    )
    assert suppressions.by_line[1] == {"D101", "S201"}
    assert suppressions.whole_file == set()


def test_scope_of_uses_last_repro_component():
    assert scope_of(Path("/a/repro/sim/kernel.py")) == ("sim", "kernel.py")
    assert scope_of(Path("/a/repro/x/repro/lb/conga.py")) == ("lb", "conga.py")
    assert scope_of(Path("/a/b/script.py")) is None


def test_get_rules_select_and_unknown():
    rules = get_rules("D101,S203")
    assert [rule.rule_id for rule in rules] == ["D101", "S203"]
    with pytest.raises(UnknownRuleError):
        get_rules("D999")


def test_rule_catalog_metadata_complete():
    ids = [rule.rule_id for rule in ALL_RULES]
    assert ids == sorted(ids) == [
        "D101", "D102", "D103", "D104", "D105", "R301", "S201", "S202",
        "S203", "S204", "S205",
    ]
    for rule in ALL_RULES:
        assert rule.title and rule.rationale and rule.paper_ref

    from repro.lint import EFFECT_RULE_CATALOG

    effect_ids = [rule.rule_id for rule in EFFECT_RULE_CATALOG]
    assert effect_ids == ["E301", "E302", "E303", "E304"]
    for rule in EFFECT_RULE_CATALOG:
        assert rule.title and rule.rationale and rule.paper_ref
    # No id collides between the per-file and whole-program catalogs.
    assert not set(ids) & set(effect_ids)


# ---------------------------------------------------------------------------
# CLI: exit codes, JSON schema, --fix-suppress
# ---------------------------------------------------------------------------


def write_fixture(tmp_path: Path, name: str, source: str) -> Path:
    path = tmp_path / name
    path.write_text(source, encoding="utf-8")
    return path


def test_cli_exit_zero_and_text_summary_on_clean_tree(tmp_path, capsys):
    write_fixture(tmp_path, "clean.py", "def ok():\n    return 1\n")
    assert main(["lint", str(tmp_path)]) == 0
    out = capsys.readouterr().out
    assert "clean: 1 file(s), 0 violations" in out


def test_cli_exit_one_with_rule_id_and_location(tmp_path, capsys):
    bad = write_fixture(
        tmp_path, "bad.py", "import time\nx = time.time()\n"
    )
    assert main(["lint", str(tmp_path)]) == 1
    out = capsys.readouterr().out
    assert f"{bad}:2:5: D101" in out


def test_cli_json_schema(tmp_path, capsys):
    write_fixture(tmp_path, "bad.py", "import random\n")
    exit_code = main(["lint", str(tmp_path), "--format", "json"])
    payload = json.loads(capsys.readouterr().out)
    assert exit_code == 1
    assert payload["version"] == 1
    assert payload["ok"] is False
    assert payload["files_checked"] == 1
    assert payload["counts"] == {"D102": 1}
    [violation] = payload["violations"]
    assert set(violation) == {"rule", "path", "line", "column", "message"}
    assert violation["rule"] == "D102"
    assert violation["line"] == 1


def test_cli_select_runs_only_named_rules(tmp_path):
    write_fixture(
        tmp_path, "bad.py", "import time\nimport random\nx = time.time()\n"
    )
    assert main(["lint", str(tmp_path), "--select", "D102"]) == 1
    assert main(["lint", str(tmp_path), "--select", "D103"]) == 0


def test_cli_unknown_rule_exits_two(tmp_path, capsys):
    assert main(["lint", str(tmp_path), "--select", "D999"]) == 2
    assert "unknown rule" in capsys.readouterr().err


def test_cli_missing_path_exits_two(tmp_path, capsys):
    assert main(["lint", str(tmp_path / "nope.txt")]) == 2
    assert "error:" in capsys.readouterr().err


def test_cli_list_rules(capsys):
    assert main(["lint", "--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule in ALL_RULES:
        assert rule.rule_id in out


def test_fix_suppress_round_trip(tmp_path, capsys):
    bad = write_fixture(
        tmp_path,
        "bad.py",
        "import time  # repro-lint: ignore[D101] -- the import site\n"
        "x = time.time()\n",
    )
    # --fix-suppress edits the file and the re-check comes back clean.
    assert main(["lint", str(tmp_path), "--fix-suppress"]) == 0
    text = bad.read_text()
    assert "x = time.time()  # repro-lint: ignore[D101] -- triaged" in text
    assert main(["lint", str(tmp_path)]) == 0


def test_fix_suppress_merges_into_existing_comment(tmp_path):
    bad = write_fixture(
        tmp_path,
        "bad.py",
        "import time\n"
        "x = time.time() + hash('a')  # repro-lint: ignore[D103] -- fixture\n",
    )
    assert main(["lint", str(tmp_path), "--fix-suppress"]) == 0
    line = bad.read_text().splitlines()[1]
    assert "ignore[D101,D103]" in line
    assert line.count("repro-lint") == 1


def test_fix_suppress_never_suppresses_parse_errors(tmp_path):
    broken = write_fixture(tmp_path, "broken.py", "def broken(:\n")
    before = broken.read_text()
    assert main(["lint", str(tmp_path), "--fix-suppress"]) == 1
    assert broken.read_text() == before


# ---------------------------------------------------------------------------
# The acceptance criterion: the shipped tree is violation-free.
# ---------------------------------------------------------------------------


def test_src_repro_is_violation_free():
    report = lint_paths([REPO_SRC], ALL_RULES)
    assert report.files_checked > 50
    offenders = "\n".join(v.format() for v in report.violations)
    assert report.ok, f"lint violations in src/repro:\n{offenders}"
