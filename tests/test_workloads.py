"""Tests for the empirical flow-size distributions (Figure 8)."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.workloads import (
    BUILTIN_WORKLOAD_NAMES,
    DATA_MINING,
    ENTERPRISE,
    FlowSizeDistribution,
    WEB_SEARCH,
    WORKLOADS,
)


class TestConstruction:
    def test_registry(self):
        # Scenario files may register extra CDFs at runtime, so the exact
        # pin is on the built-in set, not the whole registry.
        assert BUILTIN_WORKLOAD_NAMES == {
            "enterprise", "data-mining", "web-search", "hadoop"
        }
        assert BUILTIN_WORKLOAD_NAMES <= set(WORKLOADS)

    def test_rejects_too_few_points(self):
        with pytest.raises(ValueError):
            FlowSizeDistribution("x", ((100.0, 1.0),))

    def test_rejects_non_increasing_sizes(self):
        with pytest.raises(ValueError):
            FlowSizeDistribution("x", ((100.0, 0.5), (100.0, 1.0)))

    def test_rejects_decreasing_cdf(self):
        with pytest.raises(ValueError):
            FlowSizeDistribution("x", ((100.0, 0.9), (200.0, 0.5), (300.0, 1.0)))

    def test_rejects_cdf_not_ending_at_one(self):
        with pytest.raises(ValueError):
            FlowSizeDistribution("x", ((100.0, 0.5), (200.0, 0.9)))


class TestQuantile:
    def test_endpoints(self):
        dist = WEB_SEARCH
        assert dist.quantile(1.0) == dist.points[-1][0]
        assert dist.quantile(0.0) >= 1.0

    def test_interpolation(self):
        dist = FlowSizeDistribution("x", ((100.0, 0.0), (200.0, 1.0)))
        assert dist.quantile(0.5) == pytest.approx(150.0)

    def test_monotone(self):
        grid = np.linspace(0, 1, 101)
        for dist in WORKLOADS.values():
            values = [dist.quantile(u) for u in grid]
            assert all(b >= a for a, b in zip(values, values[1:]))

    def test_out_of_range(self):
        with pytest.raises(ValueError):
            WEB_SEARCH.quantile(1.5)


class TestSampling:
    def test_samples_within_support(self):
        rng = np.random.default_rng(1)
        for dist in WORKLOADS.values():
            for _ in range(200):
                size = dist.sample(rng)
                assert 1 <= size <= dist.points[-1][0]

    def test_sample_many_matches_support(self):
        rng = np.random.default_rng(2)
        sizes = DATA_MINING.sample_many(rng, 5000)
        assert sizes.min() >= 1
        assert sizes.max() <= DATA_MINING.points[-1][0]

    def test_empirical_mean_close_to_analytic(self):
        rng = np.random.default_rng(3)
        sizes = WEB_SEARCH.sample_many(rng, 200_000)
        assert sizes.mean() == pytest.approx(WEB_SEARCH.mean(), rel=0.05)

    def test_sampling_deterministic_for_seed(self):
        a = ENTERPRISE.sample_many(np.random.default_rng(7), 100)
        b = ENTERPRISE.sample_many(np.random.default_rng(7), 100)
        assert (a == b).all()


class TestMoments:
    def test_means_are_heavy(self):
        # Enterprise mean is a couple of MB; data-mining is several MB.
        assert 1e6 < ENTERPRISE.mean() < 5e6
        assert 5e6 < DATA_MINING.mean() < 20e6
        assert 1e6 < WEB_SEARCH.mean() < 3e6

    def test_second_moment_consistent(self):
        rng = np.random.default_rng(4)
        sizes = WEB_SEARCH.sample_many(rng, 300_000).astype(float)
        assert (sizes**2).mean() == pytest.approx(
            WEB_SEARCH.second_moment(), rel=0.1
        )

    def test_cov_ranks_heaviness(self):
        """6.2: data-mining is 'heavier' than enterprise and web-search."""
        assert DATA_MINING.coefficient_of_variation() > WEB_SEARCH.coefficient_of_variation()
        assert DATA_MINING.coefficient_of_variation() > 1.0

    def test_uniform_distribution_moments(self):
        dist = FlowSizeDistribution("u", ((0.001, 0.0), (1000.0, 1.0)))
        assert dist.mean() == pytest.approx(500.0, rel=0.01)
        # Uniform on [0,1000]: E[S^2] = 1000^2/3.
        assert dist.second_moment() == pytest.approx(1000.0**2 / 3, rel=0.01)


class TestByteWeightedViews:
    def test_byte_fraction_monotone(self):
        probes = np.logspace(2, 9, 30)
        for dist in WORKLOADS.values():
            fractions = [dist.byte_fraction_below(p) for p in probes]
            assert all(b >= a - 1e-12 for a, b in zip(fractions, fractions[1:]))
            assert fractions[-1] == pytest.approx(1.0, abs=1e-6)

    def test_enterprise_half_bytes_below_35mb(self):
        """5.2.1: ~50% of enterprise bytes come from flows < 35 MB."""
        fraction = ENTERPRISE.byte_fraction_below(35e6)
        assert 0.35 <= fraction <= 0.65

    def test_datamining_bytes_dominated_by_elephants(self):
        """5.2.1: flows < 35 MB contribute only ~5% of data-mining bytes."""
        fraction = DATA_MINING.byte_fraction_below(35e6)
        assert fraction <= 0.15

    def test_byte_median_ordering(self):
        assert DATA_MINING.byte_median() > ENTERPRISE.byte_median()

    def test_byte_median_bisection_consistent(self):
        for dist in WORKLOADS.values():
            median = dist.byte_median()
            assert dist.byte_fraction_below(median) == pytest.approx(0.5, abs=0.01)


@given(u=st.floats(min_value=0.0, max_value=1.0))
def test_quantile_total_function(u):
    for dist in WORKLOADS.values():
        value = dist.quantile(u)
        assert value >= 0
