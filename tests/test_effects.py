"""Tests for the whole-program effect analyzer (``conga-repro lint --effects``).

Four layers:

* seeded fixture packages — each E3xx rule tripped through a multi-hop
  call chain that no per-file rule can see, with the witness chain
  asserted hop by hop (file:line per hop);
* the incremental cache — a second run re-analyzes only the changed
  file and re-propagates only the SCCs that can reach it
  (:class:`~repro.lint.effects.PropagationStats` is the evidence);
* the self-check — ``src/repro`` must be effects-clean within the CI
  runtime budget;
* the CLI — ``--effects``, ``--select E3``, ``--show-suppressed``,
  ``--sarif``, ``--jobs`` determinism and the ``callgraph`` subcommand.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import pytest

from repro.cli import main
from repro.lint import (
    ALL_RULES,
    EFFECT_RULE_CATALOG,
    EFFECT_RULE_IDS,
    analyze_effects,
    lint_paths,
    resolve_select,
)

REPO_SRC = Path(__file__).resolve().parents[1] / "src" / "repro"


def write_tree(tmp_path: Path, files: dict[str, str]) -> Path:
    """Materialize a fixture package under ``<tmp>/repro`` and return it.

    Module qnames anchor at the last ``repro`` path component, so a file
    at ``<tmp>/repro/sim/kernel.py`` impersonates ``repro.sim.kernel``
    and matches the default hot-path entry patterns.
    """
    root = tmp_path / "repro"
    for rel, source in files.items():
        path = root / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(source, encoding="utf-8")
    return root


def findings_for(report, rule: str):
    return [finding for finding in report.findings if finding.rule == rule]


# ---------------------------------------------------------------------------
# E301 — side effects reachable from kernel entry points
# ---------------------------------------------------------------------------

E301_KERNEL = """\
from repro.util.helpers import stamp


class Simulator:
    def run(self):
        self.tick()

    def tick(self):
        stamp("tick")
"""

E301_HELPERS = """\
def stamp(label):
    print("event", label)
"""


def test_e301_multi_hop_io_witness(tmp_path):
    root = write_tree(
        tmp_path,
        {"sim/kernel.py": E301_KERNEL, "util/helpers.py": E301_HELPERS},
    )
    report = analyze_effects([root])
    findings = findings_for(report, "E301")
    assert len(findings) == 1
    finding = findings[0]
    assert finding.kind == "io"
    assert finding.entry == "repro.sim.kernel.Simulator.run"
    # Witness chain: run -> tick -> stamp -> print, with file:line per hop.
    qnames = [hop.qname for hop in finding.chain]
    assert qnames == [
        "repro.sim.kernel.Simulator.run",
        "repro.sim.kernel.Simulator.tick",
        "repro.util.helpers.stamp",
    ]
    kernel = str(root / "sim" / "kernel.py")
    helpers = str(root / "util" / "helpers.py")
    # Each hop is anchored at the call site inside that function that
    # leads to the next hop (the last hop points at the effect line).
    assert [(hop.path, hop.line) for hop in finding.chain] == [
        (kernel, 6),
        (kernel, 9),
        (helpers, 2),
    ]
    assert (finding.site_path, finding.site_line) == (helpers, 2)
    assert "print" in finding.detail
    # Every hop is spelled file:line in the rendered chain.
    text = finding.chain_text()
    for hop in finding.chain:
        assert f"{hop.path}:{hop.line}" in text


def test_e301_site_invisible_to_per_file_rules(tmp_path):
    """The acceptance case: a >=2-hop violation no per-file rule can detect.

    ``print`` lives in ``repro/util`` — outside R301's simulator scopes —
    so the per-file pass is blind; only the call graph connects it to the
    kernel entry point.
    """
    root = write_tree(
        tmp_path,
        {"sim/kernel.py": E301_KERNEL, "util/helpers.py": E301_HELPERS},
    )
    per_file = lint_paths([root], ALL_RULES)
    assert per_file.ok
    report = analyze_effects([root])
    assert not report.ok
    assert len(findings_for(report, "E301")[0].chain) >= 2


def test_e301_suppressed_at_site_via_effect_rule(tmp_path):
    helpers = E301_HELPERS.replace(
        'print("event", label)',
        'print("event", label)  # repro-lint: ignore[E301] -- fixture waiver',
    )
    root = write_tree(
        tmp_path,
        {"sim/kernel.py": E301_KERNEL, "util/helpers.py": helpers},
    )
    report = analyze_effects([root])
    assert report.ok
    status = [s for s in report.suppressions if s.path.endswith("helpers.py")]
    assert len(status) == 1
    assert status[0].used == ["E301"]
    assert status[0].stale == []


# ---------------------------------------------------------------------------
# E302 — allocation on the per-packet train path
# ---------------------------------------------------------------------------

E302_PORT = """\
from repro.util.mix import weights


class Port:
    def _advance(self):
        self._transmit_next()

    def _transmit_next(self):
        return weights(4)
"""

E302_MIX = """\
def weights(n):
    return [index * 2 for index in range(n)]
"""


def test_e302_two_hop_alloc_witness(tmp_path):
    root = write_tree(
        tmp_path,
        {"net/port.py": E302_PORT, "util/mix.py": E302_MIX},
    )
    # Per-file S205 only patrols hot methods themselves; the helper's
    # comprehension two hops away is invisible without the call graph.
    assert lint_paths([root], ALL_RULES).ok
    report = analyze_effects([root])
    findings = findings_for(report, "E302")
    assert len(findings) == 1
    finding = findings[0]
    assert finding.kind == "alloc"
    assert finding.entry == "repro.net.port.Port._advance"
    assert [hop.qname for hop in finding.chain] == [
        "repro.net.port.Port._advance",
        "repro.net.port.Port._transmit_next",
        "repro.util.mix.weights",
    ]
    mix = str(root / "util" / "mix.py")
    assert (finding.site_path, finding.site_line) == (mix, 2)
    assert len(finding.chain) >= 2


def test_e302_ignores_deferred_callback_allocation(tmp_path):
    root = write_tree(
        tmp_path,
        {
            "net/port.py": """\
class Port:
    def _advance(self, sim):
        sim.schedule(5, self._refill)

    def _refill(self):
        return [slot for slot in range(8)]
"""
        },
    )
    report = analyze_effects([root])
    # The allocation runs inside a scheduled callback, not synchronously on
    # the train path, so E302 must stay quiet (and E301 does not ban alloc).
    assert report.ok


def test_e302_constructor_allocation_across_modules(tmp_path):
    root = write_tree(
        tmp_path,
        {
            "net/port.py": """\
from repro.util.events import make_event


class Port:
    def _advance(self):
        return make_event(3)
""",
            "util/events.py": """\
class Event:
    def __init__(self, time):
        self.time = time


def make_event(time):
    return Event(time)
""",
        },
    )
    report = analyze_effects([root])
    findings = findings_for(report, "E302")
    assert findings, "constructing a project class on the train path must fire E302"
    assert any("Event" in finding.detail for finding in findings)


# ---------------------------------------------------------------------------
# E303 — unpicklable payloads forwarded into the scheduler
# ---------------------------------------------------------------------------

E303_KERNEL = """\
class Simulator:
    def run(self):
        pass


def setup(sim):
    arm(sim, lambda: None)


def arm(sim, job):
    forward(sim, job)


def forward(sim, job):
    sim.schedule(1, job)
"""


def test_e303_transitive_lambda_forwarding(tmp_path):
    root = write_tree(tmp_path, {"sim/kernel.py": E303_KERNEL})
    # S201 only sees lambdas passed *directly* to schedule(); the lambda
    # here travels through two forwarding frames first.
    assert lint_paths([root], ALL_RULES).ok
    report = analyze_effects([root])
    findings = findings_for(report, "E303")
    assert len(findings) == 1
    finding = findings[0]
    kernel = str(root / "sim" / "kernel.py")
    assert finding.site_path == kernel
    assert finding.site_line == 7  # the lambda literal in setup()
    chain_lines = [hop.line for hop in finding.chain]
    # The chain walks the forwarding frames down to the schedule() call.
    assert 11 in chain_lines  # arm() -> forward(sim, job)
    assert 15 in chain_lines  # forward() -> sim.schedule(1, job)
    assert len(finding.chain) >= 2


# ---------------------------------------------------------------------------
# E304 — stale suppression comments
# ---------------------------------------------------------------------------

E304_MODULE = """\
import time


def now():
    return time.time()  # repro-lint: ignore[D101] -- clock needed here


def quiet():
    return 1  # repro-lint: ignore[D101] -- nothing here ever fired
"""


def test_e304_stale_vs_used_suppressions(tmp_path):
    root = write_tree(tmp_path, {"sim/clockmod.py": E304_MODULE})
    report = analyze_effects([root])
    assert len(report.stale) == 1
    stale = report.stale[0]
    assert stale.rule == "E304"
    assert stale.line == 9
    assert "D101" in stale.message
    verdicts = {status.line: status for status in report.suppressions}
    assert verdicts[5].used == ["D101"] and not verdicts[5].stale
    assert verdicts[9].stale == ["D101"] and not verdicts[9].used


def test_e304_never_autosuppressed(tmp_path):
    from repro.lint.fixer import apply_suppressions

    root = write_tree(tmp_path, {"sim/clockmod.py": E304_MODULE})
    report = analyze_effects([root])
    before = (root / "sim" / "clockmod.py").read_bytes()
    assert apply_suppressions(report.stale) == {}
    assert (root / "sim" / "clockmod.py").read_bytes() == before


# ---------------------------------------------------------------------------
# Incremental cache
# ---------------------------------------------------------------------------

ISO_MODULE = """\
def top():
    return middle() + 1


def middle():
    return bottom() * 2


def bottom():
    return 7
"""


def test_incremental_cache_repropagates_only_affected_sccs(tmp_path):
    root = write_tree(
        tmp_path,
        {
            "sim/kernel.py": E301_KERNEL,
            "util/helpers.py": E301_HELPERS,
            "other/iso.py": ISO_MODULE,
        },
    )
    cache = tmp_path / "cache" / "effects.json"

    cold = analyze_effects([root], cache_path=cache)
    assert cold.stats.files_total == 3
    assert cold.stats.files_analyzed == 3
    assert cold.stats.files_cached == 0
    assert cold.stats.sccs_repropagated == cold.stats.sccs_total > 0

    warm = analyze_effects([root], cache_path=cache)
    assert warm.stats.files_analyzed == 0
    assert warm.stats.files_cached == 3
    assert warm.stats.sccs_repropagated == 0
    assert [f.to_json() for f in warm.findings] == [
        f.to_json() for f in cold.findings
    ]

    # A cosmetic edit re-summarizes the file but leaves every function
    # fingerprint (own effects + resolved edges) intact: nothing dirties.
    helpers = root / "util" / "helpers.py"
    helpers.write_text(
        E301_HELPERS.replace('"event"', '"tick-event"'), encoding="utf-8"
    )
    cosmetic = analyze_effects([root], cache_path=cache)
    assert cosmetic.stats.files_analyzed == 1
    assert cosmetic.stats.sccs_repropagated == 0
    assert len(findings_for(cosmetic, "E301")) == 1

    # An effect-changing edit dirties only the SCCs that can reach the
    # changed function (the kernel chain), not the isolated module.
    helpers.write_text(
        "import time\n\n\ndef stamp(label):\n"
        '    print("event", label)\n    return time.time()\n',
        encoding="utf-8",
    )
    partial = analyze_effects([root], cache_path=cache)
    assert partial.stats.files_analyzed == 1
    assert partial.stats.files_cached == 2
    assert 0 < partial.stats.sccs_repropagated < partial.stats.sccs_total
    kinds = {finding.kind for finding in findings_for(partial, "E301")}
    assert kinds == {"io", "time"}


def test_cache_survives_corruption(tmp_path):
    root = write_tree(tmp_path, {"other/iso.py": ISO_MODULE})
    cache = tmp_path / "effects.json"
    analyze_effects([root], cache_path=cache)
    cache.write_text("{not json", encoding="utf-8")
    report = analyze_effects([root], cache_path=cache)
    assert report.stats.files_analyzed == 1  # cold again, no crash


# ---------------------------------------------------------------------------
# Catalog / selection
# ---------------------------------------------------------------------------


def test_effect_rule_catalog_metadata_complete():
    assert list(EFFECT_RULE_IDS) == ["E301", "E302", "E303", "E304"]
    for rule in EFFECT_RULE_CATALOG:
        assert rule.title
        assert rule.rationale
        assert rule.paper_ref


def test_resolve_select_family_prefixes():
    file_rules, effect_ids = resolve_select("E3")
    assert file_rules == ()
    assert list(effect_ids) == ["E301", "E302", "E303", "E304"]

    file_rules, effect_ids = resolve_select("D")
    assert {rule.rule_id for rule in file_rules} == {
        "D101", "D102", "D103", "D104", "D105",
    }
    assert effect_ids == ()

    file_rules, effect_ids = resolve_select("D101,E302")
    assert [rule.rule_id for rule in file_rules] == ["D101"]
    assert list(effect_ids) == ["E302"]


def test_resolve_select_unknown_family():
    from repro.lint import UnknownRuleError

    with pytest.raises(UnknownRuleError):
        resolve_select("Z9")


# ---------------------------------------------------------------------------
# Self-check: src/repro is effects-clean within the CI runtime budget
# ---------------------------------------------------------------------------


def test_src_repro_is_effects_clean_within_budget():
    started = time.monotonic()
    report = analyze_effects([REPO_SRC])
    elapsed = time.monotonic() - started
    assert report.files_checked > 50
    assert not report.findings, [f.message() for f in report.findings]
    assert not report.stale, [v.format() for v in report.stale]
    assert elapsed <= 30.0, f"effects pass took {elapsed:.1f}s (budget 30s)"


def test_src_repro_suppressions_all_used():
    report = analyze_effects([REPO_SRC])
    stale = [s for s in report.suppressions if s.stale]
    assert not stale, [(s.path, s.line, s.stale) for s in stale]


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------


def test_cli_effects_exit_codes(tmp_path, capsys):
    clean = write_tree(tmp_path / "clean", {"other/iso.py": ISO_MODULE})
    assert main(["lint", str(clean), "--effects", "--no-cache"]) == 0
    assert "0 violations" in capsys.readouterr().out

    dirty = write_tree(
        tmp_path / "dirty",
        {"sim/kernel.py": E301_KERNEL, "util/helpers.py": E301_HELPERS},
    )
    assert main(["lint", str(dirty), "--effects", "--no-cache"]) == 1
    out = capsys.readouterr().out
    assert "E301" in out
    assert "witness:" in out


def test_cli_select_e3_implies_effects(tmp_path, capsys):
    root = write_tree(
        tmp_path,
        {"sim/kernel.py": E301_KERNEL, "util/helpers.py": E301_HELPERS},
    )
    assert main(["lint", str(root), "--select", "E3", "--no-cache"]) == 1
    out = capsys.readouterr().out
    assert "E301" in out
    # Filtering to another effect family keeps the same pass quiet.
    assert main(["lint", str(root), "--select", "E302", "--no-cache"]) == 0


def test_cli_show_suppressed(tmp_path, capsys):
    root = write_tree(tmp_path, {"sim/clockmod.py": E304_MODULE})
    assert main(["lint", str(root), "--show-suppressed", "--no-cache"]) == 1
    out = capsys.readouterr().out
    assert "ignore[D101] used" in out
    assert "STALE: D101" in out


def test_cli_sarif_carries_witness_code_flows(tmp_path):
    root = write_tree(
        tmp_path,
        {"sim/kernel.py": E301_KERNEL, "util/helpers.py": E301_HELPERS},
    )
    sarif_path = tmp_path / "out.sarif"
    assert (
        main(
            [
                "lint",
                str(root),
                "--effects",
                "--no-cache",
                "--sarif",
                str(sarif_path),
            ]
        )
        == 1
    )
    document = json.loads(sarif_path.read_text(encoding="utf-8"))
    assert document["version"] == "2.1.0"
    run = document["runs"][0]
    results = run["results"]
    assert any(result["ruleId"] == "E301" for result in results)
    e301 = next(result for result in results if result["ruleId"] == "E301")
    locations = e301["codeFlows"][0]["threadFlows"][0]["locations"]
    # run -> tick -> stamp hops plus the print site itself.
    assert len(locations) == 4
    # The driver advertises metadata for every rule that appears in results.
    rule_ids = {rule["id"] for rule in run["tool"]["driver"]["rules"]}
    assert "E301" in rule_ids


def test_cli_json_format_embeds_effects_report(tmp_path, capsys):
    root = write_tree(
        tmp_path,
        {"sim/kernel.py": E301_KERNEL, "util/helpers.py": E301_HELPERS},
    )
    assert (
        main(["lint", str(root), "--effects", "--no-cache", "--format", "json"]) == 1
    )
    document = json.loads(capsys.readouterr().out)
    effects = document["effects"]
    assert effects["ok"] is False
    assert effects["findings"][0]["rule"] == "E301"
    assert len(effects["findings"][0]["chain"]) == 3
    assert effects["stats"]["files_total"] == 2


def test_cli_jobs_output_is_deterministic(tmp_path, capsys):
    files = {}
    for index in range(6):
        files[f"sim/mod{index}.py"] = (
            "import time\n\n\ndef f():\n    return time.time()\n"
        )
    root = write_tree(tmp_path, files)

    assert main(["lint", str(root)]) == 1
    serial = capsys.readouterr().out
    for jobs in ("2", "4"):
        assert main(["lint", str(root), "--jobs", jobs]) == 1
        assert capsys.readouterr().out == serial


def test_cli_callgraph_dumps_witness_chains(tmp_path, capsys):
    root = write_tree(
        tmp_path,
        {"sim/kernel.py": E301_KERNEL, "util/helpers.py": E301_HELPERS},
    )
    assert main(["callgraph", str(root), "--no-cache"]) == 0
    out = capsys.readouterr().out
    assert "repro.sim.kernel.Simulator.run" in out
    assert " -> " in out
    assert "reachable effect(s)" in out


def test_cli_callgraph_json_and_filters(tmp_path, capsys):
    root = write_tree(
        tmp_path,
        {"sim/kernel.py": E301_KERNEL, "util/helpers.py": E301_HELPERS},
    )
    assert (
        main(
            [
                "callgraph",
                str(root),
                "--no-cache",
                "--format",
                "json",
                "--kind",
                "io",
            ]
        )
        == 0
    )
    document = json.loads(capsys.readouterr().out)
    assert document["chains"]
    assert all(chain["kind"] == "io" for chain in document["chains"])
