"""Tests for the plain-text reporting helpers."""

import pytest

from repro.analysis import cdf_points, render_table, summarize_series


class TestRenderTable:
    def test_basic_layout(self):
        text = render_table("T", ["a", "bb"], [[1, 2.5], [30, 4.123456]])
        lines = text.splitlines()
        assert lines[0] == "=== T ==="
        assert lines[1].startswith("a")
        assert "2.5" in lines[2]
        assert "4.12" in lines[3]  # 3 significant digits

    def test_alignment(self):
        text = render_table("T", ["col"], [["x"], ["longer"]])
        lines = text.splitlines()
        assert len(lines[2]) >= len("longer")

    def test_rejects_ragged_rows(self):
        with pytest.raises(ValueError):
            render_table("T", ["a", "b"], [[1]])

    def test_non_numeric_cells(self):
        text = render_table("T", ["scheme"], [["conga"], ["ecmp"]])
        assert "conga" in text


class TestSeriesSummaries:
    def test_summarize(self):
        summary = summarize_series([1.0, 2.0, 3.0, 4.0])
        assert summary["mean"] == pytest.approx(2.5)
        assert summary["min"] == 1.0
        assert summary["max"] == 4.0

    def test_cdf_points_monotone(self):
        points = cdf_points(list(range(100)))
        values = [v for _q, v in points]
        assert values == sorted(values)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            summarize_series([])
        with pytest.raises(ValueError):
            cdf_points([])
