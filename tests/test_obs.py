"""Tests for the repro.obs observability plane.

Four layers:

* tracer mechanics — ring-buffer bounds, category filters, export and
  digest round-trips, ObsSpec canonicalization;
* metrics registry — create-or-get semantics, kind mismatches, report
  snapshots and filtering;
* integration — a hand-checked CONGA reroute trace, trace-digest
  determinism across sweep worker counts, content-hash neutrality, and
  the run manifest written next to every cache entry;
* the overhead contract — unit tests of the gate against a synthetic
  baseline, plus the real measured bench (marked ``obs_smoke``).
"""

from __future__ import annotations

import json
import pickle

import pytest

from repro.analysis import EmptySeriesError
from repro.apps import ExperimentSpec, ObsSpec
from repro.net import Packet
from repro.obs import (
    CATEGORIES,
    MANIFEST_SUFFIX,
    DreSampled,
    FlowletRerouted,
    MetricsRegistry,
    PacketDropped,
    TraceLog,
    Tracer,
    build_manifest,
    event_payload,
    manifest_path,
)
from repro.obs.trace import _normalize_categories
from repro.perf import (
    TRACE_OVERHEAD_SPEC,
    TraceOverheadResult,
    assert_disabled_overhead,
    run_timeline_overhead,
    run_trace_overhead,
    write_bench_file,
)
from repro.perf import BenchResult
from repro.runner import ResultCache, run_sweep
from repro.sim import Simulator
from repro.topology import build_leaf_spine, scaled_testbed


def _drop(t: int) -> PacketDropped:
    return PacketDropped(time=t, port="l0-s0", flow_id=7, size=1500, reason="loss")


TINY = ExperimentSpec(
    scheme="conga",
    workload="enterprise",
    load=0.6,
    seed=7,
    num_flows=30,
    size_scale=0.02,
)


# ---------------------------------------------------------------------------
# Tracer mechanics
# ---------------------------------------------------------------------------


class TestTracer:
    def test_ring_buffer_keeps_newest_window(self):
        tracer = Tracer(limit=4)
        for t in range(10):
            tracer.emit(_drop(t))
        assert len(tracer) == 4
        assert tracer.emitted == 10
        assert tracer.dropped == 6
        assert [e.time for e in tracer.events()] == [6, 7, 8, 9]

    def test_category_flags_are_plain_bools(self):
        tracer = Tracer(categories="flowlet,table")
        assert tracer.flowlet is True and tracer.table is True
        assert tracer.dre is False and tracer.tcp is False
        assert tracer.wants("flowlet") and not tracer.wants("drop")

    def test_default_records_every_category(self):
        tracer = Tracer()
        assert tracer.categories == CATEGORIES
        assert all(getattr(tracer, name) for name in CATEGORIES)

    def test_unknown_category_and_bad_limit_raise(self):
        with pytest.raises(ValueError, match="unknown trace category"):
            Tracer(categories="flowlet,bogus")
        with pytest.raises(ValueError, match="positive"):
            Tracer(limit=0)

    def test_normalize_canonicalizes_order(self):
        assert _normalize_categories("table, flowlet") == ("flowlet", "table")
        assert _normalize_categories(None) == CATEGORIES
        assert _normalize_categories(["tcp", "dre"]) == ("dre", "tcp")


class TestTraceLog:
    def _log(self, n: int = 3, limit: int = 16) -> TraceLog:
        tracer = Tracer(limit=limit)
        for t in range(n):
            tracer.emit(_drop(t))
        return tracer.snapshot()

    def test_ndjson_round_trip(self):
        log = self._log()
        payloads = [json.loads(line) for line in log.ndjson_lines()]
        assert [p["time"] for p in payloads] == [0, 1, 2]
        assert all(p["name"] == "PacketDropped" for p in payloads)
        assert all(p["cat"] == "drop" for p in payloads)
        assert payloads[0] == event_payload(log.events[0])

    def test_write_ndjson_matches_lines(self, tmp_path):
        log = self._log()
        path = log.write_ndjson(tmp_path / "trace.ndjson")
        assert path.read_text().splitlines() == list(log.ndjson_lines())

    def test_chrome_trace_structure(self):
        log = self._log(n=2)
        doc = log.chrome_trace()
        assert len(doc["traceEvents"]) == 2
        record = doc["traceEvents"][0]
        assert record["ph"] == "i" and record["cat"] == "drop"
        assert record["ts"] == 0.0  # ns -> us
        assert "name" not in record["args"] and record["args"]["reason"] == "loss"
        assert doc["metadata"]["emitted"] == 2

    def test_digest_is_stable_and_content_sensitive(self):
        assert self._log().digest() == self._log().digest()
        assert self._log(n=2).digest() != self._log(n=3).digest()

    def test_select_filters_by_category(self):
        tracer = Tracer()
        tracer.emit(_drop(1))
        tracer.emit(DreSampled(time=2, link="l0-s0", register=0.0,
                               utilization=0.0, metric=0))
        log = tracer.snapshot()
        assert [e.time for e in log.select("dre")] == [2]
        assert len(log.select()) == 2

    def test_pickle_round_trip_preserves_digest(self):
        log = self._log()
        clone = pickle.loads(pickle.dumps(log))
        assert clone.digest() == log.digest()
        assert clone.dropped == log.dropped


class TestObsSpec:
    def test_canonicalizes_category_strings(self):
        spec = ObsSpec(categories="table,flowlet")
        assert spec.categories == ("flowlet", "table")

    def test_rejects_bad_values(self):
        with pytest.raises(ValueError):
            ObsSpec(categories="nope")
        with pytest.raises(ValueError):
            ObsSpec(buffer_limit=0)

    def test_make_tracer_applies_config(self):
        tracer = ObsSpec(categories=("dre",), buffer_limit=9).make_tracer()
        assert tracer.categories == ("dre",)
        assert tracer.limit == 9


# ---------------------------------------------------------------------------
# Metrics registry
# ---------------------------------------------------------------------------


class TestMetricsRegistry:
    def test_create_or_get_returns_same_cell(self):
        registry = MetricsRegistry()
        cell = registry.counter("kernel.events_executed")
        cell.value += 5
        assert registry.counter("kernel.events_executed").value == 5
        assert "kernel.events_executed" in registry
        assert len(registry) == 1

    def test_kind_mismatch_raises(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(TypeError, match="already registered"):
            registry.gauge("x")

    def test_snapshot_sorts_and_pickles(self):
        registry = MetricsRegistry()
        registry.counter("b.count").inc(2)
        registry.gauge("a.level").set(1.5)
        hist = registry.histogram("c.sizes")
        for v in (1.0, 2.0, 3.0):
            hist.observe(v)
        report = pickle.loads(pickle.dumps(registry.snapshot()))
        assert report.names() == ["a.level", "b.count", "c.sizes"]
        assert report.value("b.count") == 2
        assert report.scalars() == {"a.level": 1.5, "b.count": 2}
        assert report.histograms["c.sizes"].count == 3
        assert report.histograms["c.sizes"].p50 == 2.0

    def test_lines_filter_by_prefix(self):
        registry = MetricsRegistry()
        registry.counter("kernel.events").inc()
        registry.counter("port.tx").inc()
        lines = registry.snapshot().lines("kernel.")
        assert len(lines) == 1 and lines[0].startswith("kernel.events")

    def test_value_raises_on_unknown_name(self):
        with pytest.raises(KeyError):
            MetricsRegistry().snapshot().value("missing")


def test_empty_series_error_carries_context():
    err = EmptySeriesError("QueueMonitor[l0-s0]", 100)
    assert isinstance(err, ValueError)
    assert err.monitor == "QueueMonitor[l0-s0]"
    assert err.interval == 100
    assert "QueueMonitor[l0-s0]" in str(err) and "100" in str(err)


def test_kernel_counters_live_in_registry():
    sim = Simulator(seed=1)
    sim.schedule(10, lambda: None)
    sim.run()
    assert sim.events_executed == 1
    assert sim.metrics.counter("kernel.events_executed").value == 1
    sim.events_executed = 7  # legacy setter writes through to the cell
    assert sim.metrics.counter("kernel.events_executed").value == 7


# ---------------------------------------------------------------------------
# Integration: hand-checked reroute, determinism, manifests
# ---------------------------------------------------------------------------


class TestTracedRuns:
    def test_flowlet_reroute_respects_remote_metric(self):
        """2-uplink hand check: a remote congestion entry must steer the
        flowlet away and the event must record both compared vectors."""
        from repro.lb import CongaSelector

        sim = Simulator(seed=1)
        sim.tracer = Tracer(categories="flowlet")
        fabric = build_leaf_spine(sim, scaled_testbed(hosts_per_leaf=2))
        fabric.finalize(CongaSelector.factory())
        leaf = fabric.leaves[0]
        leaf.to_leaf_table.update(1, 0, 5)  # remote says uplink 0 is congested
        packet = Packet(src=0, dst=2, size=1500, sport=9, dport=99, flow_id=3)
        choice = leaf.selector.choose_uplink(packet, 1, [0, 1])
        assert choice == 1
        (event,) = sim.tracer.events("flowlet")
        assert isinstance(event, FlowletRerouted)
        assert event.chosen == 1 and event.flow_id == 3
        assert event.candidates == (0, 1)
        assert event.local_metrics == (0, 0)
        assert event.remote_metrics == (5, 0)

    def test_traced_run_attaches_trace_and_metrics(self):
        result = TINY.with_(obs=ObsSpec(categories="flowlet,table")).run()
        assert result.trace is not None and result.metrics is not None
        assert result.trace.categories == ("flowlet", "table")
        reroutes = result.trace.select("flowlet")
        assert reroutes, "a CONGA run must make flowlet decisions"
        for event in reroutes:
            assert len(event.local_metrics) == len(event.candidates)
            assert len(event.remote_metrics) == len(event.candidates)
            assert event.chosen in event.candidates
        assert result.metrics.value("kernel.events_executed") == (
            result.events_executed
        )
        assert result.metrics.value("trace.emitted") == result.trace.emitted

    def test_untraced_run_has_no_trace_but_has_metrics(self):
        result = TINY.run()
        assert result.trace is None
        assert result.metrics is not None
        assert result.metrics.value("flows.completed") == result.completed

    def test_tracing_never_changes_the_simulation(self):
        untraced = TINY.run()
        traced = TINY.with_(obs=ObsSpec()).run()
        assert pickle.dumps(untraced.records) == pickle.dumps(traced.records)

    def test_content_hash_neutral_when_disabled(self):
        assert TINY.content_hash() == TINY.with_(obs=None).content_hash()
        assert TINY.content_hash() != TINY.with_(obs=ObsSpec()).content_hash()
        assert (
            TINY.with_(obs=ObsSpec(categories="dre")).content_hash()
            != TINY.with_(obs=ObsSpec()).content_hash()
        )

    def test_trace_digest_identical_across_worker_counts(self, tmp_path):
        specs = [
            TINY.with_(obs=ObsSpec(categories="flowlet,table")),
            TINY.with_(seed=8, obs=ObsSpec(categories="flowlet,table")),
        ]
        inline = run_sweep(specs, workers=0, cache=None)
        pooled = run_sweep(specs, workers=2, cache=None)
        for a, b in zip(inline, pooled):
            assert a.trace is not None and b.trace is not None
            assert a.trace.digest() == b.trace.digest()

    def test_sweep_result_carries_metrics(self, tmp_path):
        sweep = run_sweep([TINY], workers=0, cache=tmp_path / "cache")
        assert sweep.metrics is not None
        assert sweep.metrics.value("sweep.points") == 1
        assert sweep.metrics.value("sweep.executed") == 1
        again = run_sweep([TINY], workers=0, cache=tmp_path / "cache")
        assert again.metrics.value("sweep.cache_hits") == 1


class TestManifests:
    def test_cache_put_writes_manifest(self, tmp_path):
        spec = TINY.with_(obs=ObsSpec(categories="flowlet"))
        result = spec.run()
        cache = ResultCache(tmp_path / "cache")
        cache.put(spec, result)
        path = manifest_path(cache.root, spec.content_hash())
        assert path.name.endswith(MANIFEST_SUFFIX)
        manifest = json.loads(path.read_text())
        assert manifest["kind"] == "repro-run-manifest"
        assert manifest["content_hash"] == spec.content_hash()
        assert manifest["seed"] == spec.seed
        assert manifest["traced"] is True
        assert manifest["trace"]["digest"] == result.trace.digest()
        assert manifest["metrics"]["flows.completed"] == result.completed
        assert manifest["from_cache"] is False

    def test_build_manifest_for_untraced_run(self):
        result = TINY.run()
        manifest = build_manifest(result)
        assert manifest["traced"] is False and "trace" not in manifest
        assert manifest["spec_hash"] == TINY.content_hash()
        json.dumps(manifest)  # must be a pure JSON document

    def test_clear_removes_manifests(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        result = TINY.run()
        cache.put(TINY, result)
        assert cache.clear() == 1
        assert list(cache.root.glob(f"*{MANIFEST_SUFFIX}")) == []


# ---------------------------------------------------------------------------
# Overhead contract
# ---------------------------------------------------------------------------


def _overhead(untraced: float, traced: float = 0.0) -> TraceOverheadResult:
    return TraceOverheadResult(
        events_executed=1000,
        repeats=1,
        untraced_events_per_sec=untraced,
        traced_events_per_sec=traced or untraced,
        untraced_digest="d" * 64,
        traced_digest="d" * 64,
        trace_events_emitted=10,
    )


class TestOverheadGate:
    def _bench_file(self, tmp_path, eps: float):
        path = tmp_path / "bench.json"
        write_bench_file(
            {
                TRACE_OVERHEAD_SPEC: BenchResult(
                    name=TRACE_OVERHEAD_SPEC,
                    events_executed=1000,
                    wall_seconds=1000 / eps,
                    events_per_sec=eps,
                    peak_rss_kb=4096,
                    alloc_blocks=0,
                    sim_end_time=1,
                    digest="d" * 64,
                )
            },
            path,
        )
        return path

    def test_within_tolerance_passes(self, tmp_path):
        path = self._bench_file(tmp_path, 100_000.0)
        ratio = assert_disabled_overhead(_overhead(99_000.0), bench_path=path)
        assert ratio == pytest.approx(0.99)

    def test_regression_fails(self, tmp_path):
        path = self._bench_file(tmp_path, 100_000.0)
        with pytest.raises(AssertionError, match="regressed"):
            assert_disabled_overhead(_overhead(90_000.0), bench_path=path)

    def test_missing_baseline_raises(self, tmp_path):
        with pytest.raises(ValueError, match="no .* baseline"):
            assert_disabled_overhead(
                _overhead(100_000.0), bench_path=tmp_path / "absent.json"
            )

    def test_identity_and_slowdown_properties(self):
        result = _overhead(100_000.0, traced=80_000.0)
        assert result.identical
        assert result.traced_slowdown_percent == pytest.approx(25.0)
        assert "trace-overhead" in result.row()


@pytest.mark.obs_smoke
def test_measured_disabled_overhead_within_contract():
    """The real gate: instrumented-but-disabled hot paths must keep the
    committed baseline's speed, and tracing must not change behaviour."""
    result = run_trace_overhead(quick=False, repeats=2)
    assert result.identical, "traced and untraced runs must be bit-identical"
    ratio = assert_disabled_overhead(result)
    assert ratio > 0.97


@pytest.mark.obs_smoke
def test_measured_timeline_disabled_overhead_within_contract():
    """Same gate for the timeline plane: a run without a collector must
    keep the committed baseline's speed, and sampling must not move a bit
    of the simulation (the arms share one records digest)."""
    result = run_timeline_overhead(quick=False, repeats=2)
    assert result.identical, "sampled and unsampled runs must be bit-identical"
    assert result.trace_events_emitted > 0, "the sampled arm recorded nothing"
    ratio = assert_disabled_overhead(result)
    assert ratio > 0.97
