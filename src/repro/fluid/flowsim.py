"""Dynamic flow-level simulator for full-scale experiments.

The packet-level simulator is exact but must scale experiments down (fewer
hosts, smaller flows) to run in seconds.  This module adds the standard
*flow-level* abstraction used for large datacenter studies: flows arrive by
a Poisson process, each is assigned a 2-hop path by the scheme under test,
and at any instant every active flow transmits at its **max-min fair**
share of the links it crosses.  The simulation advances from event to event
(arrival or earliest completion), recomputing the rate allocation each
time.

This abstracts away packets, TCP dynamics, and queues — what remains is
exactly the *placement* quality of the load balancing decision, evaluated
at the paper's true scale: the 64-host testbed with unscaled flow sizes
runs in seconds.  Scheme behaviour at this level:

* ``ecmp`` — hash the flow to an uplink (static);
* ``conga`` — pick the uplink minimizing the maximum utilization along the
  path, i.e. CONGA's decision rule with perfect (un-quantized, un-delayed)
  congestion information and one decision per flow.  This is the model of
  §6.1 and an upper bound on what CONGA-Flow can achieve.

The FCT of a flow is its completion time under the evolving max-min
allocation, normalized against the idle-network transfer time.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass

import numpy as np

from repro.net.hashing import stable_hash
from repro.topology.leafspine import LeafSpineConfig
from repro.workloads.distributions import FlowSizeDistribution

#: Link identifiers: ("acc-up", host) / ("acc-down", host) are access links,
#: ("up", leaf, uplink) a leaf uplink, ("down", spine, leaf) the aggregate
#: spine->leaf capacity.
LinkId = tuple


@dataclass
class ActiveFlow:
    """A flow in flight: remaining bytes plus its (fixed) path links."""

    flow_id: int
    src: int
    dst: int
    size: int
    remaining: float
    links: tuple[LinkId, ...]
    started_at: float
    rate: float = 0.0


@dataclass
class CompletedFlow:
    """Completion record with the idle-network baseline."""

    flow_id: int
    src: int
    dst: int
    size: int
    fct: float
    ideal_fct: float

    @property
    def normalized_fct(self) -> float:
        """FCT over the idle-network optimum."""
        return self.fct / self.ideal_fct


class FlowLevelFabric:
    """Capacity bookkeeping for a Leaf-Spine fabric at flow granularity."""

    def __init__(self, config: LeafSpineConfig) -> None:
        self.config = config
        self.capacity: dict[LinkId, float] = {}
        hosts = config.num_leaves * config.hosts_per_leaf
        for host in range(hosts):
            self.capacity[("acc-up", host)] = float(config.host_rate_bps)
            self.capacity[("acc-down", host)] = float(config.host_rate_bps)
        for leaf in range(config.num_leaves):
            for uplink in range(config.uplinks_per_leaf):
                self.capacity[("up", leaf, uplink)] = float(
                    config.fabric_rate_bps
                )
        for spine in range(config.num_spines):
            for leaf in range(config.num_leaves):
                self.capacity[("down", spine, leaf)] = float(
                    config.links_per_pair * config.fabric_rate_bps
                )

    def leaf_of(self, host: int) -> int:
        """The leaf serving ``host``."""
        return host // self.config.hosts_per_leaf

    def spine_of_uplink(self, uplink: int) -> int:
        """The spine an uplink index points at (pod-major ordering)."""
        return uplink // self.config.links_per_pair

    def fail_link(self, leaf: int, spine: int, which: int = 0) -> None:
        """Remove one parallel link of a leaf-spine pair (Figure 7b)."""
        uplink = spine * self.config.links_per_pair + which
        key = ("up", leaf, uplink)
        if key not in self.capacity:
            raise ValueError(f"no such uplink: leaf {leaf} uplink {uplink}")
        del self.capacity[key]
        down = ("down", spine, leaf)
        self.capacity[down] -= float(self.config.fabric_rate_bps)
        if self.capacity[down] <= 0:
            del self.capacity[down]

    def candidate_uplinks(self, src_leaf: int, dst_leaf: int) -> list[int]:
        """Uplinks at ``src_leaf`` with a surviving path to ``dst_leaf``."""
        found = []
        for uplink in range(self.config.uplinks_per_leaf):
            if ("up", src_leaf, uplink) not in self.capacity:
                continue
            spine = self.spine_of_uplink(uplink)
            if ("down", spine, dst_leaf) in self.capacity:
                found.append(uplink)
        return found

    def path_links(self, src: int, dst: int, uplink: int) -> tuple[LinkId, ...]:
        """The link set of host->host traffic via ``uplink``."""
        src_leaf, dst_leaf = self.leaf_of(src), self.leaf_of(dst)
        if src_leaf == dst_leaf:
            return (("acc-up", src), ("acc-down", dst))
        spine = self.spine_of_uplink(uplink)
        return (
            ("acc-up", src),
            ("up", src_leaf, uplink),
            ("down", spine, dst_leaf),
            ("acc-down", dst),
        )

    def ideal_fct(self, src: int, dst: int, size: int) -> float:
        """Idle-network transfer time (seconds)."""
        links = self.path_links(src, dst, uplink=0)
        bottleneck = min(
            self.capacity.get(link, float(self.config.fabric_rate_bps))
            for link in links
            if link[0].startswith("acc")
        )
        return size * 8.0 / bottleneck


def max_min_rates(
    flows: list[ActiveFlow], capacity: dict[LinkId, float]
) -> None:
    """Assign each flow its max-min fair rate (progressive filling).

    Mutates ``flow.rate`` in place.  O(links x flows) per saturation round;
    concurrency in these experiments is a few hundred flows, which keeps
    full-scale runs in seconds.
    """
    remaining = dict(capacity)
    link_members: dict[LinkId, set[int]] = {}
    for index, flow in enumerate(flows):
        flow.rate = 0.0
        for link in flow.links:
            link_members.setdefault(link, set()).add(index)
    active = set(range(len(flows)))
    while active:
        bottleneck_share = None
        for link, members in link_members.items():
            users = len(members & active)
            if users == 0:
                continue
            share = remaining[link] / users
            if bottleneck_share is None or share < bottleneck_share:
                bottleneck_share = share
        if bottleneck_share is None:
            break
        frozen = set()
        for link, members in link_members.items():
            users = members & active
            if not users:
                continue
            if remaining[link] / len(users) <= bottleneck_share * (1 + 1e-9):
                frozen |= users
        if not frozen:
            frozen = set(active)  # numerical safety
        for index in active:
            flows[index].rate += bottleneck_share
        for link, members in link_members.items():
            users = members & active
            remaining[link] -= bottleneck_share * len(users)
        active -= frozen


class FlowLevelSimulation:
    """Event-driven flow-level run of one (scheme, workload, load) point."""

    def __init__(
        self,
        config: LeafSpineConfig,
        workload: FlowSizeDistribution,
        load: float,
        *,
        scheme: str = "conga",
        num_flows: int = 2000,
        seed: int = 1,
        failed_links: list[tuple[int, int, int]] | None = None,
        clients: list[int] | None = None,
    ) -> None:
        if scheme not in ("ecmp", "conga"):
            raise ValueError(f"unknown flow-level scheme {scheme!r}")
        if not 0 < load:
            raise ValueError(f"load must be positive, got {load}")
        self.fabric = FlowLevelFabric(config)
        for leaf, spine, which in failed_links or []:
            self.fabric.fail_link(leaf, spine, which)
        self.workload = workload
        self.load = load
        self.scheme = scheme
        self.num_flows = num_flows
        self.rng = np.random.default_rng(seed)
        hosts = config.num_leaves * config.hosts_per_leaf
        self.clients = sorted(clients) if clients is not None else list(range(hosts))
        self.completed: list[CompletedFlow] = []
        self._ids = itertools.count(1)

        uplink_capacity = config.leaf_uplink_capacity_bps
        clients_per_leaf = max(
            1, len(self.clients) // len({self.fabric.leaf_of(c) for c in self.clients})
        )
        per_client_bps = load * uplink_capacity / clients_per_leaf
        self.arrival_rate = (
            per_client_bps * len(self.clients) / (8.0 * workload.mean())
        )

    # -- placement -----------------------------------------------------------------

    def _place(self, src: int, dst: int, flow_id: int,
               active: list[ActiveFlow]) -> tuple[LinkId, ...]:
        src_leaf, dst_leaf = self.fabric.leaf_of(src), self.fabric.leaf_of(dst)
        if src_leaf == dst_leaf:
            return self.fabric.path_links(src, dst, uplink=0)
        candidates = self.fabric.candidate_uplinks(src_leaf, dst_leaf)
        if not candidates:
            raise RuntimeError(f"no path from leaf {src_leaf} to {dst_leaf}")
        if self.scheme == "ecmp":
            key = stable_hash((src, dst, flow_id, 80, "tcp"), salt=src_leaf)
            choice = candidates[key % len(candidates)]
        else:
            # CONGA: minimize the max utilization along the candidate path,
            # computed from the current offered load (rates of active flows).
            loads: dict[LinkId, float] = {}
            for flow in active:
                for link in flow.links:
                    loads[link] = loads.get(link, 0.0) + flow.rate
            best_metric, best = None, None
            order = self.rng.permutation(len(candidates))
            for position in order:
                uplink = candidates[int(position)]
                links = self.fabric.path_links(src, dst, uplink)
                metric = max(
                    loads.get(link, 0.0) / self.fabric.capacity[link]
                    for link in links
                    if not link[0].startswith("acc")
                )
                if best_metric is None or metric < best_metric:
                    best_metric, best = metric, uplink
            choice = best
        return self.fabric.path_links(src, dst, choice)

    # -- main loop -------------------------------------------------------------------

    def run(self) -> list[CompletedFlow]:
        """Run to completion of all flows; returns the completion records."""
        arrivals = np.cumsum(
            self.rng.exponential(1.0 / self.arrival_rate, size=self.num_flows)
        )
        hosts = self.fabric.config.num_leaves * self.fabric.config.hosts_per_leaf
        sizes = self.workload.sample_many(self.rng, self.num_flows)
        active: list[ActiveFlow] = []
        now = 0.0
        next_arrival = 0
        while active or next_arrival < self.num_flows:
            max_min_rates(active, self.fabric.capacity)
            # Earliest completion among active flows.
            completion_at = None
            completing = None
            for flow in active:
                if flow.rate <= 0:
                    continue
                eta = now + flow.remaining * 8.0 / flow.rate
                if completion_at is None or eta < completion_at:
                    completion_at, completing = eta, flow
            arrival_at = (
                arrivals[next_arrival] if next_arrival < self.num_flows else None
            )
            if arrival_at is not None and (
                completion_at is None or arrival_at <= completion_at
            ):
                elapsed = arrival_at - now
                self._drain(active, elapsed)
                now = arrival_at
                active.append(self._spawn(next_arrival, sizes, now, active))
                next_arrival += 1
            else:
                assert completing is not None and completion_at is not None
                elapsed = completion_at - now
                self._drain(active, elapsed)
                now = completion_at
                active.remove(completing)
                self.completed.append(
                    CompletedFlow(
                        flow_id=completing.flow_id,
                        src=completing.src,
                        dst=completing.dst,
                        size=completing.size,
                        fct=now - completing.started_at,
                        ideal_fct=self.fabric.ideal_fct(
                            completing.src, completing.dst, completing.size
                        ),
                    )
                )
        return self.completed

    def _spawn(
        self, index: int, sizes: np.ndarray, now: float,
        active: list[ActiveFlow],
    ) -> ActiveFlow:
        client = self.clients[int(self.rng.integers(len(self.clients)))]
        client_leaf = self.fabric.leaf_of(client)
        other = [
            leaf
            for leaf in range(self.fabric.config.num_leaves)
            if leaf != client_leaf
        ]
        server_leaf = other[int(self.rng.integers(len(other)))]
        per_leaf = self.fabric.config.hosts_per_leaf
        server = server_leaf * per_leaf + int(self.rng.integers(per_leaf))
        size = int(sizes[index])
        flow_id = next(self._ids)
        # Data flows server -> client, as in the paper's traffic generator.
        links = self._place(server, client, flow_id, active)
        return ActiveFlow(
            flow_id=flow_id,
            src=server,
            dst=client,
            size=size,
            remaining=float(size),
            links=links,
            started_at=now,
        )

    @staticmethod
    def _drain(active: list[ActiveFlow], elapsed: float) -> None:
        if elapsed <= 0:
            return
        for flow in active:
            flow.remaining = max(0.0, flow.remaining - flow.rate * elapsed / 8.0)


def run_flow_level(
    config: LeafSpineConfig,
    workload: FlowSizeDistribution,
    load: float,
    **kwargs,
) -> list[CompletedFlow]:
    """Convenience wrapper: build, run, and return completion records."""
    simulation = FlowLevelSimulation(config, workload, load, **kwargs)
    return simulation.run()


__all__ = [
    "ActiveFlow",
    "CompletedFlow",
    "FlowLevelFabric",
    "FlowLevelSimulation",
    "max_min_rates",
    "run_flow_level",
]
