"""Flow-level (fluid) models: static rate analysis and dynamic simulation."""

from repro.fluid.flowsim import (
    ActiveFlow,
    CompletedFlow,
    FlowLevelFabric,
    FlowLevelSimulation,
    max_min_rates,
    run_flow_level,
)
from repro.fluid.model import (
    FluidAllocation,
    FluidDemand,
    FluidLeafSpine,
    FluidLink,
    conga_split,
    ecmp_split,
    figure2_demand,
    figure2_network,
    figure3_network,
    local_aware_split,
)

__all__ = [
    "ActiveFlow",
    "CompletedFlow",
    "FlowLevelFabric",
    "FlowLevelSimulation",
    "FluidAllocation",
    "max_min_rates",
    "run_flow_level",
    "FluidDemand",
    "FluidLeafSpine",
    "FluidLink",
    "conga_split",
    "ecmp_split",
    "figure2_demand",
    "figure2_network",
    "figure3_network",
    "local_aware_split",
]
