"""Flow-level (fluid) model of a Leaf-Spine fabric.

The motivating examples of §2.4 (Figures 2 and 3) are steady-state
arguments about *rates*, not packets.  This module reproduces them with a
fluid model: demands are splittable flows between leaf pairs, paths are the
two-hop leaf→spine→leaf routes, and three allocators mirror the schemes:

* :func:`ecmp_split` — equal split across paths (what hashing achieves in
  expectation over many flows), then TCP backpressure caps each path at its
  bottleneck capacity share;
* :func:`local_aware_split` — the §2.4 strawman: the source leaf equalizes
  *delivered* rate across its uplinks (that is the fixed point of moving
  traffic toward locally-idle links while TCP slows the capped paths);
* :func:`conga_split` — CONGA's fixed point: minimize the maximum link
  utilization (the bottleneck-game equilibrium of §6.1, computed here by
  best-response iteration).

Throughputs are then evaluated with max-min fair sharing per link, the
standard fluid abstraction of long-lived TCP flows.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class FluidLink:
    """A directed link with a capacity (arbitrary consistent rate units)."""

    src: str
    dst: str
    capacity: float

    def __post_init__(self) -> None:
        if self.capacity <= 0:
            raise ValueError(f"capacity must be positive: {self}")

    @property
    def key(self) -> tuple[str, str]:
        """Dictionary key for the link."""
        return (self.src, self.dst)


@dataclass(frozen=True)
class FluidDemand:
    """``rate`` units of traffic from ``src`` leaf to ``dst`` leaf."""

    src: str
    dst: str
    rate: float

    def __post_init__(self) -> None:
        if self.rate <= 0:
            raise ValueError(f"demand must be positive: {self}")


class FluidLeafSpine:
    """A Leaf-Spine graph for fluid analysis.

    Paths between two leaves are the 2-hop routes through each spine that
    has a link from the source leaf and to the destination leaf.  Asymmetry
    is expressed by giving links different capacities (or omitting them).
    """

    def __init__(self, links: list[FluidLink]) -> None:
        if not links:
            raise ValueError("need at least one link")
        self.links: dict[tuple[str, str], FluidLink] = {}
        for link in links:
            if link.key in self.links:
                raise ValueError(f"duplicate link {link.key}")
            self.links[link.key] = link
        self.leaves = sorted(
            {n for key in self.links for n in key if n.startswith("L")}
        )
        self.spines = sorted(
            {n for key in self.links for n in key if n.startswith("S")}
        )

    def paths(self, src: str, dst: str) -> list[tuple[str, ...]]:
        """All 2-hop paths (src, spine, dst) that exist in the graph."""
        found = []
        for spine in self.spines:
            if (src, spine) in self.links and (spine, dst) in self.links:
                found.append((src, spine, dst))
        if not found:
            raise ValueError(f"no path from {src} to {dst}")
        return found

    @staticmethod
    def path_links(path: tuple[str, ...]) -> list[tuple[str, str]]:
        """The (src, dst) link keys along a path."""
        return list(zip(path, path[1:]))


@dataclass
class FluidAllocation:
    """Per-demand path splits plus the derived link loads and throughputs."""

    network: FluidLeafSpine
    demands: list[FluidDemand]
    # splits[i][path] = offered rate of demand i on that path
    splits: list[dict[tuple[str, ...], float]] = field(default_factory=list)

    def link_loads(self) -> dict[tuple[str, str], float]:
        """Total offered rate per link."""
        loads: dict[tuple[str, str], float] = {
            key: 0.0 for key in self.network.links
        }
        for split in self.splits:
            for path, rate in split.items():
                for key in FluidLeafSpine.path_links(path):
                    loads[key] += rate
        return loads

    def max_utilization(self) -> float:
        """The network bottleneck B(f): max link load over capacity."""
        loads = self.link_loads()
        return max(
            loads[key] / link.capacity for key, link in self.network.links.items()
        )

    def delivered_throughput(self) -> list[float]:
        """Per-demand delivered rate under max-min fair sharing.

        Each path's offered rate is treated as one fluid "flow"; link
        bandwidth is shared max-min among the flows crossing it, except a
        flow never receives more than it offers (TCP cannot exceed the
        application's demand on that path).
        """
        flows: list[tuple[int, tuple[str, ...], float]] = []
        for index, split in enumerate(self.splits):
            for path, rate in split.items():
                if rate > 0:
                    flows.append((index, path, rate))
        rates = _max_min_fair(self.network, flows)
        delivered = [0.0] * len(self.splits)
        for (index, _path, _offered), rate in zip(flows, rates):
            delivered[index] += rate
        return delivered

    def total_throughput(self) -> float:
        """Sum of delivered rates across demands."""
        return sum(self.delivered_throughput())


def _max_min_fair(
    network: FluidLeafSpine, flows: list[tuple[int, tuple[str, ...], float]]
) -> list[float]:
    """Progressive-filling max-min fairness with per-flow rate caps."""
    remaining_capacity = {
        key: link.capacity for key, link in network.links.items()
    }
    rate = [0.0] * len(flows)
    active = set(range(len(flows)))
    # Map links to the flows crossing them.
    link_flows: dict[tuple[str, str], set[int]] = {
        key: set() for key in network.links
    }
    for i, (_d, path, _cap) in enumerate(flows):
        for key in FluidLeafSpine.path_links(path):
            link_flows[key].add(i)

    while active:
        # The next bottleneck: the link whose fair share is smallest, or a
        # flow hitting its offered-rate cap first.
        increments = []
        for key, members in link_flows.items():
            users = members & active
            if users:
                increments.append(remaining_capacity[key] / len(users))
        cap_limited = min(
            (flows[i][2] - rate[i] for i in active), default=float("inf")
        )
        step = min(min(increments, default=float("inf")), cap_limited)
        if step == float("inf"):
            break
        if step <= 1e-12:
            step = 0.0
        for i in active:
            rate[i] += step
        for key in link_flows:
            users = link_flows[key] & active
            remaining_capacity[key] -= step * len(users)
        newly_frozen = set()
        for i in active:
            if flows[i][2] - rate[i] <= 1e-9:
                newly_frozen.add(i)  # reached offered rate
        for key, members in link_flows.items():
            if remaining_capacity[key] <= 1e-9:
                newly_frozen |= members & active
        if not newly_frozen:
            break  # numerical safety
        active -= newly_frozen
    return rate


# ---------------------------------------------------------------------------
# The three allocators.
# ---------------------------------------------------------------------------


def ecmp_split(
    network: FluidLeafSpine, demands: list[FluidDemand]
) -> FluidAllocation:
    """Equal split across the available paths (hashing in expectation)."""
    allocation = FluidAllocation(network, demands)
    for demand in demands:
        paths = network.paths(demand.src, demand.dst)
        share = demand.rate / len(paths)
        allocation.splits.append({path: share for path in paths})
    return allocation


def local_aware_split(
    network: FluidLeafSpine, demands: list[FluidDemand]
) -> FluidAllocation:
    """The §2.4 local-congestion strawman's fixed point.

    A local scheme moves flowlets toward the uplink whose *local* DRE reads
    lowest.  TCP caps the delivered rate of paths through remote
    bottlenecks; those uplinks then look idle locally, attracting yet more
    traffic until the delivered rate is equal on every uplink.  The fixed
    point is therefore: delivered rate r on each of the k uplinks, with r
    no larger than any path's bottleneck capacity share.
    """
    allocation = FluidAllocation(network, demands)
    # Compute, per demand, the equal-rate fixed point: r = min over paths of
    # that path's achievable rate when all paths carry the same rate.  This
    # solver handles each demand independently, which matches the scenarios
    # of Figure 2 (single demand); for shared links the fixed point is
    # computed by iterating to convergence.
    splits: list[dict[tuple[str, ...], float]] = []
    for demand in demands:
        paths = network.paths(demand.src, demand.dst)
        splits.append({path: demand.rate / len(paths) for path in paths})
    for _ in range(1000):
        # Evaluate per-path delivered rate under current splits.
        loads: dict[tuple[str, str], float] = {k: 0.0 for k in network.links}
        for split in splits:
            for path, rate in split.items():
                for key in FluidLeafSpine.path_links(path):
                    loads[key] += rate
        new_splits = []
        changed = False
        for demand, split in zip(demands, splits):
            paths = list(split)
            # Per-path cap: scale the path's rate by the worst over-utilized
            # link on it (TCP backpressure).
            delivered = {}
            for path in paths:
                scale = 1.0
                for key in FluidLeafSpine.path_links(path):
                    utilization = loads[key] / network.links[key].capacity
                    if utilization > 1.0:
                        scale = min(scale, 1.0 / utilization)
                delivered[path] = split[path] * scale
            # Local scheme: equalize delivered rate; total offered stays at
            # min(demand, k * min_delivered) because faster uplinks are
            # throttled down to the slowest by the balancing rule.
            slowest = min(delivered.values())
            target = min(demand.rate / len(paths), slowest)
            new_split = {path: target for path in paths}
            if any(abs(new_split[p] - split[p]) > 1e-9 for p in paths):
                changed = True
            new_splits.append(new_split)
        splits = new_splits
        if not changed:
            break
    allocation.splits = splits
    return allocation


def conga_split(
    network: FluidLeafSpine,
    demands: list[FluidDemand],
    *,
    iterations: int = 2000,
    step: float = 0.02,
) -> FluidAllocation:
    """CONGA's fixed point: per-demand best-response on path bottlenecks.

    Each demand repeatedly shifts a small fraction of its traffic from its
    worst path (highest max-utilization) to its best, which is exactly
    CONGA's flowlet-by-flowlet rebalancing in the fluid limit.  The
    iteration converges to a Nash flow of the bottleneck routing game of
    §6.1; for single-demand scenarios like Figure 2 this equalizes path
    utilizations.
    """
    allocation = FluidAllocation(network, demands)
    splits: list[dict[tuple[str, ...], float]] = []
    for demand in demands:
        paths = network.paths(demand.src, demand.dst)
        splits.append({path: demand.rate / len(paths) for path in paths})
    for _ in range(iterations):
        loads: dict[tuple[str, str], float] = {k: 0.0 for k in network.links}
        for split in splits:
            for path, rate in split.items():
                for key in FluidLeafSpine.path_links(path):
                    loads[key] += rate
        for demand, split in zip(demands, splits):
            paths = list(split)
            metric = {}
            for path in paths:
                metric[path] = max(
                    loads[key] / network.links[key].capacity
                    for key in FluidLeafSpine.path_links(path)
                )
            worst = max(paths, key=lambda p: (metric[p], split[p]))
            best = min(paths, key=lambda p: metric[p])
            if metric[worst] - metric[best] < 1e-9:
                continue
            # Move exactly enough to equalize the two paths' bottleneck
            # utilizations (first-order), clipped by the available traffic
            # and the configured step so shared links converge stably.
            worst_key = max(
                FluidLeafSpine.path_links(worst),
                key=lambda k: loads[k] / network.links[k].capacity,
            )
            best_key = max(
                FluidLeafSpine.path_links(best),
                key=lambda k: loads[k] / network.links[k].capacity,
            )
            c_worst = network.links[worst_key].capacity
            c_best = network.links[best_key].capacity
            equalizing = (metric[worst] - metric[best]) / (
                1.0 / c_worst + 1.0 / c_best
            )
            moved = min(split[worst], equalizing, step * demand.rate * 10)
            split[worst] -= moved
            split[best] += moved
            for key in FluidLeafSpine.path_links(worst):
                loads[key] -= moved
            for key in FluidLeafSpine.path_links(best):
                loads[key] += moved
    allocation.splits = splits
    return allocation


# ---------------------------------------------------------------------------
# The concrete scenarios of Figures 2 and 3.
# ---------------------------------------------------------------------------


def figure2_network() -> FluidLeafSpine:
    """The asymmetric 2-leaf / 2-spine scenario of Figure 2.

    All links are 80 Gbps except (S1, L1), which lost half its capacity
    (e.g. one member of a 2×40 Gbps aggregate failed).
    """
    return FluidLeafSpine(
        [
            FluidLink("L0", "S0", 80.0),
            FluidLink("S0", "L1", 80.0),
            FluidLink("L0", "S1", 80.0),
            FluidLink("S1", "L1", 40.0),
        ]
    )


def figure2_demand() -> list[FluidDemand]:
    """100 Gbps of TCP traffic from L0 to L1."""
    return [FluidDemand("L0", "L1", 100.0)]


def figure3_network() -> FluidLeafSpine:
    """The 3-leaf / 2-spine scenario of Figure 3 (all links 40 Gbps).

    L0 connects only to S0 (its link to S1 is absent), which is what makes
    the right split for L1→L2 depend on how much L0→L2 traffic exists.
    """
    return FluidLeafSpine(
        [
            FluidLink("L0", "S0", 40.0),
            FluidLink("L1", "S0", 40.0),
            FluidLink("L1", "S1", 40.0),
            FluidLink("S0", "L2", 40.0),
            FluidLink("S1", "L2", 40.0),
        ]
    )


__all__ = [
    "FluidAllocation",
    "FluidDemand",
    "FluidLeafSpine",
    "FluidLink",
    "conga_split",
    "ecmp_split",
    "figure2_demand",
    "figure2_network",
    "figure3_network",
    "local_aware_split",
]
