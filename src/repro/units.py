"""Unit helpers and clock conventions.

All simulation time is kept in **integer nanoseconds** so that event ordering
is exact and runs are bit-for-bit reproducible.  All link rates are kept in
**bits per second**, and all data sizes in **bytes**.  The helpers below are
the only places where human-friendly units (Gbps, MB, microseconds, ...) are
converted to the internal representation; use them everywhere instead of raw
multipliers.
"""

from __future__ import annotations

# ---------------------------------------------------------------------------
# Time: integer nanoseconds.
# ---------------------------------------------------------------------------

NANOSECOND = 1
MICROSECOND = 1_000
MILLISECOND = 1_000_000
SECOND = 1_000_000_000


def nanoseconds(value: float) -> int:
    """Convert a value in nanoseconds to clock ticks (identity, rounded)."""
    return round(value)


def microseconds(value: float) -> int:
    """Convert microseconds to integer-nanosecond clock ticks."""
    return round(value * MICROSECOND)


def milliseconds(value: float) -> int:
    """Convert milliseconds to integer-nanosecond clock ticks."""
    return round(value * MILLISECOND)


def seconds(value: float) -> int:
    """Convert seconds to integer-nanosecond clock ticks."""
    return round(value * SECOND)


def to_seconds(ticks: int) -> float:
    """Convert integer-nanosecond clock ticks to float seconds."""
    return ticks / SECOND


def to_microseconds(ticks: int) -> float:
    """Convert integer-nanosecond clock ticks to float microseconds."""
    return ticks / MICROSECOND


def to_milliseconds(ticks: int) -> float:
    """Convert integer-nanosecond clock ticks to float milliseconds."""
    return ticks / MILLISECOND


# ---------------------------------------------------------------------------
# Rates: bits per second.
# ---------------------------------------------------------------------------

BPS = 1
KBPS = 1_000
MBPS = 1_000_000
GBPS = 1_000_000_000


def gbps(value: float) -> int:
    """Convert gigabits per second to bits per second."""
    return round(value * GBPS)


def mbps(value: float) -> int:
    """Convert megabits per second to bits per second."""
    return round(value * MBPS)


def to_gbps(rate_bps: float) -> float:
    """Convert bits per second to gigabits per second."""
    return rate_bps / GBPS


# ---------------------------------------------------------------------------
# Sizes: bytes.
# ---------------------------------------------------------------------------

BYTE = 1
KILOBYTE = 1_000
MEGABYTE = 1_000_000
GIGABYTE = 1_000_000_000
KIBIBYTE = 1_024
MEBIBYTE = 1_048_576


def kilobytes(value: float) -> int:
    """Convert kilobytes (10^3 bytes) to bytes."""
    return round(value * KILOBYTE)


def megabytes(value: float) -> int:
    """Convert megabytes (10^6 bytes) to bytes."""
    return round(value * MEGABYTE)


def gigabytes(value: float) -> int:
    """Convert gigabytes (10^9 bytes) to bytes."""
    return round(value * GIGABYTE)


def transmission_time(size_bytes: int, rate_bps: int) -> int:
    """Serialization delay, in integer nanoseconds, of ``size_bytes`` at ``rate_bps``.

    Rounds up so that a byte is never transmitted in zero time on a finite
    link; this keeps event ordering sane for tiny packets on fast links.
    """
    if rate_bps <= 0:
        raise ValueError(f"link rate must be positive, got {rate_bps}")
    bits = size_bytes * 8
    return -(-bits * SECOND // rate_bps)  # ceiling division


def bytes_at_rate(rate_bps: int, duration_ticks: int) -> int:
    """How many whole bytes a link at ``rate_bps`` carries in ``duration_ticks``."""
    return (rate_bps * duration_ticks) // (8 * SECOND)
