"""Command-line interface for quick experiments.

Examples::

    conga-repro fct --scheme conga --workload data-mining --load 0.6
    conga-repro fct --scheme ecmp --load 0.6 --fail-link 1,1,0
    conga-repro fct --scheme conga --fault link_down@0.1s:l1-s1 \\
        --fault link_up@1.5s:l1-s1
    conga-repro sweep --schemes ecmp,conga --loads 0.3,0.5,0.7 --seeds 1,2
    conga-repro sweep --scenario scenarios/fig9_enterprise.yaml
    conga-repro sweep --scenario scenarios/tiny_smoke.yaml --telemetry sweep.ndjson
    conga-repro report --scenario scenarios/caft_recovery.yaml --timeline
    conga-repro scenario validate scenarios/*.yaml
    conga-repro scenario run scenarios/tiny_smoke.yaml --backend subprocess
    conga-repro incast --transport mptcp --fan-in 31 --mtu 9000
    conga-repro bench --quick
    conga-repro lint src --format json
    conga-repro poa

(Equivalently: ``python -m repro.cli ...``.)

The ``fct``/``sweep``/``trace``/``metrics`` commands share one spec
loader: every one of them accepts either point flags or
``--scenario file.yaml``, and the single-point commands require the
scenario to compile to exactly one point.
"""

from __future__ import annotations

import argparse
import sys

from repro.units import megabytes, milliseconds, seconds, to_milliseconds
from repro.workloads import WORKLOADS


class _CliError(Exception):
    """A user-facing CLI failure: printed to stderr, exits with ``code``."""

    def __init__(self, message: str, code: int = 2) -> None:
        super().__init__(message)
        self.code = code


def _parse_failed_links(values: list[str] | None) -> list[tuple[int, int, int]]:
    failed = []
    for spec in values or []:
        leaf, spine, which = (int(x) for x in spec.split(","))
        failed.append((leaf, spine, which))
    return failed


def _parse_faults(values: list[str] | None) -> tuple:
    from repro.faults import parse_fault

    return tuple(parse_fault(text) for text in values or [])


def _load_scenario(path: str):
    """Load a scenario file, converting loader errors to CLI errors."""
    from repro.scenarios import ScenarioError, load_scenario

    try:
        return load_scenario(path)
    except ScenarioError as exc:
        raise _CliError(str(exc)) from exc


def _resolve_point_spec(args: argparse.Namespace):
    """The shared spec loader behind fct/trace/metrics.

    Builds one :class:`ExperimentSpec` either from the point flags or —
    when ``--scenario`` is given — by compiling the scenario file, which
    must then describe exactly one point.
    """
    from repro.apps import ExperimentSpec

    if getattr(args, "scenario", None):
        scenario = _load_scenario(args.scenario)
        specs = scenario.compile()
        if len(specs) != 1:
            raise _CliError(
                f"scenario {scenario.name!r} compiles to {len(specs)} points; "
                "this command needs exactly one (use 'sweep --scenario' or "
                "'scenario run' for grids)"
            )
        return specs[0]
    return ExperimentSpec(
        scheme=args.scheme,
        workload=args.workload,
        load=args.load,
        num_flows=args.flows,
        size_scale=args.size_scale,
        seed=args.seed,
        failed_links=_parse_failed_links(args.fail_link),
        faults=_parse_faults(args.fault),
    )


def _resolve_sweep_specs(args: argparse.Namespace):
    """The shared grid loader behind sweep: flags or a scenario file.

    Returns ``(title, specs)``; scheme names are resolved before any
    point executes so typos fail fast.
    """
    from repro.apps import ExperimentSpec, UnknownSchemeError, get_scheme
    from repro.runner import sweep_grid

    if getattr(args, "scenario", None):
        scenario = _load_scenario(args.scenario)
        return scenario.name, scenario.compile()

    schemes = [s.strip() for s in args.schemes.split(",")]
    try:
        for name in schemes:  # fail fast, before any point executes
            get_scheme(name)
    except UnknownSchemeError as exc:
        raise _CliError(str(exc)) from exc

    template = ExperimentSpec(
        scheme="ecmp",  # placeholder; the grid overwrites scheme/load/seed
        workload=args.workload,
        load=0.6,
        num_flows=args.flows,
        size_scale=args.size_scale,
        faults=_parse_faults(args.fault),
    )
    specs = sweep_grid(
        template,
        schemes=schemes,
        loads=[float(x) for x in args.loads.split(",")],
        seeds=[int(x) for x in args.seeds.split(",")],
    )
    return f"{args.workload}, {args.flows} flows/point", specs


def _make_backend(args: argparse.Namespace):
    """An explicit Backend for ``--backend subprocess``, else None (local)."""
    if getattr(args, "backend", "local") != "subprocess":
        return None
    from repro.runner import SubprocessBackend

    return SubprocessBackend(
        workers=args.workers if args.workers else 2,
        retries=args.retries,
    )


def _cmd_fct(args: argparse.Namespace) -> int:
    from repro.faults import fault_window

    spec = _resolve_point_spec(args)
    result = spec.run()
    summary = result.summary
    print(f"scheme={spec.scheme} workload={spec.workload} load={spec.load:g}")
    print(f"  flows completed:        {result.completed}/{result.arrivals}")
    print(f"  mean FCT (normalized):  {summary.mean_normalized:.2f}")
    print(f"  p95  FCT (normalized):  {summary.p95_normalized:.2f}")
    print(f"  p99  FCT (normalized):  {summary.p99_normalized:.2f}")
    if summary.count_small:
        print(f"  small flows (<100KB):   {summary.count_small} "
              f"(mean FCT {to_milliseconds(round(summary.mean_fct_small)):.3f} ms)")
    if summary.count_large:
        print(f"  large flows (>10MB):    {summary.count_large} "
              f"(mean FCT {to_milliseconds(round(summary.mean_fct_large)):.3f} ms)")
    print(f"  fabric drops:           {result.fabric_drops}")
    if spec.faults:
        print(f"  faults injected:        {len(spec.faults)} "
              f"(retransmits {result.retransmissions}, "
              f"RTO timeouts {result.timeouts})")
        if fault_window(spec.faults) is not None:
            deg = result.degradation()
            print(f"  goodput retained:       {deg.goodput_retained:.2f} "
                  f"of pre-fault level during the degraded window")
            if deg.recovery_time is not None:
                print(f"  recovery time:          "
                      f"{to_milliseconds(deg.recovery_time):.3f} ms after restore")
    print(f"  simulator:              {result.events_executed} events, "
          f"{result.events_per_sec / 1e3:.0f}k events/sec")
    return 0


def _print_sweep_table(title: str, sweep) -> None:
    from repro.analysis import print_table
    from repro.runner import PointFailure

    rows = []
    for p in sweep:
        if isinstance(p, PointFailure):
            rows.append(
                (p.scheme, p.load, p.spec.seed, float("nan"), float("nan"),
                 f"FAILED:{p.kind}", "fail")
            )
            continue
        rows.append(
            (
                p.scheme,
                p.load,
                p.spec.seed,
                p.summary.mean_normalized if p.summary else float("nan"),
                p.summary.p99_normalized if p.summary else float("nan"),
                f"{p.completed}/{p.arrivals}",
                "cache" if p.from_cache else "run",
            )
        )
    print_table(
        f"sweep: {title}",
        ["scheme", "load", "seed", "mean FCT", "p99 FCT", "done", "source"],
        rows,
    )
    print(
        f"\n{len(sweep)} points in {sweep.wall_seconds:.1f}s "
        f"({sweep.executed} executed, {sweep.cached} cached, "
        f"{sweep.events_executed} simulator events)"
    )
    for failure in sweep.failures:
        print(
            f"FAILED {failure.spec.label()}: {failure.kind} "
            f"after {failure.attempts} attempt(s): {failure.error}",
            file=sys.stderr,
        )


def _run_sweep_from_args(specs, args: argparse.Namespace, telemetry=None):
    """One ``run_sweep`` call wired to the shared execution flags."""
    from repro.runner import run_sweep

    return run_sweep(
        specs,
        workers=args.workers,
        cache=None if args.no_cache else args.cache_dir,
        progress=print if args.verbose else None,
        timeout=args.timeout,
        retries=args.retries,
        backend=_make_backend(args),
        telemetry=telemetry,
    )


def _run_and_report(title: str, specs, args: argparse.Namespace) -> int:
    sweep = _run_sweep_from_args(specs, args, telemetry=args.telemetry)
    _print_sweep_table(title, sweep)
    return 1 if sweep.failures else 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    title, specs = _resolve_sweep_specs(args)
    return _run_and_report(title, specs, args)


def _cmd_trace(args: argparse.Namespace) -> int:
    from repro.apps import ObsSpec

    spec = _resolve_point_spec(args)
    obs_kwargs: dict = {}
    if args.categories is not None:
        obs_kwargs["categories"] = args.categories
    if args.limit is not None:
        obs_kwargs["buffer_limit"] = args.limit
    if obs_kwargs or spec.obs is None:
        try:
            spec = spec.with_(obs=ObsSpec(**obs_kwargs))
        except ValueError as exc:
            raise _CliError(str(exc)) from exc
    result = spec.run()
    trace = result.trace
    assert trace is not None  # the spec carried an ObsSpec
    if args.format == "chrome":
        import json

        text = json.dumps(trace.chrome_trace(), indent=1) + "\n"
    else:
        text = "".join(line + "\n" for line in trace.ndjson_lines())
    if args.output == "-":
        sys.stdout.write(text)
    else:
        with open(args.output, "w") as handle:
            handle.write(text)
    print(
        f"trace: {trace.emitted} events emitted, {len(trace)} retained, "
        f"{trace.dropped} dropped (categories: {','.join(trace.categories)}; "
        f"digest {trace.digest()[:12]})",
        file=sys.stderr,
    )
    return 0


def _cmd_metrics(args: argparse.Namespace) -> int:
    from repro.apps import ImbalanceMonitorSpec

    spec = _resolve_point_spec(args)
    if args.imbalance_leaf is not None:
        spec = spec.with_(
            imbalance_monitor=ImbalanceMonitorSpec(leaf=args.imbalance_leaf)
        )
    result = spec.run()
    report = result.metrics
    assert report is not None  # fresh runs always carry a report
    print(f"metrics: {spec.label()}")
    try:
        lines = report.lines(args.select)
    except KeyError as exc:
        raise _CliError(str(exc.args[0])) from exc
    for line in lines:
        print(f"  {line}")
    return 0


def _with_timeline(spec):
    """Attach a default-cadence timeline collector to one spec."""
    import dataclasses

    from repro.apps import ObsSpec
    from repro.obs import TimelineSpec

    if spec.obs is not None and spec.obs.timeline is not None:
        return spec
    if spec.obs is None:
        # categories=() keeps the ring buffer silent: the point pays for
        # the timeline samples it asked for, not for full tracing too.
        obs = ObsSpec(categories=(), timeline=TimelineSpec())
    else:
        obs = dataclasses.replace(spec.obs, timeline=TimelineSpec())
    return spec.with_(obs=obs)


def _report_points(sweep):
    """Split one sweep into (successful points, failures)."""
    from repro.runner import PointFailure

    return [p for p in sweep if not isinstance(p, PointFailure)], list(
        sweep.failures
    )


def _cmd_report(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro.analysis import recovery_report, sweep_report
    from repro.runner import TelemetrySink

    recovery_cells = None
    scenario = None
    if getattr(args, "scenario", None):
        scenario = _load_scenario(args.scenario)
        recovery_cells = scenario.params.get("cells")

    # One sink across every sweep this report runs (a recovery matrix is
    # baseline + one sweep per cell; a fresh path per call would truncate).
    sink = TelemetrySink(args.telemetry) if args.telemetry else None
    try:
        return _render_report(args, scenario, recovery_cells, sink)
    finally:
        if sink is not None:
            sink.close()


def _render_report(args, scenario, recovery_cells, sink) -> int:
    from pathlib import Path

    from repro.analysis import recovery_report, sweep_report

    failures = []
    if recovery_cells:
        # Recovery-matrix page: the scenario's own grid is the healthy
        # baseline; each params.cells entry reruns it under that fault
        # set (the same protocol as the caft recovery benchmark).
        from repro.faults import parse_fault
        from repro.runner import sweep_grid

        assert scenario is not None
        title = args.title or f"{scenario.name} — recovery matrix"
        specs = scenario.compile()
        if args.timeline:
            specs = [_with_timeline(s) for s in specs]
        baseline, failed = _report_points(_run_sweep_from_args(
            specs, args, telemetry=sink
        ))
        failures += failed
        cells = []
        for cell in recovery_cells:
            try:
                faults = tuple(parse_fault(text) for text in cell["faults"])
            except (KeyError, TypeError, ValueError) as exc:
                raise _CliError(
                    f"bad recovery cell {cell!r} in scenario params: {exc}"
                ) from exc
            cell_specs = sweep_grid(
                scenario.template.with_(faults=faults),
                schemes=scenario.schemes,
                seeds=scenario.seed_list(),
            )
            if args.timeline:
                cell_specs = [_with_timeline(s) for s in cell_specs]
            points, failed = _report_points(_run_sweep_from_args(
                cell_specs, args, telemetry=sink
            ))
            failures += failed
            cells.append((cell, points))
        html = recovery_report(
            title=title,
            baseline=baseline,
            cells=cells,
            subtitle=f"scenario {scenario.name}; "
                     f"{len(cells)} fault cells × "
                     f"{len(scenario.schemes or (scenario.template.scheme,))} "
                     f"schemes",
            timelines=args.timeline,
        )
    else:
        title, specs = _resolve_sweep_specs(args)
        if args.timeline:
            specs = [_with_timeline(s) for s in specs]
        sweep = _run_sweep_from_args(specs, args, telemetry=sink)
        points, failures = _report_points(sweep)
        if not points:
            raise _CliError("every point failed; nothing to report", code=1)
        html = sweep_report(
            points,
            title=args.title or f"sweep: {title}",
            subtitle=f"{len(points)} points "
                     f"({sweep.executed} executed, {sweep.cached} cached)",
            failures=failures,
            timelines=args.timeline,
        )
    out = Path(args.output)
    out.write_text(html)
    print(f"wrote {out} ({len(html) / 1024:.0f} KiB)")
    for failure in failures:
        print(
            f"FAILED {failure.spec.label()}: {failure.kind}: {failure.error}",
            file=sys.stderr,
        )
    return 1 if failures else 0


def _cmd_scenario_validate(args: argparse.Namespace) -> int:
    from repro.scenarios import ScenarioError, load_scenario

    failed = False
    for path in args.files:
        try:
            scenario = load_scenario(path)
            first = scenario.grid_digest()
            if first != scenario.grid_digest():
                raise ScenarioError(
                    "grid digest is unstable across compilations",
                    source=str(path),
                )
        except ScenarioError as exc:
            print(f"error: {exc}", file=sys.stderr)
            failed = True
            continue
        print(
            f"ok {path}: {scenario.name} "
            f"({scenario.point_count()} points, grid digest {first[:12]})"
        )
    return 2 if failed else 0


def _cmd_scenario_compile(args: argparse.Namespace) -> int:
    scenario = _load_scenario(args.file)
    print(f"scenario: {scenario.name}")
    if scenario.description:
        print(f"  {scenario.description}")
    specs = scenario.compile()
    for spec in specs:
        print(f"  {spec.content_hash()[:16]}  {spec.label()}")
    print(f"{len(specs)} points, grid digest {scenario.grid_digest()[:16]}, "
          f"scenario hash {scenario.content_hash()[:16]}")
    return 0


def _cmd_scenario_run(args: argparse.Namespace) -> int:
    scenario = _load_scenario(args.file)
    return _run_and_report(scenario.name, scenario.compile(), args)


def _add_point_arguments(
    cmd: argparse.ArgumentParser, *, positional_scheme: bool = False
) -> None:
    """The shared single-point argument set (fct/trace/metrics)."""
    from repro.apps.experiment import SCHEMES

    if positional_scheme:
        cmd.add_argument("scheme", nargs="?", default="conga",
                         choices=sorted(SCHEMES))
    else:
        cmd.add_argument("--scheme", default="conga", choices=sorted(SCHEMES))
    cmd.add_argument("--workload", default="enterprise",
                     choices=sorted(WORKLOADS))
    cmd.add_argument("--load", type=float, default=0.6)
    cmd.add_argument("--flows", type=int, default=200)
    cmd.add_argument("--size-scale", type=float, default=0.05)
    cmd.add_argument("--seed", type=int, default=1)
    cmd.add_argument("--fail-link", action="append",
                     metavar="LEAF,SPINE,WHICH",
                     help="fail a leaf-spine link (repeatable)")
    cmd.add_argument("--fault", action="append", metavar="FAULT",
                     help="schedule a fault event, e.g. link_down@0.1s:l0-s1, "
                          "link_degrade@5ms:l1-s0=0.25, blackout@1ms:spine1+2ms; "
                          "core-tier targets (multipod fabrics) use s1-c0, "
                          "core1, or random_downs@0:core=3 "
                          "(repeatable; see repro.faults.parse_fault)")
    cmd.add_argument("--scenario", default=None, metavar="FILE",
                     help="load the point from a scenario YAML instead of "
                          "flags (must compile to exactly one point)")


def _add_sweep_grid_arguments(cmd: argparse.ArgumentParser) -> None:
    """The shared grid definition flags (``sweep`` and ``report``)."""
    cmd.add_argument("--schemes", default="ecmp,conga",
                     help="comma-separated scheme names")
    cmd.add_argument("--workload", default="enterprise",
                     choices=sorted(WORKLOADS))
    cmd.add_argument("--loads", default="0.3,0.5,0.7",
                     help="comma-separated offered loads")
    cmd.add_argument("--seeds", default="1",
                     help="comma-separated seeds (one point per seed)")
    cmd.add_argument("--flows", type=int, default=200)
    cmd.add_argument("--size-scale", type=float, default=0.05)
    cmd.add_argument("--fault", action="append", metavar="FAULT",
                     help="schedule a fault event on every point "
                          "(repeatable; same grammar as fct --fault)")
    cmd.add_argument("--scenario", default=None, metavar="FILE",
                     help="compile the grid from a scenario YAML "
                          "(overrides the template/grid flags above)")


def _add_sweep_run_arguments(cmd: argparse.ArgumentParser) -> None:
    """Execution knobs shared by ``sweep`` and ``scenario run``."""
    from repro.runner import BACKENDS, DEFAULT_CACHE_DIR

    cmd.add_argument("--workers", type=int, default=None,
                     help="worker processes (default: one per CPU for the "
                          "local backend, 2 for subprocess; 0 = serial)")
    cmd.add_argument("--backend", default="local", choices=sorted(BACKENDS),
                     help="execution backend: in-process pool or worker "
                          "subprocesses over a stdin/stdout JSON protocol")
    cmd.add_argument("--cache-dir", default=DEFAULT_CACHE_DIR)
    cmd.add_argument("--no-cache", action="store_true",
                     help="always execute, never read or write the cache")
    cmd.add_argument("--verbose", action="store_true",
                     help="print per-point timing as results arrive")
    cmd.add_argument("--timeout", type=float, default=None,
                     help="per-point wall-clock budget in seconds "
                          "(local parallel backend only)")
    cmd.add_argument("--retries", type=int, default=1,
                     help="re-executions granted to a failing point "
                          "(default 1); failures become table rows, "
                          "not crashes")
    cmd.add_argument("--telemetry", default=None, metavar="PATH",
                     help="stream structured sweep health events "
                          "(cache hits, completions, failures, worker "
                          "restarts) to this NDJSON file, tailable while "
                          "the sweep runs")


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="conga-repro",
        description="CONGA (SIGCOMM 2014) reproduction experiments",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    fct = sub.add_parser("fct", help="run one FCT experiment point")
    _add_point_arguments(fct)
    fct.set_defaults(func=_cmd_fct)

    sweep = sub.add_parser(
        "sweep", help="run a cached, parallel scheme x load x seed sweep"
    )
    _add_sweep_grid_arguments(sweep)
    _add_sweep_run_arguments(sweep)
    sweep.set_defaults(func=_cmd_sweep)

    report = sub.add_parser(
        "report",
        help="run a sweep (or recovery scenario) and render a "
             "self-contained HTML report",
    )
    _add_sweep_grid_arguments(report)
    report.add_argument("--output", default="report.html", metavar="PATH",
                        help="where to write the HTML document "
                             "(default report.html; no external assets)")
    report.add_argument("--title", default=None,
                        help="report page title (default: derived from "
                             "the grid or scenario name)")
    report.add_argument("--timeline", action="store_true",
                        help="collect sim-time timelines (port "
                             "utilization heatmaps, reroute/loss rates, "
                             "per-interval goodput) and render them; "
                             "changes spec hashes, so timeline points "
                             "cache separately")
    _add_sweep_run_arguments(report)
    report.set_defaults(func=_cmd_report)

    scenario = sub.add_parser(
        "scenario", help="validate, compile, and run scenario YAML files"
    )
    scen_sub = scenario.add_subparsers(dest="scenario_command", required=True)
    validate = scen_sub.add_parser(
        "validate", help="load and fully validate scenario files"
    )
    validate.add_argument("files", nargs="+", metavar="FILE")
    validate.set_defaults(func=_cmd_scenario_validate)
    compile_ = scen_sub.add_parser(
        "compile", help="print a scenario's spec grid and content hashes"
    )
    compile_.add_argument("file", metavar="FILE")
    compile_.set_defaults(func=_cmd_scenario_compile)
    scen_run = scen_sub.add_parser(
        "run", help="compile a scenario and run its grid as a sweep"
    )
    scen_run.add_argument("file", metavar="FILE")
    _add_sweep_run_arguments(scen_run)
    scen_run.set_defaults(func=_cmd_scenario_run)

    incast = sub.add_parser("incast", help="run an Incast micro-benchmark")
    incast.add_argument("--transport", default="tcp", choices=["tcp", "mptcp"])
    incast.add_argument("--fan-in", type=int, default=31)
    incast.add_argument("--min-rto-ms", type=int, default=200)
    incast.add_argument("--mtu", type=int, default=1500, choices=[1500, 9000])
    incast.add_argument("--repeats", type=int, default=3)
    incast.add_argument("--seed", type=int, default=1)
    incast.set_defaults(func=_cmd_incast)

    bench = sub.add_parser(
        "bench", help="run the tracked kernel performance benchmarks"
    )
    from repro.perf import BENCH_FILENAME

    bench.add_argument("--quick", action="store_true",
                       help="smaller specs for CI smoke runs")
    bench.add_argument("--specs", default=None,
                       help="comma-separated subset of bench spec names")
    bench.add_argument("--output", default=BENCH_FILENAME,
                       help=f"benchmark file to update (default {BENCH_FILENAME})")
    bench.add_argument("--set-baseline", action="store_true",
                       help="freeze this run's numbers as the comparison baseline")
    bench.add_argument("--compare", nargs=2, metavar=("OLD", "NEW"), default=None,
                       help="compare two benchmark files instead of running; "
                            "exits non-zero on any >3%% events/sec regression")
    bench.add_argument("--tolerance", type=float, default=None, metavar="FRAC",
                       help="regression tolerance for --compare as a fraction "
                            "(default 0.03; raise on noisy shared runners)")
    bench.add_argument("--profile", default=None, metavar="PSTATS",
                       help="run the specs under cProfile and dump pstats "
                            "to this path (skips updating the benchmark file)")
    bench.set_defaults(func=_cmd_bench)

    trace = sub.add_parser(
        "trace", help="run one experiment point with structured tracing on"
    )
    _add_point_arguments(trace, positional_scheme=True)
    trace.add_argument("--categories", default=None,
                       help="comma-separated trace categories "
                            "(default: all; see repro.obs.CATEGORIES)")
    trace.add_argument("--limit", type=int, default=None,
                       help="trace ring-buffer capacity "
                            "(oldest events drop beyond this)")
    trace.add_argument("--format", default="ndjson",
                       choices=["ndjson", "chrome"],
                       help="ndjson (one event per line) or a Chrome "
                            "trace_event JSON document for about://tracing")
    trace.add_argument("--output", default="-", metavar="PATH",
                       help="write the trace here instead of stdout")
    trace.set_defaults(func=_cmd_trace)

    metrics = sub.add_parser(
        "metrics", help="run one experiment point and print its metrics report"
    )
    _add_point_arguments(metrics, positional_scheme=True)
    metrics.add_argument("--imbalance-leaf", type=int, default=None,
                         metavar="LEAF",
                         help="attach a throughput-imbalance monitor to this "
                              "leaf (adds monitor.imbalance.* metrics)")
    metrics.add_argument("--select", default="", metavar="FAMILIES",
                         help="comma-separated dotted-name families to "
                              "print, exact names or prefixes (e.g. "
                              "'kernel.,lb.caft.' or 'tcp.rto_timeouts'); "
                              "unknown selections are an error")
    metrics.set_defaults(func=_cmd_metrics)

    poa = sub.add_parser("poa", help="evaluate the Theorem 1 PoA gadget")
    poa.set_defaults(func=_cmd_poa)

    from repro.lint.cli import add_callgraph_parser, add_lint_parser

    add_lint_parser(sub)
    add_callgraph_parser(sub)
    return parser


def _cmd_incast(args: argparse.Namespace) -> int:
    from repro.apps import IncastClient, mptcp_flow_factory, tcp_flow_factory
    from repro.lb import CongaSelector, EcmpSelector
    from repro.sim import Simulator
    from repro.topology import build_leaf_spine, scaled_testbed
    from repro.transport import TcpParams

    sim = Simulator(seed=args.seed)
    fabric = build_leaf_spine(
        sim, scaled_testbed(hosts_per_leaf=32, host_queue_bytes=8_000_000)
    )
    if args.transport == "tcp":
        fabric.finalize(CongaSelector.factory())
    else:
        fabric.finalize(EcmpSelector.factory())
    params = TcpParams(
        min_rto=milliseconds(args.min_rto_ms),
        initial_rto=milliseconds(max(args.min_rto_ms, 1)),
        mss=args.mtu - 40,
    )
    factory = (
        tcp_flow_factory(params)
        if args.transport == "tcp"
        else mptcp_flow_factory(params)
    )
    servers = [h for h in sorted(fabric.hosts) if h != 0][: args.fan_in]
    client = IncastClient(
        sim, fabric, client=0, servers=servers, flow_factory=factory,
        request_bytes=megabytes(10), repeats=args.repeats,
    )
    client.start()
    sim.run(until=seconds(120))
    if not client.finished:
        print("incast did not finish within the deadline (collapsed)")
        return 1
    percent = client.result.throughput_percent(fabric.host(0).nic.rate_bps)
    print(f"transport={args.transport} fan_in={args.fan_in} "
          f"minRTO={args.min_rto_ms}ms MTU={args.mtu}")
    print(f"  effective throughput: {percent:.1f}% of line rate")
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    from repro.perf import (
        compare_bench,
        comparison_failed,
        load_bench_file,
        profile_bench,
        run_bench,
        write_bench_file,
    )

    if args.compare is not None:
        old_path, new_path = args.compare
        old_payload = load_bench_file(old_path)
        new_payload = load_bench_file(new_path)
        for path, payload in ((old_path, old_payload), (new_path, new_payload)):
            if payload is None:
                print(f"error: cannot read benchmark file {path}", file=sys.stderr)
                return 2
        if args.tolerance is not None:
            rows = compare_bench(old_payload, new_payload, tolerance=args.tolerance)
        else:
            rows = compare_bench(old_payload, new_payload)
        print(f"bench compare: {old_path} -> {new_path}")
        for row in rows:
            print(row.row())
        if comparison_failed(rows):
            print("\nFAIL: regression or invalid comparison detected",
                  file=sys.stderr)
            return 1
        print("\nOK: no spec regressed beyond tolerance")
        return 0

    specs = (
        [s.strip() for s in args.specs.split(",")] if args.specs else None
    )
    try:
        if args.profile is not None:
            results = profile_bench(
                args.profile, quick=args.quick, specs=specs, progress=print
            )
            print(f"\nwrote profile to {args.profile} "
                  "(profiled ev/s are ~3-4x low; benchmark file left untouched)")
            return 0
        results = run_bench(quick=args.quick, specs=specs, progress=print)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    payload = write_bench_file(
        results,
        args.output,
        quick=args.quick,
        set_baseline=args.set_baseline,
    )
    print(f"\nwrote {args.output}")
    for name, ratio in sorted(payload["speedup"].items()):
        print(f"  {name:<24} {ratio:.2f}x vs baseline events/sec")
    return 0


def _cmd_poa(args: argparse.Namespace) -> int:
    from repro.theory import figure17_gadget

    game, nash = figure17_gadget()
    print("Theorem 1 worst-case gadget (3 leaves x 3 spines, 6 unit demands)")
    print(f"  Nash network bottleneck:    {game.network_bottleneck(nash):.3f}")
    print(f"  optimal network bottleneck: {game.optimal_bottleneck():.3f}")
    print(f"  Price of Anarchy:           {game.price_of_anarchy(nash):.3f}")
    print(f"  flow is a Nash equilibrium: {game.is_nash(nash)}")
    return 0


def main(argv: list[str] | None = None) -> int:
    """CLI entry point."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except _CliError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return exc.code


if __name__ == "__main__":
    sys.exit(main())
