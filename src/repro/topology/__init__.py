"""Topology builders: Leaf-Spine fabrics and failure injection."""

from repro.topology.multipod import (
    CoreSwitch,
    MultiPodConfig,
    MultiPodFabric,
    PodSpineSwitch,
    build_multipod,
)
from repro.topology.leafspine import (
    LeafSpineConfig,
    TESTBED,
    build_leaf_spine,
    fail_random_links,
    scaled_testbed,
)

__all__ = [
    "CoreSwitch",
    "LeafSpineConfig",
    "MultiPodConfig",
    "MultiPodFabric",
    "PodSpineSwitch",
    "build_multipod",
    "TESTBED",
    "build_leaf_spine",
    "fail_random_links",
    "scaled_testbed",
]
