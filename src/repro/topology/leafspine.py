"""Leaf-Spine (2-tier Clos) topology builder.

Builds the fabrics used throughout the evaluation: the 64-server testbed of
Figure 7 (2 leaves × 2 spines, 32×10 Gbps hosts per leaf, 2×40 Gbps parallel
uplinks per leaf-spine pair, 2:1 oversubscription), the 6-leaf × 4-spine
288-port fabric of Figure 16, and arbitrary (leaves, spines, hosts, rates)
combinations for the large-scale sweeps of Figure 15.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.params import CongaParams, DEFAULT_PARAMS
from repro.net.node import Host
from repro.net.port import DEFAULT_PROPAGATION_DELAY, connect
from repro.sim import Simulator
from repro.switch.fabric import Fabric
from repro.switch.leaf import LeafSwitch
from repro.switch.spine import SpineSwitch
from repro.units import gbps


@dataclass(frozen=True)
class LeafSpineConfig:
    """Parameters of a 2-tier Leaf-Spine fabric.

    ``links_per_pair`` parallel links join each (leaf, spine) pair — the
    testbed uses 2×40 Gbps, which is what makes single-link failures produce
    *partial* asymmetry (Figure 7(b)) instead of disconnection.
    """

    num_leaves: int = 2
    num_spines: int = 2
    hosts_per_leaf: int = 32
    links_per_pair: int = 2
    host_rate_bps: int = field(default_factory=lambda: gbps(10))
    fabric_rate_bps: int = field(default_factory=lambda: gbps(40))
    host_queue_bytes: int | None = 10_000_000
    fabric_queue_bytes: int | None = 10_000_000
    #: DCTCP-style CE marking threshold at all switch queues (None = off).
    ecn_threshold_bytes: int | None = None
    propagation_delay: int = DEFAULT_PROPAGATION_DELAY
    params: CongaParams = DEFAULT_PARAMS

    def __post_init__(self) -> None:
        if self.num_leaves < 1 or self.num_spines < 1:
            raise ValueError("need at least one leaf and one spine")
        if self.hosts_per_leaf < 1:
            raise ValueError("need at least one host per leaf")
        if self.links_per_pair < 1:
            raise ValueError("need at least one link per leaf-spine pair")

    @property
    def uplinks_per_leaf(self) -> int:
        """Number of uplinks (distinct LBTags) at each leaf."""
        return self.num_spines * self.links_per_pair

    @property
    def leaf_uplink_capacity_bps(self) -> int:
        """Aggregate uplink capacity of one leaf."""
        return self.uplinks_per_leaf * self.fabric_rate_bps

    @property
    def oversubscription(self) -> float:
        """Host capacity over uplink capacity at a leaf (2.0 = "2:1")."""
        return (
            self.hosts_per_leaf * self.host_rate_bps / self.leaf_uplink_capacity_bps
        )


#: The paper's hardware testbed (Figure 7(a)): 64 servers, 2:1 oversubscribed.
TESTBED = LeafSpineConfig()


def scaled_testbed(
    hosts_per_leaf: int = 8,
    host_gbps: float = 10.0,
    fabric_gbps: float | None = None,
    oversubscription: float = 2.0,
    **overrides,
) -> LeafSpineConfig:
    """A smaller testbed-shaped fabric for fast simulation runs.

    Keeps the 2-leaf / 2-spine / 2-links-per-pair shape of Figure 7 with
    fewer hosts so packet-level sweeps finish quickly.  Unless
    ``fabric_gbps`` is given explicitly, the fabric link rate is derived to
    preserve the requested leaf ``oversubscription`` ratio (2:1 in the
    testbed), which is what keeps load levels comparable to the paper's
    axis.  Extra keyword arguments override config fields.
    """
    num_spines = overrides.get("num_spines", 2)
    links_per_pair = overrides.get("links_per_pair", 2)
    if fabric_gbps is None:
        uplinks = num_spines * links_per_pair
        fabric_gbps = hosts_per_leaf * host_gbps / (oversubscription * uplinks)
    return LeafSpineConfig(
        hosts_per_leaf=hosts_per_leaf,
        host_rate_bps=gbps(host_gbps),
        fabric_rate_bps=gbps(fabric_gbps),
        **overrides,
    )


def build_leaf_spine(sim: Simulator, config: LeafSpineConfig = TESTBED) -> Fabric:
    """Construct a Leaf-Spine fabric; call ``fabric.finalize(...)`` after.

    Host ids are assigned ``leaf_id * hosts_per_leaf + i`` so tests can
    address "the k-th server under leaf j" directly.
    """
    fabric = Fabric(sim)
    fabric.spines = [
        SpineSwitch(sim, spine_id, config.params)
        for spine_id in range(config.num_spines)
    ]
    for leaf_id in range(config.num_leaves):
        leaf = LeafSwitch(sim, leaf_id, fabric, config.params)
        fabric.leaves.append(leaf)
        for i in range(config.hosts_per_leaf):
            host_id = leaf_id * config.hosts_per_leaf + i
            host = Host(
                sim,
                host_id,
                nic_rate_bps=config.host_rate_bps,
                nic_queue_capacity=None,  # window-limited senders
            )
            down = leaf.add_host_port(
                host_id,
                config.host_rate_bps,
                config.host_queue_bytes,
                ecn_threshold=config.ecn_threshold_bytes,
            )
            connect(host.nic, down, config.propagation_delay)
            fabric.register_host(host, leaf_id)
        for spine in fabric.spines:
            for _ in range(config.links_per_pair):
                up = leaf.add_uplink(
                    spine,
                    config.fabric_rate_bps,
                    config.fabric_queue_bytes,
                    ecn_threshold=config.ecn_threshold_bytes,
                )
                down = spine.add_leaf_port(
                    leaf_id,
                    config.fabric_rate_bps,
                    config.fabric_queue_bytes,
                    ecn_threshold=config.ecn_threshold_bytes,
                )
                connect(up, down, config.propagation_delay)
    return fabric


#: Re-export of the shared tier-aware helper (see
#: :mod:`repro.topology.failures`); the leaf-tier draw is bit-identical to
#: the implementation that historically lived here.
from repro.topology.failures import fail_random_links  # noqa: E402

__all__ = [
    "LeafSpineConfig",
    "TESTBED",
    "build_leaf_spine",
    "fail_random_links",
    "scaled_testbed",
]
