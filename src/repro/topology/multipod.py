"""Multi-pod (3-tier) Clos topologies — the paper's §7 extension.

The largest datacenters organize the network as multiple *pods*, each a
2-tier Leaf-Spine Clos, joined by a core tier.  §7: CONGA "is beneficial
even in these cases since it balances the traffic within each pod
optimally, which also reduces congestion for inter-pod traffic.  Moreover,
even for inter-pod traffic, CONGA makes better decisions than ECMP at the
first hop."

The model here follows that exactly:

* leaves are unchanged — a leaf's uplinks go to its pod's spines, and its
  CONGA machinery (LBTags, tables, feedback) spans *all* destination
  leaves, intra- or inter-pod;
* pod spines (:class:`PodSpineSwitch`) route intra-pod traffic down as in
  the 2-tier fabric and hash inter-pod traffic across their core uplinks;
* core switches (:class:`CoreSwitch`) route on the destination pod with
  ECMP over the parallel links toward it;
* every fabric link (leaf→spine, spine→core, core→spine, spine→leaf) runs
  a DRE and CE-marks packets, so the leaf-to-leaf feedback loop sees the
  *maximum* congestion along the whole 4-hop inter-pod path — the natural
  generalization the paper sketches.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.dre import DRE
from repro.core.params import CongaParams, DEFAULT_PARAMS
from repro.lb.ecmp import ecmp_hash
from repro.net.node import Host, Node
from repro.net.packet import HEADER_BYTES, Packet
from repro.net.port import DEFAULT_PROPAGATION_DELAY, Port, connect
from repro.overlay.vxlan import VXLAN_OVERHEAD
from repro.sim import Simulator
from repro.switch.fabric import Fabric
from repro.switch.leaf import LeafSwitch
from repro.switch.spine import SpineSwitch
from repro.units import gbps, transmission_time


@dataclass(frozen=True)
class MultiPodConfig:
    """Parameters of a pods-of-Leaf-Spine fabric with a core tier."""

    num_pods: int = 2
    leaves_per_pod: int = 2
    spines_per_pod: int = 2
    hosts_per_leaf: int = 4
    num_cores: int = 2
    links_per_pair: int = 1
    host_rate_bps: int = field(default_factory=lambda: gbps(10))
    fabric_rate_bps: int = field(default_factory=lambda: gbps(10))
    core_rate_bps: int = field(default_factory=lambda: gbps(10))
    host_queue_bytes: int | None = 10_000_000
    fabric_queue_bytes: int | None = 10_000_000
    ecn_threshold_bytes: int | None = None
    propagation_delay: int = DEFAULT_PROPAGATION_DELAY
    params: CongaParams = DEFAULT_PARAMS

    def __post_init__(self) -> None:
        if min(self.num_pods, self.leaves_per_pod, self.spines_per_pod) < 1:
            raise ValueError("need at least one pod, leaf, and spine")
        if self.hosts_per_leaf < 1 or self.num_cores < 1:
            raise ValueError("need at least one host per leaf and one core")


class CoreSwitch(Node):
    """A core switch joining pods; routes on the destination pod."""

    def __init__(
        self,
        sim: Simulator,
        core_id: int,
        fabric: "MultiPodFabric",
        params: CongaParams = DEFAULT_PARAMS,
    ) -> None:
        super().__init__(sim, f"core{core_id}")
        self.core_id = core_id
        self.fabric = fabric
        self.params = params
        self._pod_ports: dict[int, list[int]] = {}
        self.dropped_unroutable = 0

    def add_spine_port(
        self,
        pod: int,
        rate_bps: int,
        queue_capacity: int | None,
        ecn_threshold: int | None = None,
    ) -> Port:
        """Create a port toward a spine in ``pod``, with its DRE."""
        port = self.add_port(
            rate_bps, queue_capacity,
            name=f"{self.name}->pod{pod}", ecn_threshold=ecn_threshold,
        )
        dre = DRE(self.sim, rate_bps, self.params)
        port.on_transmit.append(lambda packet, d=dre: _measure(packet, d))
        self._pod_ports.setdefault(pod, []).append(port.index)
        return port

    def ports_to_pod(self, pod: int) -> list[int]:
        """Indices of up ports toward ``pod``."""
        return [i for i in self._pod_ports.get(pod, []) if self.ports[i].up]

    def receive(self, packet: Packet, port: Port) -> None:
        header = packet.overlay
        if header is None:
            self.dropped_unroutable += 1
            return
        pod = self.fabric.pod_of_leaf(header.dst_leaf)
        candidates = self.ports_to_pod(pod)
        if not candidates:
            self.dropped_unroutable += 1
            return
        index = ecmp_hash(packet.five_tuple, salt=7_000_003 + self.core_id)
        self.ports[candidates[index % len(candidates)]].send(packet)


class PodSpineSwitch(SpineSwitch):
    """A pod spine: 2-tier behaviour plus core uplinks for inter-pod traffic."""

    def __init__(
        self,
        sim: Simulator,
        spine_id: int,
        pod: int,
        fabric: "MultiPodFabric",
        params: CongaParams = DEFAULT_PARAMS,
    ) -> None:
        super().__init__(sim, spine_id, params, name=f"pod{pod}-spine{spine_id}")
        self.pod = pod
        self.fabric = fabric
        self._core_ports: list[int] = []

    def add_core_port(
        self,
        core: CoreSwitch,
        rate_bps: int,
        queue_capacity: int | None,
        ecn_threshold: int | None = None,
    ) -> Port:
        """Create an uplink toward ``core``, with its DRE."""
        port = self.add_port(
            rate_bps, queue_capacity,
            name=f"{self.name}->{core.name}", ecn_threshold=ecn_threshold,
        )
        dre = DRE(self.sim, rate_bps, self.params)
        port.on_transmit.append(lambda packet, d=dre: _measure(packet, d))
        self._core_ports.append(port.index)
        return port

    def up_core_ports(self) -> list[int]:
        """Indices of up core-facing ports."""
        return [i for i in self._core_ports if self.ports[i].up]

    def can_reach(self, leaf_id: int) -> bool:
        """Intra-pod: direct downlink; inter-pod: via any up core link."""
        if self.fabric.pod_of_leaf(leaf_id) == self.pod:
            return super().can_reach(leaf_id)
        return bool(self.up_core_ports())

    def receive(self, packet: Packet, port: Port) -> None:
        header = packet.overlay
        if header is None:
            self.dropped_unroutable += 1
            return
        if self.fabric.pod_of_leaf(header.dst_leaf) == self.pod:
            super().receive(packet, port)
            return
        candidates = self.up_core_ports()
        if not candidates:
            self.dropped_unroutable += 1
            return
        index = ecmp_hash(packet.five_tuple, salt=3_000_017 + self.spine_id)
        self.ports[candidates[index % len(candidates)]].send(packet)


def _measure(packet: Packet, dre: DRE) -> None:
    dre.on_transmit(packet.size)
    header = packet.overlay
    if header is not None:
        header.ce = max(header.ce, dre.metric())


class MultiPodFabric(Fabric):
    """A Fabric with a core tier and a leaf→pod directory."""

    def __init__(self, sim: Simulator, config: MultiPodConfig) -> None:
        super().__init__(sim)
        self.config = config
        self.cores: list[CoreSwitch] = []

    def pod_of_leaf(self, leaf_id: int) -> int:
        """The pod housing ``leaf_id``."""
        return leaf_id // self.config.leaves_per_pod

    def pod_leaves(self, pod: int) -> list[LeafSwitch]:
        """Leaves of ``pod``."""
        per = self.config.leaves_per_pod
        return self.leaves[pod * per : (pod + 1) * per]

    def core_ports(self):
        """All core-switch egress ports."""
        for core in self.cores:
            yield from core.ports

    def fabric_ports(self):
        yield from super().fabric_ports()
        yield from self.core_ports()

    def ideal_fct(self, src: int, dst: int, size: int, mss: int = 1460) -> int:
        src_leaf = self.leaf_of(src)
        dst_leaf = self.leaf_of(dst)
        if self.pod_of_leaf(src_leaf) == self.pod_of_leaf(dst_leaf):
            return super().ideal_fct(src, dst, size, mss)
        # Inter-pod: host -> leaf -> spine -> core -> spine -> leaf -> host.
        fabric_overhead = HEADER_BYTES + VXLAN_OVERHEAD
        hops = [
            (self.hosts[src].nic.rate_bps, HEADER_BYTES),
            (self.config.fabric_rate_bps, fabric_overhead),
            (self.config.core_rate_bps, fabric_overhead),
            (self.config.core_rate_bps, fabric_overhead),
            (self.config.fabric_rate_bps, fabric_overhead),
            (self.leaves[dst_leaf].host_port(dst).rate_bps, HEADER_BYTES),
        ]
        segments = max(1, -(-size // mss))
        stream_time = max(
            transmission_time(size + segments * overhead, rate)
            for rate, overhead in hops
        )
        last = min(size, mss)
        pipeline = sum(
            transmission_time(last + overhead, rate) for rate, overhead in hops[1:]
        )
        return stream_time + pipeline + len(hops) * self.config.propagation_delay


def build_multipod(sim: Simulator, config: MultiPodConfig | None = None) -> MultiPodFabric:
    """Construct a multi-pod fabric; call ``fabric.finalize(...)`` after.

    Leaf ids are global and pod-major; host ids are leaf-major as in the
    2-tier builder.  Every spine connects to every core with
    ``links_per_pair`` parallel links.
    """
    if config is None:
        config = MultiPodConfig()
    fabric = MultiPodFabric(sim, config)
    fabric.cores = [
        CoreSwitch(sim, core_id, fabric, config.params)
        for core_id in range(config.num_cores)
    ]
    leaf_id = 0
    for pod in range(config.num_pods):
        spines = [
            PodSpineSwitch(
                sim, pod * config.spines_per_pod + s, pod, fabric, config.params
            )
            for s in range(config.spines_per_pod)
        ]
        fabric.spines.extend(spines)
        for spine in spines:
            for core in fabric.cores:
                for _ in range(config.links_per_pair):
                    up = spine.add_core_port(
                        core, config.core_rate_bps, config.fabric_queue_bytes,
                        ecn_threshold=config.ecn_threshold_bytes,
                    )
                    down = core.add_spine_port(
                        pod, config.core_rate_bps, config.fabric_queue_bytes,
                        ecn_threshold=config.ecn_threshold_bytes,
                    )
                    connect(up, down, config.propagation_delay)
        for _ in range(config.leaves_per_pod):
            leaf = LeafSwitch(sim, leaf_id, fabric, config.params)
            fabric.leaves.append(leaf)
            for i in range(config.hosts_per_leaf):
                host_id = leaf_id * config.hosts_per_leaf + i
                host = Host(sim, host_id, nic_rate_bps=config.host_rate_bps)
                down = leaf.add_host_port(
                    host_id, config.host_rate_bps, config.host_queue_bytes,
                    ecn_threshold=config.ecn_threshold_bytes,
                )
                connect(host.nic, down, config.propagation_delay)
                fabric.register_host(host, leaf_id)
            for spine in spines:
                for _ in range(config.links_per_pair):
                    up = leaf.add_uplink(
                        spine, config.fabric_rate_bps, config.fabric_queue_bytes,
                        ecn_threshold=config.ecn_threshold_bytes,
                    )
                    down = spine.add_leaf_port(
                        leaf_id, config.fabric_rate_bps, config.fabric_queue_bytes,
                        ecn_threshold=config.ecn_threshold_bytes,
                    )
                    connect(up, down, config.propagation_delay)
            leaf_id += 1
    return fabric


__all__ = [
    "CoreSwitch",
    "MultiPodConfig",
    "MultiPodFabric",
    "PodSpineSwitch",
    "build_multipod",
]
