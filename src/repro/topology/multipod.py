"""Multi-pod (3-tier) Clos topologies — the paper's §7 extension.

The largest datacenters organize the network as multiple *pods*, each a
2-tier Leaf-Spine Clos, joined by a core tier.  §7: CONGA "is beneficial
even in these cases since it balances the traffic within each pod
optimally, which also reduces congestion for inter-pod traffic.  Moreover,
even for inter-pod traffic, CONGA makes better decisions than ECMP at the
first hop."

The model here follows that exactly:

* leaves are unchanged — a leaf's uplinks go to its pod's spines, and its
  CONGA machinery (LBTags, tables, feedback) spans *all* destination
  leaves, intra- or inter-pod;
* pod spines (:class:`PodSpineSwitch`) route intra-pod traffic down as in
  the 2-tier fabric and hash inter-pod traffic across their core uplinks;
* core switches (:class:`CoreSwitch`) route on the destination pod with
  ECMP over the parallel links toward it;
* every fabric link (leaf→spine, spine→core, core→spine, spine→leaf) runs
  a DRE and CE-marks packets, so the leaf-to-leaf feedback loop sees the
  *maximum* congestion along the whole 4-hop inter-pod path — the natural
  generalization the paper sketches.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.dre import DRE
from repro.core.flowlet import FlowletTable
from repro.core.params import CongaParams, DEFAULT_PARAMS
from repro.lb.ecmp import ecmp_hash
from repro.net import port as _port_mod
from repro.net.node import Host, Node
from repro.net.packet import HEADER_BYTES, Packet
from repro.net.port import DEFAULT_PROPAGATION_DELAY, Port, connect, residual_capacity
from repro.obs.events import FaultRerouted
from repro.overlay.vxlan import VXLAN_OVERHEAD
from repro.sim import Simulator
from repro.switch.fabric import Fabric
from repro.switch.leaf import LeafSwitch
from repro.switch.spine import SpineSwitch
from repro.units import gbps, transmission_time


@dataclass(frozen=True)
class MultiPodConfig:
    """Parameters of a pods-of-Leaf-Spine fabric with a core tier."""

    num_pods: int = 2
    leaves_per_pod: int = 2
    spines_per_pod: int = 2
    hosts_per_leaf: int = 4
    num_cores: int = 2
    links_per_pair: int = 1
    host_rate_bps: int = field(default_factory=lambda: gbps(10))
    fabric_rate_bps: int = field(default_factory=lambda: gbps(10))
    core_rate_bps: int = field(default_factory=lambda: gbps(10))
    host_queue_bytes: int | None = 10_000_000
    fabric_queue_bytes: int | None = 10_000_000
    ecn_threshold_bytes: int | None = None
    propagation_delay: int = DEFAULT_PROPAGATION_DELAY
    params: CongaParams = DEFAULT_PARAMS

    def __post_init__(self) -> None:
        if min(self.num_pods, self.leaves_per_pod, self.spines_per_pod) < 1:
            raise ValueError("need at least one pod, leaf, and spine")
        if self.hosts_per_leaf < 1 or self.num_cores < 1:
            raise ValueError("need at least one host per leaf and one core")


class CoreSwitch(Node):
    """A core switch joining pods; routes on the destination pod."""

    def __init__(
        self,
        sim: Simulator,
        core_id: int,
        fabric: "MultiPodFabric",
        params: CongaParams = DEFAULT_PARAMS,
    ) -> None:
        super().__init__(sim, f"core{core_id}")
        self.core_id = core_id
        self.fabric = fabric
        self.params = params
        self.dres: list[DRE] = []
        self._pod_ports: dict[int, list[int]] = {}
        self.dropped_unroutable = 0

    def add_spine_port(
        self,
        pod: int,
        rate_bps: int,
        queue_capacity: int | None,
        ecn_threshold: int | None = None,
    ) -> Port:
        """Create a port toward a spine in ``pod``, with its DRE."""
        port = self.add_port(
            rate_bps, queue_capacity,
            name=f"{self.name}->pod{pod}", ecn_threshold=ecn_threshold,
        )
        dre = DRE(self.sim, rate_bps, self.params, name=port.name)
        self.dres.append(dre)
        # Fused DRE hook, bound directly (same idiom as the 2-tier
        # switches): decay + increment + CE stamp in one call, and the
        # estimator hangs off the port so rate changes (LinkDegrade via
        # Port.set_rate) retarget it.
        port.on_transmit.append(dre.measure)
        port.dre = dre
        self._pod_ports.setdefault(pod, []).append(port.index)
        return port

    def ports_to_pod(self, pod: int) -> list[int]:
        """Indices of up ports toward ``pod``."""
        return [i for i in self._pod_ports.get(pod, []) if self.ports[i].up]

    def pod_health(self, pod: int) -> float:
        """Residual capacity toward ``pod`` as a fraction of nominal.

        Down, black-holed, and degraded downlinks all reduce it — the
        core's contribution to a path's liveness weight under ``caft``.
        """
        return residual_capacity(
            self.ports[index] for index in self._pod_ports.get(pod, ())
        )

    def receive(self, packet: Packet, port: Port) -> None:
        header = packet.overlay
        if header is None:
            self.dropped_unroutable += 1
            return
        pod = self.fabric.pod_of_leaf(header.dst_leaf)
        candidates = self.ports_to_pod(pod)
        if not candidates:
            self.dropped_unroutable += 1
            return
        index = ecmp_hash(packet.five_tuple, salt=7_000_003 + self.core_id)
        self.ports[candidates[index % len(candidates)]].send(packet)


class PodSpineSwitch(SpineSwitch):
    """A pod spine: 2-tier behaviour plus core uplinks for inter-pod traffic."""

    def __init__(
        self,
        sim: Simulator,
        spine_id: int,
        pod: int,
        fabric: "MultiPodFabric",
        params: CongaParams = DEFAULT_PARAMS,
    ) -> None:
        super().__init__(sim, spine_id, params, name=f"pod{pod}-spine{spine_id}")
        self.pod = pod
        self.fabric = fabric
        self._core_ports: list[int] = []
        self._core_of: dict[int, CoreSwitch] = {}
        self._core_route_cache: list[int] | None = None
        self._core_route_epoch = -1
        # Fault-aware core load balancing (the caft scheme): installed by
        # enable_fault_aware_core_lb, off by default so ecmp/conga keep the
        # paper's blind first-hop hashing at this tier.
        self._fault_aware = False
        self._flowlets: FlowletTable | None = None
        self._lb_rng = None
        self.fault_reroutes = 0

    def add_core_port(
        self,
        core: CoreSwitch,
        rate_bps: int,
        queue_capacity: int | None,
        ecn_threshold: int | None = None,
    ) -> Port:
        """Create an uplink toward ``core``, with its DRE."""
        port = self.add_port(
            rate_bps, queue_capacity,
            name=f"{self.name}->{core.name}", ecn_threshold=ecn_threshold,
        )
        dre = DRE(self.sim, rate_bps, self.params, name=port.name)
        self.dres.append(dre)
        # Fused hook + port.dre, matching add_leaf_port: one call per
        # packet, and LinkDegrade's rate change retargets the estimator.
        port.on_transmit.append(dre.measure)
        port.dre = dre
        self._core_ports.append(port.index)
        self._core_of[port.index] = core
        # Core wiring changes inter-pod reachability (leaf candidate caches
        # consult can_reach), so bump the global epoch like add_leaf_port.
        _port_mod._bump_topology_epoch()
        return port

    def up_core_ports(self) -> list[int]:
        """Indices of up core-facing ports (cached per topology epoch)."""
        if self._core_route_epoch != _port_mod._topology_epoch:
            self._core_route_cache = None
            self._core_route_epoch = _port_mod._topology_epoch
        cached = self._core_route_cache
        if cached is None:
            cached = [i for i in self._core_ports if self.ports[i].up]
            self._core_route_cache = cached
        return cached

    def core_uplink_ports(self, core_id: int) -> list[Port]:
        """This spine's ports toward core ``core_id``, in build order."""
        return [
            self.ports[index]
            for index in self._core_ports
            if self._core_of[index].core_id == core_id
        ]

    def core_uplinks(self) -> list[Port]:
        """All core-facing ports of this spine, in build order."""
        return [self.ports[index] for index in self._core_ports]

    def can_reach(self, leaf_id: int) -> bool:
        """Intra-pod: direct downlink; inter-pod: via any up core link."""
        if self.fabric.pod_of_leaf(leaf_id) == self.pod:
            return super().can_reach(leaf_id)
        return bool(self.up_core_ports())

    def path_health(self, leaf_id: int) -> float:
        """Residual capacity toward ``leaf_id`` across this spine's paths.

        Intra-pod this is the 2-tier downlink health; inter-pod each core
        uplink contributes its own residual fraction *times* the core's
        health toward the destination pod, so a spine→core black hole, a
        dead core switch, or a browned-out core→pod link all shrink it.
        """
        pod = self.fabric.pod_of_leaf(leaf_id)
        if pod == self.pod:
            return super().path_health(leaf_id)
        nominal = 0
        effective = 0.0
        for index in self._core_ports:
            port = self.ports[index]
            nominal += port.nominal_rate_bps
            effective += (
                port.residual_fraction()
                * self._core_of[index].pod_health(pod)
                * port.nominal_rate_bps
            )
        return effective / nominal if nominal else 0.0

    def enable_fault_aware_core_lb(self, params: CongaParams | None = None) -> None:
        """Replace blind inter-pod ECMP with caft's weighted flowlet choice.

        Installed by the ``caft`` scheme's post-setup hook.  Inter-pod
        traffic then picks, per flowlet, the core uplink minimizing the
        local DRE metric divided by the path's residual capacity — so a
        black-holed or degraded spine→core link repels new flowlets even
        though the leaf's 2-tier feedback loop cannot see it.  Tie-breaks
        draw from the dedicated ``caft-spine-{id}`` stream.
        """
        self._fault_aware = True
        self._flowlets = FlowletTable(self.sim, params or self.params)
        self._lb_rng = self.sim.rng(f"caft-spine-{self.spine_id}")

    def _choose_core_port(self, packet: Packet, dst_leaf: int, candidates: list[int]) -> int:
        """caft's core-uplink choice: min DRE metric over residual health."""
        pod = self.fabric.pod_of_leaf(dst_leaf)
        entry = self._flowlets.lookup(packet.five_tuple)
        if entry.valid and entry.port in candidates:
            return entry.port
        ports = self.ports
        metrics: list[int] = []
        healths: list[float] = []
        for index in candidates:
            port = ports[index]
            metrics.append(port.dre.metric())
            healths.append(
                port.residual_fraction() * self._core_of[index].pod_health(pod)
            )
        # Same scoring rule as the leaf-level CaftSelector: the congestion
        # metric scaled by residual capacity (idle degraded uplinks keep
        # CONGA's optimistic 0; dead ones sink to inf).
        scores = [
            metric / health if health > 0.0 else float("inf")
            for metric, health in zip(metrics, healths)
        ]
        best = min(scores)
        ties = [c for c, s in zip(candidates, scores) if s == best]
        previous = entry.port
        if previous in ties:
            # Same stickiness as §3.5: a flowlet only moves when a
            # strictly better core uplink exists.
            choice = previous
        else:
            choice = ties[int(self._lb_rng.integers(len(ties)))]
        self._flowlets.install(entry, choice)
        congestion_best = min(metrics)
        chosen_metric = metrics[candidates.index(choice)]
        if chosen_metric > congestion_best:
            # Liveness weighting overrode the congestion argmin: the
            # pure-CONGA choice would have steered into degraded capacity.
            self.fault_reroutes += 1
            tracer = self.sim.tracer
            if tracer is not None and tracer.fault:
                congestion_choice = candidates[metrics.index(congestion_best)]
                tracer.emit(
                    FaultRerouted(
                        time=self.sim.now,
                        node=self.name,
                        dst_leaf=dst_leaf,
                        flow_id=packet.flow_id,
                        chosen=choice,
                        congestion_choice=congestion_choice,
                        candidates=tuple(candidates),
                        metrics=tuple(metrics),
                        healths=tuple(healths),
                    )
                )
        return choice

    def receive(self, packet: Packet, port: Port) -> None:
        header = packet.overlay
        if header is None:
            self.dropped_unroutable += 1
            return
        if self.fabric.pod_of_leaf(header.dst_leaf) == self.pod:
            super().receive(packet, port)
            return
        candidates = self.up_core_ports()
        if not candidates:
            self.dropped_unroutable += 1
            return
        if self._fault_aware:
            choice = self._choose_core_port(packet, header.dst_leaf, candidates)
            self.ports[choice].send(packet)
            return
        index = ecmp_hash(packet.five_tuple, salt=3_000_017 + self.spine_id)
        self.ports[candidates[index % len(candidates)]].send(packet)


class MultiPodFabric(Fabric):
    """A Fabric with a core tier and a leaf→pod directory."""

    def __init__(self, sim: Simulator, config: MultiPodConfig) -> None:
        super().__init__(sim)
        self.config = config
        self.cores: list[CoreSwitch] = []

    def pod_of_leaf(self, leaf_id: int) -> int:
        """The pod housing ``leaf_id``."""
        return leaf_id // self.config.leaves_per_pod

    def pod_leaves(self, pod: int) -> list[LeafSwitch]:
        """Leaves of ``pod``."""
        per = self.config.leaves_per_pod
        return self.leaves[pod * per : (pod + 1) * per]

    def core_ports(self):
        """All core-switch egress ports."""
        for core in self.cores:
            yield from core.ports

    def spine_core_ports(self):
        """All spine-side core-uplink ports, in build order."""
        for spine in self.spines:
            yield from spine.core_uplinks()

    def fabric_ports(self):
        yield from super().fabric_ports()
        yield from self.core_ports()

    # -- failure injection (core tier) ----------------------------------------

    def core_uplink_ports(self, spine_id: int, core_id: int) -> list[Port]:
        """Spine-side ports of the (possibly parallel) links spine↔core."""
        if not 0 <= spine_id < len(self.spines):
            raise ValueError(f"no spine {spine_id} in this fabric")
        if not 0 <= core_id < len(self.cores):
            raise ValueError(f"no core {core_id} in this fabric")
        return self.spines[spine_id].core_uplink_ports(core_id)

    def fail_core_link(self, spine_id: int, core_id: int, which: int = 0) -> Port:
        """Fail the ``which``-th parallel link between a spine and a core.

        Returns the failed (spine-side) port so tests can restore it.
        """
        ports = self.core_uplink_ports(spine_id, core_id)
        if which >= len(ports):
            raise ValueError(
                f"spine{spine_id}<->core{core_id} has {len(ports)} links, "
                f"cannot fail link {which}"
            )
        ports[which].fail()
        return ports[which]

    def restore_core_link(self, spine_id: int, core_id: int, which: int = 0) -> Port:
        """Restore the ``which``-th parallel link between a spine and a core.

        Returns the restored (spine-side) port.
        """
        ports = self.core_uplink_ports(spine_id, core_id)
        if which >= len(ports):
            raise ValueError(
                f"spine{spine_id}<->core{core_id} has {len(ports)} links, "
                f"cannot restore link {which}"
            )
        ports[which].restore()
        return ports[which]

    def switch_ports(self, kind: str, switch_id: int) -> list[Port]:
        """Every port of one switch; adds ``"core"`` to the 2-tier kinds."""
        if kind == "core":
            if not 0 <= switch_id < len(self.cores):
                raise ValueError(f"no core {switch_id} in this fabric")
            return list(self.cores[switch_id].ports)
        return super().switch_ports(kind, switch_id)

    def ideal_fct(self, src: int, dst: int, size: int, mss: int = 1460) -> int:
        src_leaf = self.leaf_of(src)
        dst_leaf = self.leaf_of(dst)
        if self.pod_of_leaf(src_leaf) == self.pod_of_leaf(dst_leaf):
            return super().ideal_fct(src, dst, size, mss)
        # Inter-pod: host -> leaf -> spine -> core -> spine -> leaf -> host.
        fabric_overhead = HEADER_BYTES + VXLAN_OVERHEAD
        hops = [
            (self.hosts[src].nic.rate_bps, HEADER_BYTES),
            (self.config.fabric_rate_bps, fabric_overhead),
            (self.config.core_rate_bps, fabric_overhead),
            (self.config.core_rate_bps, fabric_overhead),
            (self.config.fabric_rate_bps, fabric_overhead),
            (self.leaves[dst_leaf].host_port(dst).rate_bps, HEADER_BYTES),
        ]
        segments = max(1, -(-size // mss))
        stream_time = max(
            transmission_time(size + segments * overhead, rate)
            for rate, overhead in hops
        )
        last = min(size, mss)
        pipeline = sum(
            transmission_time(last + overhead, rate) for rate, overhead in hops[1:]
        )
        return stream_time + pipeline + len(hops) * self.config.propagation_delay


def build_multipod(sim: Simulator, config: MultiPodConfig | None = None) -> MultiPodFabric:
    """Construct a multi-pod fabric; call ``fabric.finalize(...)`` after.

    Leaf ids are global and pod-major; host ids are leaf-major as in the
    2-tier builder.  Every spine connects to every core with
    ``links_per_pair`` parallel links.
    """
    if config is None:
        config = MultiPodConfig()
    fabric = MultiPodFabric(sim, config)
    fabric.cores = [
        CoreSwitch(sim, core_id, fabric, config.params)
        for core_id in range(config.num_cores)
    ]
    leaf_id = 0
    for pod in range(config.num_pods):
        spines = [
            PodSpineSwitch(
                sim, pod * config.spines_per_pod + s, pod, fabric, config.params
            )
            for s in range(config.spines_per_pod)
        ]
        fabric.spines.extend(spines)
        for spine in spines:
            for core in fabric.cores:
                for _ in range(config.links_per_pair):
                    up = spine.add_core_port(
                        core, config.core_rate_bps, config.fabric_queue_bytes,
                        ecn_threshold=config.ecn_threshold_bytes,
                    )
                    down = core.add_spine_port(
                        pod, config.core_rate_bps, config.fabric_queue_bytes,
                        ecn_threshold=config.ecn_threshold_bytes,
                    )
                    connect(up, down, config.propagation_delay)
        for _ in range(config.leaves_per_pod):
            leaf = LeafSwitch(sim, leaf_id, fabric, config.params)
            fabric.leaves.append(leaf)
            for i in range(config.hosts_per_leaf):
                host_id = leaf_id * config.hosts_per_leaf + i
                host = Host(sim, host_id, nic_rate_bps=config.host_rate_bps)
                down = leaf.add_host_port(
                    host_id, config.host_rate_bps, config.host_queue_bytes,
                    ecn_threshold=config.ecn_threshold_bytes,
                )
                connect(host.nic, down, config.propagation_delay)
                fabric.register_host(host, leaf_id)
            for spine in spines:
                for _ in range(config.links_per_pair):
                    up = leaf.add_uplink(
                        spine, config.fabric_rate_bps, config.fabric_queue_bytes,
                        ecn_threshold=config.ecn_threshold_bytes,
                    )
                    down = spine.add_leaf_port(
                        leaf_id, config.fabric_rate_bps, config.fabric_queue_bytes,
                        ecn_threshold=config.ecn_threshold_bytes,
                    )
                    connect(up, down, config.propagation_delay)
            leaf_id += 1
    return fabric


__all__ = [
    "CoreSwitch",
    "MultiPodConfig",
    "MultiPodFabric",
    "PodSpineSwitch",
    "build_multipod",
]
