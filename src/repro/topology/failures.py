"""Seeded random multi-failure injection, shared across topology tiers.

The Fig. 16 scenario fails ``N`` random links; the 3-tier extension (CAFT)
needs the same trick at the spine↔core tier.  Both draws follow the
simulator's named-RNG-stream discipline: the failure set is a pure function
of ``(seed, stream)`` — machine-stable (the stream name is hashed with
:func:`repro.net.hashing.stable_string_seed`, not ``hash()``) and
independent of every other stream — and never disconnects a switch from
its uplink tier entirely.

The leaf-tier draw here is *bit-identical* to the historical
``repro.topology.leafspine.fail_random_links`` (which now re-exports this
helper): same stream, same candidate ordering, same skip rules, so
pre-existing Fig. 16 failure sets and golden digests are unchanged.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

if TYPE_CHECKING:
    from repro.switch.fabric import Fabric

#: Tiers :func:`fail_random_links` can draw from.
TIERS = ("leaf", "core")


def fail_random_links(
    fabric: "Fabric",
    count: int,
    stream: str = "link-failures",
    seed: int | None = None,
    tier: str = "leaf",
) -> list:
    """Fail ``count`` distinct random links of one fabric tier.

    ``tier="leaf"`` draws from the leaf↔spine links (the Fig. 16 scenario)
    and never leaves a leaf with no up uplink; ``tier="core"`` draws from
    the spine↔core links of a multi-pod fabric and never leaves a pod
    spine with no up core uplink (which would silently disconnect its pod
    from inter-pod traffic rather than create asymmetry).  Returns the
    failed near-side (leaf- or spine-side) ports.

    Which links fail follows the simulator's named-RNG-stream discipline:
    the draw comes from a *fresh* generator seeded by ``(seed, stream)`` —
    ``seed`` defaulting to the simulator's master seed — so the failure set
    is a pure function of those two values and independent of any draws
    other components may have taken from a same-named ``sim.rng`` stream
    earlier in setup.
    """
    import numpy as np

    from repro.net.hashing import stable_string_seed

    if tier not in TIERS:
        raise ValueError(f"tier must be one of {TIERS}, got {tier!r}")
    base = fabric.sim.seed if seed is None else seed
    rng = np.random.default_rng(
        np.random.SeedSequence((base, stable_string_seed(stream)))
    )
    if tier == "leaf":
        all_ports = [port for leaf in fabric.leaves for port in leaf.uplinks]
    else:
        ports_of = getattr(fabric, "spine_core_ports", None)
        if ports_of is None:
            raise ValueError(
                "tier 'core' needs a multi-pod fabric (no spine-core links here)"
            )
        all_ports = list(ports_of())
    order = rng.permutation(len(all_ports))
    failed = []
    for index in order:
        if len(failed) >= count:
            break
        port = all_ports[int(index)]
        owner = port.node
        if tier == "leaf":
            up_count = sum(1 for p in owner.uplinks if p.up)
        else:
            up_count = len(owner.up_core_ports())
        if up_count <= 1 or not port.up:
            continue
        port.fail()
        failed.append(port)
    if len(failed) < count:
        raise ValueError(
            f"could only fail {len(failed)} of {count} {tier}-tier links "
            "without disconnecting a switch from its uplink tier"
        )
    return failed


__all__ = ["TIERS", "fail_random_links"]
