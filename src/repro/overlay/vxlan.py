"""VXLAN-style overlay tunnel endpoint logic (paper §2.5, §3.1, §3.3).

Each leaf switch is a tunnel endpoint (TEP).  On the way into the fabric the
source TEP encapsulates packets with an :class:`~repro.net.packet.OverlayHeader`
that carries CONGA's four fields; on the way out the destination TEP consumes
the header.  This module centralizes that logic so the feedback protocol can
be unit-tested without instantiating switches:

* :meth:`TunnelEndpoint.encapsulate` stamps ``(lbtag, ce=0)`` for the forward
  path and opportunistically piggybacks one ``(fb_lbtag, fb_metric)`` pair
  from the Congestion-From-Leaf table (§3.3 step 4);
* :meth:`TunnelEndpoint.decapsulate` records the arriving CE into the
  Congestion-From-Leaf table (step 3) and feeds piggybacked metrics into the
  Congestion-To-Leaf table (step 5).

The ASIC's VXLAN header grows by 46 bytes on the wire; we account for that
in packet size so fabric serialization is faithful.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.core.params import CongaParams, DEFAULT_PARAMS
from repro.core.tables import CongestionFromLeafTable, CongestionToLeafTable
from repro.net.packet import OverlayHeader, Packet

if TYPE_CHECKING:
    from repro.sim import Simulator

#: VXLAN + outer IP/UDP/Ethernet encapsulation overhead, bytes.
VXLAN_OVERHEAD = 46


class TunnelEndpoint:
    """Overlay TEP state for one leaf switch."""

    def __init__(
        self,
        sim: "Simulator",
        leaf_id: int,
        num_uplinks: int,
        params: CongaParams = DEFAULT_PARAMS,
    ) -> None:
        self.sim = sim
        self.leaf_id = leaf_id
        self.num_uplinks = num_uplinks
        self.params = params
        self.to_leaf_table = CongestionToLeafTable(sim, num_uplinks, params, owner=leaf_id)
        self.from_leaf_table = CongestionFromLeafTable(num_uplinks)
        self.encapsulated = 0
        self.decapsulated = 0
        self.feedback_sent = 0
        self.feedback_received = 0
        #: Piggybacked feedback pairs discarded by an injected FeedbackLoss
        #: fault before reaching the Congestion-To-Leaf table.
        self.feedback_lost = 0
        self.fb_loss_probability = 0.0
        self._fb_loss_rng = None

    def set_feedback_loss(self, probability: float, rng=None) -> None:
        """Discard arriving piggybacked feedback with ``probability``.

        Models a control-plane grey failure (:mod:`repro.faults`): the
        forward path and its CE measurement keep working, but the reverse
        feedback channel is lossy, so this leaf's Congestion-To-Leaf
        entries stop refreshing and age to zero (§3.3).  ``probability``
        strictly between 0 and 1 requires a seeded ``rng``; 0 clears the
        fault, 1 drops everything without a draw.
        """
        if not 0.0 <= probability <= 1.0:
            raise ValueError(f"probability must be in [0, 1], got {probability}")
        if 0.0 < probability < 1.0 and rng is None:
            raise ValueError(
                "probabilistic feedback loss needs a seeded rng"
            )
        self.fb_loss_probability = probability
        self._fb_loss_rng = rng if 0.0 < probability < 1.0 else None

    def encapsulate(self, packet: Packet, dst_leaf: int, lbtag: int) -> None:
        """Attach the overlay header for a packet entering the fabric."""
        if packet.overlay is not None:
            raise ValueError(f"packet already encapsulated: {packet!r}")
        header = OverlayHeader(src_leaf=self.leaf_id, dst_leaf=dst_leaf, lbtag=lbtag)
        feedback = self.from_leaf_table.select_feedback(dst_leaf)
        if feedback is not None:
            header.fb_lbtag, header.fb_metric = feedback
            header.fb_valid = True
            self.feedback_sent += 1
        packet.overlay = header
        packet.size += VXLAN_OVERHEAD
        self.encapsulated += 1

    def decapsulate(self, packet: Packet) -> OverlayHeader:
        """Consume the overlay header of a packet leaving the fabric.

        Records the forward-path CE into the Congestion-From-Leaf table and
        applies any piggybacked feedback to the Congestion-To-Leaf table.
        Returns the removed header (useful for instrumentation).
        """
        header = packet.overlay
        if header is None:
            raise ValueError(f"packet is not encapsulated: {packet!r}")
        if header.dst_leaf != self.leaf_id:
            raise ValueError(
                f"packet for leaf {header.dst_leaf} decapsulated at leaf {self.leaf_id}"
            )
        self.from_leaf_table.record(header.src_leaf, header.lbtag, header.ce)
        if header.fb_valid:
            if self.fb_loss_probability > 0.0 and (
                self.fb_loss_probability >= 1.0
                or self._fb_loss_rng.random() < self.fb_loss_probability
            ):
                self.feedback_lost += 1
            else:
                self.to_leaf_table.update(
                    header.src_leaf, header.fb_lbtag, header.fb_metric
                )
                self.feedback_received += 1
        packet.overlay = None
        packet.size -= VXLAN_OVERHEAD
        self.decapsulated += 1
        return header


__all__ = ["TunnelEndpoint", "VXLAN_OVERHEAD"]
