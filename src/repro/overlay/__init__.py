"""VXLAN-style overlay: tunnel endpoints carrying CONGA congestion state."""

from repro.overlay.vxlan import TunnelEndpoint, VXLAN_OVERHEAD

__all__ = ["TunnelEndpoint", "VXLAN_OVERHEAD"]
