"""Drop-tail output queues with occupancy accounting.

Datacenter switches have shallow buffers (paper §2.1), so queue capacity is
expressed in bytes.  The queue records drop and occupancy statistics that the
evaluation harness uses for Fig. 11(c) and Fig. 16 (queue-length CDFs).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

from repro.core.series import DecimatedSeries
from repro.net.packet import Packet


@dataclass(slots=True)
class QueueStats:
    """Counters accumulated over a queue's lifetime.

    ``samples`` is a bounded :class:`~repro.core.series.DecimatedSeries`
    rather than a raw list, so arbitrarily long runs record occupancy
    without unbounded memory growth; it behaves like a list for reads.
    """

    enqueued_packets: int = 0
    enqueued_bytes: int = 0
    dropped_packets: int = 0
    dropped_bytes: int = 0
    dequeued_packets: int = 0
    dequeued_bytes: int = 0
    ecn_marked: int = 0
    max_bytes: int = 0
    samples: DecimatedSeries = field(default_factory=DecimatedSeries)


class DropTailQueue:
    """A FIFO byte-bounded drop-tail queue, optionally ECN-marking.

    Parameters
    ----------
    capacity_bytes:
        Maximum total bytes the queue may hold; a packet that does not fit
        is dropped in its entirety.  ``None`` means unbounded (used by host
        NIC models where the send buffer applies backpressure instead).
    ecn_threshold_bytes:
        When set, packets enqueued while the occupancy exceeds this
        threshold are CE-marked (DCTCP-style instantaneous marking).
    """

    __slots__ = ("capacity_bytes", "ecn_threshold_bytes", "_queue", "_bytes", "stats")

    def __init__(
        self,
        capacity_bytes: int | None = None,
        ecn_threshold_bytes: int | None = None,
    ) -> None:
        if capacity_bytes is not None and capacity_bytes <= 0:
            raise ValueError(f"capacity must be positive, got {capacity_bytes}")
        if ecn_threshold_bytes is not None and ecn_threshold_bytes <= 0:
            raise ValueError(
                f"ECN threshold must be positive, got {ecn_threshold_bytes}"
            )
        self.capacity_bytes = capacity_bytes
        self.ecn_threshold_bytes = ecn_threshold_bytes
        self._queue: deque[Packet] = deque()
        self._bytes = 0
        self.stats = QueueStats()

    def __len__(self) -> int:
        return len(self._queue)

    @property
    def byte_occupancy(self) -> int:
        """Bytes currently queued."""
        return self._bytes

    @property
    def is_empty(self) -> bool:
        """Whether the queue holds no packets."""
        return not self._queue

    def offer(self, packet: Packet) -> bool:
        """Enqueue ``packet`` if it fits; return False (and drop) otherwise."""
        if (
            self.capacity_bytes is not None
            and self._bytes + packet.size > self.capacity_bytes
        ):
            self.stats.dropped_packets += 1
            self.stats.dropped_bytes += packet.size
            return False
        if (
            self.ecn_threshold_bytes is not None
            and self._bytes >= self.ecn_threshold_bytes
        ):
            packet.ecn_ce = True
            self.stats.ecn_marked += 1
        self._queue.append(packet)
        self._bytes += packet.size
        self.stats.enqueued_packets += 1
        self.stats.enqueued_bytes += packet.size
        if self._bytes > self.stats.max_bytes:
            self.stats.max_bytes = self._bytes
        return True

    def poll(self) -> Packet | None:
        """Dequeue and return the head packet, or None if empty."""
        if not self._queue:
            return None
        packet = self._queue.popleft()
        self._bytes -= packet.size
        self.stats.dequeued_packets += 1
        self.stats.dequeued_bytes += packet.size
        return packet

    def sample_occupancy(self) -> None:
        """Record the instantaneous byte occupancy for later CDF analysis."""
        self.stats.samples.append(self._bytes)


__all__ = ["DropTailQueue", "QueueStats"]
