"""Packet-level network substrate: packets, queues, ports, links, nodes."""

from repro.net.node import Host, Node, PacketHandler
from repro.net.packet import (
    ACK_BYTES,
    DEFAULT_MTU,
    HEADER_BYTES,
    JUMBO_MTU,
    OverlayHeader,
    Packet,
    ack_packet,
    data_packet,
)
from repro.net.port import (
    DEFAULT_PROPAGATION_DELAY,
    DEFAULT_QUEUE_CAPACITY,
    Port,
    connect,
)
from repro.net.queue import DropTailQueue, QueueStats

__all__ = [
    "ACK_BYTES",
    "DEFAULT_MTU",
    "DEFAULT_PROPAGATION_DELAY",
    "DEFAULT_QUEUE_CAPACITY",
    "DropTailQueue",
    "HEADER_BYTES",
    "Host",
    "JUMBO_MTU",
    "Node",
    "OverlayHeader",
    "Packet",
    "PacketHandler",
    "Port",
    "QueueStats",
    "ack_packet",
    "connect",
    "data_packet",
]
