"""Full-duplex ports and the links between them.

A :class:`Port` owns the egress side of one link direction: a drop-tail
queue feeding a store-and-forward transmitter at the port's line rate.  Two
ports are joined with :func:`connect`, which makes each the other's ``peer``;
a packet finishing transmission at one port propagates (after the link's
propagation delay) to the peer port and is handed to the peer's node via
``node.receive(packet, port)``.

Transmission is driven as a *packet train*: while the queue is backlogged,
one self-continuing boundary event (:meth:`Port._advance`) both finishes
the packet on the wire and dequeues its successor at the same instant,
rescheduling itself one serialization delay later.  Every dequeue still
happens at its true boundary time — ECN marking and drop decisions see the
queue occupancy they would under a per-packet (dequeue, finish) event pair
— and the per-packet ``on_transmit`` hooks fire once per packet in FIFO
order, so the batching is invisible to behaviour and to the obs plane (see
DESIGN.md "Event kernel").

Link failures (the asymmetry scenarios of Figs. 7(b), 11, 14, 16) are
injected by :meth:`Port.fail`, which silently discards traffic in both
directions, exactly like a cut cable.  Partial degradation — the
degraded-but-alive scenarios of the fault plane (:mod:`repro.faults`) — is
driven through :meth:`Port.degrade` (rate brownout, both directions) and
:meth:`Port.set_loss` (seeded per-packet drop after serialization).  The
per-port ``on_transmit`` hook list is where CONGA's DREs attach (§3.2);
switches additionally store the attached estimator on ``port.dre`` so rate
changes can retarget it.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable

from repro.net.packet import Packet
from repro.net.queue import DropTailQueue
from repro.obs.events import PacketDropped
from repro.units import SECOND, transmission_time

if TYPE_CHECKING:
    from repro.net.node import Node
    from repro.sim import Simulator

#: Default per-port buffering: shallow datacenter switch buffers (§2.1).
DEFAULT_QUEUE_CAPACITY = 10_000_000

#: Default one-way propagation delay for intra-datacenter cables (~100 m).
DEFAULT_PROPAGATION_DELAY = 500  # nanoseconds

#: Generation counter for link up/down state across *all* ports.  Switch
#: routing caches (spine ports-to-leaf, leaf candidate uplinks) are keyed on
#: this: any :meth:`Port.fail` / :meth:`Port.restore` bumps it, which lazily
#: invalidates every cache without the ports knowing who caches what.
_topology_epoch = 0


def topology_epoch() -> int:
    """The current link up/down generation (see :data:`_topology_epoch`)."""
    return _topology_epoch


def _bump_topology_epoch() -> None:
    global _topology_epoch
    _topology_epoch += 1


class Port:
    """One endpoint of a full-duplex link.

    Parameters
    ----------
    sim:
        The simulator this port schedules on.
    node:
        Owning node; inbound packets are delivered to ``node.receive``.
    index:
        Port number local to the node (CONGA's LBTag is such an index).
    rate_bps:
        Egress line rate in bits per second.
    queue_capacity:
        Egress buffer size in bytes (None = unbounded, for host NICs whose
        senders are window-limited).
    """

    __slots__ = (
        "sim",
        "node",
        "index",
        "rate_bps",
        "nominal_rate_bps",
        "queue",
        "name",
        "peer",
        "propagation_delay",
        "up",
        "_transmitting",
        "tx_packets",
        "tx_bytes",
        "rx_packets",
        "rx_bytes",
        "busy_time",
        "lost_packets",
        "_loss_probability",
        "_loss_rng",
        "dre",
        "on_transmit",
        "_ns_per_byte",
        "_serialization_ns",
        "_schedule_fast",
        "_advance_ref",
        "_arrive_ref",
    )

    def __init__(
        self,
        sim: "Simulator",
        node: "Node",
        index: int,
        rate_bps: int,
        queue_capacity: int | None = DEFAULT_QUEUE_CAPACITY,
        name: str | None = None,
        ecn_threshold: int | None = None,
    ) -> None:
        if rate_bps <= 0:
            raise ValueError(f"rate must be positive, got {rate_bps}")
        self.sim = sim
        self.node = node
        self.index = index
        self.rate_bps = rate_bps
        #: The as-built line rate; ``degrade`` scales relative to this.
        self.nominal_rate_bps = rate_bps
        self.queue = DropTailQueue(queue_capacity, ecn_threshold_bytes=ecn_threshold)
        self.name = name or f"{node.name}[{index}]"
        self.peer: Port | None = None
        self.propagation_delay = DEFAULT_PROPAGATION_DELAY
        self.up = True
        self._transmitting = False
        self.tx_packets = 0
        self.tx_bytes = 0
        self.rx_packets = 0
        self.rx_bytes = 0
        self.busy_time = 0
        #: Packets dropped by injected per-packet loss (after serialization).
        self.lost_packets = 0
        self._loss_probability = 0.0
        self._loss_rng = None
        #: The DRE measuring this port's egress, if a switch attached one;
        #: ``set_rate`` keeps its full-register target in sync.
        self.dre = None
        #: Callbacks fired with each packet at transmission start (DRE hook).
        self.on_transmit: list[Callable[[Packet], None]] = []
        # Serialization-delay fast path: when the line rate divides 8 Gbit
        # of nanoseconds evenly, ceil(size * 8e9 / rate) collapses to an
        # exact integer multiply; otherwise per-size results are memoized
        # (wire sizes repeat: MTU data, ACKs, trailing segments), so either
        # way the per-packet cost avoids big-integer ceiling division while
        # staying bit-identical to :func:`repro.units.transmission_time`.
        bits_ns = 8 * SECOND
        self._ns_per_byte = bits_ns // rate_bps if bits_ns % rate_bps == 0 else 0
        self._serialization_ns: dict[int, int] = {}
        # Port events are never cancelled, so both per-hop events go through
        # the kernel's allocation-free fast path with prebound methods.
        self._schedule_fast = sim.schedule_fast
        self._advance_ref = self._advance
        self._arrive_ref = self._arrive

    # -- wiring ---------------------------------------------------------------

    @property
    def connected(self) -> bool:
        """Whether this port has a peer at the other end of a cable."""
        return self.peer is not None

    def fail(self) -> None:
        """Take the link down in both directions (cut-cable semantics)."""
        self.up = False
        if self.peer is not None:
            self.peer.up = False
        _bump_topology_epoch()

    def restore(self) -> None:
        """Bring a failed link back up in both directions."""
        self.up = True
        if self.peer is not None:
            self.peer.up = True
        _bump_topology_epoch()

    # -- partial degradation (fault plane) -------------------------------------

    def set_rate(self, rate_bps: int) -> None:
        """Change this direction's line rate (serialization recomputed).

        Packets already being serialized finish at the old rate; the change
        takes effect from the next dequeue.  The attached DRE (if any) is
        retargeted so utilization keeps meaning "fraction of current line
        rate".
        """
        if rate_bps <= 0:
            raise ValueError(f"rate must be positive, got {rate_bps}")
        if rate_bps == self.rate_bps:
            return
        self.rate_bps = rate_bps
        bits_ns = 8 * SECOND
        self._ns_per_byte = bits_ns // rate_bps if bits_ns % rate_bps == 0 else 0
        self._serialization_ns = {}
        if self.dre is not None:
            self.dre.set_link_rate(rate_bps)

    def degrade(self, fraction: float) -> None:
        """Scale the link to ``fraction`` of nominal rate, both directions.

        ``fraction=1.0`` restores the nominal rate — a brownout window is a
        ``degrade(0.25)`` / ``degrade(1.0)`` pair.  The link stays up, so
        routing still uses it; only CONGA's congestion feedback can see the
        slowdown.
        """
        if not 0.0 < fraction <= 1.0:
            raise ValueError(f"fraction must be in (0, 1], got {fraction}")
        self.set_rate(max(1, round(self.nominal_rate_bps * fraction)))
        if self.peer is not None:
            self.peer.set_rate(
                max(1, round(self.peer.nominal_rate_bps * fraction))
            )

    def set_loss(self, probability: float, rng=None) -> None:
        """Drop each transmitted packet with ``probability`` (this direction).

        Drops happen after serialization — the packet occupies the wire,
        then vanishes (corrupted-frame semantics), so the link still looks
        busy to the DRE.  ``probability`` strictly between 0 and 1 requires
        a seeded ``rng`` (a named per-simulator stream) so loss patterns
        are deterministic; 0 clears the fault and 1 black-holes the link
        without any draw.
        """
        if not 0.0 <= probability <= 1.0:
            raise ValueError(f"probability must be in [0, 1], got {probability}")
        if 0.0 < probability < 1.0 and rng is None:
            raise ValueError(
                "probabilistic loss needs a seeded rng (sim.rng(stream))"
            )
        self._loss_probability = probability
        self._loss_rng = rng if 0.0 < probability < 1.0 else None

    @property
    def loss_probability(self) -> float:
        """Injected per-packet loss probability on this direction.

        Read-only view for fault-aware schemes (a detected grey failure is
        part of the liveness signal CAFT-style control planes distribute);
        mutate only through :meth:`set_loss`.
        """
        return self._loss_probability

    def residual_fraction(self) -> float:
        """Usable capacity as a fraction of the as-built rate.

        0 when the link is down or administratively black-holed; otherwise
        the current rate scaled by injected loss survival — the liveness /
        residual-rate weight fault-aware load balancing multiplies in.
        """
        if not self.up:
            return 0.0
        return (
            self.rate_bps * (1.0 - self._loss_probability) / self.nominal_rate_bps
        )

    # -- egress ---------------------------------------------------------------

    def send(self, packet: Packet) -> bool:
        """Queue ``packet`` for transmission; returns False if it was dropped.

        The enqueue mirrors :meth:`DropTailQueue.offer` inline (keep the two
        in sync — tests/test_net.py covers both): every fabric hop passes
        through here, and the method-call round trip was measurable.
        """
        if not self.up or self.peer is None:
            # A down link drops silently; upper layers recover via timeouts.
            self.queue.stats.dropped_packets += 1
            self.queue.stats.dropped_bytes += packet.size
            tracer = self.sim.tracer
            if tracer is not None and tracer.drop:
                tracer.emit(self._drop_event(packet, "link-down"))
            return False
        queue = self.queue
        size = packet.size
        occupancy = queue._bytes
        if (
            queue.capacity_bytes is not None
            and occupancy + size > queue.capacity_bytes
        ):
            stats = queue.stats
            stats.dropped_packets += 1
            stats.dropped_bytes += size
            tracer = self.sim.tracer
            if tracer is not None and tracer.drop:
                tracer.emit(self._drop_event(packet, "queue-full"))
            return False
        if (
            queue.ecn_threshold_bytes is not None
            and occupancy >= queue.ecn_threshold_bytes
        ):
            packet.ecn_ce = True
            queue.stats.ecn_marked += 1
        queue._queue.append(packet)
        occupancy += size
        queue._bytes = occupancy
        stats = queue.stats
        stats.enqueued_packets += 1
        stats.enqueued_bytes += size
        if occupancy > stats.max_bytes:
            stats.max_bytes = occupancy
        if not self._transmitting:
            self._transmit_next()
        return True

    def _drop_event(self, packet: Packet, reason: str) -> PacketDropped:
        return PacketDropped(  # repro-lint: ignore[E302] -- drop path only: callers gate on tracer.drop before building the event; steady-state trains never reach here
            time=self.sim.now,
            port=self.name,
            flow_id=packet.flow_id,
            size=packet.size,
            reason=reason,
        )

    def _transmit_next(self) -> None:
        """Start a serialization train from an idle transmitter.

        Dequeues the head packet (inline :meth:`DropTailQueue.poll` — keep
        in sync) and schedules the train's single continuation event,
        :meth:`_advance`, at the serialization boundary.
        """
        queue = self.queue
        pending = queue._queue
        if not pending:
            self._transmitting = False
            return
        packet = pending.popleft()
        size = packet.size
        queue._bytes -= size
        stats = queue.stats
        stats.dequeued_packets += 1
        stats.dequeued_bytes += size
        self._transmitting = True
        hooks = self.on_transmit
        if hooks:
            for hook in hooks:
                hook(packet)
        if self._ns_per_byte:
            serialization = size * self._ns_per_byte
        else:
            serialization = self._serialization_ns.get(size)
            if serialization is None:
                serialization = transmission_time(size, self.rate_bps)
                self._serialization_ns[size] = serialization
        self.busy_time += serialization
        self._schedule_fast(serialization, self._advance_ref, packet)

    def _advance(self, packet: Packet) -> None:
        """Advance the serialization train at one boundary (single event).

        ``packet`` just finished its wire time: finish bookkeeping runs
        (tx counters, injected loss, propagation to the peer), then the next
        queued packet begins serializing immediately — back-to-back packets
        form a *train* driven by this one self-continuing event, with the
        per-packet callbacks (DRE hooks, tracing) replayed in order at each
        packet's true serialization-start time.  Dequeues stay at boundary
        times, so queue-occupancy-dependent behavior (ECN marking, drops)
        is bit-identical to the unfused two-callback implementation.
        """
        size = packet.size
        self.tx_packets += 1
        self.tx_bytes += size
        if self._loss_probability > 0.0 and (
            self._loss_probability >= 1.0
            or self._loss_rng.random() < self._loss_probability
        ):
            self.lost_packets += 1
            tracer = self.sim.tracer
            if tracer is not None and tracer.drop:
                tracer.emit(self._drop_event(packet, "loss"))
        else:
            peer = self.peer
            if peer is not None and self.up:
                self._schedule_fast(self.propagation_delay, peer._arrive_ref, packet)
        # Continue the train: inline head dequeue (mirror of poll()).
        queue = self.queue
        pending = queue._queue
        if not pending:
            self._transmitting = False
            return
        packet = pending.popleft()
        size = packet.size
        queue._bytes -= size
        stats = queue.stats
        stats.dequeued_packets += 1
        stats.dequeued_bytes += size
        hooks = self.on_transmit
        if hooks:
            for hook in hooks:
                hook(packet)
        if self._ns_per_byte:
            serialization = size * self._ns_per_byte
        else:
            serialization = self._serialization_ns.get(size)
            if serialization is None:
                serialization = transmission_time(size, self.rate_bps)
                self._serialization_ns[size] = serialization
        self.busy_time += serialization
        self._schedule_fast(serialization, self._advance_ref, packet)

    # -- ingress --------------------------------------------------------------

    def _arrive(self, packet: Packet) -> None:
        self.rx_packets += 1
        self.rx_bytes += packet.size
        packet.hops += 1
        self.node.receive(packet, self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Port({self.name}, {self.rate_bps / 1e9:g}Gbps, up={self.up})"


def residual_capacity(ports) -> float:
    """Aggregate usable capacity of ``ports`` as a fraction of nominal.

    Sums each port's :meth:`Port.residual_fraction` weighted by its as-built
    rate; 1.0 means the group is fully healthy, 0.0 that every member is
    down (or the group is empty).  Fault-aware load balancing uses this as
    the liveness weight of a port group (e.g. a pod spine's core uplinks).
    """
    nominal = 0
    effective = 0.0
    for port in ports:
        nominal += port.nominal_rate_bps
        effective += port.residual_fraction() * port.nominal_rate_bps
    return effective / nominal if nominal else 0.0


def connect(
    a: Port,
    b: Port,
    propagation_delay: int = DEFAULT_PROPAGATION_DELAY,
) -> None:
    """Join two ports with a full-duplex cable."""
    if a.peer is not None or b.peer is not None:
        raise ValueError(f"port already connected: {a if a.peer else b}")
    a.peer = b
    b.peer = a
    a.propagation_delay = propagation_delay
    b.propagation_delay = propagation_delay


__all__ = [
    "DEFAULT_PROPAGATION_DELAY",
    "DEFAULT_QUEUE_CAPACITY",
    "Port",
    "connect",
    "residual_capacity",
    "topology_epoch",
]
