"""Node base class and the host (server) model.

A :class:`Node` is anything with ports: hosts, leaf switches, spine switches.
A :class:`Host` is a server with a single NIC; transport endpoints (TCP
connections, UDP sinks) register themselves against flow ids and receive the
packets addressed to them.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable

from repro.net.packet import Packet
from repro.net.port import Port

if TYPE_CHECKING:
    from repro.sim import Simulator

PacketHandler = Callable[[Packet], None]


class Node:
    """Base class for all network elements."""

    def __init__(self, sim: "Simulator", name: str) -> None:
        self.sim = sim
        self.name = name
        self.ports: list[Port] = []

    def add_port(
        self,
        rate_bps: int,
        queue_capacity: int | None = None,
        name: str | None = None,
        ecn_threshold: int | None = None,
    ) -> Port:
        """Create, register, and return a new port on this node."""
        port = Port(
            self.sim,
            self,
            index=len(self.ports),
            rate_bps=rate_bps,
            queue_capacity=queue_capacity,
            name=name,
            ecn_threshold=ecn_threshold,
        )
        self.ports.append(port)
        return port

    def receive(self, packet: Packet, port: Port) -> None:
        """Handle a packet arriving on ``port``; subclasses must override."""
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}({self.name})"


class Host(Node):
    """A server with one NIC.

    Transport endpoints register per-flow handlers with :meth:`bind`.  The
    host delivers each arriving packet to the handler bound to its flow id;
    packets with no handler are counted and discarded (they correspond to
    segments arriving after an endpoint has closed).
    """

    def __init__(
        self,
        sim: "Simulator",
        host_id: int,
        nic_rate_bps: int,
        name: str | None = None,
        nic_queue_capacity: int | None = None,
    ) -> None:
        super().__init__(sim, name or f"host{host_id}")
        self.host_id = host_id
        self.nic = self.add_port(
            nic_rate_bps, queue_capacity=nic_queue_capacity, name=f"{self.name}.nic"
        )
        self._handlers: dict[int, PacketHandler] = {}
        self.undelivered_packets = 0

    def bind(self, flow_id: int, handler: PacketHandler) -> None:
        """Register ``handler`` to receive packets of ``flow_id``."""
        if flow_id in self._handlers:
            raise ValueError(f"flow {flow_id} already bound on {self.name}")
        self._handlers[flow_id] = handler

    def unbind(self, flow_id: int) -> None:
        """Remove the handler for ``flow_id`` if present."""
        self._handlers.pop(flow_id, None)

    def send(self, packet: Packet) -> bool:
        """Transmit a packet out the NIC."""
        return self.nic.send(packet)

    def receive(self, packet: Packet, port: Port) -> None:
        handler = self._handlers.get(packet.flow_id)
        if handler is None:
            self.undelivered_packets += 1
            return
        handler(packet)


__all__ = ["Host", "Node", "PacketHandler"]
