"""Packet and header models.

A :class:`Packet` is a single wire unit.  The transport fields model a
simplified TCP/UDP header (byte sequence numbers, cumulative ACKs), and the
optional :class:`OverlayHeader` models the VXLAN-style encapsulation CONGA
piggybacks its congestion state on (§3.1 of the paper): ``lbtag``/``ce`` for
the forward path and ``fb_lbtag``/``fb_metric`` for the reverse feedback.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

#: Default maximum transmission unit (standard Ethernet payload), bytes.
DEFAULT_MTU = 1500

#: Jumbo-frame MTU used in the paper's Incast experiments (Fig. 13b).
JUMBO_MTU = 9000

#: Bytes of TCP/IP + Ethernet header overhead per segment we account for.
HEADER_BYTES = 58

#: Bytes of ACK-only packets on the wire.
ACK_BYTES = 64

_packet_ids = itertools.count()


@dataclass(slots=True)
class OverlayHeader:
    """VXLAN-like overlay header carrying CONGA state (paper §3.1).

    Attributes
    ----------
    src_leaf, dst_leaf:
        Tunnel endpoints (leaf switch ids) set by the source leaf.
    lbtag:
        Source-leaf uplink port the packet was sent on (4 bits in the ASIC).
    ce:
        Congestion-extent field, updated to the max link congestion metric
        along the path (3 bits in the ASIC).
    fb_lbtag, fb_metric:
        Piggybacked feedback for the *reverse* leaf pair: the metric of path
        ``fb_lbtag`` from the packet's destination leaf back toward its
        source leaf.  ``fb_valid`` marks whether the fields are meaningful.
    """

    src_leaf: int
    dst_leaf: int
    lbtag: int = 0
    ce: int = 0
    fb_lbtag: int = 0
    fb_metric: int = 0
    fb_valid: bool = False


@dataclass(slots=True)
class Packet:
    """A simulated packet.

    ``size`` is the total wire size in bytes (payload plus header overhead);
    ``payload_len`` is the transport payload carried.  ``seq`` is the byte
    offset of the first payload byte and ``ack_no`` the cumulative ACK.
    """

    src: int
    dst: int
    size: int
    protocol: str = "tcp"
    sport: int = 0
    dport: int = 0
    flow_id: int = 0
    seq: int = 0
    ack_no: int = -1
    payload_len: int = 0
    is_ack: bool = False
    fin: bool = False
    overlay: OverlayHeader | None = None
    created_at: int = 0
    echo: int = -1
    ecn_ce: bool = False
    ecn_echo: bool = False
    packet_id: int = field(default_factory=_packet_ids.__next__)
    hops: int = 0
    # Cached 5-tuple: hashed at every switch hop (ECMP, flowlet slot), and
    # the address fields never change after construction.
    _five_tuple: tuple | None = field(
        default=None, init=False, repr=False, compare=False
    )

    @property
    def five_tuple(self) -> tuple[int, int, int, int, str]:
        """The flow 5-tuple used for ECMP hashing and flowlet tracking."""
        cached = self._five_tuple
        if cached is None:
            cached = (self.src, self.dst, self.sport, self.dport, self.protocol)
            self._five_tuple = cached
        return cached

    @property
    def end_seq(self) -> int:
        """Sequence number one past the last payload byte."""
        return self.seq + self.payload_len

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kind = "ACK" if self.is_ack else ("FIN" if self.fin else "DATA")
        return (
            f"Packet(#{self.packet_id} {kind} flow={self.flow_id} "
            f"{self.src}->{self.dst} seq={self.seq} len={self.payload_len})"
        )


def data_packet(
    *,
    src: int,
    dst: int,
    sport: int,
    dport: int,
    flow_id: int,
    seq: int,
    payload_len: int,
    protocol: str = "tcp",
    fin: bool = False,
    created_at: int = 0,
) -> Packet:
    """Build a data segment with standard header overhead added to the size."""
    return Packet(
        src=src,
        dst=dst,
        size=payload_len + HEADER_BYTES,
        protocol=protocol,
        sport=sport,
        dport=dport,
        flow_id=flow_id,
        seq=seq,
        payload_len=payload_len,
        fin=fin,
        created_at=created_at,
    )


def ack_packet(
    *,
    src: int,
    dst: int,
    sport: int,
    dport: int,
    flow_id: int,
    ack_no: int,
    created_at: int = 0,
    echo: int = -1,
) -> Packet:
    """Build a pure ACK travelling from receiver back to sender.

    ``echo`` carries the timestamp of the data packet that triggered the
    ACK (TCP timestamp-option style) so the sender can take RTT samples.
    """
    return Packet(
        src=src,
        dst=dst,
        size=ACK_BYTES,
        protocol="tcp",
        sport=sport,
        dport=dport,
        flow_id=flow_id,
        ack_no=ack_no,
        is_ack=True,
        created_at=created_at,
        echo=echo,
    )


__all__ = [
    "ACK_BYTES",
    "DEFAULT_MTU",
    "HEADER_BYTES",
    "JUMBO_MTU",
    "OverlayHeader",
    "Packet",
    "ack_packet",
    "data_packet",
]
