"""Process-stable hashing.

Python randomizes ``hash()`` for strings per interpreter process
(PYTHONHASHSEED), so anything that hashes a flow 5-tuple containing the
protocol *name* — ECMP path selection, flowlet-table slots — would differ
from run to run.  Real switches hash packed header bits, which is what this
module emulates: protocols become their IP protocol numbers and the fields
are mixed with a fixed 64-bit integer mix (splitmix64 finalizer), giving
identical results in every process.
"""

from __future__ import annotations

_MASK = (1 << 64) - 1

#: IP protocol numbers for the transports the simulator models.
PROTOCOL_NUMBERS = {"tcp": 6, "udp": 17}

#: Memo of computed hashes.  ECMP and the flowlet table hash the same flow
#: 5-tuples on every packet, so the per-packet cost collapses to one dict
#: probe; the distinct (tuple, salt) population is bounded by flows times
#: switches.  Cleared wholesale at a size cap so week-long processes cannot
#: grow it without bound.  Purely a cache: results are unaffected.
_memo: dict = {}
_MEMO_CAP = 1 << 20


def _mix64(value: int) -> int:
    """The splitmix64 finalizer: a fast, well-distributed 64-bit mix."""
    value = (value + 0x9E3779B97F4A7C15) & _MASK
    value = ((value ^ (value >> 30)) * 0xBF58476D1CE4E5B9) & _MASK
    value = ((value ^ (value >> 27)) * 0x94D049BB133111EB) & _MASK
    return value ^ (value >> 31)


def stable_hash(values: tuple, salt: int = 0) -> int:
    """Deterministically hash a tuple of ints/strings, independent of process.

    Strings are mapped through :data:`PROTOCOL_NUMBERS` when possible and
    otherwise through a byte-wise fold, so arbitrary labels still hash
    stably.
    """
    key = (values, salt)
    state = _memo.get(key)
    if state is not None:
        return state
    state = _mix64(salt & _MASK)
    for value in values:
        if isinstance(value, str):
            number = PROTOCOL_NUMBERS.get(value)
            if number is None:
                number = 0
                for byte in value.encode():
                    number = (number * 131 + byte) & _MASK
            value = number
        state = _mix64(state ^ (value & _MASK))
    if len(_memo) >= _MEMO_CAP:
        _memo.clear()
    _memo[key] = state
    return state


def stable_string_seed(text: str) -> int:
    """A stable 32-bit seed derived from a string (for RNG stream names)."""
    return stable_hash((text,)) & 0xFFFFFFFF


__all__ = ["PROTOCOL_NUMBERS", "stable_hash", "stable_string_seed"]
