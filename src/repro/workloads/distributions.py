"""Empirical flow-size distributions (paper Figure 8).

The evaluation drives the fabric with flows sampled from empirical
distributions: an *enterprise* workload measured in the authors' production
datacenters (§2.6) and a *data-mining* workload from a large cluster running
MapReduce-style jobs (VL2 [18]).  The large-scale simulations (Fig. 15) also
use the *web-search* workload of DCTCP [4].  All three are heavy-tailed, but
they differ sharply in how heavy: in the enterprise workload ~50% of bytes
come from flows smaller than ~35 MB, while in data-mining ~95% of all bytes
belong to the few flows larger than 35 MB — which is why ECMP does fine on
the former and poorly on the latter (§5.2.1, §6.2).

Distributions are piecewise-linear CDFs over flow size, sampled by inverse
transform.  Moments (mean, coefficient of variation) have closed forms per
segment; the byte-weighted CDF of Fig. 8's "Bytes" curves is derived
analytically as well.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class FlowSizeDistribution:
    """A piecewise-linear flow-size CDF.

    ``points`` is a sequence of (size_bytes, cdf) pairs with strictly
    increasing sizes and non-decreasing cdf values ending at 1.0.  Between
    points the CDF is linear in size (the convention used by the published
    simulation harnesses for these workloads).
    """

    name: str
    points: tuple[tuple[float, float], ...]

    def __post_init__(self) -> None:
        if len(self.points) < 2:
            raise ValueError("need at least two CDF points")
        sizes = [p[0] for p in self.points]
        cdfs = [p[1] for p in self.points]
        if any(b <= a for a, b in zip(sizes, sizes[1:])):
            raise ValueError(f"sizes must be strictly increasing: {sizes}")
        if any(b < a for a, b in zip(cdfs, cdfs[1:])):
            raise ValueError(f"cdf must be non-decreasing: {cdfs}")
        if abs(cdfs[-1] - 1.0) > 1e-9:
            raise ValueError(f"cdf must end at 1.0, got {cdfs[-1]}")
        if cdfs[0] < 0:
            raise ValueError("cdf values must be non-negative")

    # -- sampling -------------------------------------------------------------

    def sample(self, rng: np.random.Generator) -> int:
        """Draw one flow size in bytes by inverse-transform sampling."""
        return int(self.quantile(float(rng.uniform())))

    def sample_many(self, rng: np.random.Generator, count: int) -> np.ndarray:
        """Draw ``count`` flow sizes as an integer array (vectorized)."""
        u = rng.uniform(size=count)
        cdfs = np.array([p[1] for p in self.points])
        sizes = np.array([p[0] for p in self.points])
        return np.maximum(1, np.interp(u, cdfs, sizes).astype(np.int64))

    def quantile(self, u: float) -> float:
        """Inverse CDF: the flow size at cumulative probability ``u``."""
        if not 0.0 <= u <= 1.0:
            raise ValueError(f"u must be in [0, 1], got {u}")
        cdfs = [p[1] for p in self.points]
        if u <= cdfs[0]:
            return max(1.0, self.points[0][0])
        index = bisect.bisect_left(cdfs, u)
        (s0, c0), (s1, c1) = self.points[index - 1], self.points[index]
        if c1 == c0:
            return s1
        return s0 + (s1 - s0) * (u - c0) / (c1 - c0)

    # -- moments ---------------------------------------------------------------

    def mean(self) -> float:
        """E[S] in bytes (closed form per linear segment)."""
        total = self.points[0][0] * self.points[0][1]
        for (s0, c0), (s1, c1) in zip(self.points, self.points[1:]):
            total += (c1 - c0) * (s0 + s1) / 2.0
        return total

    def second_moment(self) -> float:
        """E[S^2] (closed form: uniform density within each segment)."""
        total = self.points[0][0] ** 2 * self.points[0][1]
        for (s0, c0), (s1, c1) in zip(self.points, self.points[1:]):
            total += (c1 - c0) * (s0 * s0 + s0 * s1 + s1 * s1) / 3.0
        return total

    def coefficient_of_variation(self) -> float:
        """σ_S / E[S] — the workload "heaviness" factor of Theorem 2."""
        mean = self.mean()
        variance = self.second_moment() - mean * mean
        return float(np.sqrt(max(variance, 0.0)) / mean)

    # -- byte-weighted views (the "Bytes" curves of Fig. 8) ----------------------

    def byte_fraction_below(self, size: float) -> float:
        """Fraction of all bytes carried by flows of size ≤ ``size``."""
        total = self.mean()
        if size <= self.points[0][0]:
            return (min(size, self.points[0][0]) * self.points[0][1]) / total
        acc = self.points[0][0] * self.points[0][1]
        for (s0, c0), (s1, c1) in zip(self.points, self.points[1:]):
            if size >= s1:
                acc += (c1 - c0) * (s0 + s1) / 2.0
                continue
            if size > s0:
                # Uniform density within the segment: integrate s over [s0, size].
                fraction = (size - s0) / (s1 - s0)
                acc += (c1 - c0) * fraction * (s0 + size) / 2.0
            break
        return acc / total

    def byte_median(self) -> float:
        """The flow size below which half of all bytes lie (Fig. 8, §5.2.1)."""
        low = self.points[0][0]
        high = self.points[-1][0]
        for _ in range(200):
            mid = (low + high) / 2.0
            if self.byte_fraction_below(mid) < 0.5:
                low = mid
            else:
                high = mid
        return (low + high) / 2.0


# ---------------------------------------------------------------------------
# The three published workloads.
# ---------------------------------------------------------------------------

#: Enterprise workload (paper Fig. 8a, measured in the authors' datacenters).
#: Mostly small flows; ~50% of bytes from flows below ~35 MB.
ENTERPRISE = FlowSizeDistribution(
    "enterprise",
    (
        (100.0, 0.10),
        (1_000.0, 0.35),
        (10_000.0, 0.60),
        (100_000.0, 0.77),
        (1_000_000.0, 0.88),
        (10_000_000.0, 0.96),
        (35_000_000.0, 0.99),
        (100_000_000.0, 0.998),
        (500_000_000.0, 1.0),
    ),
)

#: Data-mining workload (paper Fig. 8b, from VL2 [18]).  Extremely heavy
#: tail: ~95% of bytes in the ~3.6% of flows larger than 35 MB.
DATA_MINING = FlowSizeDistribution(
    "data-mining",
    (
        (100.0, 0.12),
        (300.0, 0.30),
        (1_000.0, 0.50),
        (2_000.0, 0.60),
        (10_000.0, 0.71),
        (100_000.0, 0.80),
        (1_000_000.0, 0.90),
        (10_000_000.0, 0.955),
        (35_000_000.0, 0.964),
        (100_000_000.0, 0.985),
        (1_000_000_000.0, 1.0),
    ),
)

#: Web-search workload (DCTCP [4]), used by the large-scale sims (Fig. 15).
WEB_SEARCH = FlowSizeDistribution(
    "web-search",
    (
        (6_000.0, 0.15),
        (13_000.0, 0.20),
        (19_000.0, 0.30),
        (33_000.0, 0.40),
        (53_000.0, 0.53),
        (133_000.0, 0.60),
        (667_000.0, 0.70),
        (1_333_000.0, 0.80),
        (3_333_000.0, 0.90),
        (6_667_000.0, 0.97),
        (20_000_000.0, 1.0),
    ),
)

#: Hadoop workload (approximate, after the MapReduce-cluster traces used by
#: the post-CONGA flowlet literature: mostly mice with a modest elephant
#: tail).  Not part of the paper's evaluation; available to scenarios that
#: sweep beyond it.
HADOOP = FlowSizeDistribution(
    "hadoop",
    (
        (130.0, 0.20),
        (500.0, 0.30),
        (1_000.0, 0.40),
        (2_000.0, 0.50),
        (4_000.0, 0.60),
        (8_000.0, 0.70),
        (38_000.0, 0.80),
        (120_000.0, 0.90),
        (1_000_000.0, 0.99),
        (30_000_000.0, 1.0),
    ),
)

WORKLOADS = {
    dist.name: dist for dist in (ENTERPRISE, DATA_MINING, WEB_SEARCH, HADOOP)
}

#: Names shipped with the package (present in every process); everything
#: else in :data:`WORKLOADS` was added at runtime via
#: :func:`register_workload` and must be re-registered in worker processes
#: (the subprocess sweep backend does this through its init handshake).
BUILTIN_WORKLOAD_NAMES = frozenset(WORKLOADS)


def register_workload(
    dist: FlowSizeDistribution, *, replace: bool = False
) -> FlowSizeDistribution:
    """Add ``dist`` to the workload registry under ``dist.name``.

    The sanctioned write point for :data:`WORKLOADS` (the S203 lint rule
    rejects raw dict writes).  Re-registering an identical distribution is
    a no-op so scenario loads stay idempotent; registering a *different*
    distribution under an existing name raises unless ``replace=True``.
    Built-in names can never be replaced — specs referencing them must
    mean the same thing in every process.
    """
    existing = WORKLOADS.get(dist.name)
    if existing is not None:
        if existing == dist:
            return dist
        if not replace or dist.name in BUILTIN_WORKLOAD_NAMES:
            raise ValueError(
                f"workload {dist.name!r} is already registered with a "
                "different CDF; pick another name"
                + ("" if dist.name in BUILTIN_WORKLOAD_NAMES
                   else " or pass replace=True")
            )
    WORKLOADS[dist.name] = dist  # repro-lint: ignore[S203] -- the sanctioned write point
    return dist


__all__ = [
    "BUILTIN_WORKLOAD_NAMES",
    "DATA_MINING",
    "ENTERPRISE",
    "FlowSizeDistribution",
    "HADOOP",
    "WEB_SEARCH",
    "WORKLOADS",
    "register_workload",
]
