"""Empirical workloads: enterprise, data-mining, and web-search flow sizes."""

from repro.workloads.distributions import (
    DATA_MINING,
    ENTERPRISE,
    FlowSizeDistribution,
    WEB_SEARCH,
    WORKLOADS,
)

__all__ = [
    "DATA_MINING",
    "ENTERPRISE",
    "FlowSizeDistribution",
    "WEB_SEARCH",
    "WORKLOADS",
]
