"""Empirical workloads: enterprise, data-mining, web-search, hadoop CDFs."""

from repro.workloads.distributions import (
    BUILTIN_WORKLOAD_NAMES,
    DATA_MINING,
    ENTERPRISE,
    FlowSizeDistribution,
    HADOOP,
    WEB_SEARCH,
    WORKLOADS,
    register_workload,
)

__all__ = [
    "BUILTIN_WORKLOAD_NAMES",
    "DATA_MINING",
    "ENTERPRISE",
    "FlowSizeDistribution",
    "HADOOP",
    "WEB_SEARCH",
    "WORKLOADS",
    "register_workload",
]
