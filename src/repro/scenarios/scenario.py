"""Declarative scenario values: a named, hashable sweep description.

A :class:`Scenario` is the value-object face of "one figure's worth of
experiments": a template :class:`~repro.apps.spec.ExperimentSpec` plus the
grid axes swept over it (schemes, workloads, loads, seeds) and any inline
workload CDFs the scenario defines for itself.  It compiles to the exact
:func:`repro.runner.sweep_grid` product a hand-written benchmark would
build — same specs, same content hashes — so a scenario never invalidates
the ``.repro-cache/`` entries of the Python code it replaces.

Seeds come either as an explicit tuple or as a :class:`SeedPlan`, which
derives replicate seeds from a base seed through
:func:`repro.runner.derive_seeds` — the same named-stream discipline the
simulator uses, so a scenario file pins its seed list on every machine.

Scenarios are frozen dataclasses, so they hash, compare, and pickle like
every other spec value in the repo.  The YAML front end lives in
:mod:`repro.scenarios.loader`.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field

from repro.apps.spec import ExperimentSpec, _canonical, get_workload
from repro.runner.sweep import derive_seeds, sweep_grid
from repro.workloads import FlowSizeDistribution, register_workload


@dataclass(frozen=True)
class SeedPlan:
    """Replicate seeds derived from a base seed, as a value.

    ``SeedPlan(base=31, count=5)`` resolves to the same five seeds
    :func:`repro.runner.derive_seeds` would return for that base — on any
    machine, in any process — so a scenario file can ask for "5 replicates
    of seed 31" without hard-coding the derived list.
    """

    base: int
    count: int
    stream: str = "sweep-seeds"

    def __post_init__(self) -> None:
        if self.count < 1:
            raise ValueError(f"need at least one seed, got count={self.count}")

    def resolve(self) -> tuple[int, ...]:
        """The concrete seed list this plan describes."""
        return tuple(derive_seeds(self.base, self.count, self.stream))


@dataclass(frozen=True)
class Scenario:
    """A named, frozen description of one sweep over a spec template.

    Grid axes left as ``None`` keep the template's value (exactly like
    :func:`repro.runner.sweep_grid`, which :meth:`compile` delegates to).
    ``defined_workloads`` carries inline CDFs the scenario introduces;
    :meth:`validate` registers them so the compiled specs can resolve
    their workload names.  ``params`` is a free-form JSON mapping for
    benchmark-specific knobs (Incast fan-ins, probe sizes, ...) that do
    not map onto :class:`ExperimentSpec` fields; it rides along in the
    scenario hash but never reaches the compiled specs.

    ``source`` records where the scenario was loaded from (for error
    messages and provenance) and is excluded from equality and
    :meth:`content_hash` — the same scenario hashes identically wherever
    its file lives.
    """

    name: str
    template: ExperimentSpec
    description: str = ""
    schemes: tuple[str, ...] | None = None
    workloads: tuple[str, ...] | None = None
    loads: tuple[float, ...] | None = None
    seeds: tuple[int, ...] | SeedPlan | None = None
    defined_workloads: tuple[FlowSizeDistribution, ...] = ()
    params_json: str = "{}"
    source: str | None = field(default=None, compare=False)

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("a scenario needs a non-empty name")
        if self.schemes is not None:
            object.__setattr__(self, "schemes", tuple(self.schemes))
        if self.workloads is not None:
            object.__setattr__(self, "workloads", tuple(self.workloads))
        if self.loads is not None:
            object.__setattr__(
                self, "loads", tuple(float(x) for x in self.loads)
            )
        if self.seeds is not None and not isinstance(self.seeds, SeedPlan):
            object.__setattr__(
                self, "seeds", tuple(int(x) for x in self.seeds)
            )
        object.__setattr__(
            self, "defined_workloads", tuple(self.defined_workloads)
        )
        json.loads(self.params_json)  # must be valid JSON

    # -- free-form knobs ------------------------------------------------------

    @property
    def params(self) -> dict:
        """The scenario's free-form benchmark parameters, as a dict."""
        return json.loads(self.params_json)

    # -- grid -----------------------------------------------------------------

    def seed_list(self) -> tuple[int, ...] | None:
        """The concrete seed axis (resolving a :class:`SeedPlan` if set)."""
        if isinstance(self.seeds, SeedPlan):
            return self.seeds.resolve()
        return self.seeds

    def point_count(self) -> int:
        """How many specs :meth:`compile` will produce."""
        axes = (
            self.schemes,
            self.workloads,
            self.loads,
            self.seed_list(),
        )
        count = 1
        for axis in axes:
            count *= len(axis) if axis is not None else 1
        return count

    def validate(self) -> None:
        """Check the scenario resolves: workloads registered, names known.

        Registers ``defined_workloads`` (idempotently — re-validating is
        free) and resolves every scheme and workload name the grid will
        reference, so a bad scenario fails here instead of mid-sweep.
        """
        from repro.apps.experiment import get_scheme

        for dist in self.defined_workloads:
            register_workload(dist)
        for scheme in self.schemes or (self.template.scheme,):
            get_scheme(scheme)
        for workload in self.workloads or (self.template.workload,):
            get_workload(workload)
        seeds = self.seed_list()
        if seeds is not None and not seeds:
            raise ValueError("the seeds axis must not be empty")
        for axis_name in ("schemes", "workloads", "loads"):
            axis = getattr(self, axis_name)
            if axis is not None and not axis:
                raise ValueError(f"the {axis_name} axis must not be empty")

    def compile(self) -> list[ExperimentSpec]:
        """The scenario's spec grid — bit-identical to a hand-built sweep.

        Delegates to :func:`repro.runner.sweep_grid` over the same
        template, so a scenario compiles to *exactly* the specs (and
        content hashes) the equivalent Python benchmark builds; existing
        cache entries stay reachable.
        """
        self.validate()
        return sweep_grid(
            self.template,
            schemes=self.schemes,
            loads=self.loads,
            seeds=self.seed_list(),
            workloads=self.workloads,
        )

    def grid_hashes(self) -> tuple[str, ...]:
        """Content hash of every compiled spec, in grid order."""
        return tuple(spec.content_hash() for spec in self.compile())

    def grid_digest(self) -> str:
        """One stable digest over the whole compiled grid.

        Changes iff any compiled spec's content hash changes — the number
        CI pins to detect accidental grid drift in committed scenarios.
        """
        digest = hashlib.sha256()
        for value in self.grid_hashes():
            digest.update(value.encode())
        return digest.hexdigest()

    # -- identity -------------------------------------------------------------

    def content_hash(self) -> str:
        """Stable content address of the scenario value itself.

        Unlike :meth:`ExperimentSpec.content_hash` this is *not* salted
        with the package version: it identifies the description, not the
        results (those are keyed per-spec).  ``source`` is excluded.
        """
        payload = _canonical(self)
        payload.pop("source")
        blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(blob.encode()).hexdigest()


__all__ = ["Scenario", "SeedPlan"]
