"""YAML front end for :class:`repro.scenarios.Scenario`.

The schema mirrors the value objects one-to-one (see EXPERIMENTS.md,
"Authoring scenarios")::

    name: fig9-enterprise
    description: Figure 9 FCT sweep over the enterprise workload.
    template:
      scheme: ecmp            # placeholder; the grid overwrites swept axes
      workload: enterprise
      load: 0.5
      seed: 31
      num_flows: 250
      size_scale: 0.05
      deadline: 20s           # durations take ns/us/ms/s suffixes
      tcp: {min_rto: 200ms}
      topology: {hosts_per_leaf: 32, host_queue_bytes: 8MB}
      faults: ["link_down@0.1s:l1-s1"]
    grid:
      schemes: [ecmp, conga-flow, conga, mptcp]
      loads: [0.3, 0.5, 0.7, 0.9]
      seeds: {base: 31, count: 5}   # or an explicit list: [1, 2, 3]
    workloads:                # inline CDFs, registered on validate()
      my-mix:
        points: [[1000, 0.5], [1000000, 1.0]]
    params:                   # free-form knobs for benchmark code
      fan_ins: [1, 7, 15]

A ``topology`` section containing any multipod-only key (``num_pods``,
``leaves_per_pod``, ``spines_per_pod``, ``num_cores``, ``core_rate_bps``)
compiles a 3-tier :class:`~repro.topology.multipod.MultiPodConfig` instead
of a :class:`LeafSpineConfig`, and fault targets — including spine↔core
links (``s1-c0``) and core switches — are range-checked against the
compiled topology at load time.

Every loader error is a :class:`ScenarioError` carrying the source file
and the YAML line of the offending key — unknown keys, malformed CDFs,
bad units, unresolvable scheme/workload names — so a typo'd scenario
fails with ``file.yaml:12: ...`` instead of a stack trace mid-sweep.

PyYAML is an optional dependency: everything here is import-gated so the
rest of the package works without it.
"""

from __future__ import annotations

import json
import re
from pathlib import Path
from typing import Any

from repro.apps.spec import (
    ExperimentSpec,
    ImbalanceMonitorSpec,
    QueueMonitorSpec,
    UnknownWorkloadError,
    get_workload,
)
from repro.faults.events import parse_fault
from repro.obs.config import ObsSpec
from repro.scenarios.scenario import Scenario, SeedPlan
from repro.topology.leafspine import LeafSpineConfig
from repro.topology.multipod import MultiPodConfig
from repro.transport.tcp import TcpParams
from repro.units import gbps, kilobytes, mbps, megabytes, microseconds
from repro.units import gigabytes, milliseconds, nanoseconds, seconds
from repro.workloads import FlowSizeDistribution, register_workload

Path_ = str | Path

#: Dotted location inside the YAML document, e.g. ("grid", "schemes", "1").
_KeyPath = tuple[str, ...]


class ScenarioError(ValueError):
    """A scenario file failed to load, with file/line context attached.

    ``source`` is the file path (None for in-memory mappings), ``line``
    the 1-based YAML line of the offending key when known, and ``key``
    the dotted key path.  ``str(exc)`` renders ``file.yaml:12: message``.
    """

    def __init__(
        self,
        message: str,
        *,
        source: str | None = None,
        line: int | None = None,
        key: str | None = None,
    ) -> None:
        self.message = message
        self.source = source
        self.line = line
        self.key = key
        prefix = ""
        if source is not None:
            prefix = source if line is None else f"{source}:{line}"
            prefix += ": "
        elif line is not None:
            prefix = f"line {line}: "
        super().__init__(prefix + message)


def _yaml():
    """The gated PyYAML import (an optional dependency)."""
    try:
        import yaml
    except ImportError as exc:  # pragma: no cover - env without pyyaml
        raise ScenarioError(
            "loading scenario files requires the optional PyYAML dependency "
            "(pip install pyyaml)"
        ) from exc
    return yaml


def _line_map(yaml_module, text: str) -> dict[_KeyPath, int]:
    """Map every YAML key path to its 1-based source line.

    Built from the composed node tree (which keeps source marks), keyed
    by dotted paths with sequence indices stringified — the same paths
    the loader reports in errors.
    """
    lines: dict[_KeyPath, int] = {}
    try:
        root = yaml_module.compose(text)
    except yaml_module.YAMLError:
        return lines
    if root is None:
        return lines

    def walk(node, path: _KeyPath) -> None:
        lines.setdefault(path, node.start_mark.line + 1)
        if isinstance(node, yaml_module.MappingNode):
            for key_node, value_node in node.value:
                child = path + (str(key_node.value),)
                lines[child] = key_node.start_mark.line + 1
                walk(value_node, child)
        elif isinstance(node, yaml_module.SequenceNode):
            for index, item in enumerate(node.value):
                walk(item, path + (str(index),))

    walk(root, ())
    return lines


class _Context:
    """Threads (source, line-map) through the loader for error reporting."""

    def __init__(
        self, source: str | None, lines: dict[_KeyPath, int] | None
    ) -> None:
        self.source = source
        self.lines = lines or {}

    def line(self, path: _KeyPath) -> int | None:
        """The best-known line for ``path`` (longest known prefix)."""
        probe = path
        while True:
            if probe in self.lines:
                return self.lines[probe]
            if not probe:
                return None
            probe = probe[:-1]

    def error(self, message: str, path: _KeyPath) -> ScenarioError:
        return ScenarioError(
            message,
            source=self.source,
            line=self.line(path),
            key=".".join(path) or None,
        )


# -- field-level parsers ------------------------------------------------------

_DURATION_UNITS = {
    "ns": nanoseconds,
    "us": microseconds,
    "µs": microseconds,
    "ms": milliseconds,
    "s": seconds,
}
_SIZE_UNITS = {"b": 1, "kb": None, "mb": None, "gb": None}
_RATE_RE = re.compile(r"^\s*([0-9]+(?:\.[0-9]+)?)\s*([gm])bps\s*$", re.I)
_DURATION_RE = re.compile(r"^\s*([0-9]+(?:\.[0-9]+)?)\s*(ns|us|µs|ms|s)\s*$")
_SIZE_RE = re.compile(r"^\s*([0-9]+(?:\.[0-9]+)?)\s*([kmg]?b)\s*$", re.I)


def _as_int(value: Any, path: _KeyPath, ctx: _Context) -> int:
    if isinstance(value, bool) or not isinstance(value, int):
        raise ctx.error(f"expected an integer, got {value!r}", path)
    return value


def _as_number(value: Any, path: _KeyPath, ctx: _Context) -> float:
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise ctx.error(f"expected a number, got {value!r}", path)
    return float(value)


def _as_str(value: Any, path: _KeyPath, ctx: _Context) -> str:
    if not isinstance(value, str):
        raise ctx.error(f"expected a string, got {value!r}", path)
    return value


def _as_list(value: Any, path: _KeyPath, ctx: _Context) -> list:
    if not isinstance(value, list):
        raise ctx.error(f"expected a list, got {value!r}", path)
    return value


def _as_mapping(value: Any, path: _KeyPath, ctx: _Context) -> dict:
    if not isinstance(value, dict):
        raise ctx.error(f"expected a mapping, got {value!r}", path)
    return value


def _check_keys(
    mapping: dict, allowed: frozenset[str], path: _KeyPath, ctx: _Context
) -> None:
    for key in mapping:
        if str(key) not in allowed:
            known = ", ".join(sorted(allowed))
            raise ctx.error(
                f"unknown key {key!r}; allowed keys: {known}",
                path + (str(key),),
            )


def _parse_duration(value: Any, path: _KeyPath, ctx: _Context) -> int:
    """A duration in integer ticks: a raw int (ns) or ``"200ms"``-style."""
    if isinstance(value, bool):
        raise ctx.error(f"expected a duration, got {value!r}", path)
    if isinstance(value, int):
        return value
    if isinstance(value, str):
        match = _DURATION_RE.match(value)
        if match:
            return _DURATION_UNITS[match.group(2)](float(match.group(1)))
    raise ctx.error(
        f"expected a duration (integer ns or e.g. '200ms', '0.1s'), "
        f"got {value!r}",
        path,
    )


def _parse_size(value: Any, path: _KeyPath, ctx: _Context) -> int:
    """A byte size: a raw int or ``"100KB"`` / ``"8MB"`` / ``"1GB"``."""
    if isinstance(value, bool):
        raise ctx.error(f"expected a byte size, got {value!r}", path)
    if isinstance(value, int):
        return value
    if isinstance(value, str):
        match = _SIZE_RE.match(value)
        if match:
            amount = float(match.group(1))
            unit = match.group(2).lower()
            if unit == "b":
                return int(amount)
            return {"kb": kilobytes, "mb": megabytes, "gb": gigabytes}[unit](
                amount
            )
    raise ctx.error(
        f"expected a byte size (integer bytes or e.g. '100KB', '8MB'), "
        f"got {value!r}",
        path,
    )


def _parse_rate(value: Any, path: _KeyPath, ctx: _Context) -> int:
    """A link rate: a raw int (bps) or ``"40Gbps"`` / ``"100Mbps"``."""
    if isinstance(value, bool):
        raise ctx.error(f"expected a rate, got {value!r}", path)
    if isinstance(value, int):
        return value
    if isinstance(value, str):
        match = _RATE_RE.match(value)
        if match:
            maker = gbps if match.group(2).lower() == "g" else mbps
            return maker(float(match.group(1)))
    raise ctx.error(
        f"expected a rate (integer bps or e.g. '40Gbps', '100Mbps'), "
        f"got {value!r}",
        path,
    )


# -- section builders ---------------------------------------------------------

_TOP_KEYS = frozenset(
    {"name", "description", "template", "grid", "params", "workloads"}
)
_TEMPLATE_KEYS = frozenset(
    {
        "scheme", "workload", "load", "seed", "num_flows", "size_scale",
        "clients", "failed_links", "faults", "deadline", "topology", "tcp",
        "queue_monitor", "imbalance_monitor", "obs",
    }
)
_GRID_KEYS = frozenset({"schemes", "workloads", "loads", "seeds"})
_SEED_PLAN_KEYS = frozenset({"base", "count", "stream"})
_TOPOLOGY_INT_KEYS = (
    "num_leaves", "num_spines", "hosts_per_leaf", "links_per_pair",
)
_TOPOLOGY_KEYS = frozenset(
    _TOPOLOGY_INT_KEYS
    + (
        "host_rate_bps", "fabric_rate_bps", "host_queue_bytes",
        "fabric_queue_bytes", "ecn_threshold_bytes", "propagation_delay",
    )
)
_MULTIPOD_INT_KEYS = (
    "num_pods", "leaves_per_pod", "spines_per_pod", "hosts_per_leaf",
    "num_cores", "links_per_pair",
)
_MULTIPOD_KEYS = frozenset(
    _MULTIPOD_INT_KEYS
    + (
        "host_rate_bps", "fabric_rate_bps", "core_rate_bps",
        "host_queue_bytes", "fabric_queue_bytes", "ecn_threshold_bytes",
        "propagation_delay",
    )
)
#: Keys only a 3-tier topology has; any of them flips the ``topology``
#: section to :class:`MultiPodConfig`.
_MULTIPOD_ONLY_KEYS = frozenset(
    {"num_pods", "leaves_per_pod", "spines_per_pod", "num_cores", "core_rate_bps"}
)
_TCP_INT_KEYS = (
    "mss", "initial_cwnd_segments", "dupack_threshold", "receive_window",
    "ack_every",
)
_TCP_DURATION_KEYS = ("min_rto", "max_rto", "initial_rto")
_TCP_KEYS = frozenset(_TCP_INT_KEYS + _TCP_DURATION_KEYS)
_QUEUE_MONITOR_KEYS = frozenset(
    {"tier", "direction", "leaf", "spine", "interval"}
)
_IMBALANCE_MONITOR_KEYS = frozenset({"leaf", "interval"})
_OBS_KEYS = frozenset({"categories", "buffer_limit", "timeline", "trace_path"})
_TIMELINE_KEYS = frozenset({"interval", "limit"})
_WORKLOAD_KEYS = frozenset({"points"})


def _build_topology(
    data: dict, path: _KeyPath, ctx: _Context
) -> LeafSpineConfig | MultiPodConfig:
    """Build the topology config; multipod-only keys select the 3-tier one."""
    multipod = any(str(key) in _MULTIPOD_ONLY_KEYS for key in data)
    if multipod:
        _check_keys(data, _MULTIPOD_KEYS, path, ctx)
        int_keys: tuple[str, ...] = _MULTIPOD_INT_KEYS
        rate_keys = ("host_rate_bps", "fabric_rate_bps", "core_rate_bps")
    else:
        _check_keys(data, _TOPOLOGY_KEYS, path, ctx)
        int_keys = _TOPOLOGY_INT_KEYS
        rate_keys = ("host_rate_bps", "fabric_rate_bps")
    kwargs: dict[str, Any] = {}
    for key, value in data.items():
        where = path + (key,)
        if key in int_keys:
            kwargs[key] = _as_int(value, where, ctx)
        elif key in rate_keys:
            kwargs[key] = _parse_rate(value, where, ctx)
        elif key in (
            "host_queue_bytes", "fabric_queue_bytes", "ecn_threshold_bytes"
        ):
            kwargs[key] = (
                None if value is None else _parse_size(value, where, ctx)
            )
        else:  # propagation_delay
            kwargs[key] = _parse_duration(value, where, ctx)
    try:
        return MultiPodConfig(**kwargs) if multipod else LeafSpineConfig(**kwargs)
    except ValueError as exc:
        raise ctx.error(str(exc), path) from exc


def _build_tcp(data: dict, path: _KeyPath, ctx: _Context) -> TcpParams:
    _check_keys(data, _TCP_KEYS, path, ctx)
    kwargs: dict[str, Any] = {}
    for key, value in data.items():
        where = path + (key,)
        if key in _TCP_DURATION_KEYS:
            kwargs[key] = _parse_duration(value, where, ctx)
        else:
            kwargs[key] = _as_int(value, where, ctx)
    try:
        return TcpParams(**kwargs)
    except ValueError as exc:
        raise ctx.error(str(exc), path) from exc


def _build_queue_monitor(
    data: dict, path: _KeyPath, ctx: _Context
) -> QueueMonitorSpec:
    _check_keys(data, _QUEUE_MONITOR_KEYS, path, ctx)
    kwargs: dict[str, Any] = {}
    if "tier" in data:
        kwargs["tier"] = _as_str(data["tier"], path + ("tier",), ctx)
    if "direction" in data:
        kwargs["direction"] = _as_str(
            data["direction"], path + ("direction",), ctx
        )
    elif "tier" in data:
        # The direction is implied by the tier; fill it so scenario authors
        # only spell it out when they want the readability.
        implied = QueueMonitorSpec._DIRECTIONS.get(kwargs["tier"])
        if implied is not None:
            kwargs["direction"] = implied
    for key in ("leaf", "spine"):
        if key in data and data[key] is not None:
            kwargs[key] = _as_int(data[key], path + (key,), ctx)
    if "interval" in data:
        kwargs["interval"] = _parse_duration(
            data["interval"], path + ("interval",), ctx
        )
    try:
        return QueueMonitorSpec(**kwargs)
    except ValueError as exc:
        raise ctx.error(str(exc), path) from exc


def _build_imbalance_monitor(
    data: dict, path: _KeyPath, ctx: _Context
) -> ImbalanceMonitorSpec:
    _check_keys(data, _IMBALANCE_MONITOR_KEYS, path, ctx)
    kwargs: dict[str, Any] = {}
    if "leaf" in data:
        kwargs["leaf"] = _as_int(data["leaf"], path + ("leaf",), ctx)
    if "interval" in data and data["interval"] is not None:
        kwargs["interval"] = _parse_duration(
            data["interval"], path + ("interval",), ctx
        )
    try:
        return ImbalanceMonitorSpec(**kwargs)
    except ValueError as exc:
        raise ctx.error(str(exc), path) from exc


def _build_obs(data: dict, path: _KeyPath, ctx: _Context) -> ObsSpec:
    _check_keys(data, _OBS_KEYS, path, ctx)
    kwargs: dict[str, Any] = {}
    if "categories" in data:
        value = data["categories"]
        if isinstance(value, str):
            kwargs["categories"] = value
        else:
            kwargs["categories"] = tuple(
                _as_str(item, path + ("categories", str(i)), ctx)
                for i, item in enumerate(
                    _as_list(value, path + ("categories",), ctx)
                )
            )
    if "buffer_limit" in data:
        kwargs["buffer_limit"] = _as_int(
            data["buffer_limit"], path + ("buffer_limit",), ctx
        )
    if "timeline" in data and data["timeline"] not in (None, False):
        from repro.obs.timeline import TimelineSpec

        where = path + ("timeline",)
        timeline_kwargs: dict[str, Any] = {}
        if data["timeline"] is True:
            pass  # `timeline: true` = collector with default cadence/bounds
        else:
            mapping = _as_mapping(data["timeline"], where, ctx)
            _check_keys(mapping, _TIMELINE_KEYS, where, ctx)
            if "interval" in mapping:
                timeline_kwargs["interval"] = _parse_duration(
                    mapping["interval"], where + ("interval",), ctx
                )
            if "limit" in mapping:
                timeline_kwargs["limit"] = _as_int(
                    mapping["limit"], where + ("limit",), ctx
                )
        try:
            kwargs["timeline"] = TimelineSpec(**timeline_kwargs)
        except ValueError as exc:
            raise ctx.error(str(exc), where) from exc
    if "trace_path" in data and data["trace_path"] is not None:
        kwargs["trace_path"] = _as_str(
            data["trace_path"], path + ("trace_path",), ctx
        )
    try:
        return ObsSpec(**kwargs)
    except ValueError as exc:
        raise ctx.error(str(exc), path) from exc


def _validate_fault_targets(
    spec: ExperimentSpec, path: _KeyPath, ctx: _Context
) -> None:
    """Range-check every fault's target against the compiled topology.

    Resolves the template's topology (or the default scaled testbed) and
    rejects out-of-range leaf/spine/core indices — and core-tier targets
    aimed at a 2-tier fabric — at load time, with the fault's ``file:line``
    attached, instead of a mid-sweep stack trace from the injector.
    """
    from repro.faults.events import (
        FeedbackLoss,
        RandomLinkDowns,
        SwitchBlackout,
    )
    from repro.topology.leafspine import scaled_testbed

    config = spec.config if spec.config is not None else scaled_testbed()
    if isinstance(config, MultiPodConfig):
        num_leaves = config.num_pods * config.leaves_per_pod
        num_spines = config.num_pods * config.spines_per_pod
        num_cores = config.num_cores
    else:
        num_leaves = config.num_leaves
        num_spines = config.num_spines
        num_cores = 0
    links = config.links_per_pair

    def check(index: int, limit: int, what: str, where: _KeyPath, event) -> None:
        if not 0 <= index < limit:
            raise ctx.error(
                f"{what} {index} out of range for this topology "
                f"(0..{limit - 1}) in fault {event!r}",
                where,
            )

    def need_core(where: _KeyPath, event) -> None:
        if num_cores == 0:
            raise ctx.error(
                "core-tier fault targets need a multipod topology "
                f"(this scenario compiles a 2-tier fabric) in fault {event!r}",
                where,
            )

    for i, event in enumerate(spec.faults):
        where = path + ("faults", str(i))
        if isinstance(event, RandomLinkDowns):
            if event.tier == "core":
                need_core(where, event)
            continue
        if isinstance(event, SwitchBlackout):
            if event.kind == "core":
                need_core(where, event)
            limit = {
                "leaf": num_leaves, "spine": num_spines, "core": num_cores,
            }[event.kind]
            check(event.switch, limit, f"{event.kind} switch", where, event)
            continue
        if isinstance(event, FeedbackLoss):
            if event.leaf is not None:
                check(event.leaf, num_leaves, "leaf", where, event)
            continue
        # The Link* family: leaf↔spine or (when .core is set) spine↔core.
        if event.core is not None:
            need_core(where, event)
            check(event.spine, num_spines, "spine", where, event)
            check(event.core, num_cores, "core", where, event)
        else:
            check(event.leaf, num_leaves, "leaf", where, event)
            check(event.spine, num_spines, "spine", where, event)
        check(event.which, links, "parallel link", where, event)


def _build_template(
    data: dict, path: _KeyPath, ctx: _Context
) -> ExperimentSpec:
    _check_keys(data, _TEMPLATE_KEYS, path, ctx)
    kwargs: dict[str, Any] = {}
    for key in ("scheme", "workload"):
        if key in data:
            kwargs[key] = _as_str(data[key], path + (key,), ctx)
    if "load" in data:
        kwargs["load"] = _as_number(data["load"], path + ("load",), ctx)
    for key in ("seed", "num_flows"):
        if key in data:
            kwargs[key] = _as_int(data[key], path + (key,), ctx)
    if "size_scale" in data:
        kwargs["size_scale"] = _as_number(
            data["size_scale"], path + ("size_scale",), ctx
        )
    if "clients" in data and data["clients"] is not None:
        clients = _as_list(data["clients"], path + ("clients",), ctx)
        kwargs["clients"] = tuple(
            _as_int(item, path + ("clients", str(i)), ctx)
            for i, item in enumerate(clients)
        )
    if "failed_links" in data:
        links = _as_list(data["failed_links"], path + ("failed_links",), ctx)
        parsed = []
        for i, link in enumerate(links):
            where = path + ("failed_links", str(i))
            triple = _as_list(link, where, ctx)
            if len(triple) != 3:
                raise ctx.error(
                    f"a failed link is [leaf, spine, which], got {link!r}",
                    where,
                )
            parsed.append(
                tuple(
                    _as_int(part, where + (str(j),), ctx)
                    for j, part in enumerate(triple)
                )
            )
        kwargs["failed_links"] = tuple(parsed)
    if "faults" in data:
        faults = []
        for i, text in enumerate(
            _as_list(data["faults"], path + ("faults",), ctx)
        ):
            where = path + ("faults", str(i))
            try:
                faults.append(
                    parse_fault(_as_str(text, where, ctx))
                )
            except ValueError as exc:
                raise ctx.error(str(exc), where) from exc
        kwargs["faults"] = tuple(faults)
    if "deadline" in data:
        kwargs["deadline"] = _parse_duration(
            data["deadline"], path + ("deadline",), ctx
        )
    if "topology" in data and data["topology"] is not None:
        kwargs["config"] = _build_topology(
            _as_mapping(data["topology"], path + ("topology",), ctx),
            path + ("topology",),
            ctx,
        )
    if "tcp" in data and data["tcp"] is not None:
        kwargs["tcp_params"] = _build_tcp(
            _as_mapping(data["tcp"], path + ("tcp",), ctx),
            path + ("tcp",),
            ctx,
        )
    if "queue_monitor" in data and data["queue_monitor"] is not None:
        kwargs["queue_monitor"] = _build_queue_monitor(
            _as_mapping(data["queue_monitor"], path + ("queue_monitor",), ctx),
            path + ("queue_monitor",),
            ctx,
        )
    if "imbalance_monitor" in data and data["imbalance_monitor"] is not None:
        kwargs["imbalance_monitor"] = _build_imbalance_monitor(
            _as_mapping(
                data["imbalance_monitor"], path + ("imbalance_monitor",), ctx
            ),
            path + ("imbalance_monitor",),
            ctx,
        )
    if "obs" in data and data["obs"] is not None:
        kwargs["obs"] = _build_obs(
            _as_mapping(data["obs"], path + ("obs",), ctx),
            path + ("obs",),
            ctx,
        )
    if "scheme" not in kwargs or "workload" not in kwargs or "load" not in kwargs:
        missing = [
            key for key in ("scheme", "workload", "load") if key not in kwargs
        ]
        raise ctx.error(
            f"template is missing required keys: {', '.join(missing)}", path
        )
    try:
        spec = ExperimentSpec(**kwargs)
    except (TypeError, ValueError) as exc:
        raise ctx.error(str(exc), path) from exc
    _validate_fault_targets(spec, path, ctx)
    return spec


def _build_seeds(
    value: Any, path: _KeyPath, ctx: _Context
) -> tuple[int, ...] | SeedPlan:
    if isinstance(value, dict):
        _check_keys(value, _SEED_PLAN_KEYS, path, ctx)
        if "base" not in value or "count" not in value:
            raise ctx.error(
                "a seed plan needs 'base' and 'count' (optionally 'stream')",
                path,
            )
        kwargs: dict[str, Any] = {
            "base": _as_int(value["base"], path + ("base",), ctx),
            "count": _as_int(value["count"], path + ("count",), ctx),
        }
        if "stream" in value:
            kwargs["stream"] = _as_str(
                value["stream"], path + ("stream",), ctx
            )
        try:
            return SeedPlan(**kwargs)
        except ValueError as exc:
            raise ctx.error(str(exc), path) from exc
    seeds = _as_list(value, path, ctx)
    return tuple(
        _as_int(item, path + (str(i),), ctx) for i, item in enumerate(seeds)
    )


def _build_workloads(
    data: dict, path: _KeyPath, ctx: _Context
) -> tuple[FlowSizeDistribution, ...]:
    dists = []
    for name, body in data.items():
        where = path + (str(name),)
        mapping = _as_mapping(body, where, ctx)
        _check_keys(mapping, _WORKLOAD_KEYS, where, ctx)
        if "points" not in mapping:
            raise ctx.error("an inline workload needs 'points'", where)
        raw_points = _as_list(mapping["points"], where + ("points",), ctx)
        points = []
        for i, pair in enumerate(raw_points):
            point_path = where + ("points", str(i))
            values = _as_list(pair, point_path, ctx)
            if len(values) != 2:
                raise ctx.error(
                    f"a CDF point is [size_bytes, cdf], got {pair!r}",
                    point_path,
                )
            points.append(
                (
                    _as_number(values[0], point_path + ("0",), ctx),
                    _as_number(values[1], point_path + ("1",), ctx),
                )
            )
        try:
            dists.append(FlowSizeDistribution(str(name), tuple(points)))
        except ValueError as exc:
            raise ctx.error(str(exc), where + ("points",)) from exc
    return tuple(dists)


def scenario_from_mapping(
    data: Any,
    *,
    source: str | None = None,
    lines: dict[_KeyPath, int] | None = None,
) -> Scenario:
    """Build and fully validate a :class:`Scenario` from parsed YAML data.

    Raises :class:`ScenarioError` — with ``source``/line context when
    available — for unknown keys, malformed values, invalid CDFs, and
    scheme/workload names that do not resolve.  The returned scenario is
    guaranteed compilable (its inline workloads are registered).
    """
    from repro.apps.experiment import UnknownSchemeError, get_scheme

    ctx = _Context(source, lines)
    mapping = _as_mapping(data, (), ctx)
    _check_keys(mapping, _TOP_KEYS, (), ctx)
    if "name" not in mapping:
        raise ctx.error("a scenario needs a 'name'", ())
    if "template" not in mapping:
        raise ctx.error("a scenario needs a 'template' section", ())
    name = _as_str(mapping["name"], ("name",), ctx)
    description = (
        _as_str(mapping["description"], ("description",), ctx)
        if "description" in mapping
        else ""
    )
    template = _build_template(
        _as_mapping(mapping["template"], ("template",), ctx),
        ("template",),
        ctx,
    )

    defined = ()
    if "workloads" in mapping and mapping["workloads"] is not None:
        defined = _build_workloads(
            _as_mapping(mapping["workloads"], ("workloads",), ctx),
            ("workloads",),
            ctx,
        )
        for i, dist in enumerate(defined):
            try:
                register_workload(dist)
            except ValueError as exc:
                raise ctx.error(str(exc), ("workloads", dist.name)) from exc

    axes: dict[str, Any] = {}
    if "grid" in mapping and mapping["grid"] is not None:
        grid = _as_mapping(mapping["grid"], ("grid",), ctx)
        _check_keys(grid, _GRID_KEYS, ("grid",), ctx)
        if "schemes" in grid:
            axes["schemes"] = tuple(
                _as_str(item, ("grid", "schemes", str(i)), ctx)
                for i, item in enumerate(
                    _as_list(grid["schemes"], ("grid", "schemes"), ctx)
                )
            )
        if "workloads" in grid:
            axes["workloads"] = tuple(
                _as_str(item, ("grid", "workloads", str(i)), ctx)
                for i, item in enumerate(
                    _as_list(grid["workloads"], ("grid", "workloads"), ctx)
                )
            )
        if "loads" in grid:
            axes["loads"] = tuple(
                _as_number(item, ("grid", "loads", str(i)), ctx)
                for i, item in enumerate(
                    _as_list(grid["loads"], ("grid", "loads"), ctx)
                )
            )
        if "seeds" in grid:
            axes["seeds"] = _build_seeds(grid["seeds"], ("grid", "seeds"), ctx)

    params_json = "{}"
    if "params" in mapping and mapping["params"] is not None:
        params = _as_mapping(mapping["params"], ("params",), ctx)
        try:
            params_json = json.dumps(params, sort_keys=True)
        except (TypeError, ValueError) as exc:
            raise ctx.error(
                f"params must be JSON-serializable: {exc}", ("params",)
            ) from exc

    # Resolve every referenced scheme and workload name now, with precise
    # locations, rather than letting compile() fail without context.
    for i, scheme in enumerate(axes.get("schemes") or ()):
        try:
            get_scheme(scheme)
        except UnknownSchemeError as exc:
            raise ctx.error(str(exc), ("grid", "schemes", str(i))) from exc
    if "schemes" not in axes:
        try:
            get_scheme(template.scheme)
        except UnknownSchemeError as exc:
            raise ctx.error(str(exc), ("template", "scheme")) from exc
    for i, workload in enumerate(axes.get("workloads") or ()):
        try:
            get_workload(workload)
        except UnknownWorkloadError as exc:
            raise ctx.error(str(exc), ("grid", "workloads", str(i))) from exc
    if "workloads" not in axes:
        try:
            get_workload(template.workload)
        except UnknownWorkloadError as exc:
            raise ctx.error(str(exc), ("template", "workload")) from exc

    try:
        scenario = Scenario(
            name=name,
            template=template,
            description=description,
            defined_workloads=defined,
            params_json=params_json,
            source=source,
            **axes,
        )
        scenario.validate()
    except ValueError as exc:
        if isinstance(exc, ScenarioError):
            raise
        raise ctx.error(str(exc), ()) from exc
    return scenario


def load_scenario(path: Path_) -> Scenario:
    """Load, validate, and return the scenario in a YAML file.

    Everything that can go wrong — unreadable file, YAML syntax error,
    schema violations, unresolvable names — raises :class:`ScenarioError`
    with the file (and line, when known) attached.
    """
    yaml = _yaml()
    path = Path(path)
    try:
        text = path.read_text()
    except OSError as exc:
        raise ScenarioError(
            f"cannot read scenario file: {exc}", source=str(path)
        ) from exc
    try:
        data = yaml.safe_load(text)
    except yaml.YAMLError as exc:
        line = None
        mark = getattr(exc, "problem_mark", None)
        if mark is not None:
            line = mark.line + 1
        raise ScenarioError(
            f"invalid YAML: {exc}", source=str(path), line=line
        ) from exc
    return scenario_from_mapping(
        data, source=str(path), lines=_line_map(yaml, text)
    )


__all__ = ["ScenarioError", "load_scenario", "scenario_from_mapping"]
