"""Declarative experiment scenarios: YAML-authored, hash-stable sweeps.

A :class:`Scenario` names a sweep — a template
:class:`~repro.apps.ExperimentSpec` plus grid axes and optional inline
workload CDFs — and compiles to exactly the spec grid a hand-written
benchmark would build (same content hashes, same cache keys).  Scenarios
load from YAML via :func:`load_scenario`, which reports every problem as
a :class:`ScenarioError` with file/line context.

The committed exemplars live in ``scenarios/*.yaml`` at the repo root;
run them with ``conga-repro scenario run`` or hand the compiled grid to
:class:`repro.runner.Dispatcher` / :func:`repro.runner.run_sweep`.
"""

from repro.scenarios.loader import (
    ScenarioError,
    load_scenario,
    scenario_from_mapping,
)
from repro.scenarios.scenario import Scenario, SeedPlan

__all__ = [
    "Scenario",
    "ScenarioError",
    "SeedPlan",
    "load_scenario",
    "scenario_from_mapping",
]
