"""Spine switch model.

Spines are deliberately simple in CONGA (§3, Figure 6): they forward on the
overlay header's destination leaf, pick among parallel links to that leaf
with standard ECMP hashing (footnote 3), and run a DRE per egress link that
updates the packet's CE field to the maximum congestion seen so far (§3.3
step 2).  All CONGA decision state lives at the leaves.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.core.dre import DRE
from repro.core.params import CongaParams, DEFAULT_PARAMS
from repro.lb.ecmp import ecmp_hash
from repro.net import port as _port_mod
from repro.net.node import Node
from repro.net.packet import Packet
from repro.net.port import Port

if TYPE_CHECKING:
    from repro.sim import Simulator


class SpineSwitch(Node):
    """A spine (core) switch in a Leaf-Spine fabric."""

    def __init__(
        self,
        sim: "Simulator",
        spine_id: int,
        params: CongaParams = DEFAULT_PARAMS,
        name: str | None = None,
    ) -> None:
        super().__init__(sim, name or f"spine{spine_id}")
        self.spine_id = spine_id
        self.params = params
        self.dres: list[DRE] = []
        self._leaf_ports: dict[int, list[int]] = {}
        self.dropped_unroutable = 0
        # Routing cache: leaf id -> list of up port indices, valid while the
        # global link up/down epoch is unchanged.  Callers must not mutate
        # the returned lists.
        self._route_cache: dict[int, list[int]] = {}
        self._route_epoch = -1

    # -- wiring ---------------------------------------------------------------

    def add_leaf_port(
        self,
        leaf_id: int,
        rate_bps: int,
        queue_capacity: int | None,
        ecn_threshold: int | None = None,
    ) -> Port:
        """Create a port that will connect to ``leaf_id`` and attach its DRE."""
        port = self.add_port(
            rate_bps, queue_capacity, name=f"{self.name}->leaf{leaf_id}",
            ecn_threshold=ecn_threshold,
        )
        dre = DRE(self.sim, rate_bps, self.params, name=port.name)
        self.dres.append(dre)
        # Fused DRE hook, bound directly (no per-port closure): one call
        # per packet does decay + increment + CE stamp (§3.3 step 2).
        port.on_transmit.append(dre.measure)
        port.dre = dre  # so rate changes (Port.set_rate) retarget it
        self._leaf_ports.setdefault(leaf_id, []).append(port.index)
        # New wiring changes reachability fabric-wide (leaf candidate caches
        # consult this spine via can_reach), so bump the global epoch.
        _port_mod._bump_topology_epoch()
        return port

    # -- forwarding -----------------------------------------------------------

    def ports_to_leaf(self, leaf_id: int) -> list[int]:
        """Indices of *up* ports toward ``leaf_id``.

        The result is cached per leaf until a link anywhere fails or is
        restored (or a port is added here); do not mutate the returned list.
        """
        if self._route_epoch != _port_mod._topology_epoch:
            self._route_cache.clear()
            self._route_epoch = _port_mod._topology_epoch
        cached = self._route_cache.get(leaf_id)
        if cached is None:
            cached = [
                index
                for index in self._leaf_ports.get(leaf_id, [])
                if self.ports[index].up
            ]
            self._route_cache[leaf_id] = cached
        return cached

    def can_reach(self, leaf_id: int) -> bool:
        """Whether at least one link toward ``leaf_id`` is up."""
        return bool(self.ports_to_leaf(leaf_id))

    def path_health(self, leaf_id: int) -> float:
        """Residual forwarding capacity toward ``leaf_id`` (fraction of nominal).

        1.0 when every parallel downlink is healthy, 0.0 when the leaf is
        unreachable.  Fault-aware selectors (the ``caft`` scheme) multiply
        this into the CONGA path metric so asymmetry their DREs cannot see
        — cut cables, black holes, brownouts past this hop — still repels
        flowlets.
        """
        return _port_mod.residual_capacity(
            self.ports[index] for index in self._leaf_ports.get(leaf_id, ())
        )

    def receive(self, packet: Packet, port: Port) -> None:
        header = packet.overlay
        if header is None:
            # Spines only ever see encapsulated fabric traffic.
            self.dropped_unroutable += 1
            return
        candidates = self.ports_to_leaf(header.dst_leaf)
        if not candidates:
            self.dropped_unroutable += 1
            return
        if len(candidates) == 1:
            choice = candidates[0]
        else:
            index = ecmp_hash(packet.five_tuple, salt=1_000_003 + self.spine_id)
            choice = candidates[index % len(candidates)]
        self.ports[choice].send(packet)


__all__ = ["SpineSwitch"]
