"""Switch models: leaf (CONGA decision point), spine, and fabric directory."""

from repro.switch.fabric import Fabric
from repro.switch.leaf import LeafSwitch
from repro.switch.spine import SpineSwitch

__all__ = ["Fabric", "LeafSwitch", "SpineSwitch"]
