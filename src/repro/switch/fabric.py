"""Fabric container: the directory tying hosts, leaves, and spines together.

The fabric plays the role of the (out-of-scope for the paper) endpoint
directory: it maps endpoint ids to their leaf switches so source TEPs can
resolve destination TEPs (§2.5).  It also provides the experiment-facing
helpers: link-failure injection, port iteration for statistics, and the
idealized FCT model used to normalize results (§5.2.1).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator

from repro.net.node import Host
from repro.net.packet import HEADER_BYTES
from repro.net.port import Port
from repro.overlay.vxlan import VXLAN_OVERHEAD
from repro.units import transmission_time

if TYPE_CHECKING:
    from repro.lb.base import SelectorFactory
    from repro.sim import Simulator
    from repro.switch.leaf import LeafSwitch
    from repro.switch.spine import SpineSwitch


class Fabric:
    """All nodes of one simulated datacenter fabric."""

    def __init__(self, sim: "Simulator") -> None:
        self.sim = sim
        self.hosts: dict[int, Host] = {}
        self.leaves: list["LeafSwitch"] = []
        self.spines: list["SpineSwitch"] = []
        self._host_leaf: dict[int, int] = {}

    # -- directory -------------------------------------------------------------

    def register_host(self, host: Host, leaf_id: int) -> None:
        """Record that ``host`` lives under leaf ``leaf_id``."""
        if host.host_id in self.hosts:
            raise ValueError(f"host id {host.host_id} already registered")
        self.hosts[host.host_id] = host
        self._host_leaf[host.host_id] = leaf_id

    def leaf_of(self, host_id: int) -> int:
        """The leaf id serving ``host_id``."""
        return self._host_leaf[host_id]

    def host(self, host_id: int) -> Host:
        """The host object for ``host_id``."""
        return self.hosts[host_id]

    def hosts_under(self, leaf_id: int) -> list[int]:
        """All host ids attached to ``leaf_id``."""
        return [h for h, leaf in sorted(self._host_leaf.items()) if leaf == leaf_id]

    def finalize(self, selector_factory: "SelectorFactory") -> None:
        """Finish construction: instantiate each leaf's TEP and selector."""
        for leaf in self.leaves:
            leaf.finalize(selector_factory)

    # -- failure injection -------------------------------------------------------

    def uplink_ports(self, leaf_id: int, spine_id: int) -> list[Port]:
        """The leaf-side ports of all (possibly parallel) links leaf↔spine."""
        leaf = self.leaves[leaf_id]
        return [
            port
            for port, spine in zip(leaf.uplinks, leaf.uplink_spine)
            if spine.spine_id == spine_id
        ]

    def fail_link(self, leaf_id: int, spine_id: int, which: int = 0) -> Port:
        """Fail the ``which``-th parallel link between a leaf and a spine.

        Returns the failed (leaf-side) port so tests can restore it.
        """
        ports = self.uplink_ports(leaf_id, spine_id)
        if which >= len(ports):
            raise ValueError(
                f"leaf{leaf_id}<->spine{spine_id} has {len(ports)} links, "
                f"cannot fail link {which}"
            )
        ports[which].fail()
        return ports[which]

    def restore_link(self, leaf_id: int, spine_id: int, which: int = 0) -> Port:
        """Restore the ``which``-th parallel link between a leaf and a spine.

        Returns the restored (leaf-side) port.
        """
        ports = self.uplink_ports(leaf_id, spine_id)
        if which >= len(ports):
            raise ValueError(
                f"leaf{leaf_id}<->spine{spine_id} has {len(ports)} links, "
                f"cannot restore link {which}"
            )
        ports[which].restore()
        return ports[which]

    def switch_ports(self, kind: str, switch_id: int) -> list[Port]:
        """Every port of one switch (``kind`` is ``"leaf"`` or ``"spine"``).

        For a leaf this includes host downlinks as well as uplinks — a
        blacked-out leaf takes its rack off the network, not just off the
        fabric.
        """
        if kind == "leaf":
            return list(self.leaves[switch_id].ports)
        if kind == "spine":
            return list(self.spines[switch_id].ports)
        if kind == "core":
            # MultiPodFabric overrides; a 2-tier fabric has no core tier.
            raise ValueError("kind 'core' needs a multi-pod fabric (no core tier here)")
        raise ValueError(f"kind must be 'leaf', 'spine', or 'core', got {kind!r}")

    # -- statistics -------------------------------------------------------------

    def leaf_uplink_ports(self) -> Iterator[Port]:
        """All leaf-side fabric ports (leaf → spine direction)."""
        for leaf in self.leaves:
            yield from leaf.uplinks

    def spine_ports(self) -> Iterator[Port]:
        """All spine-side fabric ports (spine → leaf direction)."""
        for spine in self.spines:
            yield from spine.ports

    def fabric_ports(self) -> Iterator[Port]:
        """All fabric ports in both directions."""
        yield from self.leaf_uplink_ports()
        yield from self.spine_ports()

    def total_fabric_drops(self) -> int:
        """Packets dropped at fabric queues (congestion) and down links."""
        return sum(port.queue.stats.dropped_packets for port in self.fabric_ports())

    # -- idealized FCT -----------------------------------------------------------

    def ideal_fct(self, src: int, dst: int, size: int, mss: int = 1460) -> int:
        """FCT achievable in an idle network (§5.2.1 normalization baseline).

        Models store-and-forward pipelining: the flow streams at the slowest
        link on the path, plus one segment's serialization at each later hop
        and the propagation delays.
        """
        src_leaf = self.leaf_of(src)
        dst_leaf = self.leaf_of(dst)
        src_host = self.hosts[src]
        # (rate, per-segment overhead) for each hop: access links carry plain
        # TCP/IP framing, fabric links add the VXLAN encapsulation.
        hops = [(src_host.nic.rate_bps, HEADER_BYTES)]
        if src_leaf != dst_leaf:
            leaf = self.leaves[src_leaf]
            fabric_overhead = HEADER_BYTES + VXLAN_OVERHEAD
            hops.append(
                (max(port.rate_bps for port in leaf.uplinks), fabric_overhead)
            )
            spine_rate = (
                max(port.rate_bps for port in self.spines[0].ports)
                if self.spines
                else hops[-1][0]
            )
            hops.append((spine_rate, fabric_overhead))
        hops.append((self.leaves[dst_leaf].host_port(dst).rate_bps, HEADER_BYTES))

        segments = max(1, -(-size // mss))
        # The stream drains at the hop where total wire bytes take longest.
        stream_time = max(
            transmission_time(size + segments * overhead, rate)
            for rate, overhead in hops
        )
        last_segment = min(size, mss)
        pipeline = sum(
            transmission_time(last_segment + overhead, rate)
            for rate, overhead in hops[1:]
        )
        propagation = len(hops) * 500  # matches DEFAULT_PROPAGATION_DELAY
        return stream_time + pipeline + propagation


__all__ = ["Fabric"]
