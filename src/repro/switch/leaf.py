"""Leaf (top-of-rack) switch model.

The leaf implements everything in Figure 6 of the paper: the tunnel endpoint
(encap/decap plus both congestion tables, via
:class:`repro.overlay.TunnelEndpoint`), one DRE per uplink, and the pluggable
uplink selector that embodies the load balancing scheme under test.  Local
traffic (both hosts under the same leaf) is switched directly without
entering the overlay.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.core.dre import DRE
from repro.core.params import CongaParams, DEFAULT_PARAMS
from repro.net import port as _port_mod
from repro.net.node import Node
from repro.net.packet import Packet
from repro.net.port import Port
from repro.overlay.vxlan import TunnelEndpoint

if TYPE_CHECKING:
    from repro.core.tables import CongestionFromLeafTable, CongestionToLeafTable
    from repro.lb.base import SelectorFactory, UplinkSelector
    from repro.sim import Simulator
    from repro.switch.fabric import Fabric
    from repro.switch.spine import SpineSwitch


class LeafSwitch(Node):
    """A leaf switch: overlay TEP, per-uplink DREs, and the LB selector.

    Construction happens in two phases because the selector and tables need
    to know the final uplink count: the topology builder adds ports with
    :meth:`add_host_port` / :meth:`add_uplink`, then calls :meth:`finalize`
    with the selector factory for the experiment.
    """

    def __init__(
        self,
        sim: "Simulator",
        leaf_id: int,
        fabric: "Fabric",
        params: CongaParams = DEFAULT_PARAMS,
        name: str | None = None,
    ) -> None:
        super().__init__(sim, name or f"leaf{leaf_id}")
        self.leaf_id = leaf_id
        self.fabric = fabric
        self.params = params
        self.uplinks: list[Port] = []
        self.uplink_spine: list["SpineSwitch"] = []
        self.uplink_dres: list[DRE] = []
        self._host_ports: dict[int, Port] = {}
        self.tep: TunnelEndpoint | None = None
        self.selector: "UplinkSelector | None" = None
        self.dropped_unroutable = 0
        # Routing cache: destination leaf -> candidate uplink list, valid
        # while the global link up/down epoch is unchanged.  Callers (the
        # selectors) must not mutate the returned lists.
        self._route_cache: dict[int, list[int]] = {}
        self._route_epoch = -1

    # -- wiring ---------------------------------------------------------------

    def add_host_port(
        self,
        host_id: int,
        rate_bps: int,
        queue_capacity: int | None,
        ecn_threshold: int | None = None,
    ) -> Port:
        """Create the downlink port for ``host_id``."""
        if host_id in self._host_ports:
            raise ValueError(f"host {host_id} already attached to {self.name}")
        port = self.add_port(
            rate_bps, queue_capacity, name=f"{self.name}->h{host_id}",
            ecn_threshold=ecn_threshold,
        )
        self._host_ports[host_id] = port
        return port

    def add_uplink(
        self,
        spine: "SpineSwitch",
        rate_bps: int,
        queue_capacity: int | None,
        ecn_threshold: int | None = None,
    ) -> Port:
        """Create an uplink port toward ``spine``; its index is the LBTag."""
        lbtag = len(self.uplinks)
        port = self.add_port(
            rate_bps, queue_capacity, name=f"{self.name}.up{lbtag}->{spine.name}",
            ecn_threshold=ecn_threshold,
        )
        dre = DRE(self.sim, rate_bps, self.params, name=port.name)
        # The fused DRE hook is bound directly — no per-port closure, one
        # call per packet (decay + increment + CE stamp, §3.2).
        port.on_transmit.append(dre.measure)
        port.dre = dre  # so rate changes (Port.set_rate) retarget it
        self.uplinks.append(port)
        self.uplink_spine.append(spine)
        self.uplink_dres.append(dre)
        _port_mod._bump_topology_epoch()
        return port

    def finalize(self, selector_factory: "SelectorFactory") -> None:
        """Create the TEP and the uplink selector once all ports exist."""
        if not self.uplinks:
            raise ValueError(f"{self.name} has no uplinks")
        self.tep = TunnelEndpoint(
            self.sim, self.leaf_id, len(self.uplinks), self.params
        )
        self.selector = selector_factory(self)

    def enable_explicit_feedback(self, interval: int) -> None:
        """Generate explicit feedback packets every ``interval`` (§3.3).

        The ASIC piggybacks feedback on reverse traffic only — cheap, but a
        leaf pair with one-way traffic starves the sender of remote metrics
        (they age to zero and CONGA degenerates to local-only decisions).
        §3.3 notes explicit feedback packets as the alternative; this
        enables it: whenever metrics are owed to some leaf and ``interval``
        elapses, a 64-byte control packet is sent toward that leaf carrying
        one (FB_LBTag, FB_Metric) pair via the normal encapsulation path.
        """
        if interval <= 0:
            raise ValueError(f"interval must be positive, got {interval}")
        from repro.sim.kernel import PeriodicTimer

        self._feedback_timer = PeriodicTimer(
            self.sim, interval, self._emit_explicit_feedback
        )
        self.explicit_feedback_sent = 0

    def disable_explicit_feedback(self) -> None:
        """Stop generating explicit feedback packets."""
        timer = getattr(self, "_feedback_timer", None)
        if timer is not None:
            timer.stop()

    def _emit_explicit_feedback(self) -> None:
        assert self.tep is not None and self.selector is not None
        for peer_leaf in self.tep.from_leaf_table.leaves_owed_feedback():
            candidates = self.candidate_uplinks(peer_leaf)
            if not candidates:
                continue
            control = Packet(
                src=-(1 + self.leaf_id),
                dst=-(1 + peer_leaf),
                size=64,
                protocol="conga-fb",
                sport=self.leaf_id,
                dport=peer_leaf,
                flow_id=-(1 + self.leaf_id),
                created_at=self.sim.now,
            )
            choice = self.selector.choose_uplink(control, peer_leaf, candidates)
            self.tep.encapsulate(control, peer_leaf, lbtag=choice)
            self.uplinks[choice].send(control)
            self.explicit_feedback_sent += 1

    # -- CONGA state accessors --------------------------------------------------

    def local_metric(self, uplink: int) -> int:
        """Quantized local congestion (DRE) of ``uplink``'s egress (§3.5)."""
        return self.uplink_dres[uplink].metric()

    @property
    def to_leaf_table(self) -> "CongestionToLeafTable":
        """The Congestion-To-Leaf table (valid after :meth:`finalize`)."""
        assert self.tep is not None, "leaf not finalized"
        return self.tep.to_leaf_table

    @property
    def from_leaf_table(self) -> "CongestionFromLeafTable":
        """The Congestion-From-Leaf table (valid after :meth:`finalize`)."""
        assert self.tep is not None, "leaf not finalized"
        return self.tep.from_leaf_table

    def host_port(self, host_id: int) -> Port:
        """The downlink port serving ``host_id``."""
        return self._host_ports[host_id]

    @property
    def attached_hosts(self) -> list[int]:
        """Host ids attached to this leaf."""
        return list(self._host_ports)

    # -- forwarding -----------------------------------------------------------

    def candidate_uplinks(self, dst_leaf: int) -> list[int]:
        """Uplinks that are up and whose spine can still reach ``dst_leaf``.

        The result is cached per destination leaf until a link anywhere
        fails or is restored (or an uplink is added here); do not mutate
        the returned list.
        """
        if self._route_epoch != _port_mod._topology_epoch:
            self._route_cache.clear()
            self._route_epoch = _port_mod._topology_epoch
        cached = self._route_cache.get(dst_leaf)
        if cached is None:
            cached = [
                index
                for index, port in enumerate(self.uplinks)
                if port.up and self.uplink_spine[index].can_reach(dst_leaf)
            ]
            self._route_cache[dst_leaf] = cached
        return cached

    def receive(self, packet: Packet, port: Port) -> None:
        if packet.overlay is not None:
            self._receive_from_fabric(packet)
        else:
            self._receive_from_host(packet)

    def _receive_from_host(self, packet: Packet) -> None:
        dst_leaf = self.fabric.leaf_of(packet.dst)
        if dst_leaf == self.leaf_id:
            self._deliver_down(packet)
            return
        assert self.tep is not None and self.selector is not None, (
            f"{self.name} used before finalize()"
        )
        candidates = self.candidate_uplinks(dst_leaf)
        if not candidates:
            self.dropped_unroutable += 1
            return
        choice = self.selector.choose_uplink(packet, dst_leaf, candidates)
        self.tep.encapsulate(packet, dst_leaf, lbtag=choice)
        self.uplinks[choice].send(packet)

    def _receive_from_fabric(self, packet: Packet) -> None:
        assert self.tep is not None, f"{self.name} used before finalize()"
        self.tep.decapsulate(packet)
        if packet.protocol == "conga-fb":
            # Explicit feedback control packets terminate at the leaf; the
            # decapsulation above already consumed their payload fields.
            return
        self._deliver_down(packet)

    def _deliver_down(self, packet: Packet) -> None:
        port = self._host_ports.get(packet.dst)
        if port is None:
            self.dropped_unroutable += 1
            return
        port.send(packet)


__all__ = ["LeafSwitch"]
