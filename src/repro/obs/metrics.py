"""Metrics registry: counters, gauges, histograms under stable dotted names.

The registry absorbs the counters that previously lived as ad-hoc
attributes scattered over the codebase — kernel perf counters
(``kernel.*``), per-port throughput/queue totals (``port.*``), TCP loss
recovery (``tcp.*``), flowlet/feedback activity (``flowlet.*``,
``feedback.*``), and sweep-runner accounting (``sweep.*``) — and freezes
them into a picklable :class:`MetricsReport` attached to every
:class:`~repro.apps.spec.PointResult`.

Design constraints:

* **Hot-path cheap.**  A :class:`Counter` is a named mutable cell; the
  kernel run loop caches the cell once and does ``cell.value += n``.  The
  registry dict is only touched at create/lookup time.
* **Deterministic.**  Metrics are reporting-only and never feed back into
  the simulation; snapshots sort names so reports compare stably.
* **Bounded.**  :class:`Histogram` is backed by the same
  :class:`~repro.core.series.DecimatedSeries` the queue monitors use, so
  unbounded observation streams keep constant memory.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable, Union

from repro.core.series import DEFAULT_SERIES_LIMIT, DecimatedSeries

if TYPE_CHECKING:
    from repro.apps.experiment import ExperimentResult


class Counter:
    """A monotonically-increasing (by convention) named value cell."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: int | float = 0

    def inc(self, amount: int | float = 1) -> None:
        """Add ``amount`` (callers on hot paths mutate ``value`` directly)."""
        self.value += amount

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Counter({self.name}={self.value})"


class Gauge:
    """A named last-write-wins value cell."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: float = 0.0

    def set(self, value: float) -> None:
        """Record the current value."""
        self.value = float(value)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Gauge({self.name}={self.value})"


class Histogram:
    """A named bounded sample distribution (decimated, deterministic)."""

    __slots__ = ("name", "series")

    def __init__(self, name: str, limit: int = DEFAULT_SERIES_LIMIT) -> None:
        self.name = name
        self.series: DecimatedSeries[float] = DecimatedSeries(limit)

    def observe(self, value: float) -> None:
        """Offer one sample (retained iff it lands on the decimation stride)."""
        self.series.append(float(value))

    @property
    def count(self) -> int:
        """Total samples offered (including decimated-away ones)."""
        return self.series.offered

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Histogram({self.name}, n={self.count})"


Metric = Union[Counter, Gauge, Histogram]


@dataclass(frozen=True)
class HistogramSummary:
    """Picklable summary statistics of one histogram."""

    count: int
    minimum: float
    maximum: float
    mean: float
    p50: float
    p90: float
    p99: float

    @staticmethod
    def of(histogram: Histogram) -> "HistogramSummary":
        """Summarize ``histogram``'s retained samples."""
        import numpy as np

        values = list(histogram.series)
        if not values:
            return HistogramSummary(0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0)
        array = np.asarray(values, dtype=float)
        p50, p90, p99 = np.percentile(array, [50.0, 90.0, 99.0])
        return HistogramSummary(
            count=histogram.count,
            minimum=float(array.min()),
            maximum=float(array.max()),
            mean=float(array.mean()),
            p50=float(p50),
            p90=float(p90),
            p99=float(p99),
        )


@dataclass(frozen=True)
class MetricsReport:
    """A frozen snapshot of a registry — what crosses process boundaries.

    Names are sorted within each kind, so two reports over the same run
    compare (and serialize) identically.
    """

    counters: dict[str, int | float]
    gauges: dict[str, float]
    histograms: dict[str, HistogramSummary]

    def names(self) -> list[str]:
        """Every metric name in the report, sorted."""
        return sorted([*self.counters, *self.gauges, *self.histograms])

    def value(self, name: str) -> int | float:
        """The scalar value of a counter or gauge by name."""
        if name in self.counters:
            return self.counters[name]
        if name in self.gauges:
            return self.gauges[name]
        raise KeyError(f"no counter or gauge named {name!r}")

    def scalars(self) -> dict[str, int | float]:
        """Counters and gauges merged into one sorted name→value dict."""
        merged: dict[str, int | float] = {}
        for name in sorted([*self.counters, *self.gauges]):
            merged[name] = self.counters.get(name, self.gauges.get(name, 0))
        return merged

    def resolve_select(self, select: str | Iterable[str]) -> list[str]:
        """Resolve a selection of names and dotted prefixes to metric names.

        ``select`` is a comma-separated string (or iterable) of tokens;
        each token matches exactly or as a name prefix, so whole families
        select naturally (``lb.caft.``, ``kernel.``) — the same semantics
        as the lint CLI's ``resolve_select``.  Matches are deduplicated
        preserving selection order; tokens matching nothing raise with the
        known names listed, so a typo never silently selects nothing.
        """
        if isinstance(select, str):
            tokens = select.split(",")
        else:
            tokens = list(select)
        tokens = [token.strip() for token in tokens]
        tokens = [token for token in tokens if token]
        names = self.names()
        resolved: list[str] = []
        seen: set[str] = set()
        unknown: list[str] = []
        for token in tokens:
            matched = [
                name
                for name in names
                if name == token or name.startswith(token)
            ]
            if not matched:
                unknown.append(token)
                continue
            for name in matched:
                if name not in seen:
                    seen.add(name)
                    resolved.append(name)
        if unknown:
            raise KeyError(
                f"unknown metric selection {', '.join(sorted(unknown))!s}; "
                f"known names: {', '.join(names)}"
            )
        return resolved

    def lines(self, select: str = "") -> list[str]:
        """Human-readable aligned report lines, optionally name-filtered.

        ``select`` accepts comma-separated exact names or dotted-prefix
        families (see :meth:`resolve_select`); empty selects everything.
        """
        if select:
            wanted = set(self.resolve_select(select))
        else:
            wanted = set(self.names())
        rows: list[tuple[str, str]] = []
        for name in sorted(self.counters):
            if name in wanted:
                value = self.counters[name]
                rows.append((name, f"{value:g}" if isinstance(value, float) else str(value)))
        for name in sorted(self.gauges):
            if name in wanted:
                rows.append((name, f"{self.gauges[name]:g}"))
        for name in sorted(self.histograms):
            if name in wanted:
                h = self.histograms[name]
                rows.append(
                    (
                        name,
                        f"n={h.count} mean={h.mean:g} p50={h.p50:g} "
                        f"p90={h.p90:g} p99={h.p99:g} max={h.maximum:g}",
                    )
                )
        width = max((len(name) for name, _ in rows), default=0)
        return [f"{name:<{width}}  {value}" for name, value in rows]


class MetricsRegistry:
    """Create-or-get store of named metrics.

    Re-requesting an existing name returns the same object (so components
    can cache cells); requesting it as a different kind raises.
    """

    __slots__ = ("_metrics",)

    def __init__(self) -> None:
        self._metrics: dict[str, Metric] = {}

    def _get_or_create(self, name: str, kind: type, *args: object) -> Metric:
        metric = self._metrics.get(name)
        if metric is None:
            metric = kind(name, *args)
            self._metrics[name] = metric
        elif type(metric) is not kind:
            raise TypeError(
                f"metric {name!r} already registered as "
                f"{type(metric).__name__}, not {kind.__name__}"
            )
        return metric

    def counter(self, name: str) -> Counter:
        """The counter named ``name`` (created on first use)."""
        metric = self._get_or_create(name, Counter)
        assert isinstance(metric, Counter)
        return metric

    def gauge(self, name: str) -> Gauge:
        """The gauge named ``name`` (created on first use)."""
        metric = self._get_or_create(name, Gauge)
        assert isinstance(metric, Gauge)
        return metric

    def histogram(self, name: str, limit: int = DEFAULT_SERIES_LIMIT) -> Histogram:
        """The histogram named ``name`` (created on first use)."""
        metric = self._get_or_create(name, Histogram, limit)
        assert isinstance(metric, Histogram)
        return metric

    def get(self, name: str) -> Metric | None:
        """The metric named ``name``, or None."""
        return self._metrics.get(name)

    def names(self) -> list[str]:
        """Every registered name, sorted."""
        return sorted(self._metrics)

    def snapshot(self) -> MetricsReport:
        """Freeze the registry into a picklable :class:`MetricsReport`."""
        counters: dict[str, int | float] = {}
        gauges: dict[str, float] = {}
        histograms: dict[str, HistogramSummary] = {}
        for name in sorted(self._metrics):
            metric = self._metrics[name]
            if isinstance(metric, Counter):
                counters[name] = metric.value
            elif isinstance(metric, Gauge):
                gauges[name] = metric.value
            else:
                histograms[name] = HistogramSummary.of(metric)
        return MetricsReport(counters=counters, gauges=gauges, histograms=histograms)

    def __len__(self) -> int:
        return len(self._metrics)

    def __contains__(self, name: str) -> bool:
        return name in self._metrics


def _sum_into(registry: MetricsRegistry, name: str, values: Iterable[int]) -> None:
    registry.counter(name).value = sum(values)


def collect_run_metrics(live: "ExperimentResult") -> MetricsReport:
    """Absorb a finished run's scattered counters into one report.

    Builds on the simulator's own registry (which already holds the
    ``kernel.*`` counters) and adds fabric-port totals, overlay/feedback
    activity, flowlet churn, TCP loss recovery, and tracer accounting.
    Runs once at snapshot time — nothing here touches a hot path.
    """
    registry = live.sim.metrics
    ports = list(live.fabric.fabric_ports())
    _sum_into(registry, "port.tx_packets", (p.tx_packets for p in ports))
    _sum_into(registry, "port.tx_bytes", (p.tx_bytes for p in ports))
    _sum_into(registry, "port.rx_packets", (p.rx_packets for p in ports))
    _sum_into(registry, "port.rx_bytes", (p.rx_bytes for p in ports))
    _sum_into(registry, "port.lost_packets", (p.lost_packets for p in ports))
    _sum_into(
        registry,
        "port.queue_dropped_packets",
        (p.queue.stats.dropped_packets for p in ports),
    )
    _sum_into(
        registry,
        "port.queue_dropped_bytes",
        (p.queue.stats.dropped_bytes for p in ports),
    )
    _sum_into(
        registry,
        "port.queue_ecn_marked",
        (p.queue.stats.ecn_marked for p in ports),
    )
    occupancy = registry.histogram("port.queue_max_bytes")
    for port in ports:
        occupancy.observe(port.queue.stats.max_bytes)
    registry.gauge("port.max_queue_bytes").set(
        max((p.queue.stats.max_bytes for p in ports), default=0)
    )

    registry.counter("flows.arrivals").value = live.arrivals
    registry.counter("flows.completed").value = live.completed
    registry.counter("tcp.retransmissions").value = live.retransmissions
    registry.counter("tcp.timeouts").value = live.timeouts

    teps = [leaf.tep for leaf in live.fabric.leaves if leaf.tep is not None]
    _sum_into(registry, "feedback.sent", (t.feedback_sent for t in teps))
    _sum_into(registry, "feedback.received", (t.feedback_received for t in teps))
    _sum_into(registry, "feedback.lost", (t.feedback_lost for t in teps))
    _sum_into(registry, "overlay.encapsulated", (t.encapsulated for t in teps))
    _sum_into(registry, "overlay.decapsulated", (t.decapsulated for t in teps))

    selectors = [leaf.selector for leaf in live.fabric.leaves]
    tables = [getattr(s, "flowlets", None) for s in selectors]
    tables = [t for t in tables if t is not None]
    if tables:
        _sum_into(registry, "flowlet.created", (t.new_flowlets for t in tables))
        _sum_into(registry, "flowlet.expired", (t.expired_flowlets for t in tables))
        _sum_into(
            registry,
            "flowlet.decisions",
            (getattr(s, "decisions", 0) for s in selectors),
        )

    reroutes = sum(getattr(s, "fault_reroutes", 0) for s in selectors) + sum(
        getattr(spine, "fault_reroutes", 0) for spine in live.fabric.spines
    )
    if reroutes:
        # Leaf- plus pod-spine-level decisions where fault awareness (not
        # congestion) steered the flowlet; only caft runs produce these.
        registry.counter("lb.caft.fault_reroutes").value = reroutes

    if live.imbalance is not None:
        from repro.analysis.monitors import EmptySeriesError

        registry.counter("monitor.imbalance.samples").value = len(
            live.imbalance.samples
        )
        try:
            mean_percent = live.imbalance.mean_percent()
            p95_percent = live.imbalance.percentile(95.0)
        except EmptySeriesError:
            pass  # short run never saw a loaded window: skip, don't crash
        else:
            registry.gauge("monitor.imbalance.mean_percent").set(mean_percent)
            registry.gauge("monitor.imbalance.p95_percent").set(p95_percent)

    tracer = live.sim.tracer
    if tracer is not None:
        registry.counter("trace.emitted").value = tracer.emitted
        registry.counter("trace.retained").value = len(tracer)
        registry.counter("trace.dropped").value = tracer.dropped

    if live.timeline is not None:
        registry.counter("timeline.samples").value = live.timeline.samples
        registry.counter("timeline.retained").value = len(live.timeline)
        registry.counter("timeline.ports").value = len(live.timeline.port_names)

    return registry.snapshot()


__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "HistogramSummary",
    "MetricsRegistry",
    "MetricsReport",
    "collect_run_metrics",
]
