"""Deterministic sim-time telemetry: time-binned series over a run.

The evaluation's most convincing artifacts are *dynamics* — DRE estimates
tracking congestion within RTTs (Fig. 4), goodput draining and recovering
around a failure (Fig. 11), queues breathing at the hotspot (Fig. 16).
End-of-run scalars cannot show any of that, so this module adds a sampling
plane that rides the simulation clock itself:

* a :class:`TimelineCollector` arms one kernel :class:`PeriodicTimer` and,
  on every tick, reads — *without mutating* — per-port utilization,
  residual capacity, queue occupancy, per-uplink DRE estimates, flowlet
  decision / fault-reroute / loss-recovery rates, and goodput;
* every series lives in a bounded :class:`DecimatedSeries`, so week-long
  simulated runs keep constant memory while the curves stay faithful;
* :meth:`TimelineCollector.snapshot` freezes everything into a picklable
  :class:`Timeline` with a sha256 :meth:`~Timeline.digest`, which rides
  ``PointResult.timeline`` across process pools and the on-disk cache.

Determinism contract: sampling must never perturb the run.  The collector
draws no randomness (its timer takes no jitter stream), emits no trace
events, and reads DRE registers through :meth:`repro.core.dre.DRE.peek`,
which applies decay arithmetically *without* writing back — splitting one
future decay multiply into two would change low-order float bits.  Timer
events interleave with simulation events at identical timestamps, but the
kernel's monotonic sequence numbers keep the relative order of all other
events unchanged, so flow records are bit-identical with the collector on
or off (``tests/test_timeline.py`` pins this against the golden fixtures).

Every series is appended exactly once per tick ("lockstep"), so all
:class:`DecimatedSeries` decimate in the same pattern and share the
``times`` axis sample-for-sample.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.core.series import DecimatedSeries
from repro.units import microseconds

if TYPE_CHECKING:
    from repro.apps.traffic import CrossRackTraffic
    from repro.faults.injector import FaultInjector
    from repro.sim import Simulator
    from repro.switch.fabric import Fabric

#: Default sampling cadence.  Scaled-down runs finish in a few simulated
#: milliseconds, so 50 µs gives O(50–200) samples — enough for a curve,
#: cheap enough to leave on.
DEFAULT_TIMELINE_INTERVAL = microseconds(50)

#: Default per-series retention.  1024 points outlives any committed
#: scenario without decimation; longer runs decimate gracefully.
DEFAULT_TIMELINE_LIMIT = 1024


@dataclass(frozen=True)
class TimelineSpec:
    """Declarative knob that turns the timeline collector on.

    ``interval`` is the sampling period in simulated nanoseconds;
    ``limit`` bounds every retained series (uniform stride decimation via
    :class:`DecimatedSeries` once a series fills).  The spec nests inside
    :class:`repro.obs.config.ObsSpec` and therefore inside the experiment
    content hash — *when set*.  A ``None`` timeline is stripped from the
    hash payload, so pre-timeline cache entries and golden hashes are
    untouched (same convention as ``obs`` itself).
    """

    interval: int = DEFAULT_TIMELINE_INTERVAL
    limit: int = DEFAULT_TIMELINE_LIMIT

    def __post_init__(self) -> None:
        if self.interval < 1:
            raise ValueError(
                f"timeline interval must be >= 1 ns, got {self.interval}"
            )
        if self.limit < 2:
            raise ValueError(
                f"timeline series limit must be >= 2, got {self.limit}"
            )


@dataclass(frozen=True)
class Timeline:
    """Picklable snapshot of one run's sampled telemetry.

    All per-port mappings are keyed by port name in the fabric's canonical
    ``fabric_ports()`` order (preserved in ``port_names``).  Per-interval
    series are *deltas over one sampling interval*; ``completed`` /
    ``arrivals`` are cumulative.  ``fault_events`` logs what the injector
    actually applied: ``(sim_time_ns, event_kind, restores)``.
    """

    interval: int
    times: tuple[int, ...]
    port_names: tuple[str, ...]
    utilization: dict[str, tuple[float, ...]]
    residual: dict[str, tuple[float, ...]]
    occupancy: dict[str, tuple[int, ...]]
    dre: dict[str, tuple[float, ...]]
    drops: tuple[int, ...]
    flowlet_decisions: tuple[int, ...]
    fault_reroutes: tuple[int, ...]
    timeouts: tuple[int, ...]
    retransmissions: tuple[int, ...]
    goodput_bytes: tuple[int, ...]
    completed: tuple[int, ...]
    arrivals: tuple[int, ...]
    fault_events: tuple[tuple[int, str, bool], ...] = ()
    samples: int = 0

    def digest(self) -> str:
        """sha256 over the canonical JSON encoding of every series.

        Bit-identical across worker processes and platforms for the same
        run; the golden timeline tests pin workers=0 against workers=2.
        """
        payload = {
            "interval": self.interval,
            "times": self.times,
            "port_names": self.port_names,
            "utilization": self.utilization,
            "residual": self.residual,
            "occupancy": self.occupancy,
            "dre": self.dre,
            "drops": self.drops,
            "flowlet_decisions": self.flowlet_decisions,
            "fault_reroutes": self.fault_reroutes,
            "timeouts": self.timeouts,
            "retransmissions": self.retransmissions,
            "goodput_bytes": self.goodput_bytes,
            "completed": self.completed,
            "arrivals": self.arrivals,
            "fault_events": self.fault_events,
            "samples": self.samples,
        }
        encoded = json.dumps(payload, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(encoded.encode()).hexdigest()

    def __len__(self) -> int:
        return len(self.times)


class TimelineCollector:
    """Samples fabric/traffic state on a fixed sim-time cadence.

    Construct after the fabric is finalized (port set and selectors are
    stable), pass the traffic generator and injector if present, and call
    :meth:`start` before ``sim.run``.  The sample callback is a bound
    method (picklable-safe, closure-free) and performs reads only — see
    the module docstring for the full determinism contract.
    """

    def __init__(
        self,
        sim: "Simulator",
        fabric: "Fabric",
        spec: TimelineSpec,
        *,
        traffic: "CrossRackTraffic | None" = None,
        injector: "FaultInjector | None" = None,
    ) -> None:
        self.sim = sim
        self.fabric = fabric
        self.spec = spec
        self.traffic = traffic
        self.injector = injector
        self._ports = list(fabric.fabric_ports())
        self._dre_ports = [p for p in self._ports if p.dre is not None]
        limit = spec.limit
        # Every series is created up front and appended in lockstep, so
        # their DecimatedSeries strides stay identical and the shared
        # `times` axis aligns with every value series sample-for-sample.
        self._times = DecimatedSeries(limit)
        self._util = [DecimatedSeries(limit) for _ in self._ports]
        self._residual = [DecimatedSeries(limit) for _ in self._ports]
        self._occupancy = [DecimatedSeries(limit) for _ in self._ports]
        self._dre = [DecimatedSeries(limit) for _ in self._dre_ports]
        self._drops = DecimatedSeries(limit)
        self._decisions = DecimatedSeries(limit)
        self._reroutes = DecimatedSeries(limit)
        self._timeouts = DecimatedSeries(limit)
        self._retx = DecimatedSeries(limit)
        self._goodput = DecimatedSeries(limit)
        self._completed = DecimatedSeries(limit)
        self._arrivals = DecimatedSeries(limit)
        self._last_busy = [port.busy_time for port in self._ports]
        self._last_drops = 0
        self._last_decisions = 0
        self._last_reroutes = 0
        self._last_timeouts = 0
        self._last_retx = 0
        self._records_seen = 0
        self.samples = 0
        # Imported lazily to preserve the obs package's import discipline
        # (repro.sim.kernel itself imports repro.obs.metrics).
        from repro.sim.kernel import PeriodicTimer

        # No jitter_stream: a jittered timer would draw from the run's RNG
        # and desynchronize every subsequent random choice.
        self._timer = PeriodicTimer(sim, spec.interval, self._sample, start=False)

    def start(self) -> None:
        """Arm the sampling timer (first sample one interval from now)."""
        self._last_busy = [port.busy_time for port in self._ports]
        self._timer.start()

    def stop(self) -> None:
        """Disarm the sampling timer."""
        self._timer.stop()

    def _selector_totals(self) -> tuple[int, int]:
        """Cumulative (flowlet decisions, fault reroutes) across leaves."""
        decisions = 0
        reroutes = 0
        for leaf in self.fabric.leaves:
            selector = leaf.selector
            if selector is None:
                continue
            decisions += getattr(selector, "decisions", 0)
            reroutes += getattr(selector, "fault_reroutes", 0)
        return decisions, reroutes

    def _sample(self) -> None:
        interval = self.spec.interval
        self.samples += 1
        self._times.append(self.sim.now)
        drops = 0
        for i, port in enumerate(self._ports):
            busy = port.busy_time
            # busy_time is charged at packet *start*, so a packet whose
            # serialization spans the sample boundary lands entirely in
            # this window — clamp the ≤ one-packet overshoot to 1.0.
            self._util[i].append(
                min(1.0, (busy - self._last_busy[i]) / interval)
            )
            self._last_busy[i] = busy
            self._residual[i].append(port.residual_fraction())
            self._occupancy[i].append(port.queue.byte_occupancy)
            drops += port.queue.stats.dropped_packets
        for i, port in enumerate(self._dre_ports):
            self._dre[i].append(port.dre.peek_utilization())
        self._drops.append(drops - self._last_drops)
        self._last_drops = drops
        decisions, reroutes = self._selector_totals()
        self._decisions.append(decisions - self._last_decisions)
        self._last_decisions = decisions
        self._reroutes.append(reroutes - self._last_reroutes)
        self._last_reroutes = reroutes
        if self.traffic is not None:
            stats = self.traffic.stats
            self._timeouts.append(stats.timeouts - self._last_timeouts)
            self._last_timeouts = stats.timeouts
            self._retx.append(
                stats.retransmissions - self._last_retx
            )
            self._last_retx = stats.retransmissions
            records = stats.records
            fresh = records[self._records_seen :]
            self._records_seen = len(records)
            self._goodput.append(sum(record.size for record in fresh))
            self._completed.append(stats.completed)
            self._arrivals.append(stats.arrivals)
        else:
            self._timeouts.append(0)
            self._retx.append(0)
            self._goodput.append(0)
            self._completed.append(0)
            self._arrivals.append(0)

    def snapshot(self) -> Timeline:
        """Freeze the recorded series into a picklable :class:`Timeline`."""
        names = tuple(port.name for port in self._ports)
        dre_names = tuple(port.name for port in self._dre_ports)
        fault_events: tuple[tuple[int, str, bool], ...] = ()
        if self.injector is not None:
            fault_events = tuple(
                (when, type(event).__name__, event.restores())
                for when, event in self.injector.applied
            )
        return Timeline(
            interval=self.spec.interval,
            times=tuple(self._times),
            port_names=names,
            utilization={
                name: tuple(series)
                for name, series in zip(names, self._util)
            },
            residual={
                name: tuple(series)
                for name, series in zip(names, self._residual)
            },
            occupancy={
                name: tuple(series)
                for name, series in zip(names, self._occupancy)
            },
            dre={
                name: tuple(series)
                for name, series in zip(dre_names, self._dre)
            },
            drops=tuple(self._drops),
            flowlet_decisions=tuple(self._decisions),
            fault_reroutes=tuple(self._reroutes),
            timeouts=tuple(self._timeouts),
            retransmissions=tuple(self._retx),
            goodput_bytes=tuple(self._goodput),
            completed=tuple(self._completed),
            arrivals=tuple(self._arrivals),
            fault_events=fault_events,
            samples=self.samples,
        )


__all__ = [
    "DEFAULT_TIMELINE_INTERVAL",
    "DEFAULT_TIMELINE_LIMIT",
    "Timeline",
    "TimelineCollector",
    "TimelineSpec",
]
