"""The per-simulator tracer: category filters, ring buffer, exports.

A :class:`Tracer` is attached to a :class:`~repro.sim.Simulator` as
``sim.tracer`` (``None`` by default).  Instrumented hot paths gate on
exactly two cheap checks::

    tracer = self.sim.tracer
    if tracer is not None and tracer.flowlet:
        tracer.emit(FlowletRerouted(...))

so a run without a tracer pays one attribute load and an ``is None`` test
per potential event — the "zero overhead when disabled" contract that the
``repro.perf`` trace-overhead bench enforces (<3% vs the committed
``BENCH_kernel.json`` baseline).  The per-category flags (``tracer.dre``,
``tracer.flowlet``, ...) are precomputed plain booleans, so an enabled
tracer with a narrow filter skips uninteresting categories without any
set lookup.

Tracing *observes* and never perturbs: emitting appends to a bounded
``deque`` (oldest events fall off when ``limit`` is exceeded), consumes no
RNG stream, and schedules nothing — the golden digests in ``tests/golden``
are bit-identical with tracing off and on.

Exports: NDJSON (one JSON object per line, stable field order) and the
Chrome ``trace_event`` JSON format, loadable in ``chrome://tracing`` /
Perfetto as instant events on per-category tracks.
"""

from __future__ import annotations

import hashlib
import json
from collections import deque
from dataclasses import dataclass
from pathlib import Path
from typing import Iterator

from repro.obs.events import TraceEvent, event_payload

#: Every trace category, in canonical (sorted) order.
CATEGORIES: tuple[str, ...] = ("dre", "drop", "fault", "flowlet", "table", "tcp")

#: Default ring-buffer bound: plenty for a scaled run's decision events
#: while keeping a worst-case all-categories trace to tens of MB.
DEFAULT_TRACE_LIMIT = 65536


def _normalize_categories(categories: object) -> tuple[str, ...]:
    """Validate and canonicalize a category selection (None = all)."""
    if categories is None:
        return CATEGORIES
    if isinstance(categories, str):
        categories = [part.strip() for part in categories.split(",")]
    wanted = [name for name in categories if name]
    unknown = sorted(set(wanted) - set(CATEGORIES))
    if unknown:
        known = ", ".join(CATEGORIES)
        raise ValueError(
            f"unknown trace categor{'y' if len(unknown) == 1 else 'ies'} "
            f"{', '.join(unknown)}; known categories: {known}"
        )
    return tuple(name for name in CATEGORIES if name in wanted)


def _ndjson_line(event: TraceEvent) -> str:
    return json.dumps(event_payload(event), sort_keys=True, separators=(",", ":"))


def _chrome_record(event: TraceEvent) -> dict:
    payload = event_payload(event)
    return {
        "name": payload.pop("name"),
        "cat": payload.pop("cat"),
        "ph": "i",  # instant event
        "s": "g",  # global scope
        "ts": payload["time"] / 1000.0,  # trace_event wants microseconds
        "pid": 1,
        "tid": CATEGORIES.index(event.category) + 1,
        "args": payload,
    }


@dataclass(frozen=True)
class TraceLog:
    """A frozen, picklable snapshot of a tracer's buffer.

    ``events`` holds the retained ring-buffer contents in emission order;
    ``emitted`` counts everything ever offered, so ``dropped`` is how many
    old events the ring evicted.  All export/digest helpers live here so a
    :class:`~repro.apps.spec.PointResult` carries them across process and
    cache boundaries.
    """

    events: tuple[TraceEvent, ...]
    categories: tuple[str, ...]
    limit: int
    emitted: int

    @property
    def dropped(self) -> int:
        """Events evicted from the ring buffer (emitted − retained)."""
        return max(0, self.emitted - len(self.events))

    def select(self, *categories: str) -> tuple[TraceEvent, ...]:
        """Retained events restricted to the given categories (all if none)."""
        if not categories:
            return self.events
        wanted = set(_normalize_categories(list(categories)))
        return tuple(e for e in self.events if e.category in wanted)

    def ndjson_lines(self) -> Iterator[str]:
        """One compact JSON object per retained event, in emission order."""
        for event in self.events:
            yield _ndjson_line(event)

    def write_ndjson(self, path: str | Path) -> Path:
        """Write the NDJSON export to ``path``; returns the path."""
        path = Path(path)
        with path.open("w") as handle:
            for line in self.ndjson_lines():
                handle.write(line + "\n")
        return path

    def chrome_trace(self) -> dict:
        """The Chrome ``trace_event`` JSON document (JSON Object Format)."""
        return {
            "traceEvents": [_chrome_record(event) for event in self.events],
            "displayTimeUnit": "ns",
            "metadata": {
                "categories": list(self.categories),
                "emitted": self.emitted,
                "dropped": self.dropped,
            },
        }

    def write_chrome(self, path: str | Path) -> Path:
        """Write the Chrome trace JSON to ``path``; returns the path."""
        path = Path(path)
        path.write_text(json.dumps(self.chrome_trace(), indent=1) + "\n")
        return path

    def digest(self) -> str:
        """sha256 over the NDJSON export — the trace-determinism fingerprint.

        Two runs of the same spec must produce identical digests whether
        they execute inline or on any number of sweep workers.
        """
        hasher = hashlib.sha256()
        for line in self.ndjson_lines():
            hasher.update(line.encode())
            hasher.update(b"\n")
        return hasher.hexdigest()

    def __len__(self) -> int:
        return len(self.events)


class Tracer:
    """Bounded, category-filtered event recorder for one simulator.

    Parameters
    ----------
    categories:
        Which categories to record — an iterable of names or a
        comma-separated string; ``None`` records everything.  Unknown
        names raise immediately (typos must not silently disable a
        trace).
    limit:
        Ring-buffer bound; when full, the oldest events are evicted
        (``dropped`` counts them) so the newest window is always kept.
    stream_path:
        Optional NDJSON sink: every emitted event is *also* appended to
        this file as it happens, so long runs keep a complete record even
        after the ring buffer starts evicting.  Line-buffered, so a
        crashed run still leaves whole lines behind.
    """

    __slots__ = (
        "categories",
        "limit",
        "emitted",
        "stream_path",
        "_buffer",
        "_stream",
    ) + CATEGORIES

    def __init__(
        self,
        categories: object = None,
        limit: int = DEFAULT_TRACE_LIMIT,
        stream_path: str | Path | None = None,
    ) -> None:
        if limit < 1:
            raise ValueError(f"trace buffer limit must be positive, got {limit}")
        self.categories = _normalize_categories(categories)
        self.limit = limit
        self.emitted = 0
        self.stream_path = Path(stream_path) if stream_path is not None else None
        self._buffer: deque[TraceEvent] = deque(maxlen=limit)
        self._stream = (
            # Opt-in observability sink, opened once per run, never on a
            # hot path without an explicit trace_path knob.
            self.stream_path.open("w", buffering=1)
            if self.stream_path is not None
            else None
        )
        # Precomputed per-category booleans: the enabled-path gate is a
        # plain attribute read, not a set membership test.
        enabled = set(self.categories)
        for name in CATEGORIES:
            setattr(self, name, name in enabled)

    def wants(self, category: str) -> bool:
        """Whether ``category`` is being recorded."""
        return category in self.categories

    def emit(self, event: TraceEvent) -> None:
        """Record one event (callers gate on the category flag first)."""
        self.emitted += 1
        self._buffer.append(event)
        if self._stream is not None:
            self._stream.write(_ndjson_line(event) + "\n")

    def close(self) -> None:
        """Flush and close the streaming sink, if one is open.  Idempotent."""
        if self._stream is not None:
            self._stream.close()
            self._stream = None

    @property
    def dropped(self) -> int:
        """Events evicted by the ring buffer so far."""
        return max(0, self.emitted - len(self._buffer))

    def events(self, *categories: str) -> list[TraceEvent]:
        """Retained events, optionally restricted to some categories."""
        if not categories:
            return list(self._buffer)
        wanted = set(_normalize_categories(list(categories)))
        return [e for e in self._buffer if e.category in wanted]

    def snapshot(self) -> TraceLog:
        """Freeze the buffer into a picklable :class:`TraceLog`."""
        return TraceLog(
            events=tuple(self._buffer),
            categories=self.categories,
            limit=self.limit,
            emitted=self.emitted,
        )

    def __len__(self) -> int:
        return len(self._buffer)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Tracer(categories={','.join(self.categories)}, "
            f"{len(self._buffer)}/{self.limit} retained, {self.emitted} emitted)"
        )


__all__ = [
    "CATEGORIES",
    "DEFAULT_TRACE_LIMIT",
    "TraceLog",
    "Tracer",
]
