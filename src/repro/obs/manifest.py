"""Run manifests: an audit record next to every cached result.

A cached ``PointResult`` pickle answers *what* came out of a run but not
*what produced it*.  The manifest is a small JSON document written beside
each cache entry (``<hash>.manifest.json``) recording the full provenance:
the spec's content hash and headline fields, the seed, the fault schedule,
the git commit and package version that executed it, wall/sim time, and
the run's metrics summary.  Anyone auditing a sweep can answer "which code
produced this number, under which faults, at what cost" without unpickling
anything.

Manifests are advisory: writing one must never fail a sweep (the cache
guards the call), and nothing reads them back on the hot path.  They
deliberately carry no wall-clock timestamps — provenance comes from the
git SHA and version, keeping the file a pure function of (code, spec,
run) like everything else in the repo.
"""

from __future__ import annotations

import json
import subprocess
from functools import lru_cache
from pathlib import Path
from typing import TYPE_CHECKING, Any

from repro import __version__

if TYPE_CHECKING:
    from repro.apps.spec import PointResult

#: Suffix appended to a cache key to name its manifest file.
MANIFEST_SUFFIX = ".manifest.json"


@lru_cache(maxsize=1)
def git_sha() -> str | None:
    """The current git commit hash, or None outside a repo / without git."""
    try:
        proc = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            capture_output=True,
            text=True,
            timeout=5.0,
        )
    except (OSError, subprocess.TimeoutExpired):
        return None
    if proc.returncode != 0:
        return None
    sha = proc.stdout.strip()
    return sha or None


def manifest_path(directory: str | Path, key: str) -> Path:
    """Where the manifest for cache entry ``key`` lives in ``directory``."""
    return Path(directory) / f"{key}{MANIFEST_SUFFIX}"


def build_manifest(result: "PointResult", *, key: str | None = None) -> dict[str, Any]:
    """The JSON-able provenance record for one executed point.

    ``key`` is the cache key the result is stored under (defaults to the
    spec's content hash — they only differ if a caller keys differently).
    """
    spec = result.spec
    content_hash = spec.content_hash()
    manifest: dict[str, Any] = {
        "kind": "repro-run-manifest",
        "spec_hash": key or content_hash,
        "content_hash": content_hash,
        "label": spec.label(),
        "scheme": spec.scheme,
        "workload": spec.workload,
        "load": spec.load,
        "seed": spec.seed,
        "num_flows": spec.num_flows,
        "size_scale": spec.size_scale,
        "faults": [repr(event) for event in spec.faults],
        "failed_links": [list(link) for link in spec.failed_links],
        "traced": spec.obs is not None,
        "git_sha": git_sha(),
        "repro_version": __version__,
        "wall_seconds": result.wall_seconds,
        "sim_end_time_ns": result.end_time,
        "events_executed": result.events_executed,
        "arrivals": result.arrivals,
        "completed": result.completed,
        "from_cache": result.from_cache,
    }
    if result.metrics is not None:
        manifest["metrics"] = result.metrics.scalars()
    if result.trace is not None:
        manifest["trace"] = {
            "categories": list(result.trace.categories),
            "emitted": result.trace.emitted,
            "retained": len(result.trace),
            "dropped": result.trace.dropped,
            "digest": result.trace.digest(),
        }
        if spec.obs is not None and spec.obs.trace_path is not None:
            # Where the incremental NDJSON stream went: with it, "dropped"
            # above counts ring evictions, not lost data.
            manifest["trace"]["stream_path"] = spec.obs.trace_path
    if result.timeline is not None:
        manifest["timeline"] = {
            "interval_ns": result.timeline.interval,
            "samples": result.timeline.samples,
            "retained": len(result.timeline),
            "ports": len(result.timeline.port_names),
            "fault_events": len(result.timeline.fault_events),
            "digest": result.timeline.digest(),
        }
    return manifest


def write_manifest(
    result: "PointResult",
    directory: str | Path,
    key: str,
) -> Path:
    """Write ``result``'s manifest next to cache entry ``key``; return its path."""
    path = manifest_path(directory, key)
    payload = json.dumps(build_manifest(result, key=key), indent=1, sort_keys=True)
    path.write_text(payload + "\n")
    return path


__all__ = [
    "MANIFEST_SUFFIX",
    "build_manifest",
    "git_sha",
    "manifest_path",
    "write_manifest",
]
