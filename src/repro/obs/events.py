"""Typed trace events — the vocabulary of the observability plane.

Each event is a small frozen dataclass describing one decision or state
transition the simulation made, at one simulated instant.  The taxonomy
mirrors the places where CONGA behaviour is otherwise invisible:

* ``flowlet``  — :class:`FlowletRerouted`: the §3.5 decision rule, with
  *both* compared inputs (local DRE metric, remote Congestion-To-Leaf
  value) for every candidate uplink and the winner;
* ``dre``      — :class:`DreSampled`: a §3.2 rate-estimator read;
* ``table``    — :class:`CongaTableUpdated` / :class:`CongaTableAged`:
  feedback arriving at and aging out of the Congestion-To-Leaf table
  (§3.3);
* ``tcp``      — :class:`TcpStateChanged` / :class:`RtoFired`: loss
  recovery at the hosts;
* ``drop``     — :class:`PacketDropped`: where and why a packet died;
* ``fault``    — :class:`FaultApplied` / :class:`FaultRestored`: the
  fault plane's schedule firing; :class:`FaultRerouted`: the ``caft``
  scheme's liveness weighting overriding the congestion choice.

Events are plain values: picklable, comparable, and serializable to one
JSON object each (see :func:`event_payload`), so traces cross process
boundaries and land in NDJSON files without any live simulator state.
This module must stay dependency-free — every instrumented hot path
imports it.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import Any, ClassVar


@dataclass(frozen=True, slots=True)
class TraceEvent:
    """Base class: one simulated instant, one observation.

    ``category`` groups events for filtering (the :class:`~repro.obs.trace.
    Tracer`'s per-category flags) and ``name`` is the stable record type
    written to exports; both are class-level so instances stay tuples of
    data.
    """

    time: int

    category: ClassVar[str] = ""
    name: ClassVar[str] = ""


@dataclass(frozen=True, slots=True)
class FlowletRerouted(TraceEvent):
    """A new flowlet picked its uplink (§3.5 decision rule).

    ``local_metrics[i]`` and ``remote_metrics[i]`` are the two compared
    inputs for ``candidates[i]`` — the local DRE reading and the aged
    Congestion-To-Leaf value — whose elementwise max CONGA minimizes.
    ``previous`` is the uplink cached in the expired flowlet entry (-1 for
    a brand-new flow); ``chosen`` is the winner.
    """

    leaf: int
    dst_leaf: int
    flow_id: int
    chosen: int
    previous: int
    candidates: tuple[int, ...]
    local_metrics: tuple[int, ...]
    remote_metrics: tuple[int, ...]

    category: ClassVar[str] = "flowlet"
    name: ClassVar[str] = "FlowletRerouted"


@dataclass(frozen=True, slots=True)
class DreSampled(TraceEvent):
    """One read of a link's discounting rate estimator (§3.2)."""

    link: str
    register: float
    utilization: float
    metric: int

    category: ClassVar[str] = "dre"
    name: ClassVar[str] = "DreSampled"


@dataclass(frozen=True, slots=True)
class CongaTableUpdated(TraceEvent):
    """Piggybacked feedback refreshed a Congestion-To-Leaf cell (§3.3)."""

    leaf: int
    dst_leaf: int
    lbtag: int
    metric: int

    category: ClassVar[str] = "table"
    name: ClassVar[str] = "CongaTableUpdated"


@dataclass(frozen=True, slots=True)
class CongaTableAged(TraceEvent):
    """A Congestion-To-Leaf read served an aged (decayed) metric (§3.3).

    ``stored`` is the last value fed back; ``aged`` is what the linear
    decay ramp returned — the value CONGA actually compared.
    """

    leaf: int
    dst_leaf: int
    lbtag: int
    stored: int
    aged: int

    category: ClassVar[str] = "table"
    name: ClassVar[str] = "CongaTableAged"


@dataclass(frozen=True, slots=True)
class TcpStateChanged(TraceEvent):
    """A sender moved between OPEN and RECOVERY."""

    flow_id: int
    old_state: str
    new_state: str
    cwnd: float
    ssthresh: float

    category: ClassVar[str] = "tcp"
    name: ClassVar[str] = "TcpStateChanged"


@dataclass(frozen=True, slots=True)
class RtoFired(TraceEvent):
    """A retransmission timeout fired (go-back-N + backoff)."""

    flow_id: int
    rto: int
    backoff: int
    inflight: int

    category: ClassVar[str] = "tcp"
    name: ClassVar[str] = "RtoFired"


@dataclass(frozen=True, slots=True)
class PacketDropped(TraceEvent):
    """A packet died at a port.

    ``reason`` is one of ``"link-down"`` (down link at enqueue),
    ``"queue-full"`` (drop-tail overflow), or ``"loss"`` (injected
    per-packet loss after serialization).
    """

    port: str
    flow_id: int
    size: int
    reason: str

    category: ClassVar[str] = "drop"
    name: ClassVar[str] = "PacketDropped"


@dataclass(frozen=True, slots=True)
class FaultApplied(TraceEvent):
    """A scheduled fault event degraded the fabric."""

    kind: str
    fault: str

    category: ClassVar[str] = "fault"
    name: ClassVar[str] = "FaultApplied"


@dataclass(frozen=True, slots=True)
class FaultRestored(TraceEvent):
    """A scheduled fault event restored previously degraded state."""

    kind: str
    fault: str

    category: ClassVar[str] = "fault"
    name: ClassVar[str] = "FaultRestored"


@dataclass(frozen=True, slots=True)
class FaultRerouted(TraceEvent):
    """caft's liveness weighting overrode the pure congestion choice.

    Emitted (gated on the ``fault`` category) whenever the ``caft`` scheme
    picks a path whose raw CONGA metric is *not* minimal because residual
    capacity / liveness weighting made a congestion-optimal candidate look
    worse — i.e. the moment fault awareness, not congestion awareness,
    steered the flowlet.  ``node`` names the deciding switch (a leaf or a
    pod spine); ``healths[i]`` is the residual-capacity weight of
    ``candidates[i]`` in ``[0, 1]``.
    """

    node: str
    dst_leaf: int
    flow_id: int
    chosen: int
    congestion_choice: int
    candidates: tuple[int, ...]
    metrics: tuple[int, ...]
    healths: tuple[float, ...]

    category: ClassVar[str] = "fault"
    name: ClassVar[str] = "FaultRerouted"


def event_payload(event: TraceEvent) -> dict[str, Any]:
    """One JSON-able dict per event: ``name``, ``cat``, then the fields.

    Tuples become lists (JSON has no tuple), which is what the NDJSON
    round-trip tests normalize against.
    """
    payload: dict[str, Any] = {"name": event.name, "cat": event.category}
    for spec in fields(event):
        value = getattr(event, spec.name)
        if isinstance(value, tuple):
            value = list(value)
        payload[spec.name] = value
    return payload


__all__ = [
    "CongaTableAged",
    "CongaTableUpdated",
    "DreSampled",
    "FaultApplied",
    "FaultRerouted",
    "FaultRestored",
    "FlowletRerouted",
    "PacketDropped",
    "RtoFired",
    "TcpStateChanged",
    "TraceEvent",
    "event_payload",
]
