"""Declarative observability knob for :class:`~repro.apps.spec.ExperimentSpec`.

``ObsSpec`` is the value-object face of the trace plane: frozen, picklable,
content-hashable — so traced runs sweep and cache like everything else.
Attaching one to a spec makes ``execute_experiment`` hang a configured
:class:`~repro.obs.trace.Tracer` on the simulator before any component is
built; leaving it ``None`` (the default) keeps the spec's content hash
bit-identical to pre-observability specs and the hot paths on their
single ``tracer is None`` predicate.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.obs.timeline import TimelineSpec
from repro.obs.trace import (
    CATEGORIES,
    DEFAULT_TRACE_LIMIT,
    Tracer,
    _normalize_categories,
)


@dataclass(frozen=True)
class ObsSpec:
    """Frozen description of what one run should trace.

    ``categories`` selects which event families to record (canonicalized
    to sorted order so equivalent selections hash identically);
    ``buffer_limit`` bounds the ring buffer.  ``timeline`` (optional)
    attaches the sim-time telemetry collector of
    :mod:`repro.obs.timeline`; ``trace_path`` (optional) streams every
    emitted event to an NDJSON file so long runs aren't silently
    truncated by the ring.  Observability never changes what a run
    computes — only what it records — so two specs differing only in
    ``obs`` produce identical flow records.

    Hash semantics: ``timeline`` participates in the experiment content
    hash when set (a cached point without timeline data must not satisfy
    a spec that asks for it) and is stripped when ``None``, keeping
    pre-timeline hashes intact.  ``trace_path`` is *always* stripped —
    it is a side-channel output sink that affects neither the simulation
    nor the :class:`~repro.apps.spec.PointResult` payload, so pointing
    the stream elsewhere must not invalidate the cache (a cache hit
    skips the run and therefore writes no stream).
    """

    categories: tuple[str, ...] = field(default=CATEGORIES)
    buffer_limit: int = DEFAULT_TRACE_LIMIT
    timeline: TimelineSpec | None = None
    trace_path: str | None = None

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "categories", _normalize_categories(self.categories)
        )
        if self.buffer_limit < 1:
            raise ValueError(
                f"buffer_limit must be positive, got {self.buffer_limit}"
            )

    def make_tracer(self) -> Tracer:
        """Build the tracer this spec describes (one per simulator)."""
        return Tracer(
            categories=self.categories,
            limit=self.buffer_limit,
            stream_path=self.trace_path,
        )


__all__ = ["ObsSpec"]
