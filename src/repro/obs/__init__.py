"""repro.obs — the observability plane: tracing, metrics, run manifests.

Three cooperating pieces, all reporting-only (nothing here ever feeds back
into simulation behaviour — golden digests are bit-identical with the
plane off and on):

* **Structured tracing** (:mod:`repro.obs.events`, :mod:`repro.obs.trace`)
  — typed frozen events recording *why* the simulation did what it did
  (flowlet uplink decisions with both compared congestion metrics, DRE
  reads, Congestion-To-Leaf updates/aging, TCP state transitions, drops,
  faults), collected by a per-simulator :class:`Tracer` with category
  filters and a bounded ring buffer, exportable as NDJSON or Chrome
  ``trace_event`` JSON.  Disabled (the default) it costs one ``is None``
  check per potential event — enforced by the ``repro.perf``
  trace-overhead bench.
* **Metrics registry** (:mod:`repro.obs.metrics`) — counters, gauges, and
  decimated histograms under stable dotted names (``kernel.*``,
  ``port.*``, ``tcp.*``, ``sweep.*``), frozen into a picklable
  :class:`MetricsReport` on every :class:`~repro.apps.spec.PointResult`.
* **Run manifests** (:mod:`repro.obs.manifest`) — a provenance JSON
  (spec hash, seed, faults, git SHA, version, wall/sim time, metrics
  summary) written next to every result-cache entry.

Import discipline: this package depends only on the standard library and
:mod:`repro.core.series`, so every instrumented module — including
:mod:`repro.sim.kernel` — can import it without cycles.
"""

from repro.obs.config import ObsSpec
from repro.obs.events import (
    CongaTableAged,
    CongaTableUpdated,
    DreSampled,
    FaultApplied,
    FaultRestored,
    FlowletRerouted,
    PacketDropped,
    RtoFired,
    TcpStateChanged,
    TraceEvent,
    event_payload,
)
from repro.obs.manifest import (
    MANIFEST_SUFFIX,
    build_manifest,
    git_sha,
    manifest_path,
    write_manifest,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    HistogramSummary,
    MetricsRegistry,
    MetricsReport,
    collect_run_metrics,
)
from repro.obs.timeline import (
    DEFAULT_TIMELINE_INTERVAL,
    DEFAULT_TIMELINE_LIMIT,
    Timeline,
    TimelineCollector,
    TimelineSpec,
)
from repro.obs.trace import CATEGORIES, DEFAULT_TRACE_LIMIT, TraceLog, Tracer

__all__ = [
    "CATEGORIES",
    "DEFAULT_TIMELINE_INTERVAL",
    "DEFAULT_TIMELINE_LIMIT",
    "DEFAULT_TRACE_LIMIT",
    "CongaTableAged",
    "CongaTableUpdated",
    "Counter",
    "DreSampled",
    "FaultApplied",
    "FaultRestored",
    "FlowletRerouted",
    "Gauge",
    "Histogram",
    "HistogramSummary",
    "MANIFEST_SUFFIX",
    "MetricsRegistry",
    "MetricsReport",
    "ObsSpec",
    "PacketDropped",
    "RtoFired",
    "TcpStateChanged",
    "Timeline",
    "TimelineCollector",
    "TimelineSpec",
    "TraceEvent",
    "TraceLog",
    "Tracer",
    "build_manifest",
    "collect_run_metrics",
    "event_payload",
    "git_sha",
    "manifest_path",
    "write_manifest",
]
