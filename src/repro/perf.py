"""Tracked kernel performance benchmarks (``repro bench``).

The ROADMAP's north star is a reproduction that "runs as fast as the
hardware allows"; the paper's evaluation needs millions of packet events
per figure point, so simulator throughput is a first-class deliverable.
This module runs a small set of canonical experiment specs that stress the
kernel's hot paths, reports events/sec and peak RSS for each, and persists
the numbers to ``BENCH_kernel.json`` at the repo root so every PR's perf
trajectory is recorded next to the code that caused it.

The three canonical specs:

* ``incast-rto`` — the RTO-heavy edge scenario: a synchronized striped
  request into one client NIC with shallow buffers and a 1 ms min-RTO.
  Every ACK restarts the sender's retransmission timer and drops trigger
  real timeouts, so this is the pure stress test for timer reprogramming
  and heap hygiene.
* ``fct-conga-enterprise`` — a CONGA FCT point on the enterprise
  workload: flowlet table, DRE decay, and overlay feedback all active.
* ``fct-ecmp-datamining`` — an ECMP point on the heavy-tailed data-mining
  workload: long-lived elephants, i.e. raw per-packet port/queue

  throughput with minimal control-plane noise.

Each result carries a :func:`repro.analysis.fct.records_digest` of the
run's per-flow records (or the incast request durations), so a perf
comparison between two checkouts can also assert the runs were
*behaviourally* identical — "faster" never silently means "different".

Benchmark file format (schema 2)::

    {
      "schema": 2,
      "quick": false,
      "baseline": {"<spec>": {... BenchResult fields ...}, ...},
      "results":  {"<spec>": {... BenchResult fields ...}, ...},
      "speedup":  {"<spec>": <results events_per_sec / baseline's>, ...}
    }

``baseline`` is written once (first run, or ``--set-baseline``) and then
left alone; ``results`` is refreshed by every ``repro bench`` invocation.
Schema 2 adds ``alloc_blocks`` (net interpreter allocation-block delta
over the run, from :func:`sys.getallocatedblocks`) to each result;
:func:`compare_bench` tolerates schema-1 files that lack it.
"""

from __future__ import annotations

# repro-lint: ignore-file[D101] -- this module *is* the wall-clock harness:
# it measures events/sec of whole runs and never feeds time back into them.

import hashlib
import json
import platform
import sys
from dataclasses import asdict, dataclass
from pathlib import Path
from time import perf_counter
from typing import Callable

from repro.units import megabytes, milliseconds, seconds

#: Default benchmark record, at the repo root so it is committed with PRs.
BENCH_FILENAME = "BENCH_kernel.json"

#: Current layout version of the benchmark file.
BENCH_SCHEMA = 2


def _peak_rss_kb() -> int:
    """Peak resident set size of this process in KiB (0 where unsupported)."""
    try:
        import resource
    except ImportError:  # pragma: no cover - non-POSIX platform
        return 0
    rss = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    # Linux reports KiB, macOS reports bytes.
    if sys.platform == "darwin":  # pragma: no cover - linux CI
        rss //= 1024
    return int(rss)


@dataclass(frozen=True)
class BenchResult:
    """Outcome of one benchmark spec execution.

    ``alloc_blocks`` is the net change in live interpreter allocation
    blocks over the run (:func:`sys.getallocatedblocks` after minus
    before): a leak/retention metric, not a churn rate.  It is stable
    across machines (unlike RSS, which depends on the allocator and prior
    process history), so it is the number the regression gate watches for
    "this kernel now retains more memory per run".
    """

    name: str
    events_executed: int
    wall_seconds: float
    events_per_sec: float
    peak_rss_kb: int
    alloc_blocks: int
    sim_end_time: int
    digest: str

    def row(self) -> str:
        """One aligned human-readable report line."""
        return (
            f"  {self.name:<24} {self.events_executed:>12,} events  "
            f"{self.wall_seconds:>7.2f}s  {self.events_per_sec / 1e3:>8.0f}k ev/s  "
            f"rss {self.peak_rss_kb / 1024:.0f} MiB  "
            f"allocs {self.alloc_blocks / 1e3:+.0f}k  digest {self.digest[:12]}"
        )


def _run_incast_rto(quick: bool) -> BenchResult:
    """The RTO-heavy incast spec (timer restarts + timeout storms)."""
    from repro.apps import IncastClient, tcp_flow_factory
    from repro.lb import CongaSelector
    from repro.sim import Simulator
    from repro.topology import build_leaf_spine, scaled_testbed
    from repro.transport import TcpParams

    sim = Simulator(seed=7)
    fabric = build_leaf_spine(
        sim,
        scaled_testbed(
            hosts_per_leaf=16,
            host_queue_bytes=1_000_000,  # shallow edge buffer: real timeouts
        ),
    )
    fabric.finalize(CongaSelector.factory())
    params = TcpParams(min_rto=milliseconds(1), initial_rto=milliseconds(1))
    servers = [h for h in sorted(fabric.hosts) if h != 0][: (15 if quick else 31)]
    client = IncastClient(
        sim,
        fabric,
        client=0,
        servers=servers,
        flow_factory=tcp_flow_factory(params),
        request_bytes=megabytes(5 if quick else 50),
        repeats=1 if quick else 3,
    )
    blocks_before = sys.getallocatedblocks()
    started = perf_counter()
    client.start()
    sim.run(until=seconds(120))
    wall = perf_counter() - started
    alloc_blocks = sys.getallocatedblocks() - blocks_before
    digest = hashlib.sha256(
        ",".join(str(d) for d in client.result.request_durations).encode()
    ).hexdigest()
    return BenchResult(
        name="incast-rto",
        events_executed=sim.events_executed,
        wall_seconds=wall,
        events_per_sec=sim.events_executed / wall if wall > 0 else 0.0,
        peak_rss_kb=_peak_rss_kb(),
        alloc_blocks=alloc_blocks,
        sim_end_time=sim.now,
        digest=digest,
    )


def _run_fct_point(
    name: str, scheme: str, workload: str, load: float, quick: bool, **spec_kwargs
) -> BenchResult:
    """One FCT experiment point through the declarative spec API."""
    from repro.analysis.fct import records_digest
    from repro.apps import ExperimentSpec

    spec = ExperimentSpec(
        scheme=scheme,
        workload=workload,
        load=load,
        seed=42,
        num_flows=spec_kwargs.pop("num_flows", 60 if quick else 400),
        size_scale=spec_kwargs.pop("size_scale", 0.05),
        **spec_kwargs,
    )
    blocks_before = sys.getallocatedblocks()
    point = spec.run()
    alloc_blocks = sys.getallocatedblocks() - blocks_before
    return BenchResult(
        name=name,
        events_executed=point.events_executed,
        wall_seconds=point.wall_seconds,
        events_per_sec=point.events_per_sec,
        peak_rss_kb=_peak_rss_kb(),
        alloc_blocks=alloc_blocks,
        sim_end_time=point.end_time,
        digest=records_digest(list(point.records)),
    )


#: The canonical spec set, in execution order.
BENCH_SPECS: dict[str, Callable[[bool], BenchResult]] = {
    "incast-rto": _run_incast_rto,
    "fct-conga-enterprise": lambda quick: _run_fct_point(
        "fct-conga-enterprise", "conga", "enterprise", 0.7, quick
    ),
    "fct-ecmp-datamining": lambda quick: _run_fct_point(
        "fct-ecmp-datamining", "ecmp", "data-mining", 0.6, quick, size_scale=0.02
    ),
}


def run_bench(
    *,
    quick: bool = False,
    specs: list[str] | None = None,
    progress: Callable[[str], None] | None = None,
) -> dict[str, BenchResult]:
    """Execute the benchmark specs and return results keyed by spec name."""
    names = list(BENCH_SPECS) if specs is None else specs
    results: dict[str, BenchResult] = {}
    for name in names:
        runner = BENCH_SPECS.get(name)
        if runner is None:
            known = ", ".join(BENCH_SPECS)
            raise ValueError(f"unknown bench spec {name!r}; available: {known}")
        if progress is not None:
            progress(f"bench: running {name} ({'quick' if quick else 'full'}) ...")
        results[name] = runner(quick)
        if progress is not None:
            progress(results[name].row())
    return results


def load_bench_file(path: str | Path) -> dict | None:
    """Read an existing benchmark file, or None if absent/unreadable."""
    path = Path(path)
    if not path.exists():
        return None
    try:
        payload = json.loads(path.read_text())
    except (OSError, ValueError):
        return None
    return payload if isinstance(payload, dict) else None


def write_bench_file(
    results: dict[str, BenchResult],
    path: str | Path = BENCH_FILENAME,
    *,
    quick: bool = False,
    set_baseline: bool = False,
) -> dict:
    """Merge ``results`` into the benchmark file at ``path`` and write it.

    The first write (or ``set_baseline=True``) freezes the results as the
    ``baseline``; later writes refresh ``results`` and recompute per-spec
    ``speedup`` ratios against the stored baseline, so the committed file
    always answers "how much faster is this kernel than the one the
    harness first measured?".
    """
    path = Path(path)
    existing = load_bench_file(path) or {}
    serialized = {name: asdict(res) for name, res in results.items()}
    baseline = existing.get("baseline")
    if set_baseline or not baseline:
        baseline = serialized
    speedup = {}
    for name, res in serialized.items():
        base = baseline.get(name)
        if base and base.get("events_per_sec"):
            speedup[name] = round(
                res["events_per_sec"] / base["events_per_sec"], 3
            )
    payload = {
        "schema": BENCH_SCHEMA,
        "quick": quick,
        "python": platform.python_version(),
        "baseline": baseline,
        "results": serialized,
        "speedup": speedup,
    }
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return payload


# -- comparisons ---------------------------------------------------------------

#: Maximum tolerated events/sec drop between two compared benchmark files
#: before :func:`compare_bench` flags a regression (fractional: 0.03 == 3%).
COMPARE_REGRESSION_TOLERANCE = 0.03


@dataclass(frozen=True)
class BenchComparison:
    """Per-spec outcome of comparing two benchmark files (old vs new)."""

    name: str
    old_events_per_sec: float
    new_events_per_sec: float
    speedup: float  # new / old; 0.0 when the old side is missing or zero
    digest_match: bool | None  # None when either side lacks a digest
    old_events: int | None
    new_events: int | None
    regression: bool
    error: str | None  # non-None: comparison is invalid, not just slower

    def row(self) -> str:
        """One aligned human-readable comparison line."""
        flag = "!! REGRESSION" if self.regression else ""
        if self.error:
            flag = f"!! {self.error}"
        match = {True: "same", False: "DIFFERENT", None: "n/a"}[self.digest_match]
        return (
            f"  {self.name:<24} {self.old_events_per_sec / 1e3:>8.0f}k -> "
            f"{self.new_events_per_sec / 1e3:>8.0f}k ev/s  "
            f"{self.speedup:>5.2f}x  digest {match:<9} {flag}".rstrip()
        )


def compare_bench(
    old_payload: dict,
    new_payload: dict,
    *,
    tolerance: float = COMPARE_REGRESSION_TOLERANCE,
) -> list[BenchComparison]:
    """Compare the ``results`` blocks of two benchmark files spec by spec.

    Returns one :class:`BenchComparison` per spec present in *either* file,
    sorted by name.  A spec regresses when its new events/sec falls more
    than ``tolerance`` below the old.  When both sides carry digests and
    they match, the runs executed the same behaviour — so their event
    counts must be equal too; a mismatch there means the kernel is
    miscounting (the drift bug this field exists to catch) and is reported
    as an ``error`` rather than a perf delta.  Schema-1 files that predate
    ``alloc_blocks`` (or carry no digest) compare fine: missing fields
    degrade to ``None`` instead of raising.
    """
    old_results = old_payload.get("results") or {}
    new_results = new_payload.get("results") or {}
    rows: list[BenchComparison] = []
    for name in sorted(set(old_results) | set(new_results)):
        old = old_results.get(name) or {}
        new = new_results.get(name) or {}
        old_eps = float(old.get("events_per_sec") or 0.0)
        new_eps = float(new.get("events_per_sec") or 0.0)
        speedup = new_eps / old_eps if old_eps > 0 else 0.0
        old_digest = old.get("digest")
        new_digest = new.get("digest")
        digest_match = (
            (old_digest == new_digest)
            if old_digest is not None and new_digest is not None
            else None
        )
        old_events = old.get("events_executed")
        new_events = new.get("events_executed")
        error = None
        if not old:
            error = "missing from old file"
        elif not new:
            error = "missing from new file"
        elif (
            digest_match
            and old_events is not None
            and new_events is not None
            and old_events != new_events
        ):
            error = (
                f"identical digests but {old_events} != {new_events} events "
                "(kernel event accounting drift)"
            )
        regression = (
            error is None and old_eps > 0 and new_eps < old_eps * (1.0 - tolerance)
        )
        rows.append(
            BenchComparison(
                name=name,
                old_events_per_sec=old_eps,
                new_events_per_sec=new_eps,
                speedup=round(speedup, 3),
                digest_match=digest_match,
                old_events=old_events,
                new_events=new_events,
                regression=regression,
                error=error,
            )
        )
    return rows


def comparison_failed(rows: list[BenchComparison]) -> bool:
    """True when any compared spec regressed or had an invalid comparison."""
    return any(row.regression or row.error for row in rows)


# -- profiling -----------------------------------------------------------------


def profile_bench(
    output: str | Path,
    *,
    quick: bool = False,
    specs: list[str] | None = None,
    progress: Callable[[str], None] | None = None,
) -> dict[str, BenchResult]:
    """Run the benchmark specs under :mod:`cProfile`, dumping pstats to ``output``.

    The profile covers the full bench run (all requested specs in one
    session) so cross-spec hotspots aggregate naturally; load the dump
    with ``python -m pstats`` or snakeviz-compatible tools.  Profiled
    events/sec are roughly 3-4x slower than unprofiled — never write
    profiled numbers into the benchmark file (this function deliberately
    does not).
    """
    import cProfile

    profiler = cProfile.Profile()
    profiler.enable()
    try:
        results = run_bench(quick=quick, specs=specs, progress=progress)
    finally:
        profiler.disable()
    profiler.dump_stats(str(output))
    return results


# -- observability overhead ---------------------------------------------------

#: The bench spec the trace-overhead harness reuses as its workload.
TRACE_OVERHEAD_SPEC = "fct-conga-enterprise"

#: Maximum tolerated slowdown of the tracing-disabled hot path relative to
#: the committed pre-observability baseline (fractional: 0.03 == 3%).
DISABLED_OVERHEAD_TOLERANCE = 0.03


@dataclass(frozen=True)
class TraceOverheadResult:
    """Cost of the observability plane on the kernel's hot paths.

    ``untraced_*`` measures the *disabled* path — ``sim.tracer is None``,
    so every instrumentation site reduces to one attribute load and a
    predicate.  ``traced_*`` measures a full-category trace of the same
    spec.  Both runs must be behaviourally identical (same records
    digest); ``identical`` records that check so callers can assert on it
    without recomputing.
    """

    events_executed: int
    repeats: int
    untraced_events_per_sec: float
    traced_events_per_sec: float
    untraced_digest: str
    traced_digest: str
    trace_events_emitted: int

    @property
    def identical(self) -> bool:
        """True when traced and untraced runs produced identical records."""
        return self.untraced_digest == self.traced_digest

    @property
    def traced_slowdown_percent(self) -> float:
        """How much slower the fully-traced run was, in percent."""
        if self.traced_events_per_sec <= 0:
            return 0.0
        return 100.0 * (
            self.untraced_events_per_sec / self.traced_events_per_sec - 1.0
        )

    def row(self) -> str:
        """One aligned human-readable report line."""
        return (
            f"  trace-overhead           untraced "
            f"{self.untraced_events_per_sec / 1e3:>8.0f}k ev/s  traced "
            f"{self.traced_events_per_sec / 1e3:>8.0f}k ev/s  "
            f"(+{self.traced_slowdown_percent:.1f}% when on)  "
            f"identical={self.identical}"
        )


def run_trace_overhead(*, quick: bool = False, repeats: int = 3) -> TraceOverheadResult:
    """Measure the cost of tracing on the canonical CONGA FCT spec.

    Runs the :data:`TRACE_OVERHEAD_SPEC` point ``repeats`` times with the
    tracer absent and ``repeats`` times with every category enabled,
    alternating to spread thermal/cache drift across both arms, and keeps
    the best (highest events/sec) run of each — best-of is the standard
    microbenchmark estimator for "the code's speed absent interference".

    ``quick=True`` shrinks the spec for fast relative (traced vs
    untraced) checks, but its events/sec are dominated by fabric setup
    and must not be compared against the committed full-scale baseline —
    :func:`assert_disabled_overhead` needs a ``quick=False`` result.
    """
    from repro.analysis.fct import records_digest
    from repro.apps import ExperimentSpec, ObsSpec

    base = ExperimentSpec(
        scheme="conga",
        workload="enterprise",
        load=0.7,
        seed=42,
        num_flows=60 if quick else 400,
        size_scale=0.05,
    )
    traced_spec = base.with_(obs=ObsSpec())
    best: dict[bool, float] = {False: 0.0, True: 0.0}
    digests: dict[bool, str] = {}
    events = 0
    emitted = 0
    for _ in range(max(1, repeats)):
        for traced in (False, True):
            point = (traced_spec if traced else base).run()
            best[traced] = max(best[traced], point.events_per_sec)
            digests[traced] = records_digest(list(point.records))
            events = point.events_executed
            if traced and point.trace is not None:
                emitted = point.trace.emitted
    return TraceOverheadResult(
        events_executed=events,
        repeats=max(1, repeats),
        untraced_events_per_sec=best[False],
        traced_events_per_sec=best[True],
        untraced_digest=digests[False],
        traced_digest=digests[True],
        trace_events_emitted=emitted,
    )


def run_timeline_overhead(
    *, quick: bool = False, repeats: int = 3
) -> TraceOverheadResult:
    """Measure the timeline collector's cost on the same canonical spec.

    The shape mirrors :func:`run_trace_overhead` — and reuses its result
    type — with the *timeline* knob as the toggled arm: the "untraced"
    fields measure a spec with no ``obs`` at all (the timeline-disabled
    hot path the ≤3% gate protects), the "traced" fields a spec carrying
    ``ObsSpec(categories=(), timeline=TimelineSpec())`` (sampling on, ring
    tracing silent), and ``trace_events_emitted`` reports timeline samples
    taken.  Both arms must produce identical flow records — the collector
    is strictly read-only — so ``result.identical`` is the determinism
    check and :func:`assert_disabled_overhead` is the perf gate, exactly
    as for tracing.
    """
    from repro.analysis.fct import records_digest
    from repro.apps import ExperimentSpec, ObsSpec
    from repro.obs import TimelineSpec

    base = ExperimentSpec(
        scheme="conga",
        workload="enterprise",
        load=0.7,
        seed=42,
        num_flows=60 if quick else 400,
        size_scale=0.05,
    )
    sampled_spec = base.with_(
        obs=ObsSpec(categories=(), timeline=TimelineSpec())
    )
    best: dict[bool, float] = {False: 0.0, True: 0.0}
    digests: dict[bool, str] = {}
    events = 0
    samples = 0
    for _ in range(max(1, repeats)):
        for sampled in (False, True):
            point = (sampled_spec if sampled else base).run()
            best[sampled] = max(best[sampled], point.events_per_sec)
            digests[sampled] = records_digest(list(point.records))
            events = point.events_executed
            if sampled and point.timeline is not None:
                samples = point.timeline.samples
    return TraceOverheadResult(
        events_executed=events,
        repeats=max(1, repeats),
        untraced_events_per_sec=best[False],
        traced_events_per_sec=best[True],
        untraced_digest=digests[False],
        traced_digest=digests[True],
        trace_events_emitted=samples,
    )


def assert_disabled_overhead(
    result: TraceOverheadResult,
    *,
    bench_path: str | Path = BENCH_FILENAME,
    tolerance: float = DISABLED_OVERHEAD_TOLERANCE,
) -> float:
    """Assert the tracing-disabled kernel kept its pre-observability speed.

    Compares ``result.untraced_events_per_sec`` against the committed
    ``baseline`` entry for :data:`TRACE_OVERHEAD_SPEC` in the benchmark
    file: the disabled path must stay within ``tolerance`` (default 3%)
    of that floor.  Returns the measured ratio (>= 1.0 means faster than
    baseline).  Raises :class:`AssertionError` on regression and
    :class:`ValueError` when no baseline exists to compare against.
    """
    payload = load_bench_file(bench_path)
    baseline = (payload or {}).get("baseline", {}).get(TRACE_OVERHEAD_SPEC)
    if not baseline or not baseline.get("events_per_sec"):
        raise ValueError(
            f"no {TRACE_OVERHEAD_SPEC!r} baseline in {bench_path}; "
            "run `conga-repro bench --set-baseline` first"
        )
    floor = float(baseline["events_per_sec"]) * (1.0 - tolerance)
    ratio = result.untraced_events_per_sec / float(baseline["events_per_sec"])
    if result.untraced_events_per_sec < floor:
        raise AssertionError(
            f"tracing-disabled kernel regressed: "
            f"{result.untraced_events_per_sec:,.0f} ev/s is below "
            f"{floor:,.0f} ev/s "
            f"({100 * (1 - tolerance):.0f}% of the "
            f"{float(baseline['events_per_sec']):,.0f} ev/s baseline)"
        )
    return ratio


__all__ = [
    "BENCH_FILENAME",
    "BENCH_SCHEMA",
    "BENCH_SPECS",
    "COMPARE_REGRESSION_TOLERANCE",
    "DISABLED_OVERHEAD_TOLERANCE",
    "TRACE_OVERHEAD_SPEC",
    "BenchComparison",
    "BenchResult",
    "TraceOverheadResult",
    "assert_disabled_overhead",
    "compare_bench",
    "comparison_failed",
    "load_bench_file",
    "profile_bench",
    "run_bench",
    "run_timeline_overhead",
    "run_trace_overhead",
    "write_bench_file",
]
