"""The fault-event algebra: frozen values describing fabric degradation.

Each event is a frozen, hashable dataclass with an integer-nanosecond
``time`` and an :meth:`FaultEvent.apply` method invoked by the
:class:`repro.faults.injector.FaultInjector` when the simulation clock
reaches that time (``time == 0`` events are applied synchronously at
injector construction, i.e. as initial conditions, before monitors attach).

Because events are plain values they ride on
:attr:`repro.apps.ExperimentSpec.faults` — picklable across worker
processes, canonicalizable for the result-cache content hash, and
expressible on the CLI through :func:`parse_fault`.

Paper mapping (see DESIGN.md for the full chapter):

* :class:`LinkDown` / :class:`LinkUp` — the single-failure asymmetry of
  Fig. 7(b) / Fig. 11, now schedulable mid-run;
* :class:`RandomLinkDowns` — the Fig. 16 multi-failure scenario;
* :class:`LinkDegrade` / :class:`LinkLoss` — the degraded-but-alive
  brownouts and grey failures that §3.3's metric aging is designed to
  survive;
* :class:`FeedbackLoss` — severs the piggybacked feedback channel so
  Congestion-To-Leaf entries age out (§3.3) and paths get re-probed;
* :class:`SwitchBlackout` — whole-switch failure, the coarsest asymmetry.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import TYPE_CHECKING

if TYPE_CHECKING:
    from repro.faults.injector import FaultInjector

#: Nanoseconds per supported time-suffix for :func:`parse_fault`.
_TIME_UNITS = {"ns": 1, "us": 1_000, "ms": 1_000_000, "s": 1_000_000_000}

_LINK_TARGET = re.compile(r"^l(\d+)-s(\d+)(?:\.(\d+))?$")
_CORE_LINK_TARGET = re.compile(r"^s(\d+)-c(\d+)(?:\.(\d+))?$")
_SWITCH_TARGET = re.compile(r"^(leaf|spine|core)(\d+)$")


@dataclass(frozen=True)
class FaultEvent:
    """Base class: one change to the fabric at simulated time ``time`` (ns)."""

    time: int

    def __post_init__(self) -> None:
        if self.time < 0:
            raise ValueError(f"fault time must be >= 0, got {self.time}")

    def apply(self, injector: "FaultInjector") -> None:
        """Apply this event to the injector's fabric.  Subclasses override."""
        raise NotImplementedError

    def restores(self) -> bool:
        """Whether this event (partially) undoes degradation.

        Used by :func:`fault_window` to bracket the degraded interval for
        the analysis-side degradation metrics.
        """
        return False

    def restore_time(self) -> int | None:
        """When this event's effect ends, for duration-bearing events."""
        duration = getattr(self, "duration", None)
        if duration is None:
            return self.time if self.restores() else None
        return self.time + duration


@dataclass(frozen=True)
class LinkDown(FaultEvent):
    """Fail the ``which``-th parallel fabric link (cut-cable, Fig. 7b).

    With ``core=None`` (the default) the target is the leaf↔spine link
    ``(leaf, spine)``; with ``core`` set it is the spine↔core link
    ``(spine, core)`` of a multi-pod fabric and ``leaf`` is ignored.
    """

    leaf: int = 0
    spine: int = 0
    which: int = 0
    core: int | None = None

    def apply(self, injector: "FaultInjector") -> None:
        if self.core is not None:
            injector.core_link_port(self.spine, self.core, self.which).fail()
            return
        injector.fabric.fail_link(self.leaf, self.spine, self.which)


@dataclass(frozen=True)
class LinkUp(FaultEvent):
    """Restore a previously failed fabric link (see :class:`LinkDown`)."""

    leaf: int = 0
    spine: int = 0
    which: int = 0
    core: int | None = None

    def apply(self, injector: "FaultInjector") -> None:
        if self.core is not None:
            injector.core_link_port(self.spine, self.core, self.which).restore()
            return
        injector.fabric.restore_link(self.leaf, self.spine, self.which)

    def restores(self) -> bool:
        return True


@dataclass(frozen=True)
class LinkDegrade(FaultEvent):
    """Scale one link's rate to ``fraction`` of nominal in both directions.

    ``fraction=1.0`` restores the nominal rate, so a brownout window is a
    ``LinkDegrade(t0, ..., fraction=0.25)`` / ``LinkDegrade(t1, ...,
    fraction=1.0)`` pair.  The attached DREs are retargeted to the new line
    rate, exactly as the ASIC's utilization estimate tracks the configured
    port speed.
    """

    leaf: int = 0
    spine: int = 0
    which: int = 0
    fraction: float = 0.5
    core: int | None = None

    def __post_init__(self) -> None:
        super().__post_init__()
        if not 0.0 < self.fraction <= 1.0:
            raise ValueError(
                f"fraction must be in (0, 1], got {self.fraction}"
            )

    def apply(self, injector: "FaultInjector") -> None:
        injector.target_port(self).degrade(self.fraction)

    def restores(self) -> bool:
        return self.fraction >= 1.0


@dataclass(frozen=True)
class LinkLoss(FaultEvent):
    """Drop each packet on one link with ``probability`` (grey failure).

    Loss applies independently in both directions, after serialization (the
    packet occupies the wire, then vanishes — corrupted-frame semantics).
    Draws come from a per-port named RNG stream
    (``"link-loss:<port name>"``), so loss patterns are deterministic per
    spec seed and independent of every other stream.  ``probability=0``
    clears the fault; ``probability=1`` black-holes the link while the
    routing layer still believes it is up — the failure mode ECMP cannot
    see but CONGA's feedback starves out of.
    """

    leaf: int = 0
    spine: int = 0
    which: int = 0
    probability: float = 0.01
    core: int | None = None

    def __post_init__(self) -> None:
        super().__post_init__()
        if not 0.0 <= self.probability <= 1.0:
            raise ValueError(
                f"probability must be in [0, 1], got {self.probability}"
            )

    def apply(self, injector: "FaultInjector") -> None:
        port = injector.target_port(self)
        for side in (port, port.peer):
            if side is None:
                continue
            rng = None
            if 0.0 < self.probability < 1.0:
                rng = injector.sim.rng(f"link-loss:{side.name}")
            side.set_loss(self.probability, rng)

    def restores(self) -> bool:
        return self.probability == 0.0


@dataclass(frozen=True)
class FeedbackLoss(FaultEvent):
    """Strip CONGA's piggybacked feedback arriving at a leaf's TEP (§3.3).

    With ``leaf=None`` every leaf's TEP discards incoming
    ``(FB_LBTag, FB_Metric)`` pairs with ``probability``; the affected
    leaves' Congestion-To-Leaf entries stop refreshing and age linearly to
    zero, which is precisely the staleness scenario §3.3's aging + optimistic
    re-probing is built for.  Forward-path CE measurement is untouched —
    only the reverse feedback channel is lossy.  ``duration`` (ns) schedules
    an automatic clear; ``probability=0`` clears immediately.
    """

    leaf: int | None = None
    probability: float = 1.0
    duration: int | None = None

    def __post_init__(self) -> None:
        super().__post_init__()
        if not 0.0 <= self.probability <= 1.0:
            raise ValueError(
                f"probability must be in [0, 1], got {self.probability}"
            )
        if self.duration is not None and self.duration <= 0:
            raise ValueError(f"duration must be positive, got {self.duration}")

    def apply(self, injector: "FaultInjector") -> None:
        injector.set_feedback_loss(self.leaf, self.probability)
        if self.duration is not None:
            injector.sim.schedule_at(
                self.time + self.duration,
                injector._clear_feedback_loss,
                self.leaf,
            )

    def restores(self) -> bool:
        return self.probability == 0.0


@dataclass(frozen=True)
class SwitchBlackout(FaultEvent):
    """Fail every port of one switch.

    ``kind`` is ``"leaf"``, ``"spine"``, or ``"core"`` (core switches only
    exist in a multi-pod fabric).  ``duration`` (ns) schedules a restore of
    all the switch's ports; note the restore brings *every* port of the
    switch up, including any failed earlier by other events.
    """

    kind: str = "spine"
    switch: int = 0
    duration: int | None = None

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.kind not in ("leaf", "spine", "core"):
            raise ValueError(
                f"kind must be 'leaf', 'spine', or 'core', got {self.kind!r}"
            )
        if self.duration is not None and self.duration <= 0:
            raise ValueError(f"duration must be positive, got {self.duration}")

    def apply(self, injector: "FaultInjector") -> None:
        for port in injector.fabric.switch_ports(self.kind, self.switch):
            port.fail()
        if self.duration is not None:
            injector.sim.schedule_at(
                self.time + self.duration,
                injector._restore_switch,
                (self.kind, self.switch),
            )


@dataclass(frozen=True)
class RandomLinkDowns(FaultEvent):
    """Fail ``count`` random links of one fabric tier (the Fig. 16 scenario).

    Uses :func:`repro.topology.fail_random_links`, so the failure set comes
    from the named ``stream`` of the run's own seed — machine- and
    process-stable — and never disconnects a switch from its uplink tier.
    ``tier="leaf"`` draws from leaf↔spine links; ``tier="core"`` from the
    spine↔core links of a multi-pod fabric.
    """

    count: int = 1
    stream: str = "link-failures"
    tier: str = "leaf"

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.count < 1:
            raise ValueError(f"count must be >= 1, got {self.count}")
        from repro.topology.failures import TIERS

        if self.tier not in TIERS:
            raise ValueError(f"tier must be one of {TIERS}, got {self.tier!r}")

    def apply(self, injector: "FaultInjector") -> None:
        from repro.topology.failures import fail_random_links

        fail_random_links(injector.fabric, self.count, self.stream, tier=self.tier)


def fault_window(faults: tuple[FaultEvent, ...]) -> tuple[int, int | None] | None:
    """The (start, end) of the degraded interval described by ``faults``.

    ``start`` is the earliest degrading event; ``end`` is the latest
    restore (a restoring event's time, or ``time + duration`` for
    duration-bearing events), or ``None`` when nothing ever restores —
    degradation persists to the end of the run.  Returns ``None`` when
    ``faults`` contains no degrading events at all.
    """
    starts = [f.time for f in faults if not f.restores()]
    if not starts:
        return None
    ends = [t for f in faults if (t := f.restore_time()) is not None]
    return min(starts), (max(ends) if ends else None)


def _parse_time(text: str) -> int:
    """``"0.1s"`` / ``"250us"`` / bare integer nanoseconds → int ns."""
    for suffix, scale in sorted(_TIME_UNITS.items(), key=lambda kv: -len(kv[0])):
        if text.endswith(suffix):
            number = text[: -len(suffix)]
            try:
                return round(float(number) * scale)
            except ValueError:
                raise ValueError(f"bad time value {text!r}") from None
    try:
        return int(text)
    except ValueError:
        raise ValueError(
            f"bad time {text!r}; use <number><ns|us|ms|s> or integer ns"
        ) from None


def _parse_link(target: str, kind: str) -> dict[str, int]:
    """Link-target grammar → constructor kwargs for the Link* events.

    ``l<leaf>-s<spine>[.<which>]`` addresses a leaf↔spine link;
    ``s<spine>-c<core>[.<which>]`` a spine↔core link of a multi-pod fabric.
    """
    match = _LINK_TARGET.match(target)
    if match is not None:
        leaf, spine, which = match.groups()
        return {"leaf": int(leaf), "spine": int(spine), "which": int(which or 0)}
    match = _CORE_LINK_TARGET.match(target)
    if match is not None:
        spine, core, which = match.groups()
        return {"spine": int(spine), "core": int(core), "which": int(which or 0)}
    raise ValueError(
        f"{kind} needs a link target like 'l1-s1', 'l1-s1.0', or 's1-c0', "
        f"got {target!r}"
    )


def parse_fault(text: str) -> FaultEvent:
    """Parse one CLI fault expression into a :class:`FaultEvent`.

    Grammar: ``kind@TIME[:TARGET][=VALUE][~PROB][+DURATION]`` where TIME and
    DURATION take a unit suffix (``ns``/``us``/``ms``/``s``), TARGET is
    ``l<leaf>-s<spine>[.<which>]`` or ``s<spine>-c<core>[.<which>]`` for
    links, ``leaf<N>`` / ``spine<N>`` / ``core<N>`` for switches, or a tier
    name (``leaf`` / ``core``) for ``random_downs``; VALUE is a rate
    fraction (``link_degrade``) or a count (``random_downs``), and PROB is
    a drop probability.  Core-tier targets need a multi-pod fabric.
    Examples::

        link_down@0.1s:l0-s1         link_degrade@1ms:l1-s1.0=0.25
        link_loss@0s:s1-c0~1.0       feedback_loss@0.5ms:leaf1~0.5+2ms
        blackout@1ms:core1+500us     random_downs@0s:core=3
    """
    kind, sep, rest = text.partition("@")
    if not sep or not kind:
        raise ValueError(f"fault {text!r} must look like kind@time[...]")

    duration = None
    if "+" in rest:
        rest, _, dur_text = rest.rpartition("+")
        duration = _parse_time(dur_text)
    prob = None
    if "~" in rest:
        rest, _, prob_text = rest.partition("~")
        prob = float(prob_text)
    value = None
    if "=" in rest:
        rest, _, value_text = rest.partition("=")
        value = float(value_text)
    time_text, _, target = rest.partition(":")
    time = _parse_time(time_text)

    if kind in ("link_down", "link_up"):
        cls = LinkDown if kind == "link_down" else LinkUp
        return cls(time=time, **_parse_link(target, kind))
    if kind == "link_degrade":
        if value is None:
            raise ValueError("link_degrade needs '=<fraction>'")
        return LinkDegrade(time=time, fraction=value, **_parse_link(target, kind))
    if kind == "link_loss":
        if prob is None:
            raise ValueError("link_loss needs '~<probability>'")
        return LinkLoss(time=time, probability=prob, **_parse_link(target, kind))
    if kind == "feedback_loss":
        leaf: int | None = None
        if target:
            match = _SWITCH_TARGET.match(target)
            if match is None or match.group(1) != "leaf":
                raise ValueError(
                    f"feedback_loss target must be 'leaf<N>', got {target!r}"
                )
            leaf = int(match.group(2))
        return FeedbackLoss(
            time=time,
            leaf=leaf,
            probability=1.0 if prob is None else prob,
            duration=duration,
        )
    if kind == "blackout":
        match = _SWITCH_TARGET.match(target)
        if match is None:
            raise ValueError(
                "blackout target must be 'leaf<N>', 'spine<N>', or "
                f"'core<N>', got {target!r}"
            )
        return SwitchBlackout(
            time=time,
            kind=match.group(1),
            switch=int(match.group(2)),
            duration=duration,
        )
    if kind == "random_downs":
        if value is None:
            raise ValueError("random_downs needs '=<count>'")
        tier = target or "leaf"
        return RandomLinkDowns(time=time, count=int(value), tier=tier)
    raise ValueError(
        f"unknown fault kind {kind!r}; known kinds: link_down, link_up, "
        "link_degrade, link_loss, feedback_loss, blackout, random_downs"
    )


__all__ = [
    "FaultEvent",
    "FeedbackLoss",
    "LinkDegrade",
    "LinkDown",
    "LinkLoss",
    "LinkUp",
    "RandomLinkDowns",
    "SwitchBlackout",
    "fault_window",
    "parse_fault",
]
