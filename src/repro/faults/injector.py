"""Drives a fault schedule against a live simulation.

The injector is constructed by :func:`repro.apps.execute_experiment` right
after the fabric is finalized and *before* monitors attach, with the run's
``faults`` tuple:

* events with ``time == 0`` are applied synchronously at construction —
  they are initial conditions, so declarative monitors (whose port
  selection excludes down links) and route caches see the degraded fabric
  from the first event on;
* later events are scheduled on the kernel as bound-method + arg-slot
  events (the S201-clean picklable form), one per fault, and fire in
  schedule order at equal times.

An empty schedule constructs nothing and touches no RNG stream, so runs
with ``faults=()`` are event-for-event identical to runs predating the
fault plane (the golden digests in ``tests/golden/`` pin this).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.faults.events import FaultEvent
from repro.obs.events import FaultApplied, FaultRestored

if TYPE_CHECKING:
    from repro.net.port import Port
    from repro.sim import Simulator
    from repro.switch.fabric import Fabric


class FaultInjector:
    """Applies a tuple of :class:`FaultEvent` values to one fabric."""

    def __init__(
        self,
        sim: "Simulator",
        fabric: "Fabric",
        faults: tuple[FaultEvent, ...],
    ) -> None:
        self.sim = sim
        self.fabric = fabric
        self.faults = tuple(faults)
        #: Log of (simulated time, event) pairs in application order.
        self.applied: list[tuple[int, FaultEvent]] = []
        #: Peak per-tier capacity asymmetry observed across the schedule:
        #: tier name -> max over fault applications of the fraction of that
        #: tier's nominal capacity unusable right after the event fired.
        self.peak_tier_asymmetry: dict[str, float] = {}
        for event in self.faults:
            if not isinstance(event, FaultEvent):
                raise TypeError(
                    f"faults must be FaultEvent instances, got {event!r}"
                )
            if event.time <= sim.now:
                self._apply(event)
            else:
                sim.schedule_at(event.time, self._apply, event)

    def _apply(self, event: FaultEvent) -> None:
        event.apply(self)
        self.applied.append((self.sim.now, event))
        self._snapshot_asymmetry()
        tracer = self.sim.tracer
        if tracer is not None and tracer.fault:
            cls = FaultRestored if event.restores() else FaultApplied
            tracer.emit(
                cls(
                    time=self.sim.now,
                    kind=type(event).__name__,
                    fault=repr(event),
                )
            )

    def _snapshot_asymmetry(self) -> None:
        """Fold the fabric's current per-tier asymmetry into the peaks.

        Asymmetry here is 1 − aggregate residual capacity of the tier's
        links (down, black-holed, and browned-out ports all count), the
        quantity :class:`repro.analysis.DegradationSummary` reports per
        tier.  Called once per applied fault event, so it is off every hot
        path.
        """
        from repro.net.port import residual_capacity

        peaks = self.peak_tier_asymmetry
        asymmetry = 1.0 - residual_capacity(self.fabric.leaf_uplink_ports())
        if asymmetry > peaks.get("leaf", 0.0):
            peaks["leaf"] = asymmetry
        core_ports = getattr(self.fabric, "spine_core_ports", None)
        if core_ports is not None:
            asymmetry = 1.0 - residual_capacity(core_ports())
            if asymmetry > peaks.get("core", 0.0):
                peaks["core"] = asymmetry

    def tier_asymmetry(self) -> tuple[tuple[str, float], ...]:
        """Sorted (tier, peak asymmetry) pairs for the run so far."""
        return tuple(sorted(self.peak_tier_asymmetry.items()))

    # -- helpers used by event.apply() implementations -----------------------

    def link_port(self, leaf: int, spine: int, which: int) -> "Port":
        """The leaf-side port of the ``which``-th parallel leaf↔spine link."""
        ports = self.fabric.uplink_ports(leaf, spine)
        if which >= len(ports):
            raise ValueError(
                f"leaf{leaf}<->spine{spine} has {len(ports)} links, "
                f"no link {which}"
            )
        return ports[which]

    def core_link_port(self, spine: int, core: int, which: int) -> "Port":
        """The spine-side port of the ``which``-th parallel spine↔core link."""
        core_uplinks = getattr(self.fabric, "core_uplink_ports", None)
        if core_uplinks is None:
            raise ValueError(
                "core-tier fault targets need a multi-pod fabric "
                "(this fabric has no spine-core links)"
            )
        ports = core_uplinks(spine, core)
        if which >= len(ports):
            raise ValueError(
                f"spine{spine}<->core{core} has {len(ports)} links, "
                f"no link {which}"
            )
        return ports[which]

    def target_port(self, event) -> "Port":
        """Resolve a Link* event's target port across both link tiers."""
        if event.core is not None:
            return self.core_link_port(event.spine, event.core, event.which)
        return self.link_port(event.leaf, event.spine, event.which)

    def set_feedback_loss(self, leaf: int | None, probability: float) -> None:
        """Configure feedback stripping at one leaf's TEP (or all TEPs)."""
        leaves = (
            self.fabric.leaves if leaf is None else [self.fabric.leaves[leaf]]
        )
        for target in leaves:
            if target.tep is None:
                raise ValueError(
                    f"{target.name} has no TEP; inject faults after finalize()"
                )
            rng = None
            if 0.0 < probability < 1.0:
                rng = self.sim.rng(f"feedback-loss:leaf{target.leaf_id}")
            target.tep.set_feedback_loss(probability, rng)

    # -- scheduled restore callbacks (bound method + arg slot, S201-clean) ----

    def _clear_feedback_loss(self, leaf: int | None = None) -> None:
        # The default matters: the kernel calls arg=None events with *no*
        # argument, and leaf=None (all leaves) is stored as arg None.
        self.set_feedback_loss(leaf, 0.0)

    def _restore_switch(self, target: tuple[str, int]) -> None:
        kind, switch = target
        for port in self.fabric.switch_ports(kind, switch):
            port.restore()


__all__ = ["FaultInjector"]
