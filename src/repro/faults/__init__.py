"""Deterministic fault-injection plane (paper §3.3, Figs. 11/16).

CONGA's headline claim is graceful degradation under asymmetry.  This
package makes every degraded-but-alive scenario a *value*: a frozen,
hashable :class:`FaultEvent` describes one change to the fabric at one
simulated instant, a tuple of them forms a fault schedule that rides on
:class:`repro.apps.ExperimentSpec` (sweepable, cacheable, CLI-expressible),
and :class:`FaultInjector` turns the schedule into kernel events that drive
the partial-degradation hooks on :class:`repro.net.port.Port` and
:class:`repro.switch.fabric.Fabric`.

Determinism contract: a fault schedule is part of the spec, every random
draw a fault makes (per-packet loss, random failure sets) comes from a
named per-simulator RNG stream, and events at equal times apply in schedule
order — so the same spec + seed yields bit-identical results at any worker
count, and an empty schedule leaves the simulation untouched.
"""

from repro.faults.events import (
    FaultEvent,
    FeedbackLoss,
    LinkDegrade,
    LinkDown,
    LinkLoss,
    LinkUp,
    RandomLinkDowns,
    SwitchBlackout,
    fault_window,
    parse_fault,
)
from repro.faults.injector import FaultInjector

__all__ = [
    "FaultEvent",
    "FaultInjector",
    "FeedbackLoss",
    "LinkDegrade",
    "LinkDown",
    "LinkLoss",
    "LinkUp",
    "RandomLinkDowns",
    "SwitchBlackout",
    "fault_window",
    "parse_fault",
]
