"""CONGA: distributed congestion-aware load balancing for datacenters.

A from-scratch Python reproduction of Alizadeh et al., SIGCOMM 2014:
a deterministic packet-level Leaf-Spine fabric simulator with CONGA's
DREs, flowlet switching, and leaf-to-leaf congestion feedback; ECMP /
CONGA-Flow / MPTCP baselines; the paper's workloads, benchmarks, and
game-theoretic analysis.

Quickstart::

    from repro.sim import Simulator
    from repro.topology import build_leaf_spine, scaled_testbed
    from repro.lb import CongaSelector
    from repro.transport import TcpFlow

    sim = Simulator(seed=1)
    fabric = build_leaf_spine(sim, scaled_testbed())
    fabric.finalize(CongaSelector.factory())
    flow = TcpFlow(sim, fabric.host(0), fabric.host(8), size=10_000_000)
    flow.start()
    sim.run()
    print(flow.fct)
"""

__version__ = "1.1.0"

__all__ = [
    "analysis",
    "apps",
    "core",
    "fluid",
    "lb",
    "net",
    "obs",
    "overlay",
    "sim",
    "switch",
    "theory",
    "topology",
    "traces",
    "transport",
    "units",
    "workloads",
]
