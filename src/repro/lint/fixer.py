"""``--fix-suppress``: insert suppression comments for triaged findings.

After a human triages a batch of legacy findings as acceptable (e.g. the
reporting-only perf counters in the kernel), this helper appends
``# repro-lint: ignore[RULE]`` comments to each violating line so the
repo goes back to lint-clean while every waiver stays greppable.  The
inserted comments end with ``-- triaged`` as a prompt to replace the
placeholder with an actual justification.

Lines that already carry an ``ignore[...]`` comment get the new rule ids
merged into the existing bracket instead of a second comment.

Round-trip guarantees (covered by ``tests/test_lint_fixer.py``):

* **Idempotent** — applying the same violations twice produces the same
  bytes; merged brackets are sorted and deduplicated.
* **Encoding-preserving** — the source encoding is detected from the
  PEP 263 coding cookie / BOM (``tokenize.detect_encoding``) and the
  file is rewritten in that encoding, BOM included.
* **Newline-preserving** — lines are split on ``\\n`` only, without
  universal-newline translation, so CRLF files stay CRLF.
"""

from __future__ import annotations

import io
import re
import tokenize
from pathlib import Path
from typing import Iterable, Sequence

from repro.lint.engine import Violation

_EXISTING_RE = re.compile(
    r"(?P<prefix>#\s*repro-lint:\s*ignore\s*\[)(?P<rules>[A-Za-z0-9*,\s]+)(?P<suffix>\])"
)

#: Rules a suppression comment can never fix: parse errors need a real
#: repair, and suppressing a stale-suppression report is self-defeating.
_UNSUPPRESSABLE = frozenset({"E001", "E304"})


def _merge_line(line: str, rules: Sequence[str]) -> str:
    """Append or merge a suppression comment for ``rules`` into ``line``."""
    body = line.rstrip("\r\n")
    newline = line[len(body):]
    match = _EXISTING_RE.search(body)
    if match is not None:
        existing = [part.strip() for part in match.group("rules").split(",")]
        merged = sorted(set(existing) | set(rules))
        body = (
            body[: match.start()]
            + match.group("prefix")
            + ",".join(merged)
            + match.group("suffix")
            + body[match.end():]
        )
    else:
        body = f"{body}  # repro-lint: ignore[{','.join(sorted(set(rules)))}] -- triaged"
    return body + newline


def _split_lines(text: str) -> list[str]:
    """Split on ``\\n`` only, keeping line terminators (CRLF-safe)."""
    parts = text.split("\n")
    lines = [part + "\n" for part in parts[:-1]]
    if parts[-1]:
        lines.append(parts[-1])
    return lines


def apply_suppressions(violations: Iterable[Violation]) -> dict[str, int]:
    """Insert suppression comments for ``violations``; returns lines edited per file.

    Violations on the same line are merged into one comment.  Parse
    errors (``E001``) and stale-waiver reports (``E304``) are never
    suppressed — they need a real fix.
    """
    by_file: dict[str, dict[int, list[str]]] = {}
    for violation in violations:
        if violation.rule in _UNSUPPRESSABLE:
            continue
        by_file.setdefault(violation.path, {}).setdefault(
            violation.line, []
        ).append(violation.rule)

    edited: dict[str, int] = {}
    for path, by_line in sorted(by_file.items()):
        file_path = Path(path)
        raw = file_path.read_bytes()
        encoding, _ = tokenize.detect_encoding(io.BytesIO(raw).readline)
        lines = _split_lines(raw.decode(encoding))
        for line_number, rules in by_line.items():
            index = line_number - 1
            if 0 <= index < len(lines):
                lines[index] = _merge_line(lines[index], rules)
        file_path.write_bytes("".join(lines).encode(encoding))
        edited[path] = len(by_line)
    return edited


__all__ = ["apply_suppressions"]
