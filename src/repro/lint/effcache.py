"""Content-hash cache for the whole-program effects pass.

The cache keeps the effects pass fast enough for a pre-commit hook and a
CI budget of seconds:

* **Per-file summaries** keyed by the sha256 of the file's bytes — an
  unchanged file is never re-parsed or re-run through the per-file rule
  evidence pass (:class:`~repro.lint.callgraph.ModuleSummary` is fully
  JSON-serializable for exactly this reason).
* **Propagation results + per-function fingerprints** from the previous
  run — :func:`repro.lint.effects.propagate` re-propagates only the
  strongly-connected components that can reach a changed function and
  reuses the cached transitive effect sets everywhere else.

The cache file is a single JSON document (default
``.repro-cache/lint-effects.json``), safe to delete at any time; a stale
or corrupt cache degrades to a cold run, never to wrong results — every
reuse is guarded by a content hash or fingerprint comparison.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.lint.callgraph import ModuleSummary
from repro.lint.effects import Witness

#: Bumped whenever the summary or propagation schema changes; a mismatch
#: invalidates the whole cache file.
CACHE_SCHEMA = 3

#: Default location, shared with the other build caches.
DEFAULT_CACHE_PATH = Path(".repro-cache") / "lint-effects.json"


class EffectCache:
    """Load/store summaries and propagation results for one cache file."""

    def __init__(self, path: Path) -> None:
        self.path = path
        self._files: dict[str, dict] = {}
        self.propagation: dict[str, dict[str, Witness]] = {}
        self.fingerprints: dict[str, str] = {}
        self._dirty = False
        self._load()

    def _load(self) -> None:
        try:
            data = json.loads(self.path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            return
        if not isinstance(data, dict) or data.get("schema") != CACHE_SCHEMA:
            return
        self._files = dict(data.get("files", {}))
        self.fingerprints = dict(data.get("fingerprints", {}))
        for qname, table in dict(data.get("propagation", {})).items():
            decoded: dict[str, Witness] = {}
            for key, value in table.items():
                line, callee, callee_key, detail = value
                decoded[key] = (line, callee, callee_key, detail)
            self.propagation[qname] = decoded

    def summary_for(self, display: str, content_hash: str) -> ModuleSummary | None:
        """Cached summary for ``display`` if its content hash still matches."""
        entry = self._files.get(display)
        if entry is None or entry.get("hash") != content_hash:
            return None
        try:
            return ModuleSummary.from_json(entry["summary"])
        except (KeyError, TypeError, ValueError):
            return None

    def store_summary(
        self, display: str, content_hash: str, summary: ModuleSummary
    ) -> None:
        entry = self._files.get(display)
        if entry is not None and entry.get("hash") == content_hash:
            return
        self._files[display] = {"hash": content_hash, "summary": summary.to_json()}
        self._dirty = True

    def store_propagation(
        self,
        propagation: dict[str, dict[str, Witness]],
        fingerprints: dict[str, str],
    ) -> None:
        if propagation != self.propagation or fingerprints != self.fingerprints:
            self.propagation = propagation
            self.fingerprints = fingerprints
            self._dirty = True

    def save(self) -> None:
        """Write the cache atomically (best effort; failures are silent)."""
        if not self._dirty:
            return
        document = {
            "schema": CACHE_SCHEMA,
            "files": self._files,
            "fingerprints": self.fingerprints,
            "propagation": {
                qname: {key: list(value) for key, value in table.items()}
                for qname, table in self.propagation.items()
            },
        }
        try:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            tmp = self.path.with_suffix(".tmp")
            tmp.write_text(json.dumps(document, sort_keys=True), encoding="utf-8")
            tmp.replace(self.path)
        except OSError:
            return
        self._dirty = False


__all__ = ["CACHE_SCHEMA", "DEFAULT_CACHE_PATH", "EffectCache"]
