"""The rule catalog: determinism (D1xx), simulation invariants (S2xx),
and reporting discipline (R3xx).

Each rule turns one of this reproduction's correctness contracts into a
machine-checked property.  The D-class rules guard the bit-exact
determinism contract established by the golden digest fixtures
(tests/golden/): the simulation must be a pure function of the
:class:`~repro.apps.spec.ExperimentSpec`, so nothing on a simulated code
path may read wall clocks, process-seeded hashes, or unordered
collections whose order can leak into tie-breaking.  The S-class rules
guard structural invariants of the simulator and the sweep runner.

DESIGN.md documents every rule with the invariant it guards and the
paper section it derives from; keep the two lists in sync.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.engine import ModuleContext, Rule, Violation

#: Wall-clock functions of :mod:`time` that break run reproducibility.
_WALL_CLOCK_TIME_FUNCS = frozenset(
    {
        "time",
        "time_ns",
        "perf_counter",
        "perf_counter_ns",
        "monotonic",
        "monotonic_ns",
        "process_time",
        "process_time_ns",
    }
)

#: Wall-clock constructors of :class:`datetime.datetime`.
_WALL_CLOCK_DATETIME_FUNCS = frozenset({"now", "utcnow", "today"})

#: Legacy global-state numpy.random functions (the seeded, per-simulator
#: ``Generator`` streams from ``Simulator.rng`` are the sanctioned API).
_NUMPY_GLOBAL_RANDOM = frozenset(
    {
        "seed",
        "random",
        "rand",
        "randn",
        "randint",
        "random_sample",
        "shuffle",
        "permutation",
        "choice",
        "uniform",
        "normal",
        "exponential",
    }
)

#: Accumulation helpers exempt from the float-accumulation rule.
_APPROVED_ACCUMULATORS = frozenset({"fsum", "isum", "kahan_add"})

#: Registry dicts that must be written through their registration API.
_REGISTRIES = frozenset({"SCHEMES", "WORKLOADS"})

#: ``Simulator`` scheduling methods whose callback lands on the event heap.
_SCHEDULE_METHODS = frozenset({"schedule", "schedule_at", "schedule_fast"})


def _dotted_name(node: ast.expr) -> str | None:
    """``a.b.c`` for a Name/Attribute chain, else None."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        parts.reverse()
        return ".".join(parts)
    return None


def _import_aliases(tree: ast.Module, module_name: str) -> set[str]:
    """Local names bound to ``import module_name [as alias]``."""
    aliases: set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == module_name:
                    aliases.add(alias.asname or alias.name)
                elif alias.name.startswith(module_name + "."):
                    # ``import time.something`` binds the top-level name.
                    aliases.add(alias.asname or module_name)
    return aliases


def _from_import_aliases(
    tree: ast.Module, module_name: str, names: frozenset[str]
) -> dict[str, str]:
    """Local alias -> original for ``from module_name import name [as alias]``."""
    aliases: dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.ImportFrom) and node.module == module_name:
            for alias in node.names:
                if alias.name in names:
                    aliases[alias.asname or alias.name] = alias.name
    return aliases


class WallClockRule(Rule):
    """D101 — simulated code must never read the wall clock."""

    rule_id = "D101"
    title = "no wall-clock reads on simulated code paths"
    rationale = (
        "Simulation time is Simulator.now (integer nanoseconds); a wall-clock "
        "read that influences results makes runs non-reproducible.  Reporting-"
        "only timing (perf counters) must be suppressed with a justification."
    )
    paper_ref = "repo determinism contract (tests/golden/)"

    def check(self, module: ModuleContext) -> Iterator[Violation]:
        tree = module.tree
        time_aliases = _import_aliases(tree, "time")
        time_direct = _from_import_aliases(tree, "time", _WALL_CLOCK_TIME_FUNCS)
        datetime_mods = _import_aliases(tree, "datetime")
        datetime_classes = set(
            _from_import_aliases(tree, "datetime", frozenset({"datetime", "date"}))
        )
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if isinstance(func, ast.Name) and func.id in time_direct:
                yield self.violation(
                    module,
                    node,
                    f"wall-clock call time.{time_direct[func.id]}() on a "
                    "simulated code path; use Simulator.now (suppress with a "
                    "reason if this is reporting-only timing)",
                )
                continue
            dotted = _dotted_name(func) if isinstance(func, ast.Attribute) else None
            if dotted is None:
                continue
            head, _, tail = dotted.partition(".")
            if head in time_aliases and tail in _WALL_CLOCK_TIME_FUNCS:
                yield self.violation(
                    module,
                    node,
                    f"wall-clock call {dotted}() on a simulated code path; "
                    "use Simulator.now (suppress with a reason if this is "
                    "reporting-only timing)",
                )
                continue
            last = dotted.rsplit(".", 1)[-1]
            if last in _WALL_CLOCK_DATETIME_FUNCS and (
                head in datetime_mods or head in datetime_classes
            ):
                yield self.violation(
                    module,
                    node,
                    f"wall-clock call {dotted}() on a simulated code path; "
                    "derive timestamps from Simulator.now",
                )


class RandomModuleRule(Rule):
    """D102 — randomness must come from named, seeded simulator streams."""

    rule_id = "D102"
    title = "no random module / numpy global random state"
    rationale = (
        "All stochastic draws must come from Simulator.rng(name) substreams "
        "so adding a component never perturbs existing draws; the stdlib "
        "random module and numpy's global state are unseeded ambient state."
    )
    paper_ref = "repo determinism contract; paper §4 (deterministic mechanism)"

    def check(self, module: ModuleContext) -> Iterator[Violation]:
        tree = module.tree
        numpy_aliases = _import_aliases(tree, "numpy")
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "random" or alias.name.startswith("random."):
                        yield self.violation(
                            module,
                            node,
                            "import of the stdlib random module; draw from "
                            "Simulator.rng(<stream>) instead",
                        )
            elif isinstance(node, ast.ImportFrom):
                if node.module == "random":
                    yield self.violation(
                        module,
                        node,
                        "import from the stdlib random module; draw from "
                        "Simulator.rng(<stream>) instead",
                    )
                elif node.module == "numpy" and any(
                    alias.name == "random" for alias in node.names
                ):
                    yield self.violation(
                        module,
                        node,
                        "import of numpy.random global state; draw from "
                        "Simulator.rng(<stream>) instead",
                    )
            elif isinstance(node, ast.Call):
                dotted = _dotted_name(node.func)
                if dotted is None or "." not in dotted:
                    continue
                parts = dotted.split(".")
                if (
                    len(parts) == 3
                    and parts[0] in numpy_aliases
                    and parts[1] == "random"
                    and parts[2] in _NUMPY_GLOBAL_RANDOM
                ):
                    yield self.violation(
                        module,
                        node,
                        f"{dotted}() uses numpy's global random state; draw "
                        "from Simulator.rng(<stream>) instead",
                    )


class UnstableHashRule(Rule):
    """D103 — no process-dependent id()/hash() on simulated code paths."""

    rule_id = "D103"
    title = "no builtin id() / hash() calls"
    rationale = (
        "hash() of a str is randomized per process (PYTHONHASHSEED) and id() "
        "is an allocation address; either reaching a forwarding or "
        "tie-breaking decision makes runs differ between processes.  Use "
        "repro.net.hashing.stable_hash, which emulates the ASIC's packed-"
        "header hashing."
    )
    paper_ref = "paper §3.4 (flowlet hashing), §5.2.3"

    def check(self, module: ModuleContext) -> Iterator[Violation]:
        tree = module.tree
        shadowed = {
            node.name
            for node in tree.body
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
        }
        for node in tree.body:
            if isinstance(node, ast.Assign):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        shadowed.add(target.id)
        for node in ast.walk(tree):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id in {"id", "hash"}
                and node.func.id not in shadowed
            ):
                yield self.violation(
                    module,
                    node,
                    f"builtin {node.func.id}() is process-dependent; use "
                    "repro.net.hashing.stable_hash for anything that reaches "
                    "forwarding or tie-breaking",
                )


class UnorderedIterationRule(Rule):
    """D104 — no iteration over sets or unsorted dict views in hot packages."""

    rule_id = "D104"
    title = "no set / unsorted dict-view iteration in sim, switch, lb, core"
    scopes = ("core", "lb", "sim", "switch")
    rationale = (
        "dict insertion order depends on event interleaving and set order on "
        "key hashes; when such an order reaches path selection, RNG draws, "
        "or packet emission it silently drifts as code evolves (the CONGA "
        "congestion-table bookkeeping is exactly such state).  Iterate "
        "sorted(...) views instead."
    )
    paper_ref = "paper §3.3 (congestion tables), §5.2.3 (path selection)"

    def check(self, module: ModuleContext) -> Iterator[Violation]:
        for node in ast.walk(module.tree):
            iters: list[ast.expr] = []
            if isinstance(node, (ast.For, ast.AsyncFor)):
                iters.append(node.iter)
            elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)):
                iters.extend(gen.iter for gen in node.generators)
            for expr in iters:
                message = self._diagnose(expr)
                if message is not None:
                    yield self.violation(module, expr, message)

    @staticmethod
    def _diagnose(expr: ast.expr) -> str | None:
        if isinstance(expr, (ast.Set, ast.SetComp)):
            return (
                "iteration over a set literal/comprehension; order follows "
                "key hashes — iterate sorted(...) instead"
            )
        if isinstance(expr, ast.Call):
            func = expr.func
            if isinstance(func, ast.Name) and func.id in {"set", "frozenset"}:
                return (
                    f"iteration over {func.id}(...); order follows key "
                    "hashes — iterate sorted(...) instead"
                )
            if isinstance(func, ast.Attribute) and func.attr in {
                "keys",
                "values",
                "items",
            }:
                return (
                    f"iteration over an unsorted .{func.attr}() view; "
                    "insertion order can depend on event interleaving — "
                    "wrap in sorted(...)"
                )
        return None


class FloatAccumulationRule(Rule):
    """D105 — no bare float += accumulation in loops of DRE/flowlet code."""

    rule_id = "D105"
    title = "no unguarded += accumulation inside loops in core/"
    scopes = ("core",)
    rationale = (
        "Repeated float += in a loop accumulates rounding error whose "
        "magnitude depends on iteration order; the DRE register update rule "
        "must stay bit-exact (the decay table is asserted bit-identical to "
        "the closed form).  Accumulate integers, use math.fsum, or an "
        "approved compensated helper."
    )
    paper_ref = "paper §3.2 (DRE update rule X += bytes; X ← X·(1−α))"

    def check(self, module: ModuleContext) -> Iterator[Violation]:
        yield from self._walk(module, module.tree, loop_depth=0)

    def _walk(
        self, module: ModuleContext, node: ast.AST, loop_depth: int
    ) -> Iterator[Violation]:
        for child in ast.iter_child_nodes(node):
            child_depth = loop_depth
            if isinstance(child, (ast.For, ast.AsyncFor, ast.While)):
                child_depth += 1
            elif isinstance(child, ast.AugAssign) and loop_depth > 0:
                if isinstance(child.op, (ast.Add, ast.Sub)) and not self._exempt(
                    child.value
                ):
                    yield self.violation(
                        module,
                        child,
                        "+= accumulation inside a loop body; rounding error "
                        "depends on iteration order — accumulate integers, "
                        "use math.fsum, or an approved helper",
                    )
            yield from self._walk(module, child, child_depth)

    @staticmethod
    def _exempt(value: ast.expr) -> bool:
        if isinstance(value, ast.Constant) and type(value.value) is int:
            return True
        if isinstance(value, ast.Call):
            func = value.func
            name = func.id if isinstance(func, ast.Name) else (
                func.attr if isinstance(func, ast.Attribute) else None
            )
            return name in _APPROVED_ACCUMULATORS or name == "len"
        return False


class ScheduleCallbackRule(Rule):
    """S201 — event callbacks must be bound methods or module functions."""

    rule_id = "S201"
    title = "no lambda / nested-function callbacks on the event heap"
    rationale = (
        "run_sweep executes specs in worker processes; components whose "
        "constructors park lambdas or closures on the event heap cannot be "
        "pickled, and closures capture mutable state that silently diverges "
        "between a cancelled and a re-armed event.  Pass a bound method or "
        "module-level function (plus the arg slot for data)."
    )
    paper_ref = "repo sweep-runner contract (repro.runner.run_sweep)"

    def check(self, module: ModuleContext) -> Iterator[Violation]:
        toplevel = {
            node.name
            for node in module.tree.body
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
        }
        yield from self._walk(module, module.tree, toplevel, nested=frozenset())

    def _walk(
        self,
        module: ModuleContext,
        node: ast.AST,
        toplevel: set[str],
        nested: frozenset[str],
    ) -> Iterator[Violation]:
        for child in ast.iter_child_nodes(node):
            child_nested = nested
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                inner = {
                    stmt.name
                    for stmt in ast.walk(child)
                    if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
                    and stmt is not child
                }
                child_nested = nested | frozenset(inner)
            elif isinstance(child, ast.Call):
                callback = self._callback_arg(child)
                if isinstance(callback, ast.Lambda):
                    yield self.violation(
                        module,
                        callback,
                        "lambda scheduled on the event heap; pass a bound "
                        "method or module-level function (use the arg slot "
                        "for data) so the component stays picklable",
                    )
                elif (
                    isinstance(callback, ast.Name)
                    and callback.id in nested
                    and callback.id not in toplevel
                ):
                    yield self.violation(
                        module,
                        callback,
                        f"nested function {callback.id!r} scheduled on the "
                        "event heap; closures are unpicklable — use a bound "
                        "method or module-level function",
                    )
            yield from self._walk(module, child, toplevel, child_nested)

    @staticmethod
    def _callback_arg(call: ast.Call) -> ast.expr | None:
        func = call.func
        index: int | None = None
        if isinstance(func, ast.Attribute) and func.attr in _SCHEDULE_METHODS:
            index = 1
        elif isinstance(func, ast.Name) and func.id == "Timer":
            index = 1
        elif isinstance(func, ast.Name) and func.id == "PeriodicTimer":
            index = 2
        if index is None:
            return None
        for keyword in call.keywords:
            if keyword.arg == "callback":
                return keyword.value
        if len(call.args) > index:
            return call.args[index]
        return None


class FrozenSpecRule(Rule):
    """S202 — experiment spec dataclasses stay frozen and hashable."""

    rule_id = "S202"
    title = "spec dataclasses must be frozen with immutable fields"
    rationale = (
        "ExperimentSpec is the cache key of the sweep runner: its content "
        "hash addresses the on-disk result cache and its fields cross "
        "process boundaries.  A mutable or unfrozen field silently decouples "
        "a cached result from what actually ran."
    )
    paper_ref = "repo sweep-runner contract (spec.content_hash)"

    _MUTABLE_NAMES = frozenset(
        {"list", "dict", "set", "List", "Dict", "Set", "bytearray"}
    )

    def check(self, module: ModuleContext) -> Iterator[Violation]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            if not (node.name.endswith("Spec") or node.name == "PointResult"):
                continue
            decorator = self._dataclass_decorator(node)
            if decorator is None:
                continue
            if not self._is_frozen(decorator):
                yield self.violation(
                    module,
                    node,
                    f"spec dataclass {node.name} must be declared "
                    "@dataclass(frozen=True) so it stays hashable and its "
                    "content hash cannot rot",
                )
            for stmt in node.body:
                if isinstance(stmt, ast.AnnAssign) and self._mutable_annotation(
                    stmt.annotation
                ):
                    yield self.violation(
                        module,
                        stmt,
                        f"field of spec dataclass {node.name} is annotated "
                        "with a mutable container; use tuple / frozen "
                        "dataclasses so the spec stays hashable",
                    )

    @staticmethod
    def _dataclass_decorator(node: ast.ClassDef) -> ast.expr | None:
        for decorator in node.decorator_list:
            target = decorator.func if isinstance(decorator, ast.Call) else decorator
            dotted = _dotted_name(target)
            if dotted in {"dataclass", "dataclasses.dataclass"}:
                return decorator
        return None

    @staticmethod
    def _is_frozen(decorator: ast.expr) -> bool:
        if not isinstance(decorator, ast.Call):
            return False
        for keyword in decorator.keywords:
            if keyword.arg == "frozen":
                value = keyword.value
                return isinstance(value, ast.Constant) and value.value is True
        return False

    def _mutable_annotation(self, annotation: ast.expr) -> bool:
        for node in ast.walk(annotation):
            if isinstance(node, ast.Name) and node.id in self._MUTABLE_NAMES:
                return True
        return False


class RegistryWriteRule(Rule):
    """S203 — schemes/workloads register through the registration API."""

    rule_id = "S203"
    title = "no direct writes to the SCHEMES / WORKLOADS registries"
    rationale = (
        "register_scheme validates name collisions and keeps the registry "
        "the single source of scheme identity that ExperimentSpec resolves "
        "by name across processes; raw dict writes bypass both."
    )
    paper_ref = "repo scheme registry (repro.apps.register_scheme)"

    _MUTATORS = frozenset(
        {"update", "setdefault", "pop", "popitem", "clear", "__setitem__"}
    )

    def check(self, module: ModuleContext) -> Iterator[Violation]:
        for node in ast.walk(module.tree):
            if isinstance(node, (ast.Assign, ast.AugAssign, ast.Delete)):
                targets = (
                    node.targets
                    if isinstance(node, (ast.Assign, ast.Delete))
                    else [node.target]
                )
                for target in targets:
                    name = self._registry_subscript(target)
                    if name is not None:
                        yield self.violation(
                            module,
                            node,
                            f"direct write to the {name} registry; go through "
                            "register_scheme(SchemeSpec(...)) (or the "
                            "workload registration helper) instead",
                        )
            elif isinstance(node, ast.Call) and isinstance(
                node.func, ast.Attribute
            ):
                if node.func.attr in self._MUTATORS:
                    base = _dotted_name(node.func.value)
                    if base is not None and base.rsplit(".", 1)[-1] in _REGISTRIES:
                        yield self.violation(
                            module,
                            node,
                            f"{base}.{node.func.attr}(...) mutates a registry "
                            "directly; go through register_scheme instead",
                        )

    @staticmethod
    def _registry_subscript(target: ast.expr) -> str | None:
        if isinstance(target, ast.Subscript):
            base = _dotted_name(target.value)
            if base is not None:
                name = base.rsplit(".", 1)[-1]
                if name in _REGISTRIES:
                    return name
        return None


class AdHocOutputRule(Rule):
    """R301 — simulator code reports through repro.obs, not print/logging."""

    rule_id = "R301"
    title = "no print() / logging on simulator code paths"
    scopes = ("core", "lb", "sim", "switch", "transport")
    rationale = (
        "The observability contract routes every hot-path signal through "
        "repro.obs: trace events for per-decision records, registry metrics "
        "for counters.  A print() or logging call in simulator packages is "
        "unstructured, unconditionally paid for, and invisible to the trace "
        "digest — so it rots into debugging residue.  Emit a TraceEvent or "
        "bump a metric instead."
    )
    paper_ref = "repro.obs plane (DESIGN.md observability chapter)"

    def check(self, module: ModuleContext) -> Iterator[Violation]:
        tree = module.tree
        shadowed = {
            node.name
            for node in tree.body
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
        }
        for node in tree.body:
            if isinstance(node, ast.Assign):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        shadowed.add(target.id)
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "logging" or alias.name.startswith("logging."):
                        yield self.violation(
                            module,
                            node,
                            "import of the logging module in simulator code; "
                            "emit a repro.obs TraceEvent or registry metric "
                            "instead",
                        )
            elif isinstance(node, ast.ImportFrom):
                if node.module == "logging" or (
                    node.module or ""
                ).startswith("logging."):
                    yield self.violation(
                        module,
                        node,
                        "import from the logging module in simulator code; "
                        "emit a repro.obs TraceEvent or registry metric "
                        "instead",
                    )
            elif (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id == "print"
                and "print" not in shadowed
            ):
                yield self.violation(
                    module,
                    node,
                    "print() on a simulator code path; emit a repro.obs "
                    "TraceEvent (gated on `tracer is not None`) or bump a "
                    "registry metric instead",
                )


class AdHocGridRule(Rule):
    """S204 — benchmark spec grids go through Scenario / sweep_grid."""

    rule_id = "S204"
    title = "no ad-hoc ExperimentSpec loops in benchmark files"
    rationale = (
        "A benchmark that builds or runs ExperimentSpecs inside a hand-"
        "rolled loop bypasses the sweep runner: its points are invisible to "
        "the result cache, cannot be dispatched to a backend, and drift "
        "from the committed scenarios/*.yaml grids.  Declare the grid with "
        "a Scenario (or sweep_grid) and hand it to run_sweep."
    )
    paper_ref = "repro.scenarios (EXPERIMENTS.md, Authoring scenarios)"

    def applies(self, module: ModuleContext) -> bool:
        # Path-scoped rather than package-scoped: this rule patrols the
        # benchmark suite, which lives outside the repro package tree.
        return "benchmarks" in module.path.parts

    def check(self, module: ModuleContext) -> Iterator[Violation]:
        yield from self._walk(module, module.tree, loop_depth=0)

    def _walk(
        self, module: ModuleContext, node: ast.AST, loop_depth: int
    ) -> Iterator[Violation]:
        for child in ast.iter_child_nodes(node):
            child_depth = loop_depth
            if isinstance(child, (ast.For, ast.AsyncFor, ast.While)):
                child_depth += 1
            elif isinstance(
                child, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)
            ):
                child_depth += 1
            elif loop_depth > 0 and isinstance(child, ast.Call):
                message = self._diagnose(child)
                if message is not None:
                    yield self.violation(module, child, message)
            yield from self._walk(module, child, child_depth)

    @staticmethod
    def _is_spec_constructor(expr: ast.expr) -> bool:
        if not isinstance(expr, ast.Call):
            return False
        dotted = _dotted_name(expr.func)
        return dotted is not None and dotted.rsplit(".", 1)[-1] == "ExperimentSpec"

    def _diagnose(self, call: ast.Call) -> str | None:
        func = call.func
        if not isinstance(func, ast.Attribute):
            return None
        if func.attr == "run" and self._is_spec_constructor(func.value):
            return (
                "ExperimentSpec(...).run() inside a loop; declare the grid "
                "with a Scenario (or sweep_grid) and execute it through "
                "run_sweep so points hit the result cache"
            )
        if (
            func.attr == "append"
            and call.args
            and self._is_spec_constructor(call.args[0])
        ):
            return (
                ".append(ExperimentSpec(...)) inside a loop; build the grid "
                "with a Scenario (or sweep_grid) instead of accumulating "
                "specs by hand"
            )
        return None


class HotPathClosureRule(Rule):
    """S205 — per-packet hot paths must not allocate closures or lambdas."""

    rule_id = "S205"
    title = "no closure/lambda allocation in core/sim/net method bodies"
    rationale = (
        "the kernel dispatches hundreds of thousands of events per second "
        "through core/, sim/, and net/ methods; a lambda or nested def in a "
        "method body allocates a fresh function object (plus a cell per "
        "captured variable) on every invocation — exactly the per-packet "
        "allocation the calendar-queue kernel and fused transmit path were "
        "built to avoid.  Hoist the callable to a bound method or "
        "module-level function; dunder methods (``__init__`` and friends) "
        "run at setup/reporting time and are exempt."
    )
    paper_ref = "repo perf contract (BENCH_kernel.json events/sec gate)"
    scopes = ("core", "sim", "net")

    def check(self, module: ModuleContext) -> Iterator[Violation]:
        for cls in ast.walk(module.tree):
            if not isinstance(cls, ast.ClassDef):
                continue
            for method in cls.body:
                if not isinstance(method, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    continue
                name = method.name
                if name.startswith("__") and name.endswith("__"):
                    continue  # setup/reporting dunders, never per-packet
                yield from self._check_method(module, cls.name, method)

    def _check_method(
        self,
        module: ModuleContext,
        class_name: str,
        method: ast.FunctionDef | ast.AsyncFunctionDef,
    ) -> Iterator[Violation]:
        where = f"{class_name}.{method.name}"
        for node in ast.walk(method):
            if isinstance(node, ast.Lambda):
                yield self.violation(
                    module,
                    node,
                    f"lambda allocated inside hot-path method {where}; "
                    "every call builds a fresh function object — hoist it "
                    "to a bound method or module-level function",
                )
            elif (
                isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
                and node is not method
            ):
                yield self.violation(
                    module,
                    node,
                    f"nested function {node.name!r} defined inside hot-path "
                    f"method {where}; every call allocates the closure — "
                    "hoist it to a bound method or module-level function",
                )


#: Every shipped rule, in catalog order.
ALL_RULES: tuple[Rule, ...] = (
    WallClockRule(),
    RandomModuleRule(),
    UnstableHashRule(),
    UnorderedIterationRule(),
    FloatAccumulationRule(),
    AdHocOutputRule(),
    ScheduleCallbackRule(),
    FrozenSpecRule(),
    RegistryWriteRule(),
    AdHocGridRule(),
    HotPathClosureRule(),
)


class UnknownRuleError(ValueError):
    """Raised when ``--select`` names a rule id that does not exist."""


def resolve_select(
    select: str | None,
) -> tuple[tuple[Rule, ...], tuple[str, ...]]:
    """Split a ``--select`` expression into (per-file rules, effect ids).

    Tokens are comma-separated and may be exact rule ids (``D101``,
    ``E302``) or family prefixes (``D`` → D101–D105, ``S2`` → S201–S205,
    ``E3`` → the whole-program effect rules).  A token that matches
    nothing in either catalog raises :class:`UnknownRuleError`.  With
    ``select=None`` every per-file rule and every effect rule is
    selected (callers decide separately whether the effects pass runs).
    """
    from repro.lint.effects import EFFECT_RULE_IDS  # deferred: avoids a cycle

    if select is None:
        return ALL_RULES, EFFECT_RULE_IDS
    tokens = [part.strip() for part in select.split(",") if part.strip()]
    file_ids: list[str] = []
    effect_ids: list[str] = []
    unknown: list[str] = []
    for token in tokens:
        file_hits = [
            rule.rule_id
            for rule in ALL_RULES
            if rule.rule_id == token or rule.rule_id.startswith(token)
        ]
        effect_hits = [
            rule_id
            for rule_id in EFFECT_RULE_IDS
            if rule_id == token or rule_id.startswith(token)
        ]
        if not file_hits and not effect_hits:
            unknown.append(token)
            continue
        file_ids.extend(hit for hit in file_hits if hit not in file_ids)
        effect_ids.extend(hit for hit in effect_hits if hit not in effect_ids)
    if unknown:
        known = ", ".join(
            sorted({rule.rule_id for rule in ALL_RULES} | set(EFFECT_RULE_IDS))
        )
        raise UnknownRuleError(
            f"unknown rule id(s) {', '.join(unknown)}; known rules: {known}"
        )
    by_id = {rule.rule_id: rule for rule in ALL_RULES}
    return tuple(by_id[rule_id] for rule_id in file_ids), tuple(effect_ids)


def get_rules(select: str | None = None) -> tuple[Rule, ...]:
    """The per-file rule set to run; ``select`` accepts ids and prefixes.

    Effect-rule selectors (``E3``, ``E301``…) are valid tokens but
    contribute no per-file rules — use
    :func:`repro.lint.effects.analyze_effects` for those.
    """
    return resolve_select(select)[0]


__all__ = [
    "ALL_RULES",
    "AdHocGridRule",
    "AdHocOutputRule",
    "FloatAccumulationRule",
    "FrozenSpecRule",
    "HotPathClosureRule",
    "RandomModuleRule",
    "RegistryWriteRule",
    "ScheduleCallbackRule",
    "UnknownRuleError",
    "UnorderedIterationRule",
    "UnstableHashRule",
    "WallClockRule",
    "get_rules",
    "resolve_select",
]
