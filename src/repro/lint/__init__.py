"""Static analysis for the repro codebase (``conga-repro lint``).

An AST-based analyzer (stdlib only — no runtime dependencies) that turns
the repo's determinism contract and CONGA's simulation invariants into
machine-checked rules.  The golden digest fixtures catch nondeterminism
*after* it ships; these rules reject the code patterns that introduce it
before any simulation runs.

Rule classes:

* ``D1xx`` (determinism): wall-clock reads, ambient randomness, process-
  dependent hashing, unordered iteration, float accumulation in loops.
* ``S2xx`` (simulation invariants): picklable event callbacks, frozen
  experiment specs, registry writes through the registration API.
* ``R3xx`` (reporting discipline): no print()/logging on simulator code
  paths — signals go through the :mod:`repro.obs` plane.

See DESIGN.md for the full catalog with paper references, and README.md
for CLI usage.
"""

from repro.lint.engine import (
    LintReport,
    ModuleContext,
    Rule,
    Violation,
    iter_python_files,
    lint_paths,
    lint_source,
)
from repro.lint.fixer import apply_suppressions
from repro.lint.rules import ALL_RULES, UnknownRuleError, get_rules

__all__ = [
    "ALL_RULES",
    "LintReport",
    "ModuleContext",
    "Rule",
    "UnknownRuleError",
    "Violation",
    "apply_suppressions",
    "get_rules",
    "iter_python_files",
    "lint_paths",
    "lint_source",
]
