"""Static analysis for the repro codebase (``conga-repro lint``).

An AST-based analyzer (stdlib only — no runtime dependencies) that turns
the repo's determinism contract and CONGA's simulation invariants into
machine-checked rules.  The golden digest fixtures catch nondeterminism
*after* it ships; these rules reject the code patterns that introduce it
before any simulation runs.

Rule classes:

* ``D1xx`` (determinism): wall-clock reads, ambient randomness, process-
  dependent hashing, unordered iteration, float accumulation.
* ``S2xx`` (simulation invariants): picklable event callbacks, frozen
  experiment specs, registry writes through the registration API.
* ``R3xx`` (reporting discipline): no print()/logging on simulator code
  paths — signals go through the :mod:`repro.obs` plane.
* ``E3xx`` (whole-program effects): transitive contracts enforced over
  the interprocedural call graph (:mod:`repro.lint.effects`) — no
  wall-clock/RNG/io reachable from kernel entry points (E301), no
  allocation reachable from the per-packet train path (E302),
  transitively picklable scheduled callbacks (E303), and no stale
  suppression comments (E304).

See DESIGN.md for the full catalog with paper references, and README.md
for CLI usage (``lint --effects``, ``callgraph``).
"""

from repro.lint.callgraph import (
    CallGraph,
    ModuleSummary,
    link_modules,
    summarize_module,
    summarize_paths,
)
from repro.lint.effects import (
    EFFECT_RULE_CATALOG,
    EFFECT_RULE_IDS,
    EffectFinding,
    EffectsReport,
    analyze_effects,
    dump_callgraph,
)
from repro.lint.engine import (
    LintReport,
    ModuleContext,
    Rule,
    Violation,
    iter_python_files,
    lint_paths,
    lint_source,
)
from repro.lint.fixer import apply_suppressions
from repro.lint.rules import (
    ALL_RULES,
    UnknownRuleError,
    get_rules,
    resolve_select,
)
from repro.lint.sarif import sarif_document

__all__ = [
    "ALL_RULES",
    "CallGraph",
    "EFFECT_RULE_CATALOG",
    "EFFECT_RULE_IDS",
    "EffectFinding",
    "EffectsReport",
    "LintReport",
    "ModuleContext",
    "ModuleSummary",
    "Rule",
    "UnknownRuleError",
    "Violation",
    "analyze_effects",
    "apply_suppressions",
    "dump_callgraph",
    "get_rules",
    "iter_python_files",
    "link_modules",
    "lint_paths",
    "lint_source",
    "resolve_select",
    "sarif_document",
    "summarize_module",
    "summarize_paths",
]
