"""Rule engine for the repro static analyzer (``conga-repro lint``).

The engine is deliberately small: it walks Python files, parses each one
once with the stdlib :mod:`ast`, hands the tree to every applicable rule,
and filters the resulting violations through suppression comments.  Rules
live in :mod:`repro.lint.rules`; each one encodes a determinism or
simulation invariant of this reproduction (see DESIGN.md for the catalog
and the paper sections the invariants derive from).

Suppression comments
--------------------
Two forms are recognized, both parsed from real tokenizer output so they
work anywhere a comment does:

* ``# repro-lint: ignore[D101]`` — suppress the listed rule ids (comma
  separated, ``*`` for all) on this physical line.  Trailing prose after
  the bracket is allowed and encouraged: state *why* the finding is safe.
* ``# repro-lint: ignore-file[D101]`` — suppress the listed rule ids for
  the whole file (used e.g. by :mod:`repro.perf`, which is wall-clock
  measurement code by definition).

A violation is matched against the physical line of the AST node that
raised it (``node.lineno``), so on a multi-line statement the suppression
comment belongs on the statement's first line.

Scoping
-------
Rules may restrict themselves to subpackages of ``repro`` (e.g. the
unordered-iteration rule only patrols ``sim/``, ``switch/``, ``lb/`` and
``core/``, where iteration order can reach tie-breaking or the RNG).  The
scope of a file is derived from its path: everything after the last
``repro`` path component.  Files outside a ``repro`` package tree (test
fixtures, scratch scripts) have no scope and are checked by every rule.
"""

from __future__ import annotations

import ast
import re
import tokenize
from dataclasses import dataclass
from pathlib import Path
from typing import Iterator, Sequence

#: Directories never descended into when expanding directory arguments.
_SKIP_DIRS = {
    "__pycache__",
    ".git",
    ".repro-cache",
    ".mypy_cache",
    ".ruff_cache",
    ".pytest_cache",
}

_SUPPRESS_RE = re.compile(
    r"#\s*repro-lint:\s*(?P<kind>ignore-file|ignore)\s*"
    r"\[(?P<rules>[A-Za-z0-9*,\s]+)\]"
)


@dataclass(frozen=True)
class Violation:
    """One rule finding at a specific source location."""

    rule: str
    path: str
    line: int
    col: int
    message: str

    def format(self) -> str:
        """Render as the conventional ``path:line:col: RULE message`` line."""
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"


class Rule:
    """Base class for lint rules.

    Subclasses set the class attributes and implement :meth:`check`.
    ``scopes`` restricts a rule to top-level subpackages of ``repro``
    (``None`` means the whole tree); files outside any ``repro`` package
    are always in scope so fixtures and scripts can be checked too.
    """

    rule_id: str = ""
    title: str = ""
    #: The invariant this rule guards, in one sentence (shown by
    #: ``--list-rules`` and quoted in DESIGN.md).
    rationale: str = ""
    #: Paper section the invariant derives from ("" when repo-internal).
    paper_ref: str = ""
    scopes: tuple[str, ...] | None = None

    def applies(self, module: "ModuleContext") -> bool:
        """Whether this rule patrols ``module`` (scope check)."""
        if self.scopes is None or module.scope is None:
            return True
        return bool(module.scope) and module.scope[0] in self.scopes

    def check(self, module: "ModuleContext") -> Iterator[Violation]:
        """Yield violations found in ``module``."""
        raise NotImplementedError

    def violation(
        self, module: "ModuleContext", node: ast.AST, message: str
    ) -> Violation:
        """Build a :class:`Violation` anchored at ``node``."""
        return Violation(
            rule=self.rule_id,
            path=module.display_path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            message=message,
        )


@dataclass
class ModuleContext:
    """Everything a rule needs about one parsed file."""

    path: Path
    display_path: str
    source: str
    tree: ast.Module
    #: Path components after the last ``repro`` directory, e.g.
    #: ``("sim", "kernel.py")``; ``None`` when the file is not inside a
    #: ``repro`` package tree.
    scope: tuple[str, ...] | None


@dataclass
class Suppressions:
    """Per-file suppression state parsed from comments."""

    by_line: dict[int, set[str]]
    whole_file: set[str]

    def suppressed(self, violation: Violation) -> bool:
        """Whether ``violation`` is silenced by a comment."""
        for pool in (self.whole_file, self.by_line.get(violation.line, ())):
            if "*" in pool or violation.rule in pool:
                return True
        return False


def scope_of(path: Path) -> tuple[str, ...] | None:
    """Subpackage scope of ``path`` relative to its ``repro`` package root."""
    parts = path.parts
    for index in range(len(parts) - 1, -1, -1):
        if parts[index] == "repro":
            return tuple(parts[index + 1:])
    return None


def parse_suppressions(source: str) -> Suppressions:
    """Extract suppression comments from ``source`` via the tokenizer."""
    by_line: dict[int, set[str]] = {}
    whole_file: set[str] = set()
    lines = iter(source.splitlines(keepends=True))
    try:
        tokens = list(tokenize.generate_tokens(lambda: next(lines, "")))
    except (tokenize.TokenError, IndentationError, SyntaxError):
        return Suppressions(by_line, whole_file)
    for token in tokens:
        if token.type != tokenize.COMMENT:
            continue
        match = _SUPPRESS_RE.search(token.string)
        if match is None:
            continue
        rules = {part.strip() for part in match.group("rules").split(",")}
        rules.discard("")
        if match.group("kind") == "ignore-file":
            whole_file |= rules
        else:
            by_line.setdefault(token.start[0], set()).update(rules)
    return Suppressions(by_line, whole_file)


def iter_python_files(paths: Sequence[Path | str]) -> Iterator[Path]:
    """Expand files/directories into a sorted stream of ``.py`` files."""
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            for candidate in sorted(path.rglob("*.py")):
                if not _SKIP_DIRS.intersection(candidate.parts):
                    yield candidate
        elif path.suffix == ".py":
            yield path
        else:
            raise FileNotFoundError(f"not a Python file or directory: {path}")


def lint_source(
    source: str,
    rules: Sequence[Rule],
    *,
    path: Path | str = "<string>",
) -> list[Violation]:
    """Lint one in-memory module; the workhorse behind :func:`lint_paths`."""
    path = Path(path)
    display = str(path)
    try:
        tree = ast.parse(source, filename=display)
    except SyntaxError as exc:
        return [
            Violation(
                rule="E001",
                path=display,
                line=exc.lineno or 1,
                col=(exc.offset or 0) + 1,
                message=f"file does not parse: {exc.msg}",
            )
        ]
    module = ModuleContext(
        path=path,
        display_path=display,
        source=source,
        tree=tree,
        scope=scope_of(path),
    )
    suppressions = parse_suppressions(source)
    found: list[Violation] = []
    for rule in rules:
        if not rule.applies(module):
            continue
        for violation in rule.check(module):
            if not suppressions.suppressed(violation):
                found.append(violation)
    found.sort(key=lambda v: (v.path, v.line, v.col, v.rule))
    return found


@dataclass
class LintReport:
    """Aggregated result of linting a set of paths."""

    violations: list[Violation]
    files_checked: int

    @property
    def ok(self) -> bool:
        """True when no violations survived suppression."""
        return not self.violations

    def counts(self) -> dict[str, int]:
        """Violation tallies per rule id, sorted by rule id."""
        tally: dict[str, int] = {}
        for violation in self.violations:
            tally[violation.rule] = tally.get(violation.rule, 0) + 1
        return dict(sorted(tally.items()))

    def to_json(self) -> dict[str, object]:
        """The stable JSON document emitted by ``--format json``."""
        return {
            "version": 1,
            "ok": self.ok,
            "files_checked": self.files_checked,
            "counts": self.counts(),
            "violations": [
                {
                    "rule": v.rule,
                    "path": v.path,
                    "line": v.line,
                    "column": v.col,
                    "message": v.message,
                }
                for v in self.violations
            ],
        }


def _lint_file_worker(task: tuple[str, str | None]) -> list[Violation]:
    """Process-pool worker: lint one file with rules rebuilt from ids."""
    from repro.lint.rules import get_rules

    path_str, select = task
    rules = get_rules(select)
    path = Path(path_str)
    return lint_source(path.read_text(encoding="utf-8"), rules, path=path)


def lint_paths(
    paths: Sequence[Path | str],
    rules: Sequence[Rule],
    *,
    jobs: int | None = None,
) -> LintReport:
    """Lint every Python file under ``paths`` with ``rules``.

    ``jobs`` > 1 fans files out over a process pool; the final report is
    sorted by ``(path, line, col, rule)`` after the merge, so the
    ordering is deterministic for any worker count (including the serial
    path) — CI diffs and golden outputs never depend on scheduling.
    """
    files = list(iter_python_files(paths))
    violations: list[Violation] = []
    if jobs is not None and jobs > 1 and len(files) > 1:
        from concurrent.futures import ProcessPoolExecutor

        select = ",".join(rule.rule_id for rule in rules)
        tasks = [(str(path), select) for path in files]
        workers = min(jobs, len(files))
        with ProcessPoolExecutor(max_workers=workers) as pool:
            for chunk in pool.map(_lint_file_worker, tasks):
                violations.extend(chunk)
    else:
        for path in files:
            source = path.read_text(encoding="utf-8")
            violations.extend(lint_source(source, rules, path=path))
    violations.sort(key=lambda v: (v.path, v.line, v.col, v.rule))
    return LintReport(violations=violations, files_checked=len(files))


__all__ = [
    "LintReport",
    "ModuleContext",
    "Rule",
    "Suppressions",
    "Violation",
    "iter_python_files",
    "lint_paths",
    "lint_source",
    "parse_suppressions",
    "scope_of",
]
