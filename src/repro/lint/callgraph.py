"""Module-level call-graph extraction for the whole-program effect pass.

The per-file rules in :mod:`repro.lint.rules` see one module at a time, so
a helper two calls away from the kernel loop can reintroduce wall-clock
reads or per-packet allocation without any rule firing.  This module is
the first half of the fix: it lowers every analyzed file into a compact,
JSON-serializable :class:`ModuleSummary` (functions, classes, imports,
atomic effects, callback registrations) and then links the summaries into
a whole-program :class:`CallGraph`.  :mod:`repro.lint.effects` propagates
effect sets over that graph and enforces the E3xx rules.

Summaries are deliberately self-contained and cheap to serialize: the
incremental cache (:mod:`repro.lint.effcache`) stores one summary per
file keyed by content hash, so an unchanged file is never re-parsed and
only the linking + propagation over dirty strongly-connected components
is redone.

Resolution strategy (static, no imports executed):

* ``name(...)`` — local function / class, then ``import`` aliases.
* ``self.meth(...)`` — method lookup over the class's base chain, plus
  edges to every override in known subclasses (dynamic dispatch is
  over-approximated, which is what a *reachability* analysis wants).
* ``self.attr.meth(...)`` — attribute types inferred from ``__init__``
  assignments and annotations (including string annotations such as
  ``"Tracer | None"``), then method lookup as above.
* ``local = SomeClass(...); local.meth(...)`` — one-level local variable
  type inference inside a function body.
* ``kernel.schedule*(..., cb)`` / ``Timer(sim, cb)`` — a *callback* edge
  from the scheduling function to ``cb`` (deferred control flow; the
  effect propagation marks everything crossing such an edge as running
  on the event loop).
* ``port.on_transmit.append(fn)`` / ``register_scheme(SchemeSpec(...))``
  — hook/registration edges; the registered callable becomes an entry
  point of the kernel-clock contract.

Unresolvable references degrade to *no edge* — the analysis
under-approximates the graph rather than flooding it with noise; the
per-file rules remain the backstop for purely local patterns.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Sequence

from repro.lint.engine import Suppressions, Violation, parse_suppressions, scope_of
from repro.lint.rules import (
    _NUMPY_GLOBAL_RANDOM,
    _SCHEDULE_METHODS,
    _WALL_CLOCK_DATETIME_FUNCS,
    _WALL_CLOCK_TIME_FUNCS,
    _dotted_name,
)

#: Effect kinds inferred per function (the effect lattice).  ``alloc`` is
#: split by shape in the detail string; ``@deferred`` variants (appended
#: during propagation) mean the effect runs behind a callback edge.
EFFECT_KINDS = (
    "time",        # wall-clock reads
    "rng",         # ambient/global RNG (stdlib random, numpy global state)
    "hash",        # hash()/id() — process-dependent values
    "iter",        # iteration over unordered collections
    "float-acc",   # naive float accumulation in loops
    "alloc",       # closures / comprehensions / known-class construction
    "io",          # print / open / logging
    "global-write",  # mutates module-global state
)

#: Base per-file rule that patrols each effect kind; a suppression of the
#: base rule at the effect site also silences the transitive E3xx report.
KIND_BASE_RULES: dict[str, tuple[str, ...]] = {
    "time": ("D101",),
    "rng": ("D102",),
    "hash": ("D103",),
    "iter": ("D104",),
    "float-acc": ("D105",),
    "alloc": ("S205",),
    "io": ("R301",),
    "global-write": ("S203",),
}

#: E3xx rules that can report each effect kind transitively.
KIND_EFFECT_RULES: dict[str, tuple[str, ...]] = {
    "time": ("E301",),
    "rng": ("E301",),
    "io": ("E301",),
    "alloc": ("E302",),
}

_TIMER_CLASSES = {"Timer": 1, "PeriodicTimer": 2}


def module_qname(path: Path) -> str:
    """Dotted module name, anchored at the last ``repro`` path component.

    ``src/repro/sim/kernel.py`` → ``repro.sim.kernel``; a fixture tree
    ``<tmp>/repro/sim/kernel.py`` maps to the same qname on purpose, so
    tests can impersonate kernel modules.  Files outside any ``repro``
    tree use their stem (packages: the directory name).
    """
    parts = path.parts
    stem = path.stem
    is_pkg = stem == "__init__"
    for index in range(len(parts) - 2, -1, -1):
        if parts[index] == "repro":
            rel = list(parts[index:-1])
            if not is_pkg:
                rel.append(stem)
            return ".".join(rel)
    return path.parent.name if is_pkg else stem


@dataclass
class FunctionInfo:
    """One analyzed function or method (nested defs fold into their parent)."""

    qname: str
    name: str
    cls: str | None
    line: int
    params: list[str]
    is_method: bool
    #: ``(text, line)`` direct call references, as written.
    calls: list[tuple[str, int]] = field(default_factory=list)
    #: ``(text, line)`` resolvable callback references at schedule/Timer sites.
    callbacks: list[tuple[str, int]] = field(default_factory=list)
    #: ``(kind, line, detail)`` live atomic effects.
    effects: list[tuple[str, int, str]] = field(default_factory=list)
    #: ``(kind, line, detail, matched_rules)`` effects silenced at the site.
    suppressed_effects: list[tuple[str, int, str, list[str]]] = field(
        default_factory=list
    )
    #: ``(param_name, line)`` — params this function passes straight into
    #: a schedule/Timer callback slot (seeds of the E303 forwarding
    #: fixpoint).
    sched_params: list[tuple[str, int]] = field(default_factory=list)
    #: Interesting arguments at call sites, for the E303 fixpoint:
    #: ``(callee_text, line, position, keyword, kind, name)`` where kind is
    #: ``lambda`` / ``def`` (unpicklable values) or ``name`` (a parameter of
    #: this function, enabling transitive forwarding).
    sched_args: list[tuple[str, int, int, str | None, str, str | None]] = field(
        default_factory=list
    )
    #: Local variable name -> constructor/call text (one-level inference).
    local_types: dict[str, str] = field(default_factory=dict)

    def to_json(self) -> dict[str, object]:
        return {
            "qname": self.qname,
            "name": self.name,
            "cls": self.cls,
            "line": self.line,
            "params": self.params,
            "is_method": self.is_method,
            "calls": [list(item) for item in self.calls],
            "callbacks": [list(item) for item in self.callbacks],
            "effects": [list(item) for item in self.effects],
            "suppressed_effects": [list(item) for item in self.suppressed_effects],
            "sched_params": [list(item) for item in self.sched_params],
            "sched_args": [list(item) for item in self.sched_args],
            "local_types": self.local_types,
        }

    @classmethod
    def from_json(cls, data: dict[str, Any]) -> "FunctionInfo":
        return cls(
            qname=data["qname"],
            name=data["name"],
            cls=data["cls"],
            line=data["line"],
            params=list(data["params"]),
            is_method=data["is_method"],
            calls=[tuple(item) for item in data["calls"]],
            callbacks=[tuple(item) for item in data["callbacks"]],
            effects=[tuple(item) for item in data["effects"]],
            suppressed_effects=[
                (item[0], item[1], item[2], list(item[3]))
                for item in data["suppressed_effects"]
            ],
            sched_params=[tuple(item) for item in data["sched_params"]],
            sched_args=[tuple(item) for item in data["sched_args"]],
            local_types=dict(data["local_types"]),
        )


@dataclass
class ClassInfo:
    """One class definition: bases, methods, and inferred attribute types."""

    qname: str
    name: str
    line: int
    bases: list[str]
    methods: dict[str, str]
    attr_types: dict[str, str]

    def to_json(self) -> dict[str, object]:
        return {
            "qname": self.qname,
            "name": self.name,
            "line": self.line,
            "bases": self.bases,
            "methods": self.methods,
            "attr_types": self.attr_types,
        }

    @classmethod
    def from_json(cls, data: dict[str, Any]) -> "ClassInfo":
        return cls(
            qname=data["qname"],
            name=data["name"],
            line=data["line"],
            bases=list(data["bases"]),
            methods=dict(data["methods"]),
            attr_types=dict(data["attr_types"]),
        )


@dataclass
class ModuleSummary:
    """Everything the linker needs about one file, content-hash cacheable."""

    module: str
    path: str
    imports: dict[str, str]
    functions: list[FunctionInfo]
    classes: list[ClassInfo]
    #: ``(text, line, via)`` callables registered as hooks/schemes at any
    #: scope (``on_transmit.append``, ``SchemeSpec(...)`` fields).
    hooks: list[tuple[str, int, str]]
    #: line -> sorted rule ids, plus whole-file ids under line 0.
    suppression_lines: dict[int, list[str]]
    file_suppressions: list[str]
    #: Pre-suppression per-file findings ``(rule, line)`` — the evidence
    #: base for E304 stale-suppression checks.
    rule_findings: list[tuple[str, int]]

    def to_json(self) -> dict[str, object]:
        return {
            "module": self.module,
            "path": self.path,
            "imports": self.imports,
            "functions": [fn.to_json() for fn in self.functions],
            "classes": [ci.to_json() for ci in self.classes],
            "hooks": [list(item) for item in self.hooks],
            "suppression_lines": {
                str(line): rules for line, rules in self.suppression_lines.items()
            },
            "file_suppressions": self.file_suppressions,
            "rule_findings": [list(item) for item in self.rule_findings],
        }

    @classmethod
    def from_json(cls, data: dict[str, Any]) -> "ModuleSummary":
        return cls(
            module=data["module"],
            path=data["path"],
            imports=dict(data["imports"]),
            functions=[FunctionInfo.from_json(fn) for fn in data["functions"]],
            classes=[ClassInfo.from_json(ci) for ci in data["classes"]],
            hooks=[tuple(item) for item in data["hooks"]],
            suppression_lines={
                int(line): list(rules)
                for line, rules in data["suppression_lines"].items()
            },
            file_suppressions=list(data["file_suppressions"]),
            rule_findings=[tuple(item) for item in data["rule_findings"]],
        )


def _annotation_ref(node: ast.expr | None) -> str | None:
    """Best-effort class reference from an annotation expression.

    Handles ``Tracer``, ``obs.Tracer``, ``Tracer | None``, ``Optional[T]``,
    ``list[T]`` (→ None: the *container* is not a project class), and
    string annotations by re-parsing them.
    """
    if node is None:
        return None
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        try:
            node = ast.parse(node.value, mode="eval").body
        except SyntaxError:
            return None
    if isinstance(node, ast.BinOp) and isinstance(node.op, ast.BitOr):
        return _annotation_ref(node.left) or _annotation_ref(node.right)
    if isinstance(node, ast.Subscript):
        base = _dotted_name(node.value)
        if base and base.rsplit(".", 1)[-1] in {"Optional", "Union"}:
            inner = node.slice
            if isinstance(inner, ast.Tuple) and inner.elts:
                inner = inner.elts[0]
            return _annotation_ref(inner)
        return None
    if isinstance(node, ast.Constant) and node.value is None:
        return None
    return _dotted_name(node)


def _collect_imports(tree: ast.Module, module: str, is_pkg: bool) -> dict[str, str]:
    """Local name -> fully qualified target for every import binding."""
    package = module if is_pkg else module.rsplit(".", 1)[0]
    imports: dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.asname:
                    imports[alias.asname] = alias.name
                else:
                    top = alias.name.split(".", 1)[0]
                    imports[top] = top
        elif isinstance(node, ast.ImportFrom):
            base = node.module or ""
            if node.level:
                anchor = package.split(".")
                strip = node.level - 1
                if strip:
                    anchor = anchor[:-strip] if strip < len(anchor) else []
                prefix = ".".join(anchor)
                base = f"{prefix}.{base}" if base and prefix else (prefix or base)
            for alias in node.names:
                if alias.name == "*":
                    continue
                target = f"{base}.{alias.name}" if base else alias.name
                imports[alias.asname or alias.name] = target
    return imports


class _FunctionExtractor(ast.NodeVisitor):
    """Walks one function body (nested defs included) and fills FunctionInfo."""

    def __init__(
        self,
        info: FunctionInfo,
        imports: dict[str, str],
        suppressions: Suppressions,
        root: ast.AST,
    ) -> None:
        self.info = info
        self.imports = imports
        self.suppressions = suppressions
        self.root = root
        # AST nodes hash by identity, so a plain set tracks membership
        # without process-dependent id()/hash() calls (D103-clean).
        self._raise_calls: set[ast.Call] = set()
        self._loop_depth = 0

    # -- effect bookkeeping -------------------------------------------------

    def _effect(self, kind: str, node: ast.AST, detail: str) -> None:
        line = getattr(node, "lineno", self.info.line)
        rules = KIND_BASE_RULES.get(kind, ()) + KIND_EFFECT_RULES.get(kind, ())
        matched = sorted(
            rule
            for pool in (
                self.suppressions.whole_file,
                self.suppressions.by_line.get(line, set()),
            )
            for rule in pool
            if rule == "*" or rule in rules
        )
        if matched:
            self.info.suppressed_effects.append((kind, line, detail, matched))
        else:
            self.info.effects.append((kind, line, detail))

    # -- visitors -----------------------------------------------------------

    def visit_Raise(self, node: ast.Raise) -> None:
        # Constructor calls in ``raise`` statements are error paths, not
        # steady-state allocation; exclude them from call/alloc extraction.
        for child in ast.walk(node):
            if isinstance(child, ast.Call):
                self._raise_calls.add(child)
        self.generic_visit(node)

    def visit_Lambda(self, node: ast.Lambda) -> None:
        self._effect("alloc", node, "lambda")
        self.generic_visit(node)

    def _visit_nested_def(self, node: ast.FunctionDef | ast.AsyncFunctionDef) -> None:
        if node is not self.root:
            self._effect("alloc", node, f"nested function {node.name!r}")
        self.generic_visit(node)

    visit_FunctionDef = _visit_nested_def  # type: ignore[assignment]
    visit_AsyncFunctionDef = _visit_nested_def  # type: ignore[assignment]

    def visit_ListComp(self, node: ast.ListComp) -> None:
        self._effect("alloc", node, "list comprehension")
        self.generic_visit(node)

    def visit_SetComp(self, node: ast.SetComp) -> None:
        self._effect("alloc", node, "set comprehension")
        self.generic_visit(node)

    def visit_DictComp(self, node: ast.DictComp) -> None:
        self._effect("alloc", node, "dict comprehension")
        self.generic_visit(node)

    def visit_GeneratorExp(self, node: ast.GeneratorExp) -> None:
        self._effect("alloc", node, "generator expression")
        self.generic_visit(node)

    def visit_Global(self, node: ast.Global) -> None:
        self._effect("global-write", node, f"global {', '.join(node.names)}")
        self.generic_visit(node)

    def visit_For(self, node: ast.For) -> None:
        if isinstance(node.iter, ast.Set) or (
            isinstance(node.iter, ast.Call)
            and isinstance(node.iter.func, ast.Name)
            and node.iter.func.id in {"set", "frozenset"}
        ):
            self._effect("iter", node, "iteration over an unordered set")
        self._loop_depth += 1
        self.generic_visit(node)
        self._loop_depth -= 1

    def visit_While(self, node: ast.While) -> None:
        self._loop_depth += 1
        self.generic_visit(node)
        self._loop_depth -= 1

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        if (
            self._loop_depth
            and isinstance(node.op, ast.Add)
            and isinstance(node.target, ast.Name)
            and isinstance(node.value, (ast.BinOp, ast.Call, ast.Name, ast.Attribute))
        ):
            self._effect(
                "float-acc", node, f"accumulation into {node.target.id!r} in a loop"
            )
        self.generic_visit(node)

    def visit_Assign(self, node: ast.Assign) -> None:
        if (
            len(node.targets) == 1
            and isinstance(node.targets[0], ast.Name)
            and isinstance(node.value, ast.Call)
        ):
            text = _dotted_name(node.value.func)
            if text:
                self.info.local_types[node.targets[0].id] = text
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        text = _dotted_name(node.func)
        if text is not None:
            self._classify_call(node, text)
        self.generic_visit(node)

    # -- call classification ------------------------------------------------

    def _classify_call(self, node: ast.Call, text: str) -> None:
        segs = text.split(".")
        head, tail = segs[0], segs[-1]
        resolved_head = self.imports.get(head, "")

        if len(segs) == 1:
            if tail == "print":
                self._effect("io", node, "print()")
                return
            if tail == "open":
                self._effect("io", node, "open()")
                return
            if tail in {"hash", "id"} and node.args:
                self._effect("hash", node, f"{tail}()")
                return
        if resolved_head in {"time", "datetime"} or head in {"time", "datetime"}:
            base = resolved_head or head
            if base == "time" and tail in _WALL_CLOCK_TIME_FUNCS and len(segs) == 2:
                self._effect("time", node, f"time.{tail}()")
                return
            if base == "datetime" and tail in _WALL_CLOCK_DATETIME_FUNCS:
                self._effect("time", node, f"datetime.{tail}()")
                return
        if len(segs) == 1 and self.imports.get(text, "").startswith("time."):
            target = self.imports[text]
            if target.split(".", 1)[1] in _WALL_CLOCK_TIME_FUNCS:
                self._effect("time", node, f"{target}()")
                return
        if (resolved_head == "random" or head == "random") and len(segs) == 2:
            self._effect("rng", node, f"random.{tail}()")
            return
        if (
            len(segs) >= 3
            and segs[-2] == "random"
            and tail in _NUMPY_GLOBAL_RANDOM
            and self.imports.get(head, head) in {"numpy", "np"}
        ):
            self._effect("rng", node, f"numpy.random.{tail}()")
            return
        if resolved_head == "logging" or head == "logging":
            self._effect("io", node, f"logging.{tail}()")
            return
        if len(segs) >= 3 and segs[-2] in {"stdout", "stderr"} and tail == "write":
            self._effect("io", node, f"sys.{segs[-2]}.write()")
            return

        self._maybe_callback_site(node, text, segs)

        if node not in self._raise_calls:
            self.info.calls.append((text, node.lineno))
        self._record_sched_args(node, text)

    def _maybe_callback_site(
        self, node: ast.Call, text: str, segs: list[str]
    ) -> None:
        """Record callback/hook registrations rooted at this call."""
        tail = segs[-1]
        callback: ast.expr | None = None
        via = ""
        if tail in _SCHEDULE_METHODS and len(segs) >= 2:
            via = "schedule"
            if tail == "schedule_at":
                callback = node.args[1] if len(node.args) > 1 else None
            else:
                callback = node.args[1] if len(node.args) > 1 else None
            for keyword in node.keywords:
                if keyword.arg == "callback":
                    callback = keyword.value
        elif tail in _TIMER_CLASSES or text in _TIMER_CLASSES:
            via = "timer"
            index = _TIMER_CLASSES.get(tail, 1)
            callback = node.args[index] if len(node.args) > index else None
            for keyword in node.keywords:
                if keyword.arg == "callback":
                    callback = keyword.value
        elif tail == "append" and len(segs) >= 2 and segs[-2] == "on_transmit":
            via = "hook"
            callback = node.args[0] if node.args else None
        elif tail in {"register_scheme", "SchemeSpec"}:
            for sub in ast.walk(node):
                if isinstance(sub, ast.Call):
                    for value in list(sub.args) + [k.value for k in sub.keywords]:
                        ref = _dotted_name(value)
                        if ref and "." in ref:
                            self.info.callbacks.append((ref, node.lineno))
            return
        if callback is None:
            return
        ref = _dotted_name(callback)
        if ref is not None:
            if via != "hook" and ref in self.info.params:
                if ref not in [name for name, _ in self.info.sched_params]:
                    self.info.sched_params.append((ref, node.lineno))
            else:
                self.info.callbacks.append((ref, node.lineno))
        elif isinstance(callback, ast.Lambda):
            body_ref = None
            if isinstance(callback.body, ast.Call):
                body_ref = _dotted_name(callback.body.func)
            if body_ref:
                self.info.callbacks.append((body_ref, node.lineno))

    def _record_sched_args(self, node: ast.Call, text: str) -> None:
        """Track lambda/def/param arguments for the E303 forwarding fixpoint."""
        tail = text.rsplit(".", 1)[-1]
        if tail in _SCHEDULE_METHODS or tail in _TIMER_CLASSES:
            return
        for position, arg in enumerate(node.args):
            self._one_sched_arg(text, node.lineno, position, None, arg)
        for keyword in node.keywords:
            if keyword.arg is not None:
                self._one_sched_arg(text, node.lineno, -1, keyword.arg, keyword.value)

    def _one_sched_arg(
        self,
        callee: str,
        line: int,
        position: int,
        keyword: str | None,
        value: ast.expr,
    ) -> None:
        if isinstance(value, ast.Lambda):
            self.info.sched_args.append((callee, line, position, keyword, "lambda", None))
        elif isinstance(value, (ast.FunctionDef, ast.AsyncFunctionDef)):
            pass  # cannot appear as an expression
        elif isinstance(value, ast.Name) and value.id in self.info.params:
            self.info.sched_args.append((callee, line, position, keyword, "name", value.id))


def _extract_function(
    node: ast.FunctionDef | ast.AsyncFunctionDef,
    *,
    module: str,
    cls: ClassInfo | None,
    imports: dict[str, str],
    suppressions: Suppressions,
) -> FunctionInfo:
    params = [arg.arg for arg in node.args.posonlyargs + node.args.args]
    is_method = cls is not None and not any(
        isinstance(dec, ast.Name) and dec.id == "staticmethod"
        for dec in node.decorator_list
    )
    owner = f"{module}.{cls.name}" if cls is not None else module
    info = FunctionInfo(
        qname=f"{owner}.{node.name}",
        name=node.name,
        cls=cls.name if cls is not None else None,
        line=node.lineno,
        params=params,
        is_method=is_method,
    )
    extractor = _FunctionExtractor(info, imports, suppressions, node)
    extractor.visit(node)
    return info


def _extract_class(
    node: ast.ClassDef,
    *,
    module: str,
    imports: dict[str, str],
    suppressions: Suppressions,
) -> tuple[ClassInfo, list[FunctionInfo]]:
    info = ClassInfo(
        qname=f"{module}.{node.name}",
        name=node.name,
        line=node.lineno,
        bases=[ref for ref in (_dotted_name(base) for base in node.bases) if ref],
        methods={},
        attr_types={},
    )
    functions: list[FunctionInfo] = []
    for child in node.body:
        if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
            fn = _extract_function(
                child,
                module=module,
                cls=info,
                imports=imports,
                suppressions=suppressions,
            )
            info.methods[child.name] = fn.qname
            functions.append(fn)
            if child.name == "__init__":
                _infer_attr_types(child, info)
        elif isinstance(child, ast.AnnAssign) and isinstance(child.target, ast.Name):
            ref = _annotation_ref(child.annotation)
            if ref:
                info.attr_types.setdefault(child.target.id, ref)
    return info, functions


def _infer_attr_types(init: ast.FunctionDef | ast.AsyncFunctionDef, cls: ClassInfo) -> None:
    """Fill ``attr_types`` from ``self.x = ...`` statements in ``__init__``."""
    annotations = {
        arg.arg: _annotation_ref(arg.annotation)
        for arg in init.args.posonlyargs + init.args.args
    }
    for node in ast.walk(init):
        targets: list[ast.expr] = []
        value: ast.expr | None = None
        if isinstance(node, ast.Assign):
            targets, value = node.targets, node.value
        elif isinstance(node, ast.AnnAssign):
            targets = [node.target]
            ref = _annotation_ref(node.annotation)
            if (
                ref
                and isinstance(node.target, ast.Attribute)
                and isinstance(node.target.value, ast.Name)
                and node.target.value.id == "self"
            ):
                cls.attr_types.setdefault(node.target.attr, ref)
            continue
        for target in targets:
            if not (
                isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
                and target.value.id == "self"
            ):
                continue
            ref: str | None = None
            if isinstance(value, ast.Call):
                ref = _dotted_name(value.func)
            elif isinstance(value, ast.Name):
                ref = annotations.get(value.id)
            if ref:
                cls.attr_types.setdefault(target.attr, ref)


def summarize_module(source: str, path: Path | str) -> ModuleSummary:
    """Lower one file into its :class:`ModuleSummary` (parse errors → empty)."""
    path = Path(path)
    display = str(path)
    module = module_qname(path)
    is_pkg = path.stem == "__init__"
    suppressions = parse_suppressions(source)
    suppression_lines = {
        line: sorted(rules) for line, rules in suppressions.by_line.items()
    }
    file_suppressions = sorted(suppressions.whole_file)
    # Pre-suppression per-file findings: the evidence base for E304.
    findings = [
        (violation.rule, violation.line)
        for violation in _presuppression_findings(source, path)
    ]
    try:
        tree = ast.parse(source, filename=display)
    except SyntaxError:
        return ModuleSummary(
            module=module,
            path=display,
            imports={},
            functions=[],
            classes=[],
            hooks=[],
            suppression_lines=suppression_lines,
            file_suppressions=file_suppressions,
            rule_findings=findings,
        )
    imports = _collect_imports(tree, module, is_pkg)
    functions: list[FunctionInfo] = []
    classes: list[ClassInfo] = []
    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            functions.append(
                _extract_function(
                    node,
                    module=module,
                    cls=None,
                    imports=imports,
                    suppressions=suppressions,
                )
            )
        elif isinstance(node, ast.ClassDef):
            cls_info, methods = _extract_class(
                node, module=module, imports=imports, suppressions=suppressions
            )
            classes.append(cls_info)
            functions.extend(methods)
    hooks = _module_level_hooks(tree)
    return ModuleSummary(
        module=module,
        path=display,
        imports=imports,
        functions=functions,
        classes=classes,
        hooks=hooks,
        suppression_lines=suppression_lines,
        file_suppressions=file_suppressions,
        rule_findings=findings,
    )


def _presuppression_findings(source: str, path: Path) -> list[Violation]:
    """Per-file rule findings *before* suppression filtering (E304 evidence)."""
    from repro.lint.engine import ModuleContext
    from repro.lint.rules import ALL_RULES  # cycle-free: rules imports engine only

    display = str(path)
    try:
        tree = ast.parse(source, filename=display)
    except SyntaxError as exc:
        return [
            Violation(
                rule="E001",
                path=display,
                line=exc.lineno or 1,
                col=(exc.offset or 0) + 1,
                message=f"file does not parse: {exc.msg}",
            )
        ]
    module = ModuleContext(
        path=path,
        display_path=display,
        source=source,
        tree=tree,
        scope=scope_of(path),
    )
    found: list[Violation] = []
    for rule in ALL_RULES:
        if rule.applies(module):
            found.extend(rule.check(module))
    return found


def _module_level_hooks(tree: ast.Module) -> list[tuple[str, int, str]]:
    """Hook/scheme registrations in module-level code (outside functions)."""
    hooks: list[tuple[str, int, str]] = []
    stack: list[ast.stmt] = [
        node
        for node in tree.body
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef))
    ]
    for stmt in stack:
        for node in ast.walk(stmt):
            if not isinstance(node, ast.Call):
                continue
            text = _dotted_name(node.func) or ""
            tail = text.rsplit(".", 1)[-1]
            if tail in {"register_scheme", "SchemeSpec"}:
                for sub in ast.walk(node):
                    if isinstance(sub, ast.Call):
                        values = list(sub.args) + [k.value for k in sub.keywords]
                        for value in values:
                            ref = _dotted_name(value)
                            if ref and "." in ref:
                                hooks.append((ref, node.lineno, "scheme"))
            elif tail == "append" and ".on_transmit." in f".{text}":
                if node.args:
                    ref = _dotted_name(node.args[0])
                    if ref:
                        hooks.append((ref, node.lineno, "hook"))
    return hooks


# ---------------------------------------------------------------------------
# Linking
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Edge:
    """One resolved call-graph edge."""

    caller: str
    callee: str
    line: int
    #: ``call`` (synchronous), ``override`` (dynamic dispatch), or
    #: ``callback`` (deferred via the event kernel / hooks).
    kind: str


@dataclass(frozen=True)
class ForwardArg:
    """A resolved argument of interest for the E303 forwarding fixpoint.

    ``kind`` is ``lambda`` (an unpicklable value handed to ``callee``) or
    ``name`` (the caller forwards its own parameter ``value`` into the
    callee's parameter ``param``, enabling transitive tracking).
    """

    caller: str
    callee: str
    line: int
    param: str
    kind: str
    value: str | None


@dataclass
class CallGraph:
    """The linked whole-program graph over all module summaries."""

    modules: dict[str, ModuleSummary]
    functions: dict[str, FunctionInfo]
    classes: dict[str, ClassInfo]
    edges: list[Edge]
    #: qname -> outgoing edges, sorted for determinism.
    out_edges: dict[str, list[Edge]]
    #: Functions registered as kernel callbacks/hooks: qname -> reason.
    dynamic_entries: dict[str, str]
    #: Link-time allocation effects (known-class construction):
    #: caller qname -> list of (line, class qname, suppressed_rules).
    ctor_allocs: dict[str, list[tuple[int, str, list[str]]]]
    #: module qname -> display path (for witness rendering).
    module_paths: dict[str, str]
    #: Resolved lambda/param argument flows (E303 fixpoint input).
    forward_args: list[ForwardArg] = field(default_factory=list)

    def path_of(self, qname: str) -> str:
        """Display path of the module defining ``qname``."""
        probe = qname
        while probe:
            if probe in self.module_paths:
                return self.module_paths[probe]
            if "." not in probe:
                break
            probe = probe.rsplit(".", 1)[0]
        return "<unknown>"


class _Linker:
    """Resolves per-module references into a :class:`CallGraph`."""

    def __init__(self, summaries: Sequence[ModuleSummary]) -> None:
        self.modules = {summary.module: summary for summary in summaries}
        self.functions: dict[str, FunctionInfo] = {}
        self.classes: dict[str, ClassInfo] = {}
        self.class_module: dict[str, str] = {}
        for summary in summaries:
            for fn in summary.functions:
                self.functions[fn.qname] = fn
            for cls in summary.classes:
                self.classes[cls.qname] = cls
                self.class_module[cls.qname] = summary.module
        self._resolved_bases: dict[str, list[str]] = {}
        self._subclasses: dict[str, list[str]] = {}
        self._link_hierarchy()

    # -- class hierarchy ----------------------------------------------------

    def _link_hierarchy(self) -> None:
        for qname, cls in self.classes.items():
            module = self.modules[self.class_module[qname]]
            bases = []
            for ref in cls.bases:
                resolved = self._resolve_class_ref(ref, module)
                if resolved:
                    bases.append(resolved)
            self._resolved_bases[qname] = bases
        for qname, bases in self._resolved_bases.items():
            for base in self._ancestors(qname):
                self._subclasses.setdefault(base, []).append(qname)
        for subs in self._subclasses.values():
            subs.sort()

    def _ancestors(self, qname: str) -> list[str]:
        seen: list[str] = []
        stack = list(self._resolved_bases.get(qname, ()))
        while stack:
            base = stack.pop()
            if base in seen:
                continue
            seen.append(base)
            stack.extend(self._resolved_bases.get(base, ()))
        return seen

    def _mro(self, qname: str) -> list[str]:
        return [qname] + self._ancestors(qname)

    def _resolve_class_ref(self, ref: str, module: ModuleSummary) -> str | None:
        segs = ref.split(".")
        head = segs[0]
        candidates = [f"{module.module}.{head}", module.imports.get(head, "")]
        if len(segs) == 1:
            for candidate in candidates:
                if candidate in self.classes:
                    return candidate
            return None
        base = module.imports.get(head)
        if base is None:
            return None
        qname = ".".join([base] + segs[1:])
        return qname if qname in self.classes else None

    def _method(self, cls_qname: str, name: str) -> str | None:
        for klass in self._mro(cls_qname):
            info = self.classes.get(klass)
            if info and name in info.methods:
                return info.methods[name]
        return None

    def _overrides(self, cls_qname: str, name: str) -> list[str]:
        found: list[str] = []
        for sub in self._subclasses.get(cls_qname, ()):
            info = self.classes.get(sub)
            if info and name in info.methods:
                found.append(info.methods[name])
        return found

    def _attr_type(self, cls_qname: str, attr: str) -> str | None:
        for klass in self._mro(cls_qname):
            info = self.classes.get(klass)
            if info and attr in info.attr_types:
                module = self.modules[self.class_module[klass]]
                return self._resolve_class_ref(info.attr_types[attr], module)
        return None

    # -- reference resolution ------------------------------------------------

    def resolve(
        self, fn: FunctionInfo, module: ModuleSummary, text: str
    ) -> list[tuple[str, str]]:
        """Resolve a dotted reference to ``[(qname, "function"|"class")]``."""
        segs = text.split(".")
        head = segs[0]
        own_class = f"{module.module}.{fn.cls}" if fn.cls else None

        if head in {"self", "cls"} and own_class:
            return self._resolve_via_class(own_class, segs[1:])
        if head in fn.local_types:
            ctor = fn.local_types[head]
            cls_qname = self._resolve_class_ref(ctor, module)
            if cls_qname and len(segs) > 1:
                return self._resolve_via_class(cls_qname, segs[1:])
            return []
        if len(segs) == 1:
            local = f"{module.module}.{head}"
            if local in self.functions:
                return [(local, "function")]
            if local in self.classes:
                return [(local, "class")]
            imported = module.imports.get(head)
            if imported in self.functions:
                return [(imported, "function")]
            if imported in self.classes:
                return [(imported, "class")]
            return []
        base = module.imports.get(head)
        if base is None:
            local_cls = f"{module.module}.{head}"
            if local_cls in self.classes:
                base = local_cls
            else:
                return []
        return self._walk_dotted(base, segs[1:])

    def _resolve_via_class(
        self, cls_qname: str, segs: list[str]
    ) -> list[tuple[str, str]]:
        if not segs:
            return [(cls_qname, "class")]
        if len(segs) == 1:
            return self._method_targets(cls_qname, segs[0])
        attr_cls = self._attr_type(cls_qname, segs[0])
        if attr_cls is None:
            return []
        return self._resolve_via_class(attr_cls, segs[1:])

    def _method_targets(self, cls_qname: str, name: str) -> list[tuple[str, str]]:
        targets: list[tuple[str, str]] = []
        primary = self._method(cls_qname, name)
        if primary:
            targets.append((primary, "function"))
        for override in self._overrides(cls_qname, name):
            if (override, "function") not in targets:
                targets.append((override, "function"))
        return targets

    def _walk_dotted(self, base: str, segs: list[str]) -> list[tuple[str, str]]:
        current = base
        for index, seg in enumerate(segs):
            last = index == len(segs) - 1
            if current in self.classes:
                if last:
                    return self._method_targets(current, seg)
                attr_cls = self._attr_type(current, seg)
                if attr_cls is None:
                    return []
                current = attr_cls
                continue
            candidate = f"{current}.{seg}"
            if last:
                if candidate in self.functions:
                    return [(candidate, "function")]
                if candidate in self.classes:
                    return [(candidate, "class")]
                return []
            if candidate in self.classes or candidate in self.modules:
                current = candidate
            else:
                return []
        return []

    # -- graph construction --------------------------------------------------

    def link(self) -> CallGraph:
        edges: list[Edge] = []
        dynamic_entries: dict[str, str] = {}
        ctor_allocs: dict[str, list[tuple[int, str, list[str]]]] = {}
        forward_args: list[ForwardArg] = []

        for summary in self.modules.values():
            for fn in summary.functions:
                self._link_function(summary, fn, edges, dynamic_entries, ctor_allocs)
                self._link_forward_args(summary, fn, forward_args)
            for ref, line, via in summary.hooks:
                for target, kind in self._resolve_module_ref(summary, ref):
                    if kind == "function":
                        dynamic_entries.setdefault(
                            target, f"registered {via} at {summary.path}:{line}"
                        )

        edges.sort(key=lambda e: (e.caller, e.callee, e.line, e.kind))
        forward_args.sort(key=lambda a: (a.caller, a.line, a.callee, a.param))
        out_edges: dict[str, list[Edge]] = {}
        for edge in edges:
            out_edges.setdefault(edge.caller, []).append(edge)
        return CallGraph(
            modules=self.modules,
            functions=self.functions,
            classes=self.classes,
            edges=edges,
            out_edges=out_edges,
            dynamic_entries=dynamic_entries,
            ctor_allocs=ctor_allocs,
            module_paths={m: s.path for m, s in self.modules.items()},
            forward_args=forward_args,
        )

    def _link_forward_args(
        self,
        summary: ModuleSummary,
        fn: FunctionInfo,
        forward_args: list[ForwardArg],
    ) -> None:
        for callee_text, line, position, keyword, kind, value in fn.sched_args:
            for target, target_kind in self.resolve(fn, summary, callee_text):
                if target_kind != "function":
                    continue
                callee = self.functions[target]
                if keyword is not None:
                    param = keyword if keyword in callee.params else None
                else:
                    segs = callee_text.split(".")
                    head_is_class = (
                        segs[0] not in {"self", "cls"}
                        and len(segs) > 1
                        and self._resolve_class_ref(segs[0], summary) is not None
                    )
                    offset = (
                        1
                        if callee.is_method
                        and callee.params
                        and callee.params[0] in {"self", "cls"}
                        and not head_is_class
                        else 0
                    )
                    index = position + offset
                    param = (
                        callee.params[index] if index < len(callee.params) else None
                    )
                if param is None:
                    continue
                forward_args.append(
                    ForwardArg(
                        caller=fn.qname,
                        callee=target,
                        line=line,
                        param=param,
                        kind=kind,
                        value=value,
                    )
                )

    def _resolve_module_ref(
        self, summary: ModuleSummary, ref: str
    ) -> list[tuple[str, str]]:
        shim = FunctionInfo(
            qname=f"{summary.module}.<module>",
            name="<module>",
            cls=None,
            line=1,
            params=[],
            is_method=False,
        )
        return self.resolve(shim, summary, ref)

    def _link_function(
        self,
        summary: ModuleSummary,
        fn: FunctionInfo,
        edges: list[Edge],
        dynamic_entries: dict[str, str],
        ctor_allocs: dict[str, list[tuple[int, str, list[str]]]],
    ) -> None:
        seen: set[tuple[str, str, str]] = set()
        for text, line in fn.calls:
            for target, kind in self.resolve(fn, summary, text):
                if kind == "class":
                    self._record_ctor(
                        summary, fn, line, target, ctor_allocs, edges, seen
                    )
                elif (fn.qname, target, "call") not in seen:
                    seen.add((fn.qname, target, "call"))
                    edges.append(Edge(fn.qname, target, line, "call"))
                    self._add_override_edges(fn, target, line, edges, seen)
        for text, line in fn.callbacks:
            for target, kind in self.resolve(fn, summary, text):
                if kind == "class":
                    init = self._method(target, "__init__")
                    target = init or ""
                if target and (fn.qname, target, "callback") not in seen:
                    seen.add((fn.qname, target, "callback"))
                    edges.append(Edge(fn.qname, target, line, "callback"))
                    dynamic_entries.setdefault(
                        target, f"scheduled from {fn.qname} at {summary.path}:{line}"
                    )

    def _add_override_edges(
        self,
        fn: FunctionInfo,
        target: str,
        line: int,
        edges: list[Edge],
        seen: set[tuple[str, str, str]],
    ) -> None:
        callee = self.functions.get(target)
        if callee is None or callee.cls is None:
            return
        owner = target.rsplit(".", 2)
        cls_qname = ".".join(owner[:2]) if len(owner) >= 2 else None
        if cls_qname is None or cls_qname not in self.classes:
            return
        for override in self._overrides(cls_qname, callee.name):
            if (fn.qname, override, "override") not in seen:
                seen.add((fn.qname, override, "override"))
                edges.append(Edge(fn.qname, override, line, "override"))

    def _record_ctor(
        self,
        summary: ModuleSummary,
        fn: FunctionInfo,
        line: int,
        cls_qname: str,
        ctor_allocs: dict[str, list[tuple[int, str, list[str]]]],
        edges: list[Edge],
        seen: set[tuple[str, str, str]],
    ) -> None:
        rules = ("S205", "E302")
        pools = (
            set(summary.file_suppressions),
            set(summary.suppression_lines.get(line, ())),
        )
        matched = sorted(
            {rule for pool in pools for rule in pool if rule == "*" or rule in rules}
        )
        ctor_allocs.setdefault(fn.qname, []).append((line, cls_qname, matched))
        init = self._method(cls_qname, "__init__")
        if init and (fn.qname, init, "call") not in seen:
            seen.add((fn.qname, init, "call"))
            edges.append(Edge(fn.qname, init, line, "call"))


def link_modules(summaries: Sequence[ModuleSummary]) -> CallGraph:
    """Link per-module summaries into the whole-program call graph."""
    return _Linker(summaries).link()


def summarize_paths(paths: Sequence[Path | str]) -> list[ModuleSummary]:
    """Summarize every Python file under ``paths`` (sorted, deterministic)."""
    from repro.lint.engine import iter_python_files

    summaries = []
    for path in iter_python_files(paths):
        summaries.append(summarize_module(path.read_text(encoding="utf-8"), path))
    return summaries


__all__ = [
    "CallGraph",
    "ClassInfo",
    "Edge",
    "EFFECT_KINDS",
    "ForwardArg",
    "FunctionInfo",
    "KIND_BASE_RULES",
    "KIND_EFFECT_RULES",
    "ModuleSummary",
    "link_modules",
    "module_qname",
    "summarize_module",
    "summarize_paths",
]
