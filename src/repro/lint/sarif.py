"""SARIF 2.1.0 export for ``conga-repro lint`` (GitHub code scanning).

One run, one driver (``conga-repro-lint``).  Per-file violations become
plain results; whole-program effect findings additionally carry a
``codeFlow`` whose thread-flow locations are the witness chain hops
(entry point → call → … → effect site), which GitHub renders as a
step-through path on the annotation.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Iterable, Sequence

from repro.lint.engine import Violation

if TYPE_CHECKING:
    from repro.lint.effects import EffectFinding

_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)


def _rule_metadata() -> dict[str, dict[str, str]]:
    from repro.lint.effects import EFFECT_RULE_CATALOG
    from repro.lint.rules import ALL_RULES

    catalog: dict[str, dict[str, str]] = {
        "E001": {
            "title": "file does not parse",
            "rationale": "Unparseable files cannot be analyzed.",
        }
    }
    for rule in ALL_RULES:
        catalog[rule.rule_id] = {
            "title": rule.title,
            "rationale": rule.rationale,
        }
    for effect_rule in EFFECT_RULE_CATALOG:
        catalog[effect_rule.rule_id] = {
            "title": effect_rule.title,
            "rationale": effect_rule.rationale,
        }
    return catalog


def _location(path: str, line: int, col: int = 1, text: str | None = None) -> dict[str, Any]:
    location: dict[str, Any] = {
        "physicalLocation": {
            "artifactLocation": {"uri": path.replace("\\", "/")},
            "region": {"startLine": max(1, line), "startColumn": max(1, col)},
        }
    }
    if text:
        location["message"] = {"text": text}
    return location


def sarif_document(
    violations: Sequence[Violation],
    findings: "Iterable[EffectFinding]" = (),
) -> dict[str, Any]:
    """Build the SARIF document for per-file violations + effect findings.

    ``findings`` are :class:`repro.lint.effects.EffectFinding` objects;
    pass violations and findings disjointly (a finding renders its own
    result — do not also pass its ``to_violation()`` form).
    """
    findings = list(findings)
    used_rules: list[str] = []
    results: list[dict] = []

    for violation in violations:
        if violation.rule not in used_rules:
            used_rules.append(violation.rule)
        results.append(
            {
                "ruleId": violation.rule,
                "level": "error",
                "message": {"text": f"{violation.rule} {violation.message}"},
                "locations": [
                    _location(violation.path, violation.line, violation.col)
                ],
            }
        )

    for finding in findings:
        if finding.rule not in used_rules:
            used_rules.append(finding.rule)
        thread_locations = [
            {"location": _location(hop.path, hop.line, text=hop.qname)}
            for hop in finding.chain
        ]
        thread_locations.append(
            {
                "location": _location(
                    finding.site_path, finding.site_line, text=finding.detail
                )
            }
        )
        results.append(
            {
                "ruleId": finding.rule,
                "level": "error",
                "message": {"text": f"{finding.rule} {finding.message()}"},
                "locations": [_location(finding.site_path, finding.site_line)],
                "codeFlows": [
                    {"threadFlows": [{"locations": thread_locations}]}
                ],
            }
        )

    metadata = _rule_metadata()
    rules = []
    for rule_id in sorted(used_rules):
        info = metadata.get(rule_id, {"title": rule_id, "rationale": ""})
        rules.append(
            {
                "id": rule_id,
                "shortDescription": {"text": info["title"]},
                "fullDescription": {"text": info["rationale"]},
                "defaultConfiguration": {"level": "error"},
            }
        )

    return {
        "$schema": _SCHEMA,
        "version": "2.1.0",
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "conga-repro-lint",
                        "informationUri": (
                            "https://github.com/conga-repro/conga-repro"
                        ),
                        "rules": rules,
                    }
                },
                "results": results,
            }
        ],
    }


__all__ = ["sarif_document"]
