"""Whole-program effect propagation and the E3xx rule family.

Built on the call graph from :mod:`repro.lint.callgraph`, this module
propagates per-function effect sets transitively and enforces the
contracts that per-file rules cannot see:

* **E301** — no wall-clock / ambient-RNG / I-O effects reachable from a
  kernel entry point (``Simulator.run``, ``Port._advance``,
  ``DRE.measure``, scheme ``choose_uplink`` overrides, every scheduled
  callback and registered ``on_transmit`` hook).
* **E302** — no allocation effects (closures, comprehensions, known-class
  construction) reachable from the per-packet train path *without
  crossing a callback edge* — the synchronous per-packet code that PR 7's
  train batching made allocation-free.  Generalizes S205 beyond syntactic
  lambdas in the same file.
* **E303** — nothing unpicklable handed into a parameter that is
  (transitively) scheduled on the event kernel: a lambda passed through
  two helpers into ``sim.schedule`` breaks subprocess shipping even
  though S201's per-file check never sees it.
* **E304** — stale suppression comments: an ``ignore[...]`` whose rules
  no longer match any (pre-suppression) finding at that site.

Every E301/E302/E303 finding carries a concrete witness chain — entry
point → call → … → effect site, with ``path:line`` per hop — rendered in
the violation message, exported in JSON/SARIF ``codeFlows``, and dumped
by ``conga-repro callgraph``.

Propagation runs over the condensation of the call graph (iterative
Tarjan SCCs, callees first).  Crossing a ``callback`` edge marks an
effect *deferred*: still on the kernel clock (E301 bans it) but not part
of the synchronous per-packet path (E302 ignores it).  Witnesses are
first-acquisition: a function records how it first obtained an effect and
never overwrites it, which keeps chains loop-free even inside SCCs.

Suppression semantics: an effect whose *site line* carries a suppression
for the matching base rule (D101 for time, S205 for alloc, …) or for the
E-rule itself never enters propagation — the per-file waiver covers the
transitive report too, and E304 tracks whether each waiver still matches
anything.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from fnmatch import fnmatchcase
from pathlib import Path
from typing import Iterable, Sequence

from repro.lint.callgraph import (
    CallGraph,
    ModuleSummary,
    link_modules,
    summarize_module,
)
from repro.lint.engine import Violation, iter_python_files

#: Effect kinds banned on the kernel clock (E301) and the train path (E302).
E301_BANNED = ("time", "rng", "io")
E302_BANNED = ("alloc",)

#: Entry points of the kernel-clock contract (fnmatch patterns on qnames).
DEFAULT_E301_ENTRIES: tuple[str, ...] = (
    "repro.sim.kernel.Simulator.run*",
    "repro.sim.kernel.run_until_idle",
    "repro.sim.kernel.Timer._fire",
    "repro.sim.kernel.PeriodicTimer._fire",
    "repro.net.port.Port.send",
    "repro.net.port.Port._advance",
    "repro.net.port.Port._transmit_next",
    "repro.net.port.Port._arrive",
    "repro.core.dre.DRE.measure",
    "repro.core.dre.DRE.on_transmit",
    "repro.lb.*.choose_uplink",
)

#: Entry points of the allocation-free per-packet train path (E302).
DEFAULT_E302_ENTRIES: tuple[str, ...] = (
    "repro.net.port.Port._advance",
    "repro.net.port.Port._transmit_next",
    "repro.core.dre.DRE.measure",
    "repro.core.dre.DRE.on_transmit",
)


@dataclass(frozen=True)
class EffectRule:
    """Catalog metadata for one E3xx rule (mirrors ``Rule`` attributes)."""

    rule_id: str
    title: str
    rationale: str
    paper_ref: str
    scopes: tuple[str, ...] | None = None


EFFECT_RULE_CATALOG: tuple[EffectRule, ...] = (
    EffectRule(
        rule_id="E301",
        title="no wall-clock/RNG/io effects reachable from kernel entry points",
        rationale=(
            "The simulation must be a pure function of the spec; a helper two "
            "calls below Simulator.run that reads the wall clock or ambient "
            "RNG breaks the golden digests even though no per-file rule fires."
        ),
        paper_ref="repo determinism contract (tests/golden/), CONGA §5.2",
    ),
    EffectRule(
        rule_id="E302",
        title="no allocation effects reachable from the per-packet train path",
        rationale=(
            "Port._advance/DRE.measure run once per packet at 1M events/sec; "
            "any reachable closure, comprehension, or object construction on "
            "the synchronous path is a per-packet allocation (generalizes "
            "S205 across call boundaries)."
        ),
        paper_ref="CONGA §3.2 (DRE on the data path), BENCH_kernel.json gate",
    ),
    EffectRule(
        rule_id="E303",
        title="values scheduled on the kernel must be transitively picklable",
        rationale=(
            "A lambda forwarded through helpers into kernel.schedule* lands "
            "on the event heap that SubprocessBackend workers pickle; S201 "
            "only sees the schedule call itself (generalized via the call "
            "graph)."
        ),
        paper_ref="repro.runner subprocess isolation contract",
    ),
    EffectRule(
        rule_id="E304",
        title="no stale suppression comments",
        rationale=(
            "An ignore[...] comment whose rules no longer match any finding "
            "hides future regressions at that site; stale waivers must be "
            "removed (ruff unused-noqa analogue)."
        ),
        paper_ref="repo lint policy (DESIGN.md)",
    ),
)

EFFECT_RULE_IDS: tuple[str, ...] = tuple(r.rule_id for r in EFFECT_RULE_CATALOG)


# ---------------------------------------------------------------------------
# Propagation
# ---------------------------------------------------------------------------

#: A witness records how a function first acquired an effect key:
#: ``(line, callee_qname | None, callee_key | None, detail | None)`` —
#: own effect when ``callee`` is None, else the call/override/callback
#: edge it arrived through.
Witness = tuple[int, str | None, str | None, str | None]


def _key(kind: str, deferred: bool) -> str:
    return f"{kind}@deferred" if deferred else kind


def _split_key(key: str) -> tuple[str, bool]:
    if key.endswith("@deferred"):
        return key[: -len("@deferred")], True
    return key, False


def _own_effects(graph: CallGraph) -> dict[str, dict[str, Witness]]:
    """Per-function atomic effects (extraction + link-time ctor allocs)."""
    own: dict[str, dict[str, Witness]] = {}
    for qname, fn in graph.functions.items():
        table: dict[str, Witness] = {}
        for kind, line, detail in fn.effects:
            table.setdefault(_key(kind, False), (line, None, None, detail))
        for line, cls_qname, matched in graph.ctor_allocs.get(qname, ()):
            if not matched:
                table.setdefault(
                    _key("alloc", False),
                    (line, None, None, f"constructs {cls_qname}"),
                )
        if table:
            own[qname] = table
    return own


def _tarjan_sccs(
    nodes: Sequence[str], successors: dict[str, list[str]]
) -> list[list[str]]:
    """Iterative Tarjan; emits SCCs callees-first (reverse topological)."""
    index: dict[str, int] = {}
    lowlink: dict[str, int] = {}
    on_stack: set[str] = set()
    stack: list[str] = []
    sccs: list[list[str]] = []
    counter = 0

    for root in nodes:
        if root in index:
            continue
        work: list[tuple[str, int]] = [(root, 0)]
        while work:
            node, child_index = work[-1]
            if child_index == 0:
                index[node] = lowlink[node] = counter
                counter += 1
                stack.append(node)
                on_stack.add(node)
            advanced = False
            children = successors.get(node, [])
            while child_index < len(children):
                child = children[child_index]
                child_index += 1
                if child not in index:
                    work[-1] = (node, child_index)
                    work.append((child, 0))
                    advanced = True
                    break
                if child in on_stack:
                    lowlink[node] = min(lowlink[node], index[child])
            if advanced:
                continue
            work.pop()
            if lowlink[node] == index[node]:
                component: list[str] = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.append(member)
                    if member == node:
                        break
                component.sort()
                sccs.append(component)
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[node])
    return sccs


@dataclass
class PropagationStats:
    """Cache-effectiveness counters asserted by the incremental tests."""

    files_total: int = 0
    files_analyzed: int = 0
    files_cached: int = 0
    sccs_total: int = 0
    sccs_repropagated: int = 0

    def to_json(self) -> dict[str, int]:
        return {
            "files_total": self.files_total,
            "files_analyzed": self.files_analyzed,
            "files_cached": self.files_cached,
            "sccs_total": self.sccs_total,
            "sccs_repropagated": self.sccs_repropagated,
        }


def _fingerprints(
    graph: CallGraph, own: dict[str, dict[str, Witness]]
) -> dict[str, str]:
    """Stable per-function digest of own effects + resolved out-edges."""
    prints: dict[str, str] = {}
    for qname in graph.functions:
        payload = {
            "own": sorted(
                (key, value[0], value[3] or "")
                for key, value in own.get(qname, {}).items()
            ),
            "edges": sorted(
                (edge.callee, edge.kind, edge.line)
                for edge in graph.out_edges.get(qname, ())
            ),
        }
        blob = json.dumps(payload, sort_keys=True).encode("utf-8")
        prints[qname] = hashlib.sha256(blob).hexdigest()
    return prints


def propagate(
    graph: CallGraph,
    *,
    cached_propagation: dict[str, dict[str, Witness]] | None = None,
    cached_fingerprints: dict[str, str] | None = None,
    stats: PropagationStats | None = None,
) -> tuple[dict[str, dict[str, Witness]], dict[str, str]]:
    """Transitive effect sets with first-acquisition witnesses.

    When cached propagation + fingerprints from a previous run are given,
    only strongly-connected components that can reach a changed function
    are recomputed; clean SCCs reuse the cached transitive sets.
    """
    own = _own_effects(graph)
    prints = _fingerprints(graph, own)
    cached_propagation = cached_propagation or {}
    cached_fingerprints = cached_fingerprints or {}
    seeds = {
        qname
        for qname, fingerprint in prints.items()
        if cached_fingerprints.get(qname) != fingerprint
    }

    nodes = sorted(graph.functions)
    successors = {
        qname: [edge.callee for edge in graph.out_edges.get(qname, ())]
        for qname in nodes
    }
    sccs = _tarjan_sccs(nodes, successors)
    scc_of = {member: i for i, component in enumerate(sccs) for member in component}

    result: dict[str, dict[str, Witness]] = {}
    dirty: list[bool] = []
    if stats is not None:
        stats.sccs_total = len(sccs)

    for component in sccs:
        is_dirty = any(member in seeds for member in component) or any(
            member not in cached_propagation for member in component
        )
        if not is_dirty:
            for member in component:
                for edge in graph.out_edges.get(member, ()):
                    callee_scc = scc_of.get(edge.callee)
                    if callee_scc is not None and callee_scc < len(dirty):
                        if dirty[callee_scc]:
                            is_dirty = True
                            break
                if is_dirty:
                    break
        dirty.append(is_dirty)
        if not is_dirty:
            for member in component:
                result[member] = dict(cached_propagation[member])
            continue
        if stats is not None:
            stats.sccs_repropagated += 1
        for member in component:
            result[member] = dict(own.get(member, {}))
        changed = True
        while changed:
            changed = False
            for member in component:
                table = result[member]
                for edge in graph.out_edges.get(member, ()):
                    callee_table = result.get(edge.callee)
                    if not callee_table:
                        continue
                    crosses = edge.kind == "callback"
                    for callee_key in list(callee_table):
                        kind, deferred = _split_key(callee_key)
                        new_key = _key(kind, deferred or crosses)
                        if new_key not in table:
                            table[new_key] = (
                                edge.line,
                                edge.callee,
                                callee_key,
                                None,
                            )
                            changed = True
    return result, prints


# ---------------------------------------------------------------------------
# Findings
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ChainHop:
    """One hop of a witness chain."""

    qname: str
    path: str
    line: int


@dataclass
class EffectFinding:
    """One E301/E302/E303 finding with its full witness chain."""

    rule: str
    kind: str
    entry: str
    entry_reason: str
    chain: list[ChainHop]
    site_path: str
    site_line: int
    detail: str

    def chain_text(self) -> str:
        hops = " -> ".join(f"{hop.qname} ({hop.path}:{hop.line})" for hop in self.chain)
        return f"{hops} -> {self.detail} ({self.site_path}:{self.site_line})"

    def message(self) -> str:
        return (
            f"{self.detail} ({self.kind}) reachable from {self.entry} "
            f"[{self.entry_reason}]; witness: {self.chain_text()}"
        )

    def to_violation(self) -> Violation:
        return Violation(
            rule=self.rule,
            path=self.site_path,
            line=self.site_line,
            col=1,
            message=self.message(),
        )

    def to_json(self) -> dict[str, object]:
        return {
            "rule": self.rule,
            "kind": self.kind,
            "entry": self.entry,
            "entry_reason": self.entry_reason,
            "chain": [
                {"function": hop.qname, "path": hop.path, "line": hop.line}
                for hop in self.chain
            ],
            "site": {
                "path": self.site_path,
                "line": self.site_line,
                "detail": self.detail,
            },
        }


@dataclass
class SuppressionStatus:
    """One suppression comment with its staleness verdict (E304)."""

    path: str
    line: int  # 0 for whole-file suppressions
    rules: list[str]
    used: list[str]
    stale: list[str]

    def to_json(self) -> dict[str, object]:
        return {
            "path": self.path,
            "line": self.line,
            "rules": self.rules,
            "used": self.used,
            "stale": self.stale,
        }


def _witness_chain(
    graph: CallGraph,
    propagation: dict[str, dict[str, Witness]],
    start: str,
    start_key: str,
) -> tuple[list[ChainHop], str, str, int]:
    """Reconstruct ``(hops, detail, site_path, site_line)`` for one key."""
    hops: list[ChainHop] = []
    qname, key = start, start_key
    seen: set[tuple[str, str]] = set()
    while (qname, key) not in seen and len(hops) < 64:
        seen.add((qname, key))
        witness = propagation.get(qname, {}).get(key)
        if witness is None:
            break
        line, callee, callee_key, detail = witness
        path = graph.path_of(qname)
        hops.append(ChainHop(qname=qname, path=path, line=line))
        if callee is None:
            return hops, detail or key, path, line
        qname, key = callee, callee_key or key
    # Degenerate (cache corruption): anchor at the entry itself.
    fn = graph.functions.get(start)
    line = fn.line if fn else 1
    path = graph.path_of(start)
    if not hops:
        hops = [ChainHop(qname=start, path=path, line=line)]
    return hops, _split_key(start_key)[0], hops[-1].path, hops[-1].line


def _match_entries(
    graph: CallGraph, patterns: Sequence[str]
) -> dict[str, str]:
    matched: dict[str, str] = {}
    for qname in graph.functions:
        for pattern in patterns:
            if fnmatchcase(qname, pattern):
                matched[qname] = f"entry pattern {pattern}"
                break
    return matched


def _check_reachability(
    graph: CallGraph,
    propagation: dict[str, dict[str, Witness]],
    entries: dict[str, str],
    banned: Sequence[str],
    rule: str,
    *,
    allow_deferred: bool,
) -> list[EffectFinding]:
    findings: list[EffectFinding] = []
    seen_sites: set[tuple[str, str, int, str]] = set()
    for entry in sorted(entries):
        table = propagation.get(entry, {})
        for kind in banned:
            for deferred in (False, True) if allow_deferred else (False,):
                key = _key(kind, deferred)
                if key not in table:
                    continue
                hops, detail, site_path, site_line = _witness_chain(
                    graph, propagation, entry, key
                )
                site_id = (rule, site_path, site_line, kind)
                if site_id in seen_sites:
                    continue
                seen_sites.add(site_id)
                findings.append(
                    EffectFinding(
                        rule=rule,
                        kind=kind,
                        entry=entry,
                        entry_reason=entries[entry],
                        chain=hops,
                        site_path=site_path,
                        site_line=site_line,
                        detail=detail,
                    )
                )
                break  # one witness per (entry, kind) is enough
    return findings


# ---------------------------------------------------------------------------
# E303: transitive callback forwarding
# ---------------------------------------------------------------------------


def _check_forwarding(
    graph: CallGraph,
    used_marks: dict[tuple[str, int], set[str]],
) -> list[EffectFinding]:
    """Lambdas forwarded through helpers into a schedule/Timer slot."""
    # Fixpoint: (function, param) pairs whose value ends up scheduled.
    forwarding: dict[tuple[str, str], tuple] = {}
    for qname, fn in graph.functions.items():
        for name, line in fn.sched_params:
            forwarding[(qname, name)] = ("site", line)
    changed = True
    while changed:
        changed = False
        for arg in graph.forward_args:
            if arg.kind != "name" or arg.value is None:
                continue
            source = (arg.caller, arg.value)
            target = (arg.callee, arg.param)
            if target in forwarding and source not in forwarding:
                forwarding[source] = ("call", arg.line, arg.callee, arg.param)
                changed = True

    findings: list[EffectFinding] = []
    for arg in graph.forward_args:
        if arg.kind != "lambda":
            continue
        target = (arg.callee, arg.param)
        if target not in forwarding:
            continue
        caller_path = graph.path_of(arg.caller)
        matched = _suppressed_at(graph, arg.caller, arg.line, ("S201", "E303"))
        if matched:
            used_marks.setdefault((caller_path, arg.line), set()).update(matched)
            continue
        hops = [ChainHop(qname=arg.caller, path=caller_path, line=arg.line)]
        qname, param = arg.callee, arg.param
        witness = forwarding[target]
        site_line = arg.line
        site_path = caller_path
        guard = 0
        while guard < 64:
            guard += 1
            path = graph.path_of(qname)
            if witness[0] == "site":
                hops.append(ChainHop(qname=qname, path=path, line=witness[1]))
                site_path, site_line = path, witness[1]
                break
            _tag, line, callee, callee_param = witness
            hops.append(ChainHop(qname=qname, path=path, line=line))
            qname, param = callee, callee_param
            witness = forwarding.get((qname, param), ("site", 1))
        findings.append(
            EffectFinding(
                rule="E303",
                kind="unpicklable-callback",
                entry=arg.caller,
                entry_reason=f"lambda argument to {arg.callee}",
                chain=hops,
                site_path=caller_path,
                site_line=arg.line,
                detail=(
                    f"lambda forwarded into parameter {param!r} of {arg.callee}, "
                    f"which schedules it on the event kernel "
                    f"({site_path}:{site_line}); scheduled callbacks must be "
                    "picklable for SubprocessBackend workers"
                ),
            )
        )
    findings.sort(key=lambda f: (f.site_path, f.site_line, f.entry))
    return findings


def _suppressed_at(
    graph: CallGraph, qname: str, line: int, rules: tuple[str, ...]
) -> set[str]:
    """Suppression ids at ``line`` of the module defining ``qname``."""
    probe = qname
    summary: ModuleSummary | None = None
    while probe:
        if probe in graph.modules:
            summary = graph.modules[probe]
            break
        if "." not in probe:
            break
        probe = probe.rsplit(".", 1)[0]
    if summary is None:
        return set()
    pools = (
        set(summary.file_suppressions),
        set(summary.suppression_lines.get(line, ())),
    )
    return {rule for pool in pools for rule in pool if rule == "*" or rule in rules}


# ---------------------------------------------------------------------------
# E304: stale suppressions
# ---------------------------------------------------------------------------


def _check_suppressions(
    graph: CallGraph,
    used_marks: dict[tuple[str, int], set[str]],
) -> tuple[list[Violation], list[SuppressionStatus]]:
    violations: list[Violation] = []
    statuses: list[SuppressionStatus] = []
    for module in sorted(graph.modules.values(), key=lambda s: s.path):
        findings_by_line: dict[int, set[str]] = {}
        file_rules_seen: set[str] = set()
        for rule, line in module.rule_findings:
            findings_by_line.setdefault(line, set()).add(rule)
            file_rules_seen.add(rule)
        suppressed_by_line: dict[int, set[str]] = {}
        for fn in module.functions:
            for _kind, line, _detail, matched in fn.suppressed_effects:
                suppressed_by_line.setdefault(line, set()).update(matched)
            for line, _cls, matched in graph.ctor_allocs.get(fn.qname, ()):
                if matched:
                    suppressed_by_line.setdefault(line, set()).update(matched)
        for (path, line), marks in used_marks.items():
            if path == module.path:
                suppressed_by_line.setdefault(line, set()).update(marks)

        for line in sorted(module.suppression_lines):
            rules = module.suppression_lines[line]
            at_line = findings_by_line.get(line, set())
            waived = suppressed_by_line.get(line, set())
            used = sorted(
                rule
                for rule in rules
                if rule in waived
                or (rule == "*" and (at_line or waived))
                or rule in at_line
            )
            stale = [rule for rule in rules if rule not in used]
            statuses.append(
                SuppressionStatus(
                    path=module.path, line=line, rules=rules, used=used, stale=stale
                )
            )
            if stale:
                listed = ",".join(stale)
                violations.append(
                    Violation(
                        rule="E304",
                        path=module.path,
                        line=line,
                        col=1,
                        message=(
                            f"suppression ignore[{listed}] matches no finding "
                            "at this line — stale waiver, remove it"
                        ),
                    )
                )
        if module.file_suppressions:
            all_waived = {
                rule for marks in suppressed_by_line.values() for rule in marks
            }
            used = sorted(
                rule
                for rule in module.file_suppressions
                if rule in file_rules_seen
                or rule in all_waived
                or (rule == "*" and (file_rules_seen or all_waived))
            )
            stale = [r for r in module.file_suppressions if r not in used]
            statuses.append(
                SuppressionStatus(
                    path=module.path,
                    line=0,
                    rules=list(module.file_suppressions),
                    used=used,
                    stale=stale,
                )
            )
            if stale:
                violations.append(
                    Violation(
                        rule="E304",
                        path=module.path,
                        line=1,
                        col=1,
                        message=(
                            f"whole-file suppression ignore-file[{','.join(stale)}] "
                            "matches no finding in this file — stale waiver"
                        ),
                    )
                )
    return violations, statuses


# ---------------------------------------------------------------------------
# Public entry point
# ---------------------------------------------------------------------------


@dataclass
class EffectsReport:
    """Result of one whole-program effects pass."""

    findings: list[EffectFinding]
    stale: list[Violation]
    suppressions: list[SuppressionStatus]
    stats: PropagationStats
    files_checked: int
    graph: CallGraph
    propagation: dict[str, dict[str, Witness]] = field(repr=False, default_factory=dict)

    def violations(self, select: Iterable[str] | None = None) -> list[Violation]:
        """All E3xx violations, optionally filtered to selected rule ids."""
        wanted = set(select) if select is not None else None
        out = [
            finding.to_violation()
            for finding in self.findings
            if wanted is None or finding.rule in wanted
        ]
        if wanted is None or "E304" in wanted:
            out.extend(self.stale)
        out.sort(key=lambda v: (v.path, v.line, v.col, v.rule))
        return out

    @property
    def ok(self) -> bool:
        return not self.findings and not self.stale

    def to_json(self) -> dict[str, object]:
        return {
            "version": 1,
            "ok": self.ok,
            "files_checked": self.files_checked,
            "stats": self.stats.to_json(),
            "findings": [finding.to_json() for finding in self.findings],
            "stale_suppressions": [
                {
                    "path": violation.path,
                    "line": violation.line,
                    "message": violation.message,
                }
                for violation in self.stale
            ],
            "suppressions": [status.to_json() for status in self.suppressions],
        }


def analyze_effects(
    paths: Sequence[Path | str],
    *,
    cache_path: Path | str | None = None,
    e301_entries: Sequence[str] = DEFAULT_E301_ENTRIES,
    e302_entries: Sequence[str] = DEFAULT_E302_ENTRIES,
    include_dynamic_entries: bool = True,
) -> EffectsReport:
    """Run the whole-program effects pass over ``paths``.

    ``cache_path`` enables the per-file content-hash cache: unchanged
    files reuse their summaries, and only SCCs that can reach a changed
    function are re-propagated (:class:`PropagationStats` records both).
    """
    from repro.lint.effcache import EffectCache

    cache = EffectCache(Path(cache_path)) if cache_path is not None else None
    stats = PropagationStats()

    summaries: list[ModuleSummary] = []
    for path in iter_python_files(paths):
        raw = path.read_bytes()
        digest = hashlib.sha256(raw).hexdigest()
        stats.files_total += 1
        summary = cache.summary_for(str(path), digest) if cache else None
        if summary is None:
            summary = summarize_module(raw.decode("utf-8"), path)
            stats.files_analyzed += 1
        else:
            stats.files_cached += 1
        if cache:
            cache.store_summary(str(path), digest, summary)
        summaries.append(summary)

    graph = link_modules(summaries)
    propagation, fingerprints = propagate(
        graph,
        cached_propagation=cache.propagation if cache else None,
        cached_fingerprints=cache.fingerprints if cache else None,
        stats=stats,
    )

    e301 = _match_entries(graph, e301_entries)
    if include_dynamic_entries:
        for qname, reason in graph.dynamic_entries.items():
            e301.setdefault(qname, reason)
    e302 = _match_entries(graph, e302_entries)

    findings = _check_reachability(
        graph, propagation, e301, E301_BANNED, "E301", allow_deferred=True
    )
    findings.extend(
        _check_reachability(
            graph, propagation, e302, E302_BANNED, "E302", allow_deferred=False
        )
    )
    used_marks: dict[tuple[str, int], set[str]] = {}
    findings.extend(_check_forwarding(graph, used_marks))
    findings.sort(key=lambda f: (f.site_path, f.site_line, f.rule, f.entry))
    stale, suppressions = _check_suppressions(graph, used_marks)

    if cache:
        cache.store_propagation(propagation, fingerprints)
        cache.save()

    return EffectsReport(
        findings=findings,
        stale=stale,
        suppressions=suppressions,
        stats=stats,
        files_checked=stats.files_total,
        graph=graph,
        propagation=propagation,
    )


def dump_callgraph(
    report: EffectsReport,
    *,
    entries: Sequence[str] | None = None,
    kinds: Sequence[str] | None = None,
) -> list[dict[str, object]]:
    """Witness chains for every effect reachable from the entry points.

    Powers ``conga-repro callgraph``: one record per (entry, effect key)
    with the full hop list, independent of whether the effect violates an
    E-rule — the exploratory view of what the kernel clock can reach.
    """
    graph = report.graph
    if entries is None:
        matched = _match_entries(
            graph, tuple(DEFAULT_E301_ENTRIES) + tuple(DEFAULT_E302_ENTRIES)
        )
        for qname, reason in graph.dynamic_entries.items():
            matched.setdefault(qname, reason)
    else:
        matched = _match_entries(graph, entries)
    records: list[dict[str, object]] = []
    for entry in sorted(matched):
        table = report.propagation.get(entry, {})
        for key in sorted(table):
            kind, deferred = _split_key(key)
            if kinds is not None and kind not in kinds:
                continue
            hops, detail, site_path, site_line = _witness_chain(
                graph, report.propagation, entry, key
            )
            records.append(
                {
                    "entry": entry,
                    "entry_reason": matched[entry],
                    "kind": kind,
                    "deferred": deferred,
                    "detail": detail,
                    "site": {"path": site_path, "line": site_line},
                    "chain": [
                        {"function": hop.qname, "path": hop.path, "line": hop.line}
                        for hop in hops
                    ],
                }
            )
    return records


__all__ = [
    "DEFAULT_E301_ENTRIES",
    "DEFAULT_E302_ENTRIES",
    "E301_BANNED",
    "E302_BANNED",
    "EFFECT_RULE_CATALOG",
    "EFFECT_RULE_IDS",
    "EffectFinding",
    "EffectRule",
    "EffectsReport",
    "PropagationStats",
    "SuppressionStatus",
    "analyze_effects",
    "dump_callgraph",
    "propagate",
]
