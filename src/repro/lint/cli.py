"""Argument handling for ``conga-repro lint`` and ``conga-repro callgraph``.

Exit-code semantics (stable contract for CI and pre-commit hooks):

* ``0`` — analysis ran and found nothing (clean tree).
* ``1`` — analysis ran and at least one violation survived suppression
  (per-file D/S/R rules, whole-program E3xx findings, or stale-waiver
  E304 reports).
* ``2`` — the analysis itself could not run: unknown ``--select`` token,
  unreadable path, or an unwritable ``--sarif``/cache destination.

``conga-repro callgraph`` is informational: it exits ``0`` after dumping
witness chains (``2`` on usage errors), never ``1`` — gating belongs to
``lint --effects``.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import TYPE_CHECKING

from repro.lint.engine import LintReport, Violation, lint_paths
from repro.lint.fixer import apply_suppressions
from repro.lint.rules import ALL_RULES, UnknownRuleError, resolve_select

if TYPE_CHECKING:
    from repro.lint.effects import EffectsReport
    from repro.lint.rules import Rule


def add_lint_parser(
    subparsers: "argparse._SubParsersAction[argparse.ArgumentParser]",
) -> argparse.ArgumentParser:
    """Register the ``lint`` subcommand on the main CLI's subparsers."""
    parser = subparsers.add_parser(
        "lint",
        help="run the determinism / simulation-invariant static analyzer",
        description=(
            "AST-based static analysis enforcing the repo's determinism "
            "contract (D1xx rules), simulator invariants (S2xx rules), "
            "reporting discipline (R3xx), and — with --effects — the "
            "whole-program E3xx contracts over the interprocedural call "
            "graph.  See DESIGN.md for the rule catalog.  Exit codes: "
            "0 clean, 1 findings, 2 usage/internal error."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to lint (default: src)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        dest="output_format",
        help="violation output format (default: text)",
    )
    parser.add_argument(
        "--select",
        default=None,
        metavar="RULES",
        help=(
            "comma-separated rule ids or family prefixes to run "
            "(e.g. 'D101', 'E3', 'D,S2'); selecting an E3xx family "
            "implies the whole-program effects pass"
        ),
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help=(
            "lint files with N worker processes (findings are reported in "
            "deterministic (path, line, col, rule) order for any N)"
        ),
    )
    parser.add_argument(
        "--effects",
        action="store_true",
        help=(
            "additionally run the whole-program effect analysis "
            "(call graph + transitive E301/E302/E303 checks and the E304 "
            "stale-suppression check)"
        ),
    )
    parser.add_argument(
        "--show-suppressed",
        action="store_true",
        help=(
            "list every suppression comment with its staleness verdict "
            "(implies the effects pass, which owns the evidence base)"
        ),
    )
    parser.add_argument(
        "--sarif",
        default=None,
        metavar="PATH",
        help="also write a SARIF 2.1.0 report (GitHub code scanning)",
    )
    parser.add_argument(
        "--cache",
        default=".repro-cache/lint-effects.json",
        metavar="PATH",
        help="effects-pass content-hash cache file (default: %(default)s)",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the effects-pass cache (cold analysis every run)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalog and exit",
    )
    parser.add_argument(
        "--fix-suppress",
        action="store_true",
        help=(
            "insert '# repro-lint: ignore[RULE]' comments for every current "
            "finding (triage helper for legacy violations)"
        ),
    )
    parser.set_defaults(func=cmd_lint)
    return parser


def add_callgraph_parser(
    subparsers: "argparse._SubParsersAction[argparse.ArgumentParser]",
) -> argparse.ArgumentParser:
    """Register the ``callgraph`` subcommand (witness-chain explorer)."""
    parser = subparsers.add_parser(
        "callgraph",
        help="dump reachable-effect witness chains from kernel entry points",
        description=(
            "Links the whole-program call graph and prints, for each entry "
            "point (kernel loop, per-packet train path, scheme callbacks, "
            "scheduled callbacks and hooks), every effect it can reach with "
            "the full witness chain: entry -> call -> ... -> effect site, "
            "file:line per hop.  Informational: exits 0 (2 on errors)."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to analyze (default: src)",
    )
    parser.add_argument(
        "--entry",
        action="append",
        default=None,
        metavar="PATTERN",
        help=(
            "fnmatch pattern over function qnames to use as entry points "
            "(repeatable; default: the E301/E302 entry set plus every "
            "registered callback)"
        ),
    )
    parser.add_argument(
        "--kind",
        action="append",
        default=None,
        metavar="KIND",
        choices=(
            "time",
            "rng",
            "hash",
            "iter",
            "float-acc",
            "alloc",
            "io",
            "global-write",
        ),
        help="only show these effect kinds (repeatable; default: all)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        dest="output_format",
        help="output format (default: text)",
    )
    parser.add_argument(
        "--cache",
        default=".repro-cache/lint-effects.json",
        metavar="PATH",
        help="effects-pass content-hash cache file (default: %(default)s)",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the effects-pass cache",
    )
    parser.set_defaults(func=cmd_callgraph)
    return parser


def _print_rules() -> None:
    from repro.lint.effects import EFFECT_RULE_CATALOG

    for rule in ALL_RULES + EFFECT_RULE_CATALOG:
        if rule.scopes:
            scope = ", ".join(rule.scopes)
        elif rule.rule_id.startswith("E3"):
            scope = "whole program (call graph over the analyzed paths)"
        else:
            scope = "src/repro (all)"
        print(f"{rule.rule_id}  {rule.title}")
        print(f"      scope: {scope}")
        print(f"      guards: {rule.rationale}")
        print(f"      derives from: {rule.paper_ref}")


def _run_effects(args: argparse.Namespace) -> "EffectsReport":
    from repro.lint.effects import analyze_effects

    cache_path = None if args.no_cache else Path(args.cache)
    return analyze_effects(args.paths, cache_path=cache_path)


def cmd_lint(args: argparse.Namespace) -> int:
    """Entry point shared by ``conga-repro lint`` and tests."""
    if args.list_rules:
        _print_rules()
        return 0
    try:
        file_rules, effect_ids = resolve_select(args.select)
    except UnknownRuleError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    selected_effects = args.select is not None and bool(effect_ids)
    run_effects = args.effects or args.show_suppressed or selected_effects
    effect_filter = effect_ids if args.select is not None else None

    try:
        report, effects_report = _run_passes(
            args, file_rules, run_effects, effect_filter
        )
    except (FileNotFoundError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    if args.fix_suppress:
        edited = apply_suppressions(report.violations)
        for path, count in edited.items():
            print(f"suppressed {count} line(s) in {path}")
        report, effects_report = _run_passes(  # re-check after edits
            args, file_rules, run_effects, effect_filter
        )

    if args.sarif:
        from repro.lint.sarif import sarif_document

        findings = effects_report.findings if effects_report is not None else ()
        finding_sites = {
            (f.rule, f.site_path, f.site_line) for f in findings
        }
        plain = [
            violation
            for violation in report.violations
            if (violation.rule, violation.path, violation.line) not in finding_sites
        ]
        document = sarif_document(plain, findings)
        try:
            Path(args.sarif).write_text(
                json.dumps(document, indent=2, sort_keys=True), encoding="utf-8"
            )
        except OSError as exc:
            print(f"error: cannot write SARIF to {args.sarif}: {exc}", file=sys.stderr)
            return 2

    if args.output_format == "json":
        document = report.to_json()
        if effects_report is not None:
            document["effects"] = effects_report.to_json()
        print(json.dumps(document, indent=2, sort_keys=True))
    else:
        for violation in report.violations:
            print(violation.format())
        if args.show_suppressed and effects_report is not None:
            for status in effects_report.suppressions:
                where = f"{status.path}:{status.line}" if status.line else status.path
                form = "ignore" if status.line else "ignore-file"
                verdict = (
                    f"STALE: {','.join(status.stale)}" if status.stale else "used"
                )
                print(f"{where}: {form}[{','.join(status.rules)}] {verdict}")
        summary = (
            f"{len(report.violations)} violation(s) in "
            f"{report.files_checked} file(s)"
            if report.violations
            else f"clean: {report.files_checked} file(s), 0 violations"
        )
        print(summary)
    return 0 if report.ok else 1


def _run_passes(
    args: argparse.Namespace,
    file_rules: "tuple[Rule, ...]",
    run_effects: bool,
    effect_filter: "tuple[str, ...] | None",
) -> "tuple[LintReport, EffectsReport | None]":
    """One lint round: per-file rules (maybe parallel) + optional effects."""
    if file_rules:
        report = lint_paths(args.paths, file_rules, jobs=args.jobs)
    else:
        report = LintReport(violations=[], files_checked=0)
    effects_report = None
    if run_effects:
        effects_report = _run_effects(args)
        merged: list[Violation] = list(report.violations)
        merged.extend(effects_report.violations(effect_filter))
        merged.sort(key=lambda v: (v.path, v.line, v.col, v.rule))
        report = LintReport(
            violations=merged,
            files_checked=max(report.files_checked, effects_report.files_checked),
        )
    return report, effects_report


def cmd_callgraph(args: argparse.Namespace) -> int:
    """Entry point for ``conga-repro callgraph``."""
    from repro.lint.effects import dump_callgraph

    try:
        report = _run_effects(args)
    except (FileNotFoundError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    records = dump_callgraph(report, entries=args.entry, kinds=args.kind)
    if args.output_format == "json":
        print(json.dumps({"version": 1, "chains": records}, indent=2, sort_keys=True))
        return 0
    for record in records:
        deferred = " (deferred)" if record["deferred"] else ""
        chain = " -> ".join(
            f"{hop['function']} ({hop['path']}:{hop['line']})"
            for hop in record["chain"]
        )
        site = record["site"]
        print(
            f"{record['entry']}: {record['kind']}{deferred} "
            f"{record['detail']} at {site['path']}:{site['line']}"
        )
        print(f"    {chain}")
    print(f"{len(records)} reachable effect(s) from {report.files_checked} file(s)")
    return 0


__all__ = ["add_callgraph_parser", "add_lint_parser", "cmd_callgraph", "cmd_lint"]
