"""Argument handling for the ``conga-repro lint`` subcommand."""

from __future__ import annotations

import argparse
import json
import sys

from repro.lint.engine import lint_paths
from repro.lint.fixer import apply_suppressions
from repro.lint.rules import ALL_RULES, UnknownRuleError, get_rules


def add_lint_parser(
    subparsers: "argparse._SubParsersAction[argparse.ArgumentParser]",
) -> argparse.ArgumentParser:
    """Register the ``lint`` subcommand on the main CLI's subparsers."""
    parser = subparsers.add_parser(
        "lint",
        help="run the determinism / simulation-invariant static analyzer",
        description=(
            "AST-based static analysis enforcing the repo's determinism "
            "contract (D1xx rules) and simulator invariants (S2xx rules). "
            "See DESIGN.md for the rule catalog."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to lint (default: src)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        dest="output_format",
        help="violation output format (default: text)",
    )
    parser.add_argument(
        "--select",
        default=None,
        metavar="RULES",
        help="comma-separated rule ids to run (default: all)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalog and exit",
    )
    parser.add_argument(
        "--fix-suppress",
        action="store_true",
        help=(
            "insert '# repro-lint: ignore[RULE]' comments for every current "
            "finding (triage helper for legacy violations)"
        ),
    )
    parser.set_defaults(func=cmd_lint)
    return parser


def _print_rules() -> None:
    for rule in ALL_RULES:
        scope = ", ".join(rule.scopes) if rule.scopes else "src/repro (all)"
        print(f"{rule.rule_id}  {rule.title}")
        print(f"      scope: {scope}")
        print(f"      guards: {rule.rationale}")
        print(f"      derives from: {rule.paper_ref}")


def cmd_lint(args: argparse.Namespace) -> int:
    """Entry point shared by ``conga-repro lint`` and tests."""
    if args.list_rules:
        _print_rules()
        return 0
    try:
        rules = get_rules(args.select)
    except UnknownRuleError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    try:
        report = lint_paths(args.paths, rules)
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    if args.fix_suppress:
        edited = apply_suppressions(report.violations)
        for path, count in edited.items():
            print(f"suppressed {count} line(s) in {path}")
        report = lint_paths(args.paths, rules)  # re-check after edits

    if args.output_format == "json":
        print(json.dumps(report.to_json(), indent=2, sort_keys=True))
    else:
        for violation in report.violations:
            print(violation.format())
        summary = (
            f"{len(report.violations)} violation(s) in "
            f"{report.files_checked} file(s)"
            if report.violations
            else f"clean: {report.files_checked} file(s), 0 violations"
        )
        print(summary)
    return 0 if report.ok else 1


__all__ = ["add_lint_parser", "cmd_lint"]
