"""A NewReno-style TCP model.

The evaluation's TCP-dependent effects all hinge on a congestion-controlled,
loss-recovering transport: Incast timeouts (Fig. 13), the pathological
interaction between TCP's control loop and local-only load balancing (§2.4),
and queue buildup at asymmetric hotspots (Fig. 11c).  This module implements
the sender and receiver halves of such a transport:

* slow start and congestion avoidance with a pluggable
  :class:`CongestionControl` increase policy (Reno here; MPTCP's coupled
  LIA lives in :mod:`repro.transport.mptcp`);
* duplicate-ACK fast retransmit and NewReno fast recovery with partial-ACK
  retransmission;
* retransmission timeouts with Jacobson/Karels RTT estimation, exponential
  backoff, and a configurable ``min_rto`` — the knob the paper turns in the
  Incast experiments (200 ms Linux default vs the 1 ms of Vasudevan et al.);
* RTT samples via echoed timestamps (TCP timestamp-option style).

Data transfer is modelled one-way: a :class:`TcpSender` pushes ``size``
bytes (byte sequence space, MSS-sized segments) to a :class:`TcpReceiver`
that generates cumulative ACKs.  Connection setup is elided — the paper's
traffic generator uses persistent connections (§5.2) — so a "flow" starts
directly in slow start.  The sender's data source may also grow on demand,
which is how MPTCP subflows pull segments from a shared connection pool.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable

from repro.net.node import Host
from repro.net.packet import Packet, ack_packet, data_packet
from repro.obs.events import RtoFired, TcpStateChanged
from repro.sim.kernel import Timer
from repro.units import microseconds, milliseconds, seconds

if TYPE_CHECKING:
    from repro.sim import Simulator

def next_flow_id(sim: "Simulator") -> int:
    """Allocate a flow id unique within ``sim``.

    Flow ids are allocated per simulator (not per process) so that a run's
    5-tuples — and therefore its ECMP hashes — do not depend on experiments
    executed earlier in the same process.
    """
    counter = getattr(sim, "_flow_id_counter", None)
    if counter is None:
        counter = itertools.count(1)
        sim._flow_id_counter = counter
    return next(counter)


@dataclass(frozen=True)
class TcpParams:
    """TCP tunables.

    ``min_rto`` defaults to the Linux 200 ms the paper's testbed uses; the
    Incast experiments also run the 1 ms variant.  ``ack_every`` of 1 acks
    every segment (delayed ACKs off, as typical for latency-sensitive
    datacenter tunings); 2 models standard delayed ACKs (out-of-order data
    and FIN segments are always acked immediately).
    """

    mss: int = 1460
    initial_cwnd_segments: int = 10
    min_rto: int = milliseconds(200)
    max_rto: int = seconds(60)
    initial_rto: int = milliseconds(200)
    dupack_threshold: int = 3
    receive_window: int = 1 << 30
    ack_every: int = 1

    def __post_init__(self) -> None:
        if self.mss <= 0:
            raise ValueError(f"mss must be positive, got {self.mss}")
        if self.min_rto <= 0 or self.max_rto < self.min_rto:
            raise ValueError("invalid RTO bounds")
        if self.ack_every < 1:
            raise ValueError("ack_every must be >= 1")

    @property
    def initial_cwnd(self) -> int:
        """Initial congestion window in bytes."""
        return self.initial_cwnd_segments * self.mss


#: Datacenter-tuned variant used by the Incast experiments (Fig. 13).
INCAST_RECOMMENDED = TcpParams(min_rto=milliseconds(1), initial_rto=milliseconds(1))


class CongestionControl:
    """Congestion-avoidance increase policy (Reno: one MSS per RTT)."""

    def ca_increase(self, sender: "TcpSender", acked_bytes: int) -> float:
        """Bytes to add to cwnd for ``acked_bytes`` acked in avoidance mode."""
        return sender.params.mss * acked_bytes / max(sender.cwnd, 1.0)

    def on_loss(self, sender: "TcpSender") -> None:
        """Hook invoked on any loss event (fast retransmit or timeout)."""

    def on_ack(self, sender: "TcpSender", acked_bytes: int, ecn_echo: bool) -> None:
        """Hook invoked on every new ACK before the window increase.

        ECN-reacting congestion controls (DCTCP) override this to track
        marked bytes and apply their own window reductions.
        """


class DataSource:
    """Supplies bytes to a sender; the plain case is a fixed-size flow."""

    def __init__(self, size: int) -> None:
        if size <= 0:
            raise ValueError(f"flow size must be positive, got {size}")
        self._size = size

    def available(self) -> int:
        """Total bytes currently available to send (monotone non-decreasing)."""
        return self._size

    def request(self, sender: "TcpSender", want: int) -> None:
        """Ask for more data; fixed-size sources have nothing to add."""

    def closed(self) -> bool:
        """Whether no more bytes will ever become available."""
        return True


class PacedSource(DataSource):
    """Releases a transfer to the sender in application-paced bursts.

    Datacenter applications emit data in bursts separated by gaps at
    10–100s-of-µs timescales (paper §2.6.1, Figure 5 — NIC offload trains,
    request/response turnarounds).  Those gaps are precisely what creates
    *flowlets*: when a gap exceeds the flowlet timeout, the next burst may
    take a different fabric path without reordering.  A continuously
    backlogged sender has no such gaps, so flowlet-grained schemes collapse
    to per-flow decisions.

    ``burst_bytes`` are released every gap drawn uniformly from
    ``[0.5, 1.5] × mean_gap``; the attached sender is woken when data
    arrives while it sits idle.
    """

    def __init__(
        self,
        sim: "Simulator",
        size: int,
        *,
        burst_bytes: int = 65_536,
        mean_gap: int = microseconds(600),
        stream: str = "paced-source",
    ) -> None:
        super().__init__(size)
        if burst_bytes <= 0 or mean_gap <= 0:
            raise ValueError("burst size and gap must be positive")
        self.sim = sim
        self.burst_bytes = burst_bytes
        self.mean_gap = mean_gap
        self._rng = sim.rng(stream)
        self._released = min(burst_bytes, size)
        self._sender: "TcpSender | None" = None
        if self._released < size:
            self.sim.schedule(self._next_gap(), self._release)

    def attach(self, sender: "TcpSender") -> None:
        """Bind the sender to wake when a burst is released."""
        self._sender = sender

    def available(self) -> int:
        return self._released

    def closed(self) -> bool:
        return self._released >= self._size

    def _next_gap(self) -> int:
        return max(1, round(float(self._rng.uniform(0.5, 1.5)) * self.mean_gap))

    def _release(self) -> None:
        self._released = min(self._released + self.burst_bytes, self._size)
        if self._released < self._size:
            self.sim.schedule(self._next_gap(), self._release)
        if self._sender is not None and not self._sender.finished:
            self._sender.on_data_available()


# Sender states.
OPEN = "open"
RECOVERY = "recovery"


@dataclass
class SenderStats:
    """Per-sender counters for diagnostics and tests."""

    segments_sent: int = 0
    bytes_sent: int = 0
    retransmissions: int = 0
    fast_retransmits: int = 0
    timeouts: int = 0
    rtt_samples: int = 0
    last_rtt: int = 0
    srtt: float = 0.0


class TcpSender:
    """One direction of a TCP connection: paces ``source`` bytes to ``dst``."""

    def __init__(
        self,
        sim: "Simulator",
        src_host: Host,
        dst: int,
        source: DataSource,
        *,
        flow_id: int | None = None,
        sport: int = 0,
        dport: int = 0,
        params: TcpParams = TcpParams(),
        cc: CongestionControl | None = None,
        on_complete: Callable[["TcpSender"], None] | None = None,
    ) -> None:
        self.sim = sim
        self.host = src_host
        self.src = src_host.host_id
        self.dst = dst
        self.source = source
        self.flow_id = flow_id if flow_id is not None else next_flow_id(sim)
        self.sport = sport
        self.dport = dport
        self.params = params
        self.cc = cc or CongestionControl()
        self.on_complete = on_complete

        self.snd_una = 0
        self.snd_nxt = 0
        self.cwnd: float = float(params.initial_cwnd)
        self.ssthresh: float = float(params.receive_window)
        self.state = OPEN
        self.dup_acks = 0
        self.recover = 0  # highest snd_nxt when recovery was entered

        self._srtt: float | None = None
        self._rttvar = 0.0
        self.rto = params.initial_rto
        self._backoff = 1
        self._rto_timer = Timer(sim, self._on_timeout)

        self.started_at = sim.now
        self.completed_at: int | None = None
        self.stats = SenderStats()

        src_host.bind(self.flow_id, self._on_packet)

    # -- public API -------------------------------------------------------------

    def start(self) -> None:
        """Begin transmitting (call once, at the flow's arrival time)."""
        self._try_send()

    def on_data_available(self) -> None:
        """Wake an idle sender because its source released more bytes."""
        if not self.finished:
            self._try_send()

    @property
    def finished(self) -> bool:
        """Whether every byte has been sent and acknowledged."""
        return self.completed_at is not None

    @property
    def inflight(self) -> int:
        """Unacknowledged bytes in the network."""
        return self.snd_nxt - self.snd_una

    @property
    def fct(self) -> int:
        """Flow completion time in ticks (valid once finished)."""
        if self.completed_at is None:
            raise RuntimeError(f"flow {self.flow_id} has not completed")
        return self.completed_at - self.started_at

    @property
    def srtt(self) -> float | None:
        """Smoothed RTT estimate in ticks, or None before the first sample."""
        return self._srtt

    # -- transmit path ------------------------------------------------------------

    def _window(self) -> float:
        return min(self.cwnd, float(self.params.receive_window))

    def _try_send(self) -> None:
        mss = self.params.mss
        source = self.source
        # cwnd and snd_una are stable for the duration of this burst (they
        # only move on ACK/timeout), so resolve the window once.
        window = self._window()
        while True:
            available = source.available()
            if self.snd_nxt >= available:
                source.request(self, mss)
                available = source.available()
                if self.snd_nxt >= available:
                    break
            segment = available - self.snd_nxt
            if segment > mss:
                segment = mss
            if self.snd_nxt - self.snd_una + segment > window:
                break
            self._send_segment(self.snd_nxt, segment)
            self.snd_nxt += segment

    def _send_segment(self, seq: int, length: int, retransmit: bool = False) -> None:
        is_last = (
            self.source.closed() and seq + length >= self.source.available()
        )
        packet = data_packet(
            src=self.src,
            dst=self.dst,
            sport=self.sport,
            dport=self.dport,
            flow_id=self.flow_id,
            seq=seq,
            payload_len=length,
            fin=is_last,
            created_at=self.sim.now,
        )
        self.host.send(packet)
        self.stats.segments_sent += 1
        self.stats.bytes_sent += length
        if retransmit:
            self.stats.retransmissions += 1
        if not self._rto_timer.running:
            self._rto_timer.start(self.rto)

    # -- receive path (ACKs) --------------------------------------------------------

    def _on_packet(self, packet: Packet) -> None:
        if not packet.is_ack or self.finished:
            return
        if packet.ack_no > self.snd_una:
            self._on_new_ack(packet)
        elif packet.ack_no == self.snd_una and self.inflight > 0:
            self._on_dup_ack()
        self._try_send()
        self._check_complete()

    def _on_new_ack(self, packet: Packet) -> None:
        acked = packet.ack_no - self.snd_una
        self.snd_una = packet.ack_no
        if packet.echo >= 0:
            self._sample_rtt(self.sim.now - packet.echo)
        self._backoff = 1
        self.cc.on_ack(self, acked, packet.ecn_echo)

        if self.state == RECOVERY:
            if packet.ack_no >= self.recover:
                # Full ACK: leave recovery, deflate to ssthresh.
                self.cwnd = self.ssthresh
                self.state = OPEN
                self.dup_acks = 0
                tracer = self.sim.tracer
                if tracer is not None and tracer.tcp:
                    tracer.emit(
                        TcpStateChanged(
                            time=self.sim.now,
                            flow_id=self.flow_id,
                            old_state=RECOVERY,
                            new_state=OPEN,
                            cwnd=self.cwnd,
                            ssthresh=self.ssthresh,
                        )
                    )
            else:
                # NewReno partial ACK: retransmit the next hole, deflate by
                # the amount acked, re-inflate by one MSS.
                self._send_segment(
                    self.snd_una,
                    min(self.params.mss, self.snd_nxt - self.snd_una),
                    retransmit=True,
                )
                self.cwnd = max(
                    self.cwnd - acked + self.params.mss, float(self.params.mss)
                )
                self._rto_timer.start(self.rto)
                return
        else:
            self.dup_acks = 0
            if self.cwnd < self.ssthresh:
                self.cwnd += acked  # slow start (ABC)
            else:
                self.cwnd += self.cc.ca_increase(self, acked)

        if self.inflight > 0:
            self._rto_timer.start(self.rto)
        else:
            self._rto_timer.stop()

    def _on_dup_ack(self) -> None:
        if self.state == RECOVERY:
            self.cwnd += self.params.mss  # window inflation
            return
        self.dup_acks += 1
        if self.dup_acks >= self.params.dupack_threshold:
            self._fast_retransmit()

    def _fast_retransmit(self) -> None:
        mss = self.params.mss
        self.recover = self.snd_nxt
        self.ssthresh = max(self.inflight / 2.0, 2.0 * mss)
        self.cwnd = self.ssthresh + self.params.dupack_threshold * mss
        self.state = RECOVERY
        self.stats.fast_retransmits += 1
        tracer = self.sim.tracer
        if tracer is not None and tracer.tcp:
            tracer.emit(
                TcpStateChanged(
                    time=self.sim.now,
                    flow_id=self.flow_id,
                    old_state=OPEN,
                    new_state=RECOVERY,
                    cwnd=self.cwnd,
                    ssthresh=self.ssthresh,
                )
            )
        self.cc.on_loss(self)
        self._send_segment(
            self.snd_una, min(mss, self.snd_nxt - self.snd_una), retransmit=True
        )
        self._rto_timer.start(self.rto)

    # -- timers ------------------------------------------------------------------

    def _on_timeout(self) -> None:
        if self.finished or self.inflight == 0:
            return
        mss = self.params.mss
        old_state = self.state
        inflight = self.inflight
        self.ssthresh = max(self.inflight / 2.0, 2.0 * mss)
        self.cwnd = float(mss)
        self.state = OPEN
        self.dup_acks = 0
        self.snd_nxt = self.snd_una  # go-back-N
        self.stats.timeouts += 1
        self._backoff = min(self._backoff * 2, 64)
        self.cc.on_loss(self)
        tracer = self.sim.tracer
        if tracer is not None and tracer.tcp:
            tracer.emit(
                RtoFired(
                    time=self.sim.now,
                    flow_id=self.flow_id,
                    rto=self.rto,
                    backoff=self._backoff,
                    inflight=inflight,
                )
            )
            if old_state != OPEN:
                tracer.emit(
                    TcpStateChanged(
                        time=self.sim.now,
                        flow_id=self.flow_id,
                        old_state=old_state,
                        new_state=OPEN,
                        cwnd=self.cwnd,
                        ssthresh=self.ssthresh,
                    )
                )
        self._try_send()
        self._rto_timer.start(min(self.rto * self._backoff, self.params.max_rto))

    def _sample_rtt(self, rtt: int) -> None:
        if rtt < 0:
            return
        self.stats.rtt_samples += 1
        self.stats.last_rtt = rtt
        if self._srtt is None:
            self._srtt = float(rtt)
            self._rttvar = rtt / 2.0
        else:
            self._rttvar = 0.75 * self._rttvar + 0.25 * abs(self._srtt - rtt)
            self._srtt = 0.875 * self._srtt + 0.125 * rtt
        self.stats.srtt = self._srtt
        raw = self._srtt + max(4.0 * self._rttvar, float(microseconds(1)))
        self.rto = int(min(max(raw, self.params.min_rto), self.params.max_rto))

    # -- completion ---------------------------------------------------------------

    def _check_complete(self) -> None:
        if self.finished:
            return
        if self.source.closed() and self.snd_una >= self.source.available():
            self.completed_at = self.sim.now
            self._rto_timer.stop()
            self.host.unbind(self.flow_id)
            if self.on_complete is not None:
                self.on_complete(self)


class TcpReceiver:
    """The ACK-generating half of a connection."""

    def __init__(
        self,
        sim: "Simulator",
        dst_host: Host,
        src: int,
        *,
        flow_id: int,
        sport: int = 0,
        dport: int = 0,
        params: TcpParams = TcpParams(),
    ) -> None:
        self.sim = sim
        self.host = dst_host
        self.src = src  # the data sender's host id
        self.flow_id = flow_id
        self.sport = sport
        self.dport = dport
        self.params = params
        self.rcv_nxt = 0
        self._out_of_order: list[tuple[int, int]] = []  # disjoint, sorted
        self._unacked_segments = 0
        self._pending_ce = False
        self.bytes_received = 0
        self.acks_sent = 0
        dst_host.bind(flow_id, self._on_packet)

    def _on_packet(self, packet: Packet) -> None:
        if packet.is_ack:
            return
        self.bytes_received += packet.payload_len
        if packet.ecn_ce:
            self._pending_ce = True
        in_order = packet.seq <= self.rcv_nxt
        self._absorb(packet.seq, packet.end_seq)
        self._unacked_segments += 1
        force = (not in_order) or packet.fin
        if force or self._unacked_segments >= self.params.ack_every:
            self._send_ack(echo=packet.created_at)

    def _absorb(self, start: int, end: int) -> None:
        if end <= self.rcv_nxt:
            return  # pure duplicate
        if start <= self.rcv_nxt and not self._out_of_order:
            # In-order arrival with no reassembly backlog — the overwhelmingly
            # common case; skip the sort/merge machinery entirely.
            self.rcv_nxt = end
            return
        self._out_of_order.append((max(start, self.rcv_nxt), end))
        self._out_of_order.sort()
        merged: list[tuple[int, int]] = []
        for interval in self._out_of_order:
            if merged and interval[0] <= merged[-1][1]:
                merged[-1] = (merged[-1][0], max(merged[-1][1], interval[1]))
            else:
                merged.append(interval)
        if merged and merged[0][0] <= self.rcv_nxt:
            self.rcv_nxt = merged.pop(0)[1]
        self._out_of_order = merged

    def _send_ack(self, echo: int) -> None:
        self._unacked_segments = 0
        ecn_echo = self._pending_ce
        self._pending_ce = False
        ack = ack_packet(
            src=self.host.host_id,
            dst=self.src,
            sport=self.dport,  # reverse direction
            dport=self.sport,
            flow_id=self.flow_id,
            ack_no=self.rcv_nxt,
            created_at=self.sim.now,
            echo=echo,
        )
        ack.ecn_echo = ecn_echo
        self.host.send(ack)
        self.acks_sent += 1

    def close(self) -> None:
        """Unbind from the host (used when tearing down experiments)."""
        self.host.unbind(self.flow_id)


@dataclass
class FlowRecord:
    """Completion record used by experiment harnesses."""

    flow_id: int
    src: int
    dst: int
    size: int
    start_time: int
    fct: int
    ideal_fct: int = 0

    @property
    def normalized_fct(self) -> float:
        """FCT divided by the idle-network optimum (§5.2.1)."""
        if self.ideal_fct <= 0:
            raise ValueError("ideal_fct not set")
        return self.fct / self.ideal_fct


class TcpFlow:
    """Convenience wrapper creating a sender/receiver pair for one transfer."""

    def __init__(
        self,
        sim: "Simulator",
        src_host: Host,
        dst_host: Host,
        size: int,
        *,
        params: TcpParams = TcpParams(),
        sport: int | None = None,
        dport: int = 80,
        source: DataSource | None = None,
        cc: CongestionControl | None = None,
        on_complete: Callable[["TcpFlow"], None] | None = None,
    ) -> None:
        self.sim = sim
        self.size = size
        flow_id = next_flow_id(sim)
        self._user_callback = on_complete
        self.receiver = TcpReceiver(
            sim,
            dst_host,
            src_host.host_id,
            flow_id=flow_id,
            sport=sport if sport is not None else flow_id,
            dport=dport,
            params=params,
        )
        self.sender = TcpSender(
            sim,
            src_host,
            dst_host.host_id,
            source if source is not None else DataSource(size),
            flow_id=flow_id,
            sport=sport if sport is not None else flow_id,
            dport=dport,
            params=params,
            cc=cc,
            on_complete=self._on_sender_done,
        )
        if isinstance(source, PacedSource):
            source.attach(self.sender)

    def start(self) -> None:
        """Start the transfer now."""
        self.sender.start()

    @property
    def flow_id(self) -> int:
        """The flow id shared by both endpoints."""
        return self.sender.flow_id

    @property
    def finished(self) -> bool:
        """Whether the transfer completed."""
        return self.sender.finished

    @property
    def fct(self) -> int:
        """Flow completion time in ticks."""
        return self.sender.fct

    def _on_sender_done(self, sender: TcpSender) -> None:
        self.receiver.close()
        if self._user_callback is not None:
            self._user_callback(self)


__all__ = [
    "CongestionControl",
    "DataSource",
    "PacedSource",
    "FlowRecord",
    "INCAST_RECOMMENDED",
    "OPEN",
    "RECOVERY",
    "SenderStats",
    "TcpFlow",
    "TcpParams",
    "TcpReceiver",
    "TcpSender",
    "next_flow_id",
]
