"""DCTCP congestion control (Alizadeh et al., SIGCOMM 2010 — the paper's [4]).

CONGA's datacenter context presumes burst-tolerant, low-latency transports;
DCTCP is the canonical one, and the fabric the paper ships in supports the
ECN marking it needs.  This module adds DCTCP on top of the NewReno engine:

* switches CE-mark packets enqueued above a threshold K (enabled via
  ``LeafSpineConfig.ecn_threshold_bytes``);
* receivers echo CE back in ACKs (built into :class:`~repro.transport.tcp.
  TcpReceiver`);
* the sender estimates the marked fraction α with a per-window EWMA,
  ``α ← (1−g)·α + g·F``, and on each marked window cuts
  ``cwnd ← cwnd·(1 − α/2)`` — a *graded* reaction instead of Reno's halving.

DCTCP keeps fabric queues near K, which sharpens CONGA's DRE signal (less
standing-queue noise) and largely removes Incast losses.  The combination
is exercised by ``benchmarks/test_ablation_dctcp.py``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.transport.tcp import CongestionControl, TcpSender
from repro.units import kilobytes

#: Standard DCTCP marking threshold for 10 Gbps links (~65 packets).
DEFAULT_K_BYTES = kilobytes(100)

#: Standard DCTCP gain for the marked-fraction EWMA.
DEFAULT_G = 1.0 / 16.0


@dataclass
class DctcpState:
    """Observable DCTCP estimator state (exposed for tests/analysis)."""

    alpha: float = 0.0
    window_end: int = 0
    acked_bytes: int = 0
    marked_bytes: int = 0
    reductions: int = 0


class DctcpCC(CongestionControl):
    """DCTCP's ECN-proportional congestion control for one sender.

    Congestion-avoidance *increase* stays Reno (one MSS per RTT); the
    *decrease* is proportional to the EWMA of the marked fraction.  On real
    losses (timeout/fast retransmit) DCTCP falls back to Reno semantics,
    which the base sender already implements.
    """

    def __init__(self, g: float = DEFAULT_G) -> None:
        if not 0.0 < g <= 1.0:
            raise ValueError(f"g must be in (0, 1], got {g}")
        self.g = g
        self.state = DctcpState()

    @property
    def alpha(self) -> float:
        """Current marked-fraction estimate α ∈ [0, 1]."""
        return self.state.alpha

    def on_ack(self, sender: TcpSender, acked_bytes: int, ecn_echo: bool) -> None:
        state = self.state
        state.acked_bytes += acked_bytes
        if ecn_echo:
            state.marked_bytes += acked_bytes
        # A "window" of data ends when the cumulative ACK passes the
        # snd_nxt recorded at the start of the observation window.
        if sender.snd_una >= state.window_end:
            if state.acked_bytes > 0:
                fraction = state.marked_bytes / state.acked_bytes
                state.alpha = (1 - self.g) * state.alpha + self.g * fraction
                if state.marked_bytes > 0:
                    # Graded reduction, at most once per window of data.
                    sender.cwnd = max(
                        sender.cwnd * (1 - state.alpha / 2.0),
                        float(sender.params.mss),
                    )
                    sender.ssthresh = sender.cwnd
                    state.reductions += 1
            state.window_end = sender.snd_nxt
            state.acked_bytes = 0
            state.marked_bytes = 0


def dctcp_cc_factory(g: float = DEFAULT_G):
    """Factory producing a fresh DCTCP controller per flow."""
    return lambda: DctcpCC(g)


__all__ = ["DEFAULT_G", "DEFAULT_K_BYTES", "DctcpCC", "DctcpState", "dctcp_cc_factory"]
