"""A minimal UDP model: unreliable, rate-paced datagram streams.

CONGA is transport independent (§2.1, desired property 2); UDP sources are
used in tests and examples to exercise the fabric without any congestion
control in the loop, and as constant-bit-rate background load.
"""

from __future__ import annotations

import itertools
from typing import TYPE_CHECKING, Callable

from repro.net.node import Host
from repro.net.packet import Packet, data_packet
from repro.units import transmission_time

if TYPE_CHECKING:
    from repro.sim import Simulator

_udp_ports = itertools.count(40_000)


class UdpSource:
    """Sends ``size`` bytes of datagrams paced at ``rate_bps``."""

    def __init__(
        self,
        sim: "Simulator",
        src_host: Host,
        dst: int,
        size: int,
        rate_bps: int,
        *,
        flow_id: int | None = None,
        datagram_size: int = 1460,
        on_done: Callable[["UdpSource"], None] | None = None,
    ) -> None:
        if size <= 0 or rate_bps <= 0:
            raise ValueError("size and rate must be positive")
        self.sim = sim
        self.host = src_host
        self.dst = dst
        self.size = size
        self.rate_bps = rate_bps
        self.datagram_size = datagram_size
        self.flow_id = flow_id if flow_id is not None else -next(_udp_ports)
        self.sport = next(_udp_ports)
        self.on_done = on_done
        self.sent_bytes = 0
        self.done = False

    def start(self) -> None:
        """Begin sending."""
        self._send_next()

    def _send_next(self) -> None:
        if self.sent_bytes >= self.size:
            self.done = True
            if self.on_done is not None:
                self.on_done(self)
            return
        length = min(self.datagram_size, self.size - self.sent_bytes)
        packet = data_packet(
            src=self.host.host_id,
            dst=self.dst,
            sport=self.sport,
            dport=9,
            flow_id=self.flow_id,
            seq=self.sent_bytes,
            payload_len=length,
            protocol="udp",
            created_at=self.sim.now,
        )
        self.host.send(packet)
        self.sent_bytes += length
        # Pace at the configured application rate.
        self.sim.schedule(
            transmission_time(packet.size, self.rate_bps), self._send_next
        )


class UdpSink:
    """Counts datagrams received for a flow id."""

    def __init__(self, dst_host: Host, flow_id: int) -> None:
        self.host = dst_host
        self.flow_id = flow_id
        self.received_bytes = 0
        self.received_packets = 0
        self.last_arrival = 0
        dst_host.bind(flow_id, self._on_packet)

    def _on_packet(self, packet: Packet) -> None:
        self.received_packets += 1
        self.received_bytes += packet.payload_len
        self.last_arrival = packet.created_at

    def close(self) -> None:
        """Unbind from the host."""
        self.host.unbind(self.flow_id)


__all__ = ["UdpSink", "UdpSource"]
