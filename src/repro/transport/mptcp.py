"""MPTCP model: N subflows with Linked-Increases (LIA) coupled congestion control.

The paper compares against MPTCP kernel v0.87 configured with 8 subflows per
connection [41].  The behaviours that matter for the evaluation are:

* each subflow has its own 5-tuple, so ECMP spreads subflows over distinct
  fabric paths — this is what gives MPTCP its good core load balancing;
* the subflows run the coupled LIA increase (RFC 6356 / Wischik et al.
  [50]) in congestion avoidance, so the connection is no more aggressive
  than one TCP on the best path;
* each subflow keeps its own loss recovery and (small) window, which is
  precisely what makes MPTCP fragile in Incast: many small windows mean
  frequent timeouts and extra edge-link burstiness (§5.3).

Data is pulled by subflows from a shared connection-level pool in MSS
chunks as their windows open, which approximates the kernel's lowest-RTT
scheduler without modelling a reinjection queue.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable

from repro.net.node import Host
from repro.transport.tcp import (
    CongestionControl,
    DataSource,
    TcpParams,
    TcpReceiver,
    TcpSender,
    next_flow_id,
)

if TYPE_CHECKING:
    from repro.sim import Simulator

#: Subflow count recommended by Raiciu et al. and used in the paper (§5).
DEFAULT_SUBFLOWS = 8


class _SubflowSource(DataSource):
    """Pulls bytes from the shared connection pool on demand.

    ``quota`` stripes the connection's data across subflows (at MSS
    granularity), modelling the kernel scheduler's spreading.  Striping is
    what gives MPTCP its characteristic small-flow behaviour: a short
    transfer ends up as one or two segments on *each* subflow, so a single
    drop cannot be recovered by duplicate ACKs and costs a full RTO — the
    effect behind the paper's Figure 9(b)/13 results.
    """

    def __init__(self, connection: "MptcpConnection", quota: int) -> None:
        self.connection = connection
        self.quota = quota
        self.assigned = 0

    def available(self) -> int:
        return self.assigned

    def request(self, sender: TcpSender, want: int) -> None:
        # Grant only what the subflow can transmit right now so bytes are
        # not stranded behind a stalled subflow's closed window, and never
        # beyond this subflow's stripe.
        window_space = int(sender.cwnd) - sender.inflight
        if window_space <= 0:
            return
        grant = min(
            want,
            window_space,
            self.connection.pool_remaining,
            self.quota - self.assigned,
        )
        if grant > 0:
            self.assigned += grant
            self.connection.pool_remaining -= grant

    def closed(self) -> bool:
        return self.connection.pool_remaining == 0 or self.assigned >= self.quota


class LinkedIncreasesCC(CongestionControl):
    """RFC 6356 coupled congestion avoidance for one subflow."""

    def __init__(self, connection: "MptcpConnection") -> None:
        self.connection = connection

    def ca_increase(self, sender: TcpSender, acked_bytes: int) -> float:
        alpha = self.connection.lia_alpha()
        total = self.connection.total_cwnd()
        mss = sender.params.mss
        coupled = alpha * acked_bytes * mss / max(total, 1.0)
        single = acked_bytes * mss / max(sender.cwnd, 1.0)
        return min(coupled, single)


class MptcpConnection:
    """An MPTCP connection moving ``size`` bytes over ``num_subflows`` subflows."""

    def __init__(
        self,
        sim: "Simulator",
        src_host: Host,
        dst_host: Host,
        size: int,
        *,
        num_subflows: int = DEFAULT_SUBFLOWS,
        params: TcpParams = TcpParams(),
        dport: int = 80,
        on_complete: Callable[["MptcpConnection"], None] | None = None,
    ) -> None:
        if size <= 0:
            raise ValueError(f"flow size must be positive, got {size}")
        if num_subflows < 1:
            raise ValueError(f"need at least one subflow, got {num_subflows}")
        self.sim = sim
        self.size = size
        self.pool_remaining = size
        self.params = params
        self.on_complete = on_complete
        self.started_at = sim.now
        self.completed_at: int | None = None
        self.subflows: list[TcpSender] = []
        self.receivers: list[TcpReceiver] = []
        cc = LinkedIncreasesCC(self)
        # Stripe the transfer across subflows at MSS granularity (the
        # scheduler's spreading); sub-MSS transfers ride a single subflow.
        quota = max(params.mss, -(-size // num_subflows))
        for _ in range(num_subflows):
            flow_id = next_flow_id(sim)
            receiver = TcpReceiver(
                sim,
                dst_host,
                src_host.host_id,
                flow_id=flow_id,
                sport=flow_id,
                dport=dport,
                params=params,
            )
            sender = TcpSender(
                sim,
                src_host,
                dst_host.host_id,
                _SubflowSource(self, quota),
                flow_id=flow_id,
                sport=flow_id,
                dport=dport,
                params=params,
                cc=cc,
                on_complete=self._on_subflow_done,
            )
            self.receivers.append(receiver)
            self.subflows.append(sender)

    # -- coupled congestion control ----------------------------------------------

    def total_cwnd(self) -> float:
        """Sum of subflow congestion windows, bytes."""
        return sum(flow.cwnd for flow in self.subflows)

    def lia_alpha(self) -> float:
        """The LIA aggressiveness factor (RFC 6356 §3.1)."""
        fallback_rtt = float(self.params.initial_rto)
        best = 0.0
        denominator = 0.0
        for flow in self.subflows:
            rtt = flow.srtt if flow.srtt else fallback_rtt
            best = max(best, flow.cwnd / (rtt * rtt))
            denominator += flow.cwnd / rtt
        if denominator <= 0:
            return 1.0
        return self.total_cwnd() * best / (denominator * denominator)

    # -- lifecycle -----------------------------------------------------------------

    def start(self) -> None:
        """Start all subflows."""
        for flow in self.subflows:
            flow.start()

    @property
    def finished(self) -> bool:
        """Whether all data has been delivered and acknowledged."""
        return self.completed_at is not None

    @property
    def fct(self) -> int:
        """Connection-level completion time in ticks."""
        if self.completed_at is None:
            raise RuntimeError("MPTCP connection has not completed")
        return self.completed_at - self.started_at

    def _on_subflow_done(self, sender: TcpSender) -> None:
        if self.finished or self.pool_remaining > 0:
            return
        if all(flow.snd_una >= flow.source.available() for flow in self.subflows):
            self.completed_at = self.sim.now
            for receiver in self.receivers:
                receiver.close()
            for flow in self.subflows:
                if not flow.finished:
                    # Idle subflows never carried data; release their binding.
                    flow.host.unbind(flow.flow_id)
                    flow._rto_timer.stop()
            if self.on_complete is not None:
                self.on_complete(self)


__all__ = ["DEFAULT_SUBFLOWS", "LinkedIncreasesCC", "MptcpConnection"]
