"""Transports: NewReno TCP, DCTCP, MPTCP (coupled LIA), and UDP."""

from repro.transport.dctcp import DEFAULT_K_BYTES, DctcpCC, dctcp_cc_factory
from repro.transport.mptcp import DEFAULT_SUBFLOWS, LinkedIncreasesCC, MptcpConnection
from repro.transport.tcp import (
    CongestionControl,
    DataSource,
    PacedSource,
    FlowRecord,
    INCAST_RECOMMENDED,
    SenderStats,
    TcpFlow,
    TcpParams,
    TcpReceiver,
    TcpSender,
    next_flow_id,
)
from repro.transport.udp import UdpSink, UdpSource

__all__ = [
    "CongestionControl",
    "DEFAULT_K_BYTES",
    "DEFAULT_SUBFLOWS",
    "DctcpCC",
    "dctcp_cc_factory",
    "DataSource",
    "FlowRecord",
    "INCAST_RECOMMENDED",
    "LinkedIncreasesCC",
    "MptcpConnection",
    "PacedSource",
    "SenderStats",
    "TcpFlow",
    "TcpParams",
    "TcpReceiver",
    "TcpSender",
    "UdpSink",
    "UdpSource",
    "next_flow_id",
]
