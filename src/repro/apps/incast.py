"""Incast micro-benchmark (paper §5.3, Figure 13).

A client repeatedly requests a file striped across ``fan_in`` servers; all
servers respond with ``total_bytes / fan_in`` simultaneously, converging on
the client's single access link.  The metric is the *effective throughput*:
request size divided by the time until the slowest response finishes,
expressed as a percentage of the client's line rate.

The paper's finding: MPTCP's 8 subflows per response multiply the number of
contending windows at the edge, collapsing throughput (to as little as 5%
with jumbo frames and 200 ms minRTO), while CONGA+TCP stays high because it
leaves TCP untouched.  The experiment "does not stress fabric load
balancing" — the bottleneck is the edge — so the transport is the variable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable

from repro.apps.traffic import FlowFactory
from repro.units import megabytes, to_seconds

if TYPE_CHECKING:
    from repro.sim import Simulator
    from repro.switch.fabric import Fabric


@dataclass
class IncastResult:
    """Outcome of an Incast run."""

    fan_in: int
    request_bytes: int
    request_durations: list[int] = field(default_factory=list)

    @property
    def mean_duration(self) -> float:
        """Mean request completion time in ticks."""
        if not self.request_durations:
            raise ValueError("no completed requests")
        return sum(self.request_durations) / len(self.request_durations)

    def effective_throughput_bps(self) -> float:
        """Mean goodput across requests, bits per second."""
        return self.request_bytes * 8 / to_seconds(round(self.mean_duration))

    def throughput_percent(self, line_rate_bps: int) -> float:
        """Mean goodput as a percent of the client access line rate."""
        return 100.0 * self.effective_throughput_bps() / line_rate_bps


class IncastClient:
    """Issues synchronized striped requests (the classic Incast pattern)."""

    def __init__(
        self,
        sim: "Simulator",
        fabric: "Fabric",
        client: int,
        servers: list[int],
        *,
        flow_factory: FlowFactory,
        request_bytes: int = megabytes(10),
        repeats: int = 5,
        on_done: Callable[[IncastResult], None] | None = None,
    ) -> None:
        if not servers:
            raise ValueError("need at least one server")
        if client in servers:
            raise ValueError("client cannot be one of its servers")
        self.sim = sim
        self.fabric = fabric
        self.client = client
        self.servers = list(servers)
        self.flow_factory = flow_factory
        self.request_bytes = request_bytes
        self.repeats = repeats
        self.on_done = on_done
        self.result = IncastResult(fan_in=len(servers), request_bytes=request_bytes)
        self._outstanding = 0
        self._request_started_at = 0

    def start(self) -> None:
        """Issue the first request."""
        self._issue_request()

    def _issue_request(self) -> None:
        self._request_started_at = self.sim.now
        stripe = max(1, self.request_bytes // len(self.servers))
        self._outstanding = len(self.servers)
        client_host = self.fabric.host(self.client)
        for server in self.servers:
            flow = self.flow_factory(
                self.fabric.host(server),
                client_host,
                stripe,
                lambda f: self._stripe_done(),
            )
            flow.start()

    def _stripe_done(self) -> None:
        self._outstanding -= 1
        if self._outstanding > 0:
            return
        self.result.request_durations.append(self.sim.now - self._request_started_at)
        if len(self.result.request_durations) < self.repeats:
            self._issue_request()
        elif self.on_done is not None:
            self.on_done(self.result)

    @property
    def finished(self) -> bool:
        """All requests completed."""
        return len(self.result.request_durations) >= self.repeats


__all__ = ["IncastClient", "IncastResult"]
