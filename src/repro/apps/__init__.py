"""Applications and experiment harness: traffic generators, Incast, HDFS."""

from repro.apps.experiment import (
    ExperimentResult,
    SCHEMES,
    SchemeSpec,
    UnknownSchemeError,
    compare_schemes,
    execute_experiment,
    get_scheme,
    register_scheme,
)
from repro.apps.hdfs import HdfsJobResult, HdfsWriteJob
from repro.apps.incast import IncastClient, IncastResult
from repro.apps.spec import (
    ExperimentSpec,
    ImbalanceMonitorSpec,
    PointResult,
    QueueMonitorSpec,
    UnknownWorkloadError,
    get_workload,
)
from repro.obs.config import ObsSpec
from repro.apps.traffic import (
    CrossRackTraffic,
    bursty_tcp_flow_factory,
    dctcp_flow_factory,
    FlowFactory,
    TrafficStats,
    mptcp_flow_factory,
    tcp_flow_factory,
)

__all__ = [
    "CrossRackTraffic",
    "ExperimentResult",
    "ExperimentSpec",
    "FlowFactory",
    "HdfsJobResult",
    "HdfsWriteJob",
    "ImbalanceMonitorSpec",
    "IncastClient",
    "IncastResult",
    "ObsSpec",
    "PointResult",
    "QueueMonitorSpec",
    "SCHEMES",
    "SchemeSpec",
    "TrafficStats",
    "UnknownSchemeError",
    "UnknownWorkloadError",
    "bursty_tcp_flow_factory",
    "compare_schemes",
    "dctcp_flow_factory",
    "execute_experiment",
    "get_scheme",
    "get_workload",
    "mptcp_flow_factory",
    "register_scheme",
    "tcp_flow_factory",
]
