"""Applications and experiment harness: traffic generators, Incast, HDFS."""

from repro.apps.experiment import (
    ExperimentResult,
    SCHEMES,
    SchemeSpec,
    compare_schemes,
    run_fct_experiment,
)
from repro.apps.hdfs import HdfsJobResult, HdfsWriteJob
from repro.apps.incast import IncastClient, IncastResult
from repro.apps.traffic import (
    CrossRackTraffic,
    bursty_tcp_flow_factory,
    dctcp_flow_factory,
    FlowFactory,
    TrafficStats,
    mptcp_flow_factory,
    tcp_flow_factory,
)

__all__ = [
    "CrossRackTraffic",
    "ExperimentResult",
    "FlowFactory",
    "HdfsJobResult",
    "HdfsWriteJob",
    "IncastClient",
    "IncastResult",
    "SCHEMES",
    "SchemeSpec",
    "TrafficStats",
    "bursty_tcp_flow_factory",
    "compare_schemes",
    "dctcp_flow_factory",
    "mptcp_flow_factory",
    "run_fct_experiment",
    "tcp_flow_factory",
]
